//! The paper's headline result: the race-free maximal-independent-set code
//! is *faster* than its racy baseline — 5–11% geomean across four GPU
//! generations — because the atomics publish status updates immediately,
//! where the baseline's compiler-deferred plain stores leave other threads
//! polling stale bytes for extra rounds (§VI-A).
//!
//! ```text
//! cargo run --release --example mis_speedup
//! ```

use ecl_core::suite::{run_algorithm, Algorithm, Variant};
use ecl_suite::prelude::*;

fn main() {
    let inputs = ["amazon0601", "as-skitter", "rmat16.sym", "2d-2e20.sym"];
    println!("MIS: baseline (racy) vs race-free, speedup = baseline/racefree\n");
    println!(
        "{:<18} {:>9} {:>12} {:>9} {:>9}",
        "input", "GPU", "baseline", "racefree", "speedup"
    );

    for gpu in ecl_simt::GpuConfig::paper_gpus() {
        let mut product = 1.0f64;
        let mut count = 0u32;
        for name in inputs {
            let graph = GraphInput::by_name(name)
                .expect("catalog entry")
                .build(0.5, 3);
            let base = run_algorithm(Algorithm::Mis, Variant::Baseline, &graph, &gpu, 1);
            let free = run_algorithm(Algorithm::Mis, Variant::RaceFree, &graph, &gpu, 1);
            assert!(base.valid && free.valid);
            // The priority order fixes a unique MIS: same set either way.
            assert_eq!(base.solution_digest, free.solution_digest);
            let speedup = base.cycles as f64 / free.cycles as f64;
            product *= speedup;
            count += 1;
            println!(
                "{:<18} {:>9} {:>12} {:>9} {:>9.2}",
                name, gpu.name, base.cycles, free.cycles, speedup
            );
        }
        let geomean = product.powf(1.0 / count as f64);
        println!(
            "{:<18} {:>9} {:>34}{:.2}\n",
            "geomean", gpu.name, "", geomean
        );
    }

    println!(
        "The race-free MIS wins on every GPU: removing the \"benign\" races\n\
         sped the code up, the paper's central surprising finding."
    );
}
