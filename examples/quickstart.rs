//! Quickstart: run one graph analytics code in both flavors and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ecl_core::suite::{run_algorithm, Algorithm, Variant};
use ecl_suite::prelude::*;

fn main() {
    // A scaled stand-in for the paper's rmat16.sym input.
    let input = GraphInput::by_name("rmat16.sym").expect("catalog entry");
    let graph = input.build(0.5, 42);
    println!(
        "input {} — {} vertices, {} edges",
        input.name(),
        graph.num_vertices(),
        graph.num_edges()
    );

    let gpu = GpuConfig::a100();
    println!("device: {} ({})\n", gpu.name, gpu.architecture);

    for algorithm in [Algorithm::Cc, Algorithm::Gc, Algorithm::Mis, Algorithm::Mst] {
        let baseline = run_algorithm(algorithm, Variant::Baseline, &graph, &gpu, 1);
        let racefree = run_algorithm(algorithm, Variant::RaceFree, &graph, &gpu, 1);
        assert!(baseline.valid && racefree.valid, "solutions verified");
        let speedup = baseline.cycles as f64 / racefree.cycles as f64;
        println!(
            "{:<4} baseline {:>9} cy | race-free {:>9} cy | speedup {:>5.2}{}",
            algorithm.name(),
            baseline.cycles,
            racefree.cycles,
            speedup,
            if speedup >= 1.0 {
                "  <- race-free wins"
            } else {
                ""
            },
        );
    }

    println!("\n(speedup > 1 means the race-free version is faster, as in the paper's tables)");
}
