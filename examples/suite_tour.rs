//! A tour of all six ECL codes — including the regular APSP — on one
//! device, with the profiler output the simulator collects per kernel.
//!
//! ```text
//! cargo run --release --example suite_tour
//! ```

use ecl_core::suite::{run_algorithm, Algorithm, Variant};
use ecl_suite::prelude::*;

fn main() {
    let gpu = GpuConfig::titan_v();
    println!(
        "device: {} ({}, {} SMs)\n",
        gpu.name, gpu.architecture, gpu.num_sms
    );

    // APSP is dense O(n^2): use a small weighted mesh for it, the catalog
    // stand-ins for everything else.
    let apsp_graph = ecl_graph::gen::grid2d_torus(10, 10).with_random_weights(9, 1);
    let undirected = GraphInput::by_name("amazon0601").unwrap().build(0.4, 7);
    let directed = GraphInput::by_name("web-Google").unwrap().build(0.4, 7);

    println!(
        "{:<5} {:>10} {:>12} {:>12} {:>8} {:>9} {:>10}",
        "algo", "quality", "baseline", "race-free", "speedup", "launches", "accesses"
    );
    for alg in [
        Algorithm::Apsp,
        Algorithm::Cc,
        Algorithm::Gc,
        Algorithm::Mis,
        Algorithm::Mst,
        Algorithm::Scc,
    ] {
        let graph = match alg {
            Algorithm::Apsp => &apsp_graph,
            Algorithm::Scc => &directed,
            _ => &undirected,
        };
        let base = run_algorithm(alg, Variant::Baseline, graph, &gpu, 1);
        let free = run_algorithm(alg, Variant::RaceFree, graph, &gpu, 1);
        assert!(base.valid && free.valid, "{alg} failed validation");
        let accesses: u64 = free.stats.launches.iter().map(|l| l.total_accesses()).sum();
        println!(
            "{:<5} {:>10} {:>12} {:>12} {:>8.2} {:>9} {:>10}",
            alg.name(),
            base.quality,
            base.cycles,
            free.cycles,
            base.cycles as f64 / free.cycles as f64,
            free.stats.num_launches(),
            accesses
        );
    }

    println!(
        "\nquality column: sum of finite distances (APSP), component count (CC),\n\
         colors used (GC), set size (MIS), forest weight (MST), SCC count (SCC).\n\
         APSP has no races to remove, so both columns run the identical code."
    );
}
