//! Running the suite on an external graph: write a Matrix Market file,
//! load it back (the same path a real SuiteSparse/SNAP download takes),
//! and run the connected-components study on it.
//!
//! ```text
//! cargo run --release --example external_graph [path/to/graph.mtx]
//! ```

use ecl_core::suite::{run_algorithm, Algorithm, Variant};
use ecl_graph::{mtx, props};
use ecl_suite::prelude::*;

fn main() {
    let path = std::env::args().nth(1).map(std::path::PathBuf::from);
    let graph = match path {
        Some(path) => {
            println!("loading {}", path.display());
            mtx::load_mtx(&path).expect("failed to parse .mtx file")
        }
        None => {
            // No file given: fabricate one, exactly as a download would
            // leave it on disk, then load it through the same parser.
            let dir = std::env::temp_dir().join("ecl_suite_example");
            std::fs::create_dir_all(&dir).expect("create temp dir");
            let path = dir.join("demo.mtx");
            let g = ecl_graph::gen::pref_attach(2000, 5, 0.05, 11);
            let mut file = std::fs::File::create(&path).expect("create mtx");
            mtx::write_mtx(&g, &mut file).expect("write mtx");
            println!("no input given; wrote and re-loaded {}", path.display());
            mtx::load_mtx(&path).expect("re-parse")
        }
    };

    let p = props::properties(&graph);
    println!(
        "graph: {} vertices, {} edges, d-avg {:.1}, d-max {}, {} component(s)\n",
        p.num_vertices,
        p.num_edges,
        p.avg_degree,
        p.max_degree,
        props::component_count(&graph)
    );

    for gpu in GpuConfig::paper_gpus() {
        let base = run_algorithm(Algorithm::Cc, Variant::Baseline, &graph, &gpu, 1);
        let free = run_algorithm(Algorithm::Cc, Variant::RaceFree, &graph, &gpu, 1);
        assert!(base.valid && free.valid);
        println!(
            "CC on {:<12} baseline {:>10} cy | race-free {:>10} cy | speedup {:.2}",
            gpu.name,
            base.cycles,
            free.cycles,
            base.cycles as f64 / free.cycles as f64
        );
    }
}
