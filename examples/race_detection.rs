//! Finds the "benign" data races in a baseline ECL code with the dynamic
//! race detector, then shows the race-free conversion comes back clean —
//! including the blind spots of the real-world tools the paper used (§IV).
//!
//! ```text
//! cargo run --release --example race_detection
//! ```

use ecl_core::primitives::{Atomic, Plain};
use ecl_core::{cc, mis};
use ecl_racecheck::{check_races, check_races_with_mode, DetectorMode};
use ecl_simt::{Gpu, GpuConfig, StoreVisibility};
use ecl_suite::prelude::*;

fn main() {
    let graph = GraphInput::by_name("internet")
        .expect("catalog entry")
        .build(0.25, 7);
    println!(
        "checking ECL-CC on 'internet-like' input ({} vertices, {} edges)\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Tracing is a Gpu-level switch, so drive the kernels directly here.
    let mut gpu = Gpu::new(GpuConfig::rtx2070_super());
    gpu.enable_tracing();
    let baseline_races = {
        let result = cc::run_traced::<Plain>(&mut gpu, &graph, StoreVisibility::DeferUntilYield);
        assert!(cc::verify_components(&graph, &result));
        check_races(&gpu)
    };
    println!(
        "baseline CC: {} distinct race report(s)",
        baseline_races.len()
    );
    for report in baseline_races.iter().take(5) {
        println!("  {report}");
    }
    assert!(
        !baseline_races.is_empty(),
        "the baseline must race (that is the paper's premise)"
    );

    // The Compute-Sanitizer-like mode checks only shared memory, so it sees
    // nothing — one of the tool limitations §IV describes.
    let sanitizer_view = check_races_with_mode(&gpu, DetectorMode::SharedOnly);
    println!(
        "\nCompute-Sanitizer-mode (shared memory only): {} report(s) — global races invisible",
        sanitizer_view.len()
    );

    // The iGuard-like mode ignores the implicit barrier between launches and
    // over-reports.
    let iguard_view = check_races_with_mode(&gpu, DetectorMode::NoLaunchBarrier);
    println!(
        "iGuard-mode (no launch barrier): {} report(s) — includes false positives",
        iguard_view.len()
    );

    // The race-free conversion is clean.
    let mut gpu = Gpu::new(GpuConfig::rtx2070_super());
    gpu.enable_tracing();
    let result = cc::run_traced::<Atomic>(&mut gpu, &graph, StoreVisibility::Immediate);
    assert!(cc::verify_components(&graph, &result));
    let free_races = check_races(&gpu);
    println!("\nrace-free CC: {} race report(s)", free_races.len());
    assert!(free_races.is_empty(), "the conversion must be race-free");

    // Same story for MIS, whose baseline races on the packed status bytes.
    let mut gpu = Gpu::new(GpuConfig::rtx2070_super());
    gpu.enable_tracing();
    mis::run_traced::<ecl_core::primitives::VolatileReadPlainWrite>(
        &mut gpu,
        &graph,
        StoreVisibility::DeferBounded {
            every: 2,
            eighths: 4,
        },
    );
    let mis_races = check_races(&gpu);
    println!(
        "\nbaseline MIS: {} distinct race report(s)",
        mis_races.len()
    );
    assert!(!mis_races.is_empty());
    println!("\nall assertions passed: baselines race, conversions are clean.");
}
