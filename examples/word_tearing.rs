//! Reproduces the paper's Fig. 1: word tearing of a shared 64-bit variable
//! on hardware without native 64-bit accesses.
//!
//! Four threads share `long val = -1`:
//! - T1 stores 0 with a plain 64-bit store,
//! - T2 prints whatever it reads,
//! - T3 performs `atomicAdd(&val, 6)`,
//! - T4 spins until the value changes.
//!
//! On a device whose plain 64-bit stores split into two 32-bit machine
//! stores, T2 can observe the chimera `0xffffffff00000000`, and T3's atomic
//! add can execute between the halves — both outcomes the paper warns about.
//!
//! ```text
//! cargo run --release --example word_tearing
//! ```

use ecl_simt::{
    Ctx, DeviceBuffer, Gpu, GpuConfig, Kernel, LaunchConfig, Step, StoreVisibility, ThreadInfo,
};

struct Fig1 {
    val: DeviceBuffer<u64>,
    seen: DeviceBuffer<u64>,
}

impl Kernel for Fig1 {
    type State = (u32, u8);

    fn name(&self) -> &str {
        "fig1"
    }

    fn init(&self, info: ThreadInfo) -> Self::State {
        (info.global_id, 0)
    }

    fn step(&self, state: &mut Self::State, ctx: &mut Ctx<'_>) -> Step {
        let (tid, stage) = *state;
        state.1 += 1;
        match (tid, stage) {
            // T1: `val = 0;` — one source-level store, two machine stores.
            (0, 0) => {
                ctx.store(self.val.at(0), 0u64);
                Step::Yield
            }
            (0, _) => Step::Done,
            // T2: `printf("%ld", val);`
            (1, _) => {
                let v = ctx.load(self.val.at(0));
                ctx.store_volatile(self.seen.at(1), v);
                Step::Done
            }
            // T3: `atomicAdd(&val, 6);` — atomic, but tearing in T1 still bites.
            (2, _) => {
                ctx.atomic_add_u64(self.val.at(0), 6);
                Step::Done
            }
            // T4: spin until the value changes from -1 (volatile read so the
            // "compiler" cannot hoist the load out of the loop).
            (3, _) => {
                let v = ctx.load_volatile(self.val.at(0));
                if v == u64::MAX {
                    Step::Yield
                } else {
                    ctx.store_volatile(self.seen.at(3), v);
                    Step::Done
                }
            }
            _ => Step::Done,
        }
    }
}

fn run(native_64bit: bool) -> (u64, u64) {
    let mut cfg = GpuConfig::test_tiny();
    cfg.native_64bit = native_64bit;
    let mut gpu = Gpu::new(cfg);
    let val = gpu.alloc::<u64>(1);
    let seen = gpu.alloc::<u64>(4);
    gpu.upload(&val, &[u64::MAX]); // long val = -1;
    gpu.launch(
        LaunchConfig {
            grid_blocks: 1,
            block_threads: 4,
            store_visibility: StoreVisibility::DeferUntilDone,
            shared_bytes: 0,
            exact_geometry: true,
        },
        Fig1 { val, seen },
    );
    (gpu.download(&seen)[1], gpu.download(&val)[0])
}

fn main() {
    println!("shared variable: long val = -1;  T1 stores 0, T3 atomicAdd(6)\n");

    let (t2_native, final_native) = run(true);
    println!("64-bit-native device:   T2 printed {t2_native:#018x}, final val {final_native:#x}");

    let (t2_split, final_split) = run(false);
    println!("32-bit-split device:    T2 printed {t2_split:#018x}, final val {final_split:#x}");

    if t2_split != 0 && t2_split != u64::MAX {
        println!(
            "\nT2 observed a CHIMERA: half the bits from the initialization (-1),\n\
             half from T1's store of 0 — the exact failure of the paper's Fig. 1.\n\
             The same source code was fine on the 64-bit device: 'benign' races\n\
             are not portable."
        );
    }
    if final_native != final_split {
        println!(
            "\nEven the FINAL value differs across devices ({final_native:#x} vs \
             {final_split:#x}):\nT3's atomic add executed between T1's two half-stores \
             on the split device,\nproducing the paper's 'nonsensical' outcome."
        );
    }
    // On the native device T2 can only see full values: -1 or 0.
    assert!(
        t2_native == u64::MAX || t2_native == 0,
        "native-64 read must never tear, saw {t2_native:#x}"
    );
}
