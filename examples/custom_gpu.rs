//! Model a hypothetical future GPU and ask the paper's closing question:
//! does the race-free penalty keep growing on newer architectures (§VII)?
//!
//! The paper observes more slowdown on newer GPUs and hopes vendors will
//! "add more support for fast atomics in future GPUs". Here we sweep the
//! atomic read-modify-write surcharge on a 4090-like device and watch the
//! CC and SCC speedups respond — and then model a device with *fast*
//! atomics to see the gap close.
//!
//! ```text
//! cargo run --release --example custom_gpu
//! ```

use ecl_core::suite::{run_algorithm, Algorithm, Variant};
use ecl_simt::GpuConfig;
use ecl_suite::prelude::*;

fn main() {
    let cc_graph = GraphInput::by_name("citationCiteseer")
        .unwrap()
        .build(0.5, 5);
    let scc_graph = GraphInput::by_name("toroid-hex").unwrap().build(0.5, 5);

    println!("sweeping the atomic RMW surcharge on a 4090-class device:\n");
    println!("{:>12} {:>10} {:>10}", "rmw extra", "CC", "SCC");
    for extra in [0u32, 5, 10, 20, 40] {
        let mut gpu = GpuConfig::rtx4090();
        gpu.name = "custom";
        gpu.atomic_extra_cycles = extra;
        let cc = speedup(Algorithm::Cc, &cc_graph, &gpu);
        let scc = speedup(Algorithm::Scc, &scc_graph, &gpu);
        println!("{extra:>12} {cc:>10.2} {scc:>10.2}");
    }

    // A hypothetical future device where atomics are served as cheaply as
    // L1 hits — the hardware the paper asks for.
    let mut fast_atomics = GpuConfig::rtx4090();
    fast_atomics.name = "future";
    fast_atomics.atomic_extra_cycles = 0;
    fast_atomics.l2_cycles = fast_atomics.l1_cycles + 1;
    let cc = speedup(Algorithm::Cc, &cc_graph, &fast_atomics);
    let scc = speedup(Algorithm::Scc, &scc_graph, &fast_atomics);
    println!(
        "\nwith near-L1 atomics (the paper's wish): CC {cc:.2}, SCC {scc:.2} — \
         the race-free penalty nearly vanishes."
    );
}

fn speedup(alg: Algorithm, graph: &ecl_graph::Csr, gpu: &GpuConfig) -> f64 {
    let base = run_algorithm(alg, Variant::Baseline, graph, gpu, 1);
    let free = run_algorithm(alg, Variant::RaceFree, graph, gpu, 1);
    assert!(base.valid && free.valid);
    base.cycles as f64 / free.cycles as f64
}
