//! # ECL-Suite-RS
//!
//! A Rust reproduction of *“Performance Impact of Removing Data Races from
//! GPU Graph Analytics Programs”* (Liu, VanAusdal, Burtscher — IISWC 2024).
//!
//! The original study runs six high-performance CUDA graph-analytics codes in
//! two flavors — the published *baseline* containing "benign" data races, and
//! a converted *race-free* version using relaxed atomic accesses — and
//! compares their runtimes on four generations of NVIDIA GPUs.
//!
//! Real GPUs are replaced here by [`ecl_simt`], a deterministic software SIMT
//! simulator that models the architectural mechanisms responsible for the
//! paper's findings: per-SM L1 caches, a shared L2, the different service
//! points of plain / `volatile` / atomic accesses, compiler register caching,
//! and delayed store visibility. Everything else is implemented faithfully:
//! the six algorithms ([`ecl_core`]), the input graph families
//! ([`ecl_graph`]), a dynamic data-race detector ([`ecl_racecheck`]), and the
//! full experiment harness ([`ecl_bench`]).
//!
//! ## Quickstart
//!
//! ```
//! use ecl_suite::prelude::*;
//!
//! // Build a small RMAT graph and run both CC variants on a simulated A100.
//! let graph = GraphInput::by_name("rmat16.sym").unwrap().build(1.0, 42);
//! let gpu = GpuConfig::a100();
//! let base = run_algorithm(Algorithm::Cc, Variant::Baseline, &graph, &gpu, 1);
//! let free = run_algorithm(Algorithm::Cc, Variant::RaceFree, &graph, &gpu, 1);
//! assert_eq!(base.solution_digest, free.solution_digest);
//! // On an Ampere-class device the race-free version is slower (speedup < 1).
//! let speedup = base.cycles as f64 / free.cycles as f64;
//! assert!(speedup > 0.0);
//! ```
//!
//! See `examples/` for runnable scenarios and `EXPERIMENTS.md` for the
//! paper-table reproduction results.

pub use ecl_bench as bench;
pub use ecl_core as core;
pub use ecl_graph as graph;
pub use ecl_racecheck as racecheck;
pub use ecl_simt as simt;

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use ecl_core::suite::{run_algorithm, Algorithm, RunResult, Variant};
    pub use ecl_graph::inputs::GraphInput;
    pub use ecl_graph::Csr;
    pub use ecl_racecheck::{check_races, RaceReport};
    pub use ecl_simt::GpuConfig;
}
