//! Property-based tests for the graph substrate's edge cases: adversarial
//! inputs (self-loops, duplicates, out-of-range endpoints, huge ID gaps,
//! empty and single-vertex graphs) must round-trip through CSR construction
//! and both serialization formats without panicking, and the CSR invariants
//! (degree-sum accounting, sortedness, mirror symmetry) must hold on
//! whatever survives sanitization.

use ecl_graph::{gen, io, mtx, props, Csr, CsrBuilder};
use proptest::prelude::*;

/// Degree sum over all vertices. Stored edges are directed half-edges (a
/// mirrored undirected edge counts twice), so this must equal
/// `num_edges()` exactly; for symmetric graphs that makes it 2x the number
/// of undirected edges.
fn degree_sum(g: &Csr) -> usize {
    (0..g.num_vertices()).map(|v| g.neighbors(v).len()).sum()
}

/// Strategy: a hostile edge list — self-loops, duplicates, and endpoints
/// beyond the vertex count are all fair game.
fn hostile_edges(max_n: u32) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (1..max_n).prop_flat_map(|n| {
        // Endpoints range past `n` so some edges are out of range.
        let edges = prop::collection::vec((0..n + 8, 0..n + 8), 0..300);
        (Just(n), edges)
    })
}

proptest! {
    #[test]
    fn hostile_inputs_build_valid_csr((n, edges) in hostile_edges(64)) {
        let mut b = CsrBuilder::new(n as usize).symmetric(true);
        b.extend_edges(edges);
        let g = b.build();
        // Degree sum counts every stored half-edge exactly once.
        prop_assert_eq!(degree_sum(&g), g.num_edges());
        // Symmetric stored edges pair up: degree-sum = 2 * undirected edges.
        let undirected = g.edges().filter(|&(u, v)| u < v).count();
        prop_assert_eq!(degree_sum(&g), 2 * undirected);
        prop_assert!(g.is_symmetric());
        // Sanitization: no self-loops, no duplicates, nothing out of range.
        for v in 0..g.num_vertices() {
            let nb = g.neighbors(v);
            prop_assert!(!nb.contains(&(v as u32)));
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(nb.iter().all(|&u| (u as usize) < g.num_vertices()));
        }
    }

    #[test]
    fn hostile_inputs_round_trip_both_formats(
        (n, edges) in hostile_edges(48),
        weighted in any::<bool>(),
    ) {
        let mut b = CsrBuilder::new(n as usize).symmetric(true);
        b.extend_edges(edges);
        let mut g = b.build();
        if weighted {
            g = g.with_random_weights(500, 11);
        }
        // Binary format.
        let mut buf = Vec::new();
        io::write_graph(&g, &mut buf).unwrap();
        prop_assert_eq!(&io::read_graph(&buf[..]).unwrap(), &g);
        // MatrixMarket text format.
        let mut text = Vec::new();
        mtx::write_mtx(&g, &mut text).unwrap();
        let back = mtx::read_mtx(&text[..]).unwrap();
        prop_assert_eq!(degree_sum(&back), degree_sum(&g));
        prop_assert_eq!(back.num_vertices(), g.num_vertices());
    }

    #[test]
    fn max_id_gap_graphs_survive(gap in 1usize..100_000, weighted in any::<bool>()) {
        // One edge between vertex 0 and a far-away maximum ID: every vertex
        // in between is isolated. CSR construction, degree accounting, and
        // the binary format must all cope with the long empty row run.
        let n = gap + 1;
        let mut b = CsrBuilder::new(n).symmetric(true);
        b.add_edge(0, gap as u32);
        let mut g = b.build();
        if weighted {
            g = g.with_random_weights(9, 3);
        }
        prop_assert_eq!(g.num_vertices(), n);
        prop_assert_eq!(g.num_edges(), 2);
        prop_assert_eq!(degree_sum(&g), 2);
        prop_assert_eq!(g.neighbors(0), &[gap as u32]);
        prop_assert_eq!(g.neighbors(gap), &[0u32]);
        prop_assert!((1..gap).all(|v| g.neighbors(v).is_empty()));
        let mut buf = Vec::new();
        io::write_graph(&g, &mut buf).unwrap();
        prop_assert_eq!(&io::read_graph(&buf[..]).unwrap(), &g);
    }

    #[test]
    fn generators_tolerate_degenerate_sizes(seed in any::<u64>()) {
        // The smallest legal requests must not panic and must keep the
        // degree-sum invariant.
        for g in [
            gen::rmat(2, 0, 0.57, 0.19, 0.19, true, seed),
            gen::rmat(2, 4, 0.57, 0.19, 0.19, true, seed),
            gen::random_uniform(2, 0, true, seed),
            gen::random_uniform(2, 3, false, seed),
        ] {
            prop_assert_eq!(degree_sum(&g), g.num_edges());
            let mut buf = Vec::new();
            io::write_graph(&g, &mut buf).unwrap();
            prop_assert_eq!(&io::read_graph(&buf[..]).unwrap(), &g);
        }
    }

    #[test]
    fn duplicate_heavy_lists_collapse(n in 2u32..32, dup_factor in 1usize..8) {
        // The same few edges repeated many times must collapse to one copy
        // each, keeping properties consistent with the histogram.
        let mut b = CsrBuilder::new(n as usize).symmetric(true);
        for _ in 0..dup_factor {
            for v in 1..n {
                b.add_edge(0, v);
                b.add_edge(v, 0);
            }
        }
        let g = b.build();
        prop_assert_eq!(g.num_edges(), 2 * (n as usize - 1));
        prop_assert_eq!(g.neighbors(0).len(), n as usize - 1);
        let p = props::properties(&g);
        prop_assert_eq!(p.num_edges, g.num_edges());
        prop_assert_eq!(p.max_degree, n as usize - 1);
    }
}

#[test]
fn single_vertex_graph_round_trips() {
    let g = CsrBuilder::new(1).build();
    assert_eq!(g.num_vertices(), 1);
    assert_eq!(g.num_edges(), 0);
    assert_eq!(degree_sum(&g), 0);
    let mut buf = Vec::new();
    io::write_graph(&g, &mut buf).unwrap();
    assert_eq!(io::read_graph(&buf[..]).unwrap(), g);
}

#[test]
fn empty_graph_round_trips() {
    let g = CsrBuilder::new(0).build();
    assert_eq!(g.num_vertices(), 0);
    assert_eq!(g.num_edges(), 0);
    let mut buf = Vec::new();
    io::write_graph(&g, &mut buf).unwrap();
    assert_eq!(io::read_graph(&buf[..]).unwrap(), g);
}
