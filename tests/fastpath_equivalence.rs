//! The fast/slow-path contract: the monomorphized `NoHooks` interpreter and
//! the fully-hooked interpreter must be **bit-identical** — same kernel
//! results, same cycle counts, same cache statistics — for every algorithm,
//! variant, and GPU preset.
//!
//! This is the test that makes the hot/slow-path split safe to maintain:
//! the fast path elides the tracing/fault/sanitizer hook sites entirely
//! (they are compiled out via the `Hooks` const generic), and tracing is an
//! append-only observer, so a hooked-but-tracing run must behave exactly
//! like an unhooked run. Any divergence — a skipped drain, a cache touch in
//! one path only, a counter updated differently — fails here on the exact
//! launch where the two paths split.

use ecl_core::primitives::{Atomic, Plain, Volatile, VolatileReadPlainWrite};
use ecl_core::{apsp, cc, gc, mis, mst, scc};
use ecl_graph::gen::rmat;
use ecl_graph::Csr;
use ecl_simt::{Gpu, GpuConfig, StoreVisibility};

/// FNV-1a over raw little-endian bytes: a bit-exact digest of kernel output.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

fn fnv32(words: &[u32]) -> u64 {
    let mut bytes = Vec::with_capacity(words.len() * 4);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    fnv(&bytes)
}

fn fnvb(flags: &[bool]) -> u64 {
    let bytes: Vec<u8> = flags.iter().map(|&b| b as u8).collect();
    fnv(&bytes)
}

/// Runs one algorithm × variant on a caller-provided GPU with the canonical
/// policy/visibility mapping (the same mapping the differential harness and
/// sweep matrix use); returns a bit-exact digest of the kernel result.
fn run_combo(gpu: &mut Gpu, algorithm: &str, race_free: bool, graph: &Csr) -> u64 {
    let deferred = StoreVisibility::DeferUntilYield;
    let immediate = StoreVisibility::Immediate;
    match (algorithm, race_free) {
        ("apsp", _) => fnv32(&apsp::run_traced(gpu, graph)),
        ("cc", false) => fnv32(&cc::run_traced::<Plain>(gpu, graph, deferred)),
        ("cc", true) => fnv32(&cc::run_traced::<Atomic>(gpu, graph, immediate)),
        ("gc", false) => fnv32(&gc::run_traced::<Volatile, Plain>(gpu, graph, deferred)),
        ("gc", true) => fnv32(&gc::run_traced::<Atomic, Atomic>(gpu, graph, immediate)),
        ("mis", false) => fnvb(&mis::run_traced::<VolatileReadPlainWrite>(
            gpu,
            graph,
            StoreVisibility::DeferBounded {
                every: 2,
                eighths: 4,
            },
        )),
        ("mis", true) => fnvb(&mis::run_traced::<Atomic>(gpu, graph, immediate)),
        ("mst", false) => fnvb(&mst::run_traced::<Volatile>(gpu, graph, deferred)),
        ("mst", true) => fnvb(&mst::run_traced::<Atomic>(gpu, graph, immediate)),
        ("scc", false) => fnv32(&scc::run_traced::<Plain>(gpu, graph, deferred)),
        ("scc", true) => fnv32(&scc::run_traced::<Atomic>(gpu, graph, immediate)),
        _ => unreachable!("unknown combo {algorithm}/{race_free}"),
    }
}

/// Runs the combo twice — once untraced (eligible for, and dispatched to,
/// the `NoHooks` fast path) and once with tracing armed (forced onto the
/// fully-hooked path) — and asserts bitwise equality of results, elapsed
/// cycles, and every launch's `KernelStats` (cache hits/misses, DRAM
/// transactions, access counters, steps).
fn assert_paths_identical(algorithm: &str, race_free: bool, cfg: &GpuConfig, graph: &Csr) {
    let label = format!(
        "{algorithm}/{} on {}",
        if race_free { "racefree" } else { "baseline" },
        cfg.name
    );

    let mut fast = Gpu::new(cfg.clone());
    fast.set_seed(0x5eed);
    assert!(
        fast.fast_path_eligible(),
        "{label}: fresh GPU must be fast-path eligible"
    );
    let fast_digest = run_combo(&mut fast, algorithm, race_free, graph);

    let mut hooked = Gpu::new(cfg.clone());
    hooked.set_seed(0x5eed);
    hooked.enable_tracing();
    assert!(
        !hooked.fast_path_eligible(),
        "{label}: tracing GPU must take the hooked path"
    );
    let hooked_digest = run_combo(&mut hooked, algorithm, race_free, graph);
    assert!(
        !hooked.trace().expect("trace armed").is_empty(),
        "{label}: the hooked run must actually have traced accesses"
    );

    assert_eq!(
        fast_digest, hooked_digest,
        "{label}: kernel results differ between fast and hooked paths"
    );
    assert_eq!(
        fast.elapsed_cycles(),
        hooked.elapsed_cycles(),
        "{label}: cycle counts differ between fast and hooked paths"
    );
    assert_eq!(
        fast.run_stats().launches.len(),
        hooked.run_stats().launches.len(),
        "{label}: launch counts differ"
    );
    for (i, (f, h)) in fast
        .run_stats()
        .launches
        .iter()
        .zip(hooked.run_stats().launches.iter())
        .enumerate()
    {
        assert_eq!(
            f, h,
            "{label}: launch #{i} ('{}') stats differ between paths",
            f.name
        );
    }
}

/// The unweighted test graph: a small scale-free (R-MAT) graph with enough
/// contention to exercise the racy hot paths on every preset.
fn unit_graph(symmetric: bool) -> Csr {
    rmat(256, 1024, 0.57, 0.19, 0.19, symmetric, 0x7a57)
}

fn weighted_graph() -> Csr {
    unit_graph(true).with_random_weights(1_000, 0xec1)
}

fn presets() -> Vec<GpuConfig> {
    GpuConfig::paper_gpus()
}

#[test]
fn cc_paths_identical_on_all_presets() {
    let g = unit_graph(true);
    for cfg in presets() {
        assert_paths_identical("cc", false, &cfg, &g);
        assert_paths_identical("cc", true, &cfg, &g);
    }
}

#[test]
fn gc_paths_identical_on_all_presets() {
    let g = unit_graph(true);
    for cfg in presets() {
        assert_paths_identical("gc", false, &cfg, &g);
        assert_paths_identical("gc", true, &cfg, &g);
    }
}

#[test]
fn mis_paths_identical_on_all_presets() {
    let g = unit_graph(true);
    for cfg in presets() {
        assert_paths_identical("mis", false, &cfg, &g);
        assert_paths_identical("mis", true, &cfg, &g);
    }
}

#[test]
fn mst_paths_identical_on_all_presets() {
    let g = weighted_graph();
    for cfg in presets() {
        assert_paths_identical("mst", false, &cfg, &g);
        assert_paths_identical("mst", true, &cfg, &g);
    }
}

#[test]
fn scc_paths_identical_on_all_presets() {
    let g = unit_graph(false);
    for cfg in presets() {
        assert_paths_identical("scc", false, &cfg, &g);
        assert_paths_identical("scc", true, &cfg, &g);
    }
}

#[test]
fn apsp_paths_identical_on_all_presets() {
    // APSP is O(n^3); a smaller weighted graph keeps 4 presets x 2 variants
    // fast. Both variants run the same (race-free) blocked Floyd-Warshall.
    let g = rmat(96, 384, 0.57, 0.19, 0.19, true, 0x7a57).with_random_weights(100, 0xec1);
    for cfg in presets() {
        assert_paths_identical("apsp", false, &cfg, &g);
        assert_paths_identical("apsp", true, &cfg, &g);
    }
}
