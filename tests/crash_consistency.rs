//! Crash-consistency harness: simulated power loss at **every** write
//! boundary of the two durable-writer protocols.
//!
//! The question this file answers is the one a kill -9 or a power cut asks
//! the state directory: *can recovery always finish the work, and does it
//! finish it to the same bytes?* The harness runs each workload once on a
//! clean in-memory disk to learn (a) the total number of mutating storage
//! operations `T` and (b) the reference report bytes `R`; then, for every
//! boundary `i in 0..T`, it re-runs the workload on a disk that dies at
//! operation `i` (un-fsynced data reduced to a seed-derived torn prefix),
//! power-cycles, and runs recovery on the healthy disk. After recovery:
//!
//! * no ACKed job is lost — if the admission path returned `Accepted`, the
//!   job record replays from the store;
//! * no cell is double-counted — every journal key appears exactly once;
//! * torn tails are tolerated — recovery is `Ok`, never a panic;
//! * the final report is **byte-identical** to the uninterrupted run's.
//!
//! Two workloads cover the two protocols:
//!
//! * **sweep** — the `all_tests --journal` shape: journal create/resume,
//!   one fsync'd cell record per cell, atomic report write. Cell *bodies*
//!   are measured once (a real `Matrix` sweep on the simulator) and
//!   replayed through the write path at every boundary, which is sound
//!   because the suite's determinism contract makes re-measurement
//!   byte-identical — re-measuring at every boundary would only re-verify
//!   what `fastpath_equivalence.rs` already pins, at ~30x the cost.
//! * **farm job** — the daemon shape: job store replay, `admit` (journal
//!   open, job record fsync, then ACK), per-cell journal records, atomic
//!   report, `done` record.
//!
//! `ECL_CRASH_FULL=1` (the CI `crash-consistency` job) widens the sweep to
//! both cell sets; the default is the 10-cell directed set so `cargo test`
//! stays fast. Every fault plan is derived from a fixed seed via SplitMix64,
//! so a failing boundary reproduces exactly. See DESIGN.md §12.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use ecl_bench::{
    set_cell_keys, table_from_records, BenchReport, FaultPlan, Journal, JournalWriter, Json,
    LoadError, Matrix, MeasuredTable, MemFs, Storage, SweepControl,
};
use ecl_farm::{admit, ActiveJob, Admission, JobSpec, JobStore};

/// Every fault plan in this file derives from this seed.
const SEED: u64 = 0x0c1f_c0de;
const JOB_ID: &str = "crash-j";
const STATE: &str = "/state";
const SWEEP_JOURNAL: &str = "/state/sweep.jsonl";
const SWEEP_REPORT: &str = "/state/REPORT-sweep.json";

/// The workload both protocols replay: one job spec plus its cell records
/// (key, ok, body) in canonical order, measured once per process.
struct Fixture {
    job_line: String,
    records: Vec<(String, bool, Json)>,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let full = std::env::var("ECL_CRASH_FULL").is_ok_and(|v| v == "1");
        let sets: &[&str] = if full {
            &["directed", "undirected"]
        } else {
            &["directed"]
        };
        let set_list = sets
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(",");
        let job_line = format!(
            r#"{{"schema":"ecl-farm/JOB/v1","id":"{JOB_ID}",
                "spec":{{"scale":0.05,"runs":1,"seed":1,"gpus":["TestTiny"],"sets":[{set_list}]}}}}"#
        );
        let spec = ecl_farm::parse_job(&job_line).unwrap();

        // Measure the cells once, journaling onto a clean in-memory disk;
        // the loaded journal IS the fixture, in canonical order (jobs=1).
        let (storage, _fs) = Storage::mem(FaultPlan::none(SEED));
        let path = PathBuf::from("/fixture.jsonl");
        let writer = JournalWriter::create_on(&storage, &path, &spec.sweep.identity()).unwrap();
        let matrix = Matrix::quick()
            .scale(0.05)
            .runs(1)
            .seed(1)
            .jobs(1)
            .gpus(spec.sweep.gpus.clone());
        let ctl = SweepControl {
            journal: Some(&writer),
            ..SweepControl::default()
        };
        for set in sets {
            match *set {
                "directed" => drop(matrix.run_directed_with(&ctl)),
                _ => drop(matrix.run_undirected_with(&ctl)),
            }
        }
        let journal = Journal::load_on(&storage, &path).unwrap();
        let records: Vec<(String, bool, Json)> = journal
            .records
            .into_iter()
            .map(|r| (r.key, r.ok, r.body))
            .collect();
        let keys: Vec<&str> = records.iter().map(|(k, _, _)| k.as_str()).collect();
        let canonical = spec.sweep.cell_keys();
        assert_eq!(keys, canonical, "fixture order is the canonical order");
        Fixture { job_line, records }
    })
}

fn spec(fx: &Fixture) -> JobSpec {
    ecl_farm::parse_job(&fx.job_line).unwrap()
}

/// Renders the report exactly the way `ActiveJob::finalize` and the
/// `all_tests` export path do: tables rebuilt from records in canonical
/// cell order, so the bytes depend only on what was measured.
fn render_report(
    spec: &JobSpec,
    records: &HashMap<String, (bool, Json)>,
) -> Result<Vec<u8>, String> {
    let e = spec.sweep.experiment();
    let empty = MeasuredTable::default();
    let mut undirected = None;
    let mut directed = None;
    for set in &spec.sweep.sets {
        let keys = set_cell_keys(&e, set);
        let table = table_from_records(records, &keys)?;
        match set.as_str() {
            "undirected" => undirected = Some(table),
            _ => directed = Some(table),
        }
    }
    let report = BenchReport {
        experiment: &e,
        undirected: undirected.as_ref().unwrap_or(&empty),
        directed: directed.as_ref().unwrap_or(&empty),
        timing: None,
    };
    Ok(report.render().into_bytes())
}

/// One attempt at the journaled-sweep protocol (the `all_tests --journal`
/// shape): open or resume the journal, append every missing cell, write the
/// report atomically. Any storage fault surfaces as `Err` — a panic anywhere
/// in here is itself a harness failure.
fn run_sweep(storage: &Storage, fx: &Fixture) -> Result<Vec<u8>, String> {
    let spec = spec(fx);
    let identity = spec.sweep.identity();
    let path = Path::new(SWEEP_JOURNAL);
    storage
        .create_dir_all(Path::new(STATE))
        .map_err(|e| e.to_string())?;
    let mut have: HashMap<String, (bool, Json)> = HashMap::new();
    let writer = if storage.exists(path) {
        match Journal::load_on(storage, path) {
            Ok(j) => {
                j.check_identity(&identity)?;
                for r in j.records {
                    if let Some((_, prev)) = have.get(&r.key) {
                        if prev != &r.body {
                            return Err(format!("cell '{}' double-counted divergently", r.key));
                        }
                    }
                    have.insert(r.key, (r.ok, r.body));
                }
                JournalWriter::append_to_on(storage, path).map_err(|e| e.to_string())?
            }
            // The header is line one: no intact header proves no cell record
            // survived, so recreating from the spec loses nothing.
            Err(LoadError::NoHeader) => {
                JournalWriter::create_on(storage, path, &identity).map_err(|e| e.to_string())?
            }
            Err(e) => return Err(e.to_string()),
        }
    } else {
        JournalWriter::create_on(storage, path, &identity).map_err(|e| e.to_string())?
    };
    for (key, ok, body) in &fx.records {
        if have.contains_key(key) {
            continue;
        }
        writer
            .append_cell(key, *ok, body)
            .map_err(|e| e.to_string())?;
        have.insert(key.clone(), (*ok, body.clone()));
    }
    let bytes = render_report(&spec, &have)?;
    storage
        .write_atomic(Path::new(SWEEP_REPORT), &bytes)
        .map_err(|e| e.to_string())?;
    Ok(bytes)
}

/// Runs the fixture job's remaining cells to completion and records done —
/// the tail of one daemon lifetime for one job.
fn finish_job(active: &mut ActiveJob, store: &mut JobStore, fx: &Fixture) -> Result<(), String> {
    for (key, ok, body) in &fx.records {
        if !active.remaining.contains(key) {
            continue;
        }
        active.record_cell(key, *ok, body.clone())?;
    }
    active.finalize(Path::new(STATE))?;
    store
        .record_done(&active.spec.id, active.failures())
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// One daemon lifetime: replay the job store, resume any unfinished ACKed
/// job, and if the fixture job is unknown, admit it fresh. `acked` flips to
/// `true` at the exact moment the real daemon would emit the `ACK/v1` line
/// (admission returned `Accepted` — the job record's fsync succeeded).
fn run_daemon(storage: &Storage, fx: &Fixture, acked: &mut bool) -> Result<(), String> {
    let state = Path::new(STATE);
    let (mut store, replayed) = JobStore::open_on(storage, state).map_err(|e| e.to_string())?;
    let mut known = false;
    for sj in replayed {
        if sj.spec.id != JOB_ID {
            continue;
        }
        known = true;
        if sj.done {
            continue;
        }
        let mut active = ActiveJob::open_on(storage, state, sj.spec)?;
        finish_job(&mut active, &mut store, fx)?;
    }
    if !known {
        match admit(
            storage,
            state,
            &fx.job_line,
            false,
            &mut store,
            |_| false,
            |_| None,
        ) {
            Admission::Rejected { reason, .. } => return Err(format!("NACK: {reason}")),
            Admission::Accepted { mut active, .. } => {
                *acked = true;
                finish_job(&mut active, &mut store, fx)?;
            }
        }
    }
    Ok(())
}

/// Asserts the journal at `path` counts every fixture cell exactly once.
fn assert_no_double_counting(storage: &Storage, path: &Path, fx: &Fixture, boundary: u64) {
    let journal = Journal::load_on(storage, path)
        .unwrap_or_else(|e| panic!("boundary {boundary}: recovered journal unloadable: {e}"));
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for r in &journal.records {
        *seen.entry(r.key.as_str()).or_default() += 1;
    }
    for (key, _, _) in &fx.records {
        assert_eq!(
            seen.get(key.as_str()),
            Some(&1),
            "boundary {boundary}: cell '{key}' counted {:?} times",
            seen.get(key.as_str()).unwrap_or(&0)
        );
    }
    assert_eq!(
        journal.records.len(),
        fx.records.len(),
        "boundary {boundary}: journal holds records beyond the sweep's cells"
    );
}

/// The uninterrupted reference run: total mutating-op count and the bytes
/// the workload leaves at `report`.
fn reference(
    fx: &Fixture,
    report: &Path,
    run: impl Fn(&Storage, &Fixture) -> Result<(), String>,
) -> (u64, Vec<u8>) {
    let (storage, fs) = Storage::mem(FaultPlan::none(SEED));
    run(&storage, fx).expect("uninterrupted run succeeds");
    let bytes = fs
        .peek(report)
        .expect("uninterrupted run writes the report");
    (fs.ops(), bytes)
}

#[test]
fn sweep_survives_power_loss_at_every_write_boundary() {
    let fx = fixture();
    let report = Path::new(SWEEP_REPORT);
    let (total, reference_bytes) = reference(fx, report, |s, fx| run_sweep(s, fx).map(|_| ()));
    assert!(total > 0);

    for i in 0..total {
        let (storage, fs) = Storage::mem(FaultPlan::power_loss_at(SEED, i));
        let crashed = run_sweep(&storage, fx);
        assert!(
            crashed.is_err(),
            "boundary {i}: power loss must surface as a typed error"
        );
        fs.power_cycle();

        let recovered = run_sweep(&storage, fx)
            .unwrap_or_else(|e| panic!("boundary {i}: recovery failed: {e}"));
        assert_eq!(
            recovered, reference_bytes,
            "boundary {i}: recovered report differs from the uninterrupted run"
        );
        assert_eq!(
            fs.peek(report).as_deref(),
            Some(&reference_bytes[..]),
            "boundary {i}: on-disk report differs"
        );
        assert_no_double_counting(&storage, Path::new(SWEEP_JOURNAL), fx, i);

        // A third lifetime finds everything journaled and merely rewrites
        // the same report — recovery is idempotent.
        run_sweep(&storage, fx).unwrap_or_else(|e| panic!("boundary {i}: re-run failed: {e}"));
        assert_eq!(fs.peek(report).as_deref(), Some(&reference_bytes[..]));
    }
}

#[test]
fn farm_job_survives_power_loss_at_every_write_boundary() {
    let fx = fixture();
    let state = Path::new(STATE);
    let report = ecl_farm::recovery::report_path(state, JOB_ID);
    let journal = ecl_farm::recovery::journal_path(state, JOB_ID);
    let (total, reference_bytes) = reference(fx, &report, |s, fx| {
        let mut acked = false;
        run_daemon(s, fx, &mut acked)?;
        assert!(acked, "uninterrupted run ACKs the job");
        Ok(())
    });

    for i in 0..total {
        let (storage, fs) = Storage::mem(FaultPlan::power_loss_at(SEED, i));
        let mut acked = false;
        let crashed = run_daemon(&storage, fx, &mut acked);
        assert!(
            crashed.is_err(),
            "boundary {i}: power loss must surface as a typed error"
        );
        fs.power_cycle();

        // The ACK audit: an emitted ACK promises the job record's fsync
        // succeeded, so the record must replay after any later power cut.
        if acked {
            let (_store, replayed) = JobStore::open_on(&storage, state)
                .unwrap_or_else(|e| panic!("boundary {i}: store replay failed: {e}"));
            assert!(
                replayed.iter().any(|j| j.spec.id == JOB_ID),
                "boundary {i}: ACKed job lost by the crash"
            );
        }

        let mut resumed_ack = false;
        run_daemon(&storage, fx, &mut resumed_ack)
            .unwrap_or_else(|e| panic!("boundary {i}: recovery failed: {e}"));
        assert_eq!(
            fs.peek(&report).as_deref(),
            Some(&reference_bytes[..]),
            "boundary {i}: recovered report differs from the uninterrupted run"
        );
        assert_no_double_counting(&storage, &journal, fx, i);

        // The store must now say done: a third lifetime neither re-admits
        // nor re-runs, and the report bytes stay put.
        let mut third_ack = false;
        run_daemon(&storage, fx, &mut third_ack)
            .unwrap_or_else(|e| panic!("boundary {i}: third lifetime failed: {e}"));
        assert!(!third_ack, "boundary {i}: finished job re-admitted");
        let (_store, replayed) = JobStore::open_on(&storage, state).unwrap();
        let job = replayed.iter().find(|j| j.spec.id == JOB_ID);
        assert!(
            job.is_some_and(|j| j.done),
            "boundary {i}: job not marked done after recovery"
        );
        assert_eq!(fs.peek(&report).as_deref(), Some(&reference_bytes[..]));
    }
}

/// Full snapshot of the simulated disk, for determinism comparisons.
fn disk_snapshot(fs: &Arc<MemFs>) -> Vec<(PathBuf, Vec<u8>)> {
    let mut out: Vec<(PathBuf, Vec<u8>)> = fs
        .paths()
        .into_iter()
        .map(|p| {
            let bytes = fs.peek(&p).unwrap_or_default();
            (p, bytes)
        })
        .collect();
    out.sort();
    out
}

#[test]
fn enospc_mid_sweep_is_typed_and_seed_deterministic() {
    let fx = fixture();
    let run = || {
        let (storage, fs) = Storage::mem(FaultPlan {
            seed: SEED,
            disk_capacity: Some(700),
            ..FaultPlan::none(SEED)
        });
        let err = run_sweep(&storage, fx).expect_err("the sweep must hit ENOSPC");
        (err, disk_snapshot(&fs))
    };
    let (e1, s1) = run();
    let (e2, s2) = run();
    assert!(e1.contains("ENOSPC"), "typed reason, got: {e1}");
    assert_eq!(e1, e2, "same plan, same typed outcome");
    assert_eq!(s1, s2, "same plan, same surviving bytes");
}

#[test]
fn enospc_mid_farm_job_degrades_without_losing_the_store() {
    let fx = fixture();
    let (storage, _fs) = Storage::mem(FaultPlan {
        seed: SEED,
        disk_capacity: Some(2_000),
        ..FaultPlan::none(SEED)
    });
    let mut acked = false;
    let err = run_daemon(&storage, fx, &mut acked).expect_err("the job must hit ENOSPC");
    assert!(err.contains("ENOSPC"), "typed reason, got: {err}");
    // Whatever was fsync'd before the device filled still replays — the
    // full device degraded the run, it did not corrupt the store.
    let (_store, replayed) = JobStore::open_on(&storage, Path::new(STATE))
        .expect("a full device must not corrupt the store");
    if acked {
        assert!(replayed.iter().any(|j| j.spec.id == JOB_ID));
    }
}

#[test]
fn eio_during_recovery_load_is_a_typed_error() {
    let fx = fixture();
    // The writing pass performs no reads, so read #0 is recovery's journal
    // load: the plan arms EIO precisely there.
    let (storage, _fs) = Storage::mem(FaultPlan {
        seed: SEED,
        fail_read: Some(0),
        ..FaultPlan::none(SEED)
    });
    run_sweep(&storage, fx).expect("the writing pass performs no reads");
    let err = run_sweep(&storage, fx).expect_err("recovery's load must hit EIO");
    assert!(err.contains("EIO"), "typed reason, got: {err}");

    // Same seed, same plan: the error reproduces verbatim.
    let (storage2, _fs2) = Storage::mem(FaultPlan {
        seed: SEED,
        fail_read: Some(0),
        ..FaultPlan::none(SEED)
    });
    run_sweep(&storage2, fx).unwrap();
    assert_eq!(err, run_sweep(&storage2, fx).unwrap_err());
}
