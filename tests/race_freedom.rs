//! The paper's §IV claim, end to end: every baseline code except APSP
//! contains data races; every converted code is race-free. Verified with
//! the dynamic detector over full traces of real runs — plus the resilient
//! runner's guarantee that racy and converted codes alike survive fault
//! injection without panicking the harness.

use ecl_core::primitives::{Atomic, Plain, Volatile, VolatileReadPlainWrite};
use ecl_core::suite::{run_resilient, Algorithm, RetryPolicy, RunOutcome, Variant};
use ecl_core::{cc, gc, mis, mst, scc, SimOptions};
use ecl_racecheck::{check_races, check_races_hb};
use ecl_simt::{FaultPlan, Gpu, GpuConfig, MemLevel, StoreVisibility};

fn traced_gpu() -> Gpu {
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    gpu.enable_tracing();
    gpu
}

fn undirected() -> ecl_graph::Csr {
    ecl_graph::gen::rmat(192, 768, 0.5, 0.2, 0.2, true, 11)
}

fn directed() -> ecl_graph::Csr {
    ecl_graph::gen::toroid_wedge(8, 8)
}

#[test]
fn baseline_cc_races_racefree_does_not() {
    let g = undirected();
    let mut gpu = traced_gpu();
    cc::run_traced::<Plain>(&mut gpu, &g, StoreVisibility::DeferUntilYield);
    assert!(!check_races(&gpu).is_empty(), "baseline CC must race");

    let mut gpu = traced_gpu();
    cc::run_traced::<Atomic>(&mut gpu, &g, StoreVisibility::Immediate);
    assert!(check_races(&gpu).is_empty(), "race-free CC must be clean");
}

#[test]
fn baseline_mis_races_racefree_does_not() {
    let g = undirected();
    let mut gpu = traced_gpu();
    mis::run_traced::<VolatileReadPlainWrite>(
        &mut gpu,
        &g,
        StoreVisibility::DeferBounded {
            every: 2,
            eighths: 4,
        },
    );
    assert!(!check_races(&gpu).is_empty(), "baseline MIS must race");

    let mut gpu = traced_gpu();
    mis::run_traced::<Atomic>(&mut gpu, &g, StoreVisibility::Immediate);
    assert!(check_races(&gpu).is_empty(), "race-free MIS must be clean");
}

#[test]
fn baseline_gc_races_racefree_does_not() {
    let g = undirected();
    // GC has no run_traced helper; drive the suite-level kernels through a
    // traced GPU by replicating the policy pair used by the suite.
    let mut gpu = traced_gpu();
    gc::run_traced::<Volatile, Plain>(&mut gpu, &g, StoreVisibility::DeferUntilYield);
    assert!(!check_races(&gpu).is_empty(), "baseline GC must race");

    let mut gpu = traced_gpu();
    gc::run_traced::<Atomic, Atomic>(&mut gpu, &g, StoreVisibility::Immediate);
    assert!(check_races(&gpu).is_empty(), "race-free GC must be clean");
}

#[test]
fn baseline_mst_races_racefree_does_not() {
    let g = undirected().with_random_weights(100, 1);
    let mut gpu = traced_gpu();
    mst::run_traced::<Volatile>(&mut gpu, &g, StoreVisibility::DeferUntilYield);
    assert!(!check_races(&gpu).is_empty(), "baseline MST must race");

    let mut gpu = traced_gpu();
    mst::run_traced::<Atomic>(&mut gpu, &g, StoreVisibility::Immediate);
    assert!(check_races(&gpu).is_empty(), "race-free MST must be clean");
}

#[test]
fn epoch_and_happens_before_detectors_agree_on_ecl_codes() {
    // The ECL codes use only *relaxed* atomics, which establish no
    // happens-before edges — so the precise vector-clock detector finds
    // races exactly where the epoch detector does, on both variants.
    let g = undirected();
    let mut gpu = traced_gpu();
    cc::run_traced::<Plain>(&mut gpu, &g, StoreVisibility::DeferUntilYield);
    assert_eq!(
        check_races(&gpu).is_empty(),
        check_races_hb(&gpu).is_empty()
    );
    assert!(!check_races_hb(&gpu).is_empty());

    let mut gpu = traced_gpu();
    cc::run_traced::<Atomic>(&mut gpu, &g, StoreVisibility::Immediate);
    assert!(check_races_hb(&gpu).is_empty());

    let mut gpu = traced_gpu();
    mis::run_traced::<Atomic>(&mut gpu, &g, StoreVisibility::Immediate);
    assert!(check_races_hb(&gpu).is_empty());
}

#[test]
fn resilient_runner_handles_both_variants_of_every_code() {
    // Without faults, every combination must succeed on the first attempt —
    // the resilient wrapper adds recovery, not noise.
    let und = undirected();
    let dir = directed();
    let cfg = GpuConfig::test_tiny();
    let clean = SimOptions::default();
    let policy = RetryPolicy::default();
    for alg in [
        Algorithm::Apsp,
        Algorithm::Cc,
        Algorithm::Gc,
        Algorithm::Mis,
        Algorithm::Mst,
        Algorithm::Scc,
    ] {
        let g = if alg.directed() { &dir } else { &und };
        for variant in [Variant::Baseline, Variant::RaceFree] {
            let outcome = run_resilient(alg, variant, g, &cfg, 1, &clean, &policy);
            assert!(
                matches!(outcome, RunOutcome::Ok(_)),
                "{alg} {variant} without faults: {outcome:?}"
            );
        }
    }
}

#[test]
fn resilient_runner_contains_aggressive_faults() {
    // With heavy bit-flipping, racy baseline codes may produce SDC, crash on
    // corrupted indices, or still succeed — but the harness itself must
    // never panic, and any returned result must have passed verification.
    let g = undirected();
    let opts = SimOptions {
        watchdog: Some(20_000_000),
        fault: Some(FaultPlan::new(0xbad).with_bitflips(0.001, MemLevel::L2)),
        deadline: None,
        mode_table: None,
    };
    let policy = RetryPolicy {
        max_attempts: 2,
        seed_stride: 1,
    };
    for alg in [Algorithm::Cc, Algorithm::Mis] {
        for variant in [Variant::Baseline, Variant::RaceFree] {
            let outcome =
                run_resilient(alg, variant, &g, &GpuConfig::test_tiny(), 3, &opts, &policy);
            if let Some(result) = outcome.result() {
                assert!(result.valid, "{alg} {variant} returned an invalid result");
            }
        }
    }
}

#[test]
fn baseline_scc_races_racefree_does_not() {
    let g = directed();
    let mut gpu = traced_gpu();
    scc::run_traced::<Plain>(&mut gpu, &g, StoreVisibility::DeferUntilYield);
    assert!(!check_races(&gpu).is_empty(), "baseline SCC must race");

    let mut gpu = traced_gpu();
    scc::run_traced::<Atomic>(&mut gpu, &g, StoreVisibility::Immediate);
    assert!(check_races(&gpu).is_empty(), "race-free SCC must be clean");
}
