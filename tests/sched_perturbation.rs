//! Schedule-perturbation stress: every algorithm x variant, driven through
//! the simulator under 32 distinct scheduler seeds, must reach an identical
//! convergence fixpoint. `cross_variant.rs` samples three seeds; this is the
//! wide sweep — 32 genuinely different warp interleavings per combo — that
//! backs the paper's claim that the baselines' races are *benign*: they
//! reorder work, they never change the answer.

use ecl_core::suite::{run_algorithm, Algorithm, Variant};
use ecl_graph::inputs::GraphInput;
use ecl_simt::GpuConfig;

/// 32 scheduler seeds spread across the u64 space (golden-ratio stride, so
/// no two low words resemble each other).
fn seeds() -> [u64; 32] {
    let mut s = [0u64; 32];
    for (i, slot) in s.iter_mut().enumerate() {
        *slot = (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    }
    s
}

/// Runs one combo under every seed and checks all runs are valid and agree
/// on the digest (and quality, where the digest pins the full solution).
fn check(alg: Algorithm, variant: Variant, g: &ecl_graph::Csr, compare_quality: bool) {
    let gpu = GpuConfig::test_tiny();
    let mut reference: Option<(u64, f64)> = None;
    for seed in seeds() {
        let r = run_algorithm(alg, variant, g, &gpu, seed);
        assert!(r.valid, "{alg} {variant} seed {seed:#x} invalid");
        match reference {
            None => reference = Some((r.solution_digest, r.quality)),
            Some((digest, quality)) => {
                assert_eq!(
                    digest, r.solution_digest,
                    "{alg} {variant} seed {seed:#x}: fixpoint changed"
                );
                if compare_quality {
                    assert_eq!(
                        quality, r.quality,
                        "{alg} {variant} seed {seed:#x}: quality changed"
                    );
                }
            }
        }
    }
}

const VARIANTS: [Variant; 2] = [Variant::Baseline, Variant::RaceFree];

#[test]
fn cc_fixpoint_is_seed_invariant() {
    let g = GraphInput::by_name("internet").unwrap().build(0.1, 3);
    for variant in VARIANTS {
        check(Algorithm::Cc, variant, &g, true);
    }
}

#[test]
fn gc_fixpoint_is_seed_invariant() {
    // The GC digest hashes validity (exact colors are timing-dependent);
    // color counts may legitimately differ across schedules, so quality is
    // not compared.
    let g = GraphInput::by_name("citationCiteseer")
        .unwrap()
        .build(0.1, 3);
    for variant in VARIANTS {
        check(Algorithm::Gc, variant, &g, false);
    }
}

#[test]
fn mis_fixpoint_is_seed_invariant() {
    let g = GraphInput::by_name("rmat16.sym").unwrap().build(0.1, 3);
    for variant in VARIANTS {
        check(Algorithm::Mis, variant, &g, true);
    }
}

#[test]
fn mst_fixpoint_is_seed_invariant() {
    let g = GraphInput::by_name("2d-2e20.sym").unwrap().build(0.1, 3);
    for variant in VARIANTS {
        check(Algorithm::Mst, variant, &g, true);
    }
}

#[test]
fn scc_fixpoint_is_seed_invariant() {
    let g = GraphInput::by_name("web-Google").unwrap().build(0.1, 3);
    for variant in VARIANTS {
        check(Algorithm::Scc, variant, &g, true);
    }
}

#[test]
fn apsp_fixpoint_is_seed_invariant() {
    let g = ecl_graph::gen::rmat(96, 400, 0.57, 0.19, 0.19, true, 8).with_random_weights(30, 5);
    for variant in VARIANTS {
        check(Algorithm::Apsp, variant, &g, true);
    }
}
