//! Smoke tests of the top-level `ecl_suite` public API surface.

use ecl_suite::prelude::*;

#[test]
fn prelude_covers_the_quickstart_flow() {
    let graph = GraphInput::by_name("rmat16.sym").unwrap().build(0.1, 1);
    let gpu = GpuConfig::rtx2070_super();
    let base = run_algorithm(Algorithm::Cc, Variant::Baseline, &graph, &gpu, 1);
    let free = run_algorithm(Algorithm::Cc, Variant::RaceFree, &graph, &gpu, 1);
    assert!(base.valid && free.valid);
    assert_eq!(base.solution_digest, free.solution_digest);
    assert!(base.cycles < free.cycles, "race-free CC must be slower");
}

#[test]
fn prelude_exposes_race_checking() {
    let mut gpu = ecl_suite::simt::Gpu::new(GpuConfig::test_tiny());
    gpu.enable_tracing();
    let cell = gpu.alloc::<u32>(1);
    gpu.launch(
        ecl_suite::simt::LaunchConfig::for_items(16),
        ecl_suite::simt::ForEach::new("racy", 16, move |ctx, _| {
            let v = ctx.load(cell.at(0));
            ctx.store(cell.at(0), v + 1);
        }),
    );
    let reports: Vec<RaceReport> = check_races(&gpu);
    assert!(!reports.is_empty());
}

#[test]
fn crate_reexports_resolve() {
    // Each sub-crate is reachable through the facade.
    let _ = ecl_suite::graph::gen::grid2d_torus(4, 4);
    let _ = ecl_suite::simt::GpuConfig::paper_gpus();
    let _ = ecl_suite::bench::Matrix::quick();
    assert_eq!(ecl_suite::core::suite::Algorithm::Mis.name(), "MIS");
}

#[test]
fn csr_reexport_builds() {
    let g: Csr = ecl_suite::graph::CsrBuilder::new(3).build();
    assert_eq!(g.num_vertices(), 3);
}
