//! Tier-1 closure of the static-analysis story: the static access-contract
//! checker, the dynamic race detector, and the in-simulator contract
//! sanitizer must tell one consistent story over every algorithm × variant.
//!
//! Three agreements are enforced on the canonical small inputs:
//!
//! 1. the **static checker** proves every race-free variant clean and
//!    classifies 100% of the baselines' conflicts as benign;
//! 2. the **differential harness** finds the statically-predicted conflict
//!    set and the dynamically-witnessed race set identical, kernel by kernel
//!    and buffer by buffer (no contract lies, no contract over-approximates);
//! 3. the **sanitizer** completes full runs of every variant with contract
//!    enforcement armed — every dynamic access falls inside a declared
//!    footprint.

use ecl_analyze::{
    check_suite, default_inputs, diff_suite, launched_kernels_have_contracts, sanitize_run,
    suite_passes,
};
use ecl_core::suite::{Algorithm, Variant};
use ecl_simt::GpuConfig;

#[test]
fn static_checker_passes_the_whole_suite() {
    let reports = check_suite();
    assert_eq!(reports.len(), 12, "six codes x two variants");
    assert!(suite_passes(&reports));
    for r in &reports {
        match r.variant {
            Variant::RaceFree => assert!(
                r.is_race_free(),
                "{} race-free must be proven clean: {:?}",
                r.algorithm,
                r.conflicts
            ),
            Variant::Baseline => assert!(
                r.fully_classified(),
                "{} baseline has unclassified conflicts: {:?}",
                r.algorithm,
                r.unclassified()
            ),
        }
    }
}

#[test]
fn static_and_dynamic_race_views_coincide() {
    let cfg = GpuConfig::test_tiny();
    let outcomes = diff_suite(&cfg, &[1, 2]);
    assert_eq!(outcomes.len(), 12);
    for o in &outcomes {
        assert!(
            o.mismatches.is_empty(),
            "{} {}: {}",
            o.algorithm,
            o.variant,
            o.mismatches
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
        assert!(
            launched_kernels_have_contracts(o),
            "{} {} launched a kernel without a contract",
            o.algorithm,
            o.variant
        );
        match o.variant {
            // Race-free variants witness nothing, matching the empty
            // prediction.
            Variant::RaceFree => assert!(
                o.dynamic_races.is_empty(),
                "{} race-free must run clean: {:?}",
                o.algorithm,
                o.dynamic_races
            ),
            // Every racy baseline actually exercises its races on the
            // canonical inputs (APSP is race-free by construction).
            Variant::Baseline if o.algorithm != Algorithm::Apsp => assert!(
                !o.dynamic_races.is_empty(),
                "{} baseline witnessed no races on the canonical inputs",
                o.algorithm
            ),
            Variant::Baseline => assert!(o.dynamic_races.is_empty()),
        }
    }
}

#[test]
fn sanitizer_armed_runs_complete_for_every_variant() {
    let cfg = GpuConfig::test_tiny();
    for alg in Algorithm::ALL {
        let graph = &default_inputs(alg)[0];
        for variant in [Variant::Baseline, Variant::RaceFree] {
            if let Err(e) = sanitize_run(alg, variant, graph, &cfg, 1) {
                panic!("{alg} {variant} violated its contracts: {e}");
            }
        }
    }
}
