//! Small-scale checks that the simulator reproduces the *shape* of the
//! paper's results — who wins, roughly by how much, and the Fig. 6 trend.
//! The full-scale reproduction lives in the `paper_tables` bench; these are
//! quick smoke versions that run under `cargo test`.

use ecl_bench::{geomean, Matrix};
use ecl_core::suite::Algorithm;
use ecl_graph::inputs::GraphInput;
use ecl_graph::props::properties;
use ecl_simt::GpuConfig;

/// A handful of representative inputs at small scale.
fn measure_at(alg: Algorithm, gpu: &GpuConfig, inputs: &[&str], scale: f64) -> f64 {
    let matrix = Matrix::quick().runs(1);
    let mut speedups = Vec::new();
    for name in inputs {
        let input = GraphInput::by_name(name).expect("catalog entry");
        let g = input.build(scale, 1);
        let cell = matrix.measure(input.name(), alg, &g, gpu, properties(&g));
        speedups.push(cell.speedup);
    }
    geomean(&speedups)
}

fn measure(alg: Algorithm, gpu: &GpuConfig, inputs: &[&str]) -> f64 {
    measure_at(alg, gpu, inputs, 0.12)
}

const UNDIRECTED: [&str; 3] = ["rmat16.sym", "citationCiteseer", "2d-2e20.sym"];
const DIRECTED: [&str; 3] = ["toroid-hex", "web-Google", "star"];

#[test]
fn racefree_cc_is_substantially_slower() {
    for gpu in GpuConfig::paper_gpus() {
        let g = measure(Algorithm::Cc, &gpu, &UNDIRECTED);
        assert!(g < 0.95, "CC on {}: geomean {g:.2} not slower", gpu.name);
        assert!(
            g > 0.2,
            "CC on {}: geomean {g:.2} implausibly slow",
            gpu.name
        );
    }
}

#[test]
fn racefree_gc_is_near_parity() {
    for gpu in GpuConfig::paper_gpus() {
        let g = measure(Algorithm::Gc, &gpu, &UNDIRECTED);
        assert!(
            (0.90..=1.05).contains(&g),
            "GC on {}: geomean {g:.2}",
            gpu.name
        );
    }
}

#[test]
fn racefree_mst_is_slightly_slower() {
    for gpu in GpuConfig::paper_gpus() {
        let g = measure(Algorithm::Mst, &gpu, &UNDIRECTED);
        assert!(
            (0.85..=1.02).contains(&g),
            "MST on {}: geomean {g:.2}",
            gpu.name
        );
    }
}

#[test]
fn racefree_mis_is_faster() {
    // The headline finding: 5-11% geomean speedup on every GPU. The effect
    // comes from convergence rounds, so measure at a scale with enough of
    // them, on the inputs where the paper's own speedups are largest
    // (amazon0601 1.28-1.49, as-skitter 1.70-2.05).
    let inputs = ["amazon0601", "as-skitter", "rmat16.sym"];
    for gpu in GpuConfig::paper_gpus() {
        let g = measure_at(Algorithm::Mis, &gpu, &inputs, 0.3);
        assert!(
            g > 1.0,
            "MIS on {}: geomean {g:.2} should exceed 1",
            gpu.name
        );
        assert!(
            g < 1.6,
            "MIS on {}: geomean {g:.2} implausibly fast",
            gpu.name
        );
    }
}

#[test]
fn racefree_scc_is_slower() {
    for gpu in GpuConfig::paper_gpus() {
        let g = measure(Algorithm::Scc, &gpu, &DIRECTED);
        assert!(g < 1.0, "SCC on {}: geomean {g:.2} not slower", gpu.name);
    }
}

#[test]
fn fig6_trend_newer_gpus_lose_more() {
    // Paper §VI-C / Fig. 6: the slowdown grows on newer GPUs. The 2070
    // Super shows the least CC loss; the 4090 the most.
    let cc_2070 = measure(Algorithm::Cc, &GpuConfig::rtx2070_super(), &UNDIRECTED);
    let cc_titan = measure(Algorithm::Cc, &GpuConfig::titan_v(), &UNDIRECTED);
    let cc_4090 = measure(Algorithm::Cc, &GpuConfig::rtx4090(), &UNDIRECTED);
    assert!(
        cc_2070 > cc_titan && cc_titan > cc_4090,
        "CC trend violated: 2070 {cc_2070:.2}, TitanV {cc_titan:.2}, 4090 {cc_4090:.2}"
    );
    let scc_2070 = measure(Algorithm::Scc, &GpuConfig::rtx2070_super(), &DIRECTED);
    let scc_a100 = measure(Algorithm::Scc, &GpuConfig::a100(), &DIRECTED);
    assert!(
        scc_2070 > scc_a100,
        "SCC trend violated: 2070 {scc_2070:.2} vs A100 {scc_a100:.2}"
    );
}
