//! Cross-backend differential harness: the native host-thread backend must
//! reach the same convergence fixpoints as the GPU simulator — not bit-equal
//! traces, but identical solution digests — for all 12 algorithm×variant
//! combos on the full scaled input catalog, and must hold the
//! algorithm-specific invariants under many genuinely perturbed schedules
//! (different thread counts and partition-rotation seeds).

use ecl_core::suite::{run_algorithm, run_native, Algorithm, Variant};
use ecl_core::{apsp, scc};
use ecl_graph::inputs::{directed_catalog, undirected_catalog};
use ecl_native::{Baseline, RaceFree};
use ecl_simt::GpuConfig;

const SCALE: f64 = 0.1;
const GRAPH_SEED: u64 = 3;

/// ≥16 distinct (threads, schedule-seed) pairs per combo. Thread counts
/// cover the serial case, odd counts, and oversubscription; seeds rotate
/// the blocked partition so the interleavings genuinely differ.
const PERTURBATIONS: [(usize, u64); 16] = [
    (1, 1),
    (2, 1),
    (3, 1),
    (4, 1),
    (5, 2),
    (6, 3),
    (7, 5),
    (8, 8),
    (2, 13),
    (3, 21),
    (4, 34),
    (5, 55),
    (6, 89),
    (8, 144),
    (12, 233),
    (16, 377),
];

const VARIANTS: [Variant; 2] = [Variant::Baseline, Variant::RaceFree];

/// One sim run and one native run must agree on the solution digest (for
/// GC the digest hashes validity, so equality means both colored properly).
fn check_combo(alg: Algorithm, variant: Variant, g: &ecl_graph::Csr, name: &str) {
    let sim = run_algorithm(alg, variant, g, &GpuConfig::test_tiny(), 1);
    assert!(sim.valid, "{alg} {variant} sim run invalid on {name}");
    let native = run_native(alg, variant, g, 4, 1);
    assert!(native.valid, "{alg} {variant} native run invalid on {name}");
    assert_eq!(
        sim.solution_digest, native.solution_digest,
        "{alg} {variant} on {name}: native fixpoint differs from simulator"
    );
}

#[test]
fn undirected_matrix_fixpoints_match_simulator() {
    for input in undirected_catalog() {
        let g = input.build(SCALE, GRAPH_SEED);
        for alg in Algorithm::UNDIRECTED {
            for variant in VARIANTS {
                check_combo(alg, variant, &g, input.name());
            }
        }
    }
}

#[test]
fn directed_matrix_fixpoints_match_simulator() {
    for input in directed_catalog() {
        let g = input.build(SCALE, GRAPH_SEED);
        for variant in VARIANTS {
            check_combo(Algorithm::Scc, variant, &g, input.name());
        }
    }
}

#[test]
fn apsp_fixpoints_match_simulator() {
    // APSP is dense O(n³); exercise it on small multi-tile instances rather
    // than the full catalog (same policy as the simulator's own tests).
    let graphs = [
        (
            "torus",
            ecl_graph::gen::grid2d_torus(8, 8).with_random_weights(50, 2),
        ),
        (
            "rmat",
            ecl_graph::gen::rmat(96, 400, 0.57, 0.19, 0.19, true, 8).with_random_weights(30, 5),
        ),
        (
            "disconnected",
            ecl_graph::gen::random_uniform(70, 90, true, 4).with_random_weights(20, 6),
        ),
    ];
    for (name, g) in &graphs {
        for variant in VARIANTS {
            check_combo(Algorithm::Apsp, variant, g, name);
        }
    }
}

/// Runs every perturbation for both variants and hands each result to the
/// caller's invariant check alongside the simulator reference.
fn perturb(
    alg: Algorithm,
    g: &ecl_graph::Csr,
    check: impl Fn(&ecl_core::suite::RunResult, &ecl_core::suite::RunResult, Variant, usize, u64),
) {
    for variant in VARIANTS {
        let sim = run_algorithm(alg, variant, g, &GpuConfig::test_tiny(), 1);
        assert!(sim.valid);
        for (threads, seed) in PERTURBATIONS {
            let native = run_native(alg, variant, g, threads, seed);
            assert!(
                native.valid,
                "{alg} {variant} invalid at threads={threads} seed={seed}"
            );
            check(&sim, &native, variant, threads, seed);
        }
    }
}

#[test]
fn cc_partition_is_schedule_invariant() {
    let g = ecl_graph::inputs::GraphInput::by_name("internet")
        .unwrap()
        .build(SCALE, GRAPH_SEED);
    perturb(Algorithm::Cc, &g, |sim, native, variant, threads, seed| {
        assert_eq!(
            sim.solution_digest, native.solution_digest,
            "CC {variant} diverged at threads={threads} seed={seed}"
        );
        assert_eq!(sim.quality, native.quality, "component count changed");
    });
}

#[test]
fn mis_stays_maximal_and_independent_under_perturbation() {
    // `valid` is verify_mis (independence + maximality); the digest pins
    // the unique priority-ordered set.
    let g = ecl_graph::inputs::GraphInput::by_name("rmat16.sym")
        .unwrap()
        .build(SCALE, GRAPH_SEED);
    perturb(Algorithm::Mis, &g, |sim, native, variant, threads, seed| {
        assert_eq!(
            sim.solution_digest, native.solution_digest,
            "MIS {variant} found a different set at threads={threads} seed={seed}"
        );
        assert_eq!(sim.quality, native.quality, "set size changed");
    });
}

#[test]
fn gc_coloring_stays_proper_and_comparable_under_perturbation() {
    // GC's exact colors are timing-dependent (the ECL-GC shortcuts), so the
    // invariants are validity plus a quality band around the simulator's
    // color count.
    let g = ecl_graph::inputs::GraphInput::by_name("citationCiteseer")
        .unwrap()
        .build(SCALE, GRAPH_SEED);
    perturb(Algorithm::Gc, &g, |sim, native, variant, threads, seed| {
        assert_eq!(sim.solution_digest, native.solution_digest);
        assert!(
            native.quality <= 2.0 * sim.quality + 2.0,
            "GC {variant} used {} colors vs simulator's {} at threads={threads} seed={seed}",
            native.quality,
            sim.quality
        );
    });
}

#[test]
fn mst_weight_matches_simulator_under_perturbation() {
    let g = ecl_graph::inputs::GraphInput::by_name("2d-2e20.sym")
        .unwrap()
        .build(SCALE, GRAPH_SEED);
    perturb(Algorithm::Mst, &g, |sim, native, variant, threads, seed| {
        assert_eq!(
            sim.solution_digest, native.solution_digest,
            "MST {variant} diverged at threads={threads} seed={seed}"
        );
        assert_eq!(
            sim.quality, native.quality,
            "MST total weight changed at threads={threads} seed={seed}"
        );
    });
}

#[test]
fn scc_components_are_a_permutation_of_the_simulators() {
    // Beyond the canonical digest: explicitly check the native labels are a
    // relabeling (bijection) of the simulator's.
    let g = ecl_graph::inputs::GraphInput::by_name("web-Google")
        .unwrap()
        .build(SCALE, GRAPH_SEED);
    let sim = scc::run::<ecl_core::primitives::Atomic>(
        &g,
        &GpuConfig::test_tiny(),
        1,
        ecl_simt::StoreVisibility::Immediate,
    );
    for (threads, seed) in PERTURBATIONS {
        for race_free in [false, true] {
            let native = if race_free {
                scc::native::run::<RaceFree>(&g, threads, seed)
            } else {
                scc::native::run::<Baseline>(&g, threads, seed)
            };
            assert_eq!(sim.num_sccs, native.num_sccs);
            let mut fwd = std::collections::HashMap::new();
            let mut rev = std::collections::HashMap::new();
            for (s, n) in sim.scc_ids.iter().zip(&native.scc_ids) {
                assert_eq!(
                    *fwd.entry(*s).or_insert(*n),
                    *n,
                    "simulator component {s} split in native run (threads={threads} seed={seed})"
                );
                assert_eq!(
                    *rev.entry(*n).or_insert(*s),
                    *s,
                    "native component {n} merges simulator components (threads={threads} seed={seed})"
                );
            }
        }
    }
}

#[test]
fn apsp_triangle_inequality_on_sampled_triples() {
    let g = ecl_graph::gen::rmat(96, 400, 0.57, 0.19, 0.19, true, 8).with_random_weights(30, 5);
    let reference = run_algorithm(
        Algorithm::Apsp,
        Variant::Baseline,
        &g,
        &GpuConfig::test_tiny(),
        1,
    );
    let n = g.num_vertices();
    for (threads, seed) in PERTURBATIONS {
        let r = apsp::native::run::<RaceFree>(&g, threads, seed);
        assert_eq!(reference.solution_digest, r.digest);
        // d(i,k) <= d(i,j) + d(j,k) on a deterministic triple sample.
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % n as u64) as usize
        };
        for _ in 0..500 {
            let (i, j, k) = (rand(), rand(), rand());
            let (dij, djk, dik) = (r.dist[i * n + j], r.dist[j * n + k], r.dist[i * n + k]);
            if dij != apsp::INF && djk != apsp::INF {
                assert!(
                    dik <= dij + djk,
                    "triangle inequality violated: d({i},{k})={dik} > d({i},{j})={dij} + d({j},{k})={djk}"
                );
            }
        }
    }
}
