//! The repair pipeline, end to end: for every algorithm, the repair pass
//! synthesizes a race-free variant from detector output on the baseline,
//! and the synthesized variant passes all three oracles — static proof,
//! dynamic racecheck, and differential fixpoint match against the
//! hand-written race-free variant.
//!
//! The full-catalog differential/perf sweep lives in `repair_tool` (whose
//! committed artifact is `output/REPAIR_RESULTS.json` and whose CI gate is
//! the `repair-gate` job); this test keeps the guarantee in `cargo test`
//! at a tier-1-friendly input scale.

use ecl_analyze::repair::{synthesize, verify};
use ecl_core::suite::Algorithm;
use ecl_simt::{AccessMode, GpuConfig};

#[test]
fn every_algorithm_synthesizes_a_verified_race_free_variant() {
    let cfg = GpuConfig::test_tiny();
    for alg in Algorithm::ALL {
        let repaired =
            synthesize(alg, &cfg).unwrap_or_else(|e| panic!("{alg}: synthesis failed: {e}"));
        // Every baseline except APSP has something to repair (§IV-A).
        assert_eq!(
            repaired.rewrites.is_empty(),
            alg == Algorithm::Apsp,
            "{alg}: unexpected rewrite set {:#?}",
            repaired.rewrites
        );
        let v = verify(&repaired, &cfg, 0.03, 7);
        assert!(
            v.static_clean(),
            "{alg}: static oracle dirty: {:#?}",
            v.static_conflicts
        );
        assert!(
            v.dynamic_clean(),
            "{alg}: dynamic oracle dirty: races={:#?} failures={:#?}",
            v.dynamic_races,
            v.run_failures
        );
        assert!(
            v.differential_match(),
            "{alg}: differential oracle mismatch: {:#?}",
            v.comparisons
        );
    }
}

#[test]
fn repair_is_minimal_not_blanket() {
    // The machine repair must not degenerate into the hand conversion:
    // sites the detectors never flagged keep their baseline modes.
    let cfg = GpuConfig::test_tiny();
    let cc = synthesize(Algorithm::Cc, &cfg).unwrap();
    assert_eq!(
        cc.mode_table.get("cc_init", "label").unwrap().write,
        AccessMode::Plain,
        "cc_init's owned label store was not flagged and must stay plain"
    );
    assert_eq!(
        cc.mode_table.get("cc_flatten", "label").unwrap().write,
        AccessMode::Atomic,
        "cc_flatten's label traffic was flagged and must be atomic"
    );
    let mst = synthesize(Algorithm::Mst, &cfg).unwrap();
    assert_eq!(
        mst.mode_table.get("mst_connect", "best").unwrap().read,
        AccessMode::Volatile,
        "mst_connect's owned 64-bit best read was not flagged and must stay volatile"
    );
}
