//! Every catalog input builds and runs its table's algorithms end to end.

use ecl_core::suite::{run_algorithm, Algorithm, Variant};
use ecl_graph::inputs::{directed_catalog, undirected_catalog};
use ecl_simt::GpuConfig;

#[test]
fn every_undirected_input_runs_cc_and_mis() {
    let gpu = GpuConfig::test_tiny();
    for input in undirected_catalog() {
        let g = input.build(0.05, 1);
        for alg in [Algorithm::Cc, Algorithm::Mis] {
            for variant in [Variant::Baseline, Variant::RaceFree] {
                let r = run_algorithm(alg, variant, &g, &gpu, 1);
                assert!(r.valid, "{alg} {variant} invalid on {}", input.name());
            }
        }
    }
}

#[test]
fn every_directed_input_runs_scc() {
    let gpu = GpuConfig::test_tiny();
    for input in directed_catalog() {
        let g = input.build(0.05, 1);
        for variant in [Variant::Baseline, Variant::RaceFree] {
            let r = run_algorithm(Algorithm::Scc, variant, &g, &gpu, 1);
            assert!(r.valid, "SCC {variant} invalid on {}", input.name());
        }
    }
}

#[test]
fn catalog_io_roundtrip() {
    // The binary graph format preserves every catalog structure.
    let dir = std::env::temp_dir().join("ecl_suite_catalog_io_test");
    std::fs::create_dir_all(&dir).unwrap();
    for input in undirected_catalog().iter().take(3) {
        let g = input.build(0.05, 1);
        let path = dir.join(format!("{}.eclr", input.name()));
        ecl_graph::io::save(&g, &path).unwrap();
        let loaded = ecl_graph::io::load(&path).unwrap();
        assert_eq!(g, loaded, "{} did not roundtrip", input.name());
        std::fs::remove_file(&path).ok();
    }
}
