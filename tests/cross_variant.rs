//! Cross-variant agreement: the baseline's "benign" races must never change
//! the answer, so baseline and race-free solutions (and all scheduler seeds)
//! must agree on every deterministic solution property.

use ecl_core::suite::{run_algorithm, Algorithm, Variant};
use ecl_graph::inputs::GraphInput;
use ecl_simt::GpuConfig;

const SEEDS: [u64; 3] = [1, 17, 4242];

fn check_deterministic(alg: Algorithm, graph: &ecl_graph::Csr) {
    let gpu = GpuConfig::test_tiny();
    let mut digests = Vec::new();
    for variant in [Variant::Baseline, Variant::RaceFree] {
        for seed in SEEDS {
            let r = run_algorithm(alg, variant, graph, &gpu, seed);
            assert!(r.valid, "{alg} {variant} seed {seed} invalid");
            digests.push(r.solution_digest);
        }
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "{alg}: digests diverge across variants/seeds: {digests:x?}"
    );
}

#[test]
fn cc_partition_is_invariant() {
    let g = GraphInput::by_name("internet").unwrap().build(0.1, 3);
    check_deterministic(Algorithm::Cc, &g);
}

#[test]
fn mis_set_is_invariant() {
    let g = GraphInput::by_name("rmat16.sym").unwrap().build(0.1, 3);
    check_deterministic(Algorithm::Mis, &g);
}

#[test]
fn mst_weight_is_invariant() {
    let g = GraphInput::by_name("2d-2e20.sym").unwrap().build(0.1, 3);
    check_deterministic(Algorithm::Mst, &g);
}

#[test]
fn scc_partition_is_invariant() {
    let g = GraphInput::by_name("web-Google").unwrap().build(0.1, 3);
    check_deterministic(Algorithm::Scc, &g);
}

#[test]
fn apsp_distances_are_invariant() {
    let g = ecl_graph::gen::grid2d_torus(8, 8).with_random_weights(50, 2);
    check_deterministic(Algorithm::Apsp, &g);
}

#[test]
fn gc_is_always_a_proper_coloring() {
    // GC's exact colors are timing-dependent (the ECL-GC shortcuts), so we
    // check validity and quality instead of digest equality.
    let g = GraphInput::by_name("citationCiteseer")
        .unwrap()
        .build(0.1, 3);
    let gpu = GpuConfig::test_tiny();
    for variant in [Variant::Baseline, Variant::RaceFree] {
        for seed in SEEDS {
            let r = run_algorithm(Algorithm::Gc, variant, &g, &gpu, seed);
            assert!(r.valid, "GC {variant} seed {seed} produced a bad coloring");
            assert!(r.quality >= 1.0);
        }
    }
}

#[test]
fn quality_matches_across_variants() {
    // MIS size, MST weight, and component counts are part of the paper's
    // validation story: the conversion must not change result quality.
    let gpu = GpuConfig::test_tiny();
    let und = GraphInput::by_name("amazon0601").unwrap().build(0.1, 3);
    for alg in [Algorithm::Cc, Algorithm::Mis, Algorithm::Mst] {
        let b = run_algorithm(alg, Variant::Baseline, &und, &gpu, 1);
        let f = run_algorithm(alg, Variant::RaceFree, &und, &gpu, 1);
        assert_eq!(b.quality, f.quality, "{alg} quality changed");
    }
}
