/root/repo/target/release/examples/race_detection-6fdd201989165d0d.d: examples/race_detection.rs

/root/repo/target/release/examples/race_detection-6fdd201989165d0d: examples/race_detection.rs

examples/race_detection.rs:
