/root/repo/target/release/examples/quickstart-5783627840ba2919.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5783627840ba2919: examples/quickstart.rs

examples/quickstart.rs:
