/root/repo/target/release/examples/suite_tour-a0f96369d16df30c.d: examples/suite_tour.rs

/root/repo/target/release/examples/suite_tour-a0f96369d16df30c: examples/suite_tour.rs

examples/suite_tour.rs:
