/root/repo/target/release/examples/mis_speedup-7c98dc5cbc907f5a.d: examples/mis_speedup.rs

/root/repo/target/release/examples/mis_speedup-7c98dc5cbc907f5a: examples/mis_speedup.rs

examples/mis_speedup.rs:
