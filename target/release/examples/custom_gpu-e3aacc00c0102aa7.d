/root/repo/target/release/examples/custom_gpu-e3aacc00c0102aa7.d: examples/custom_gpu.rs

/root/repo/target/release/examples/custom_gpu-e3aacc00c0102aa7: examples/custom_gpu.rs

examples/custom_gpu.rs:
