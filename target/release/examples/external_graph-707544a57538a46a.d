/root/repo/target/release/examples/external_graph-707544a57538a46a.d: examples/external_graph.rs

/root/repo/target/release/examples/external_graph-707544a57538a46a: examples/external_graph.rs

examples/external_graph.rs:
