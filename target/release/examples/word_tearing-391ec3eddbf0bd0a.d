/root/repo/target/release/examples/word_tearing-391ec3eddbf0bd0a.d: examples/word_tearing.rs

/root/repo/target/release/examples/word_tearing-391ec3eddbf0bd0a: examples/word_tearing.rs

examples/word_tearing.rs:
