/root/repo/target/release/deps/ecl_suite-80cdf8b4847f0c81.d: src/lib.rs

/root/repo/target/release/deps/ecl_suite-80cdf8b4847f0c81: src/lib.rs

src/lib.rs:
