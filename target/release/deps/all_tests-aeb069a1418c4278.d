/root/repo/target/release/deps/all_tests-aeb069a1418c4278.d: crates/bench/src/bin/all_tests.rs

/root/repo/target/release/deps/all_tests-aeb069a1418c4278: crates/bench/src/bin/all_tests.rs

crates/bench/src/bin/all_tests.rs:
