/root/repo/target/release/deps/debug_rounds-4d7f42bc15395ae7.d: crates/bench/src/bin/debug_rounds.rs

/root/repo/target/release/deps/debug_rounds-4d7f42bc15395ae7: crates/bench/src/bin/debug_rounds.rs

crates/bench/src/bin/debug_rounds.rs:
