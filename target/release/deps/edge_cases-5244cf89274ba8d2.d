/root/repo/target/release/deps/edge_cases-5244cf89274ba8d2.d: crates/core/tests/edge_cases.rs

/root/repo/target/release/deps/edge_cases-5244cf89274ba8d2: crates/core/tests/edge_cases.rs

crates/core/tests/edge_cases.rs:
