/root/repo/target/release/deps/calibrate-34ae721b52fb34ab.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-34ae721b52fb34ab: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
