/root/repo/target/release/deps/fault_layer-30677b44b3edc971.d: crates/simt/tests/fault_layer.rs

/root/repo/target/release/deps/fault_layer-30677b44b3edc971: crates/simt/tests/fault_layer.rs

crates/simt/tests/fault_layer.rs:
