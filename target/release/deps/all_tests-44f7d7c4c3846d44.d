/root/repo/target/release/deps/all_tests-44f7d7c4c3846d44.d: crates/bench/src/bin/all_tests.rs

/root/repo/target/release/deps/all_tests-44f7d7c4c3846d44: crates/bench/src/bin/all_tests.rs

crates/bench/src/bin/all_tests.rs:
