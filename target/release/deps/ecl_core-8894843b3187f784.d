/root/repo/target/release/deps/ecl_core-8894843b3187f784.d: crates/core/src/lib.rs crates/core/src/apsp/mod.rs crates/core/src/apsp/kernels.rs crates/core/src/apsp/verify.rs crates/core/src/cc/mod.rs crates/core/src/cc/kernels.rs crates/core/src/cc/verify.rs crates/core/src/common.rs crates/core/src/gc/mod.rs crates/core/src/gc/kernels.rs crates/core/src/gc/verify.rs crates/core/src/mis/mod.rs crates/core/src/mis/kernels.rs crates/core/src/mis/verify.rs crates/core/src/mst/mod.rs crates/core/src/mst/kernels.rs crates/core/src/mst/verify.rs crates/core/src/primitives.rs crates/core/src/scc/mod.rs crates/core/src/scc/kernels.rs crates/core/src/scc/verify.rs crates/core/src/scc/worklist.rs crates/core/src/suite.rs

/root/repo/target/release/deps/ecl_core-8894843b3187f784: crates/core/src/lib.rs crates/core/src/apsp/mod.rs crates/core/src/apsp/kernels.rs crates/core/src/apsp/verify.rs crates/core/src/cc/mod.rs crates/core/src/cc/kernels.rs crates/core/src/cc/verify.rs crates/core/src/common.rs crates/core/src/gc/mod.rs crates/core/src/gc/kernels.rs crates/core/src/gc/verify.rs crates/core/src/mis/mod.rs crates/core/src/mis/kernels.rs crates/core/src/mis/verify.rs crates/core/src/mst/mod.rs crates/core/src/mst/kernels.rs crates/core/src/mst/verify.rs crates/core/src/primitives.rs crates/core/src/scc/mod.rs crates/core/src/scc/kernels.rs crates/core/src/scc/verify.rs crates/core/src/scc/worklist.rs crates/core/src/suite.rs

crates/core/src/lib.rs:
crates/core/src/apsp/mod.rs:
crates/core/src/apsp/kernels.rs:
crates/core/src/apsp/verify.rs:
crates/core/src/cc/mod.rs:
crates/core/src/cc/kernels.rs:
crates/core/src/cc/verify.rs:
crates/core/src/common.rs:
crates/core/src/gc/mod.rs:
crates/core/src/gc/kernels.rs:
crates/core/src/gc/verify.rs:
crates/core/src/mis/mod.rs:
crates/core/src/mis/kernels.rs:
crates/core/src/mis/verify.rs:
crates/core/src/mst/mod.rs:
crates/core/src/mst/kernels.rs:
crates/core/src/mst/verify.rs:
crates/core/src/primitives.rs:
crates/core/src/scc/mod.rs:
crates/core/src/scc/kernels.rs:
crates/core/src/scc/verify.rs:
crates/core/src/scc/worklist.rs:
crates/core/src/suite.rs:
