/root/repo/target/release/deps/calibrate-123ef24b2df6b990.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-123ef24b2df6b990: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
