/root/repo/target/release/deps/ecl_simt-3e862c655232887b.d: crates/simt/src/lib.rs crates/simt/src/access.rs crates/simt/src/config.rs crates/simt/src/error.rs crates/simt/src/exec.rs crates/simt/src/fault.rs crates/simt/src/host.rs crates/simt/src/mem/mod.rs crates/simt/src/mem/arena.rs crates/simt/src/mem/cache.rs crates/simt/src/mem/hierarchy.rs crates/simt/src/metrics.rs crates/simt/src/trace.rs

/root/repo/target/release/deps/ecl_simt-3e862c655232887b: crates/simt/src/lib.rs crates/simt/src/access.rs crates/simt/src/config.rs crates/simt/src/error.rs crates/simt/src/exec.rs crates/simt/src/fault.rs crates/simt/src/host.rs crates/simt/src/mem/mod.rs crates/simt/src/mem/arena.rs crates/simt/src/mem/cache.rs crates/simt/src/mem/hierarchy.rs crates/simt/src/metrics.rs crates/simt/src/trace.rs

crates/simt/src/lib.rs:
crates/simt/src/access.rs:
crates/simt/src/config.rs:
crates/simt/src/error.rs:
crates/simt/src/exec.rs:
crates/simt/src/fault.rs:
crates/simt/src/host.rs:
crates/simt/src/mem/mod.rs:
crates/simt/src/mem/arena.rs:
crates/simt/src/mem/cache.rs:
crates/simt/src/mem/hierarchy.rs:
crates/simt/src/metrics.rs:
crates/simt/src/trace.rs:
