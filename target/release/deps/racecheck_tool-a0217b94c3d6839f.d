/root/repo/target/release/deps/racecheck_tool-a0217b94c3d6839f.d: crates/bench/src/bin/racecheck_tool.rs

/root/repo/target/release/deps/racecheck_tool-a0217b94c3d6839f: crates/bench/src/bin/racecheck_tool.rs

crates/bench/src/bin/racecheck_tool.rs:
