/root/repo/target/release/deps/proptests-5f4aaff3cf64c244.d: crates/simt/tests/proptests.rs

/root/repo/target/release/deps/proptests-5f4aaff3cf64c244: crates/simt/tests/proptests.rs

crates/simt/tests/proptests.rs:
