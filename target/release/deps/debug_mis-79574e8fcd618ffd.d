/root/repo/target/release/deps/debug_mis-79574e8fcd618ffd.d: crates/bench/src/bin/debug_mis.rs

/root/repo/target/release/deps/debug_mis-79574e8fcd618ffd: crates/bench/src/bin/debug_mis.rs

crates/bench/src/bin/debug_mis.rs:
