/root/repo/target/release/deps/catalog-e13cf3734e5b7dca.d: tests/catalog.rs

/root/repo/target/release/deps/catalog-e13cf3734e5b7dca: tests/catalog.rs

tests/catalog.rs:
