/root/repo/target/release/deps/cross_variant-443122ccd9388f18.d: tests/cross_variant.rs

/root/repo/target/release/deps/cross_variant-443122ccd9388f18: tests/cross_variant.rs

tests/cross_variant.rs:
