/root/repo/target/release/deps/race_freedom-45ff35d943cda839.d: tests/race_freedom.rs

/root/repo/target/release/deps/race_freedom-45ff35d943cda839: tests/race_freedom.rs

tests/race_freedom.rs:
