/root/repo/target/release/deps/proptests-36fd7ac215245763.d: crates/graph/tests/proptests.rs

/root/repo/target/release/deps/proptests-36fd7ac215245763: crates/graph/tests/proptests.rs

crates/graph/tests/proptests.rs:
