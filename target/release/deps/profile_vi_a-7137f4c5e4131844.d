/root/repo/target/release/deps/profile_vi_a-7137f4c5e4131844.d: crates/bench/src/bin/profile_vi_a.rs

/root/repo/target/release/deps/profile_vi_a-7137f4c5e4131844: crates/bench/src/bin/profile_vi_a.rs

crates/bench/src/bin/profile_vi_a.rs:
