/root/repo/target/release/deps/parallel_determinism-051e7f33ace92988.d: crates/bench/tests/parallel_determinism.rs

/root/repo/target/release/deps/parallel_determinism-051e7f33ace92988: crates/bench/tests/parallel_determinism.rs

crates/bench/tests/parallel_determinism.rs:
