/root/repo/target/release/deps/racecheck_tool-1047b95e86879778.d: crates/bench/src/bin/racecheck_tool.rs

/root/repo/target/release/deps/racecheck_tool-1047b95e86879778: crates/bench/src/bin/racecheck_tool.rs

crates/bench/src/bin/racecheck_tool.rs:
