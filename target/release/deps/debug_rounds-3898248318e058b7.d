/root/repo/target/release/deps/debug_rounds-3898248318e058b7.d: crates/bench/src/bin/debug_rounds.rs

/root/repo/target/release/deps/debug_rounds-3898248318e058b7: crates/bench/src/bin/debug_rounds.rs

crates/bench/src/bin/debug_rounds.rs:
