/root/repo/target/release/deps/deviation_study-d481dd938ce31ed6.d: crates/bench/src/bin/deviation_study.rs

/root/repo/target/release/deps/deviation_study-d481dd938ce31ed6: crates/bench/src/bin/deviation_study.rs

crates/bench/src/bin/deviation_study.rs:
