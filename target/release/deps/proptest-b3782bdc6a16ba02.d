/root/repo/target/release/deps/proptest-b3782bdc6a16ba02.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-b3782bdc6a16ba02.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-b3782bdc6a16ba02.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
