/root/repo/target/release/deps/ecl_racecheck-1bf2c22bee142d63.d: crates/racecheck/src/lib.rs crates/racecheck/src/detect.rs crates/racecheck/src/hb.rs crates/racecheck/src/profile.rs crates/racecheck/src/report.rs

/root/repo/target/release/deps/libecl_racecheck-1bf2c22bee142d63.rlib: crates/racecheck/src/lib.rs crates/racecheck/src/detect.rs crates/racecheck/src/hb.rs crates/racecheck/src/profile.rs crates/racecheck/src/report.rs

/root/repo/target/release/deps/libecl_racecheck-1bf2c22bee142d63.rmeta: crates/racecheck/src/lib.rs crates/racecheck/src/detect.rs crates/racecheck/src/hb.rs crates/racecheck/src/profile.rs crates/racecheck/src/report.rs

crates/racecheck/src/lib.rs:
crates/racecheck/src/detect.rs:
crates/racecheck/src/hb.rs:
crates/racecheck/src/profile.rs:
crates/racecheck/src/report.rs:
