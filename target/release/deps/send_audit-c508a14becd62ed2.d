/root/repo/target/release/deps/send_audit-c508a14becd62ed2.d: crates/simt/tests/send_audit.rs

/root/repo/target/release/deps/send_audit-c508a14becd62ed2: crates/simt/tests/send_audit.rs

crates/simt/tests/send_audit.rs:
