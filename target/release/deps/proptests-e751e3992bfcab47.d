/root/repo/target/release/deps/proptests-e751e3992bfcab47.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-e751e3992bfcab47: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
