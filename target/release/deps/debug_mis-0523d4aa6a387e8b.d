/root/repo/target/release/deps/debug_mis-0523d4aa6a387e8b.d: crates/bench/src/bin/debug_mis.rs

/root/repo/target/release/deps/debug_mis-0523d4aa6a387e8b: crates/bench/src/bin/debug_mis.rs

crates/bench/src/bin/debug_mis.rs:
