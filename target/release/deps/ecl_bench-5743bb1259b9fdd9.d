/root/repo/target/release/deps/ecl_bench-5743bb1259b9fdd9.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/matrix.rs crates/bench/src/pool.rs crates/bench/src/stats.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/ecl_bench-5743bb1259b9fdd9: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/matrix.rs crates/bench/src/pool.rs crates/bench/src/stats.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/matrix.rs:
crates/bench/src/pool.rs:
crates/bench/src/stats.rs:
crates/bench/src/tables.rs:
