/root/repo/target/release/deps/fault_study-d214c398978cefe3.d: crates/bench/src/bin/fault_study.rs

/root/repo/target/release/deps/fault_study-d214c398978cefe3: crates/bench/src/bin/fault_study.rs

crates/bench/src/bin/fault_study.rs:
