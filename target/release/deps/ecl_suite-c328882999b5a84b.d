/root/repo/target/release/deps/ecl_suite-c328882999b5a84b.d: src/lib.rs

/root/repo/target/release/deps/libecl_suite-c328882999b5a84b.rlib: src/lib.rs

/root/repo/target/release/deps/libecl_suite-c328882999b5a84b.rmeta: src/lib.rs

src/lib.rs:
