/root/repo/target/release/deps/exec_more-46c16f8504fe7298.d: crates/simt/tests/exec_more.rs

/root/repo/target/release/deps/exec_more-46c16f8504fe7298: crates/simt/tests/exec_more.rs

crates/simt/tests/exec_more.rs:
