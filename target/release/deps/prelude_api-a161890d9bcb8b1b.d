/root/repo/target/release/deps/prelude_api-a161890d9bcb8b1b.d: tests/prelude_api.rs

/root/repo/target/release/deps/prelude_api-a161890d9bcb8b1b: tests/prelude_api.rs

tests/prelude_api.rs:
