/root/repo/target/release/deps/fault_study-86329aeadc29828c.d: crates/bench/src/bin/fault_study.rs

/root/repo/target/release/deps/fault_study-86329aeadc29828c: crates/bench/src/bin/fault_study.rs

crates/bench/src/bin/fault_study.rs:
