/root/repo/target/release/deps/make_inputs-72bf8f45d4c0075e.d: crates/bench/src/bin/make_inputs.rs

/root/repo/target/release/deps/make_inputs-72bf8f45d4c0075e: crates/bench/src/bin/make_inputs.rs

crates/bench/src/bin/make_inputs.rs:
