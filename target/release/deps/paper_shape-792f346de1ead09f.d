/root/repo/target/release/deps/paper_shape-792f346de1ead09f.d: tests/paper_shape.rs

/root/repo/target/release/deps/paper_shape-792f346de1ead09f: tests/paper_shape.rs

tests/paper_shape.rs:
