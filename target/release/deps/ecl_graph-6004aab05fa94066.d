/root/repo/target/release/deps/ecl_graph-6004aab05fa94066.d: crates/graph/src/lib.rs crates/graph/src/cache.rs crates/graph/src/csr.rs crates/graph/src/gen/mod.rs crates/graph/src/gen/delaunay.rs crates/graph/src/gen/grid.rs crates/graph/src/gen/mesh.rs crates/graph/src/gen/prefattach.rs crates/graph/src/gen/random.rs crates/graph/src/gen/rmat.rs crates/graph/src/gen/road.rs crates/graph/src/gen/special.rs crates/graph/src/inputs.rs crates/graph/src/io.rs crates/graph/src/mtx.rs crates/graph/src/props.rs crates/graph/src/transform.rs

/root/repo/target/release/deps/ecl_graph-6004aab05fa94066: crates/graph/src/lib.rs crates/graph/src/cache.rs crates/graph/src/csr.rs crates/graph/src/gen/mod.rs crates/graph/src/gen/delaunay.rs crates/graph/src/gen/grid.rs crates/graph/src/gen/mesh.rs crates/graph/src/gen/prefattach.rs crates/graph/src/gen/random.rs crates/graph/src/gen/rmat.rs crates/graph/src/gen/road.rs crates/graph/src/gen/special.rs crates/graph/src/inputs.rs crates/graph/src/io.rs crates/graph/src/mtx.rs crates/graph/src/props.rs crates/graph/src/transform.rs

crates/graph/src/lib.rs:
crates/graph/src/cache.rs:
crates/graph/src/csr.rs:
crates/graph/src/gen/mod.rs:
crates/graph/src/gen/delaunay.rs:
crates/graph/src/gen/grid.rs:
crates/graph/src/gen/mesh.rs:
crates/graph/src/gen/prefattach.rs:
crates/graph/src/gen/random.rs:
crates/graph/src/gen/rmat.rs:
crates/graph/src/gen/road.rs:
crates/graph/src/gen/special.rs:
crates/graph/src/inputs.rs:
crates/graph/src/io.rs:
crates/graph/src/mtx.rs:
crates/graph/src/props.rs:
crates/graph/src/transform.rs:
