/root/repo/target/release/deps/deviation_study-3d95e9ef47e69304.d: crates/bench/src/bin/deviation_study.rs

/root/repo/target/release/deps/deviation_study-3d95e9ef47e69304: crates/bench/src/bin/deviation_study.rs

crates/bench/src/bin/deviation_study.rs:
