/root/repo/target/release/deps/catalog_fidelity-85b35dc88b1d7f06.d: crates/graph/tests/catalog_fidelity.rs

/root/repo/target/release/deps/catalog_fidelity-85b35dc88b1d7f06: crates/graph/tests/catalog_fidelity.rs

crates/graph/tests/catalog_fidelity.rs:
