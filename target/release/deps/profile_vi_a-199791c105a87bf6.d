/root/repo/target/release/deps/profile_vi_a-199791c105a87bf6.d: crates/bench/src/bin/profile_vi_a.rs

/root/repo/target/release/deps/profile_vi_a-199791c105a87bf6: crates/bench/src/bin/profile_vi_a.rs

crates/bench/src/bin/profile_vi_a.rs:
