/root/repo/target/release/deps/make_inputs-2ceef6681be3c1d6.d: crates/bench/src/bin/make_inputs.rs

/root/repo/target/release/deps/make_inputs-2ceef6681be3c1d6: crates/bench/src/bin/make_inputs.rs

crates/bench/src/bin/make_inputs.rs:
