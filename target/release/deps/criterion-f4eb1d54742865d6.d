/root/repo/target/release/deps/criterion-f4eb1d54742865d6.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-f4eb1d54742865d6.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-f4eb1d54742865d6.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
