/root/repo/target/release/deps/ecl_bench-93329b3f2202a976.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/matrix.rs crates/bench/src/pool.rs crates/bench/src/stats.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libecl_bench-93329b3f2202a976.rlib: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/matrix.rs crates/bench/src/pool.rs crates/bench/src/stats.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libecl_bench-93329b3f2202a976.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/matrix.rs crates/bench/src/pool.rs crates/bench/src/stats.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/matrix.rs:
crates/bench/src/pool.rs:
crates/bench/src/stats.rs:
crates/bench/src/tables.rs:
