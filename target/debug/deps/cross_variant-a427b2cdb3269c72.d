/root/repo/target/debug/deps/cross_variant-a427b2cdb3269c72.d: tests/cross_variant.rs

/root/repo/target/debug/deps/cross_variant-a427b2cdb3269c72: tests/cross_variant.rs

tests/cross_variant.rs:
