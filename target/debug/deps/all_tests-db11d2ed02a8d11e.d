/root/repo/target/debug/deps/all_tests-db11d2ed02a8d11e.d: crates/bench/src/bin/all_tests.rs Cargo.toml

/root/repo/target/debug/deps/liball_tests-db11d2ed02a8d11e.rmeta: crates/bench/src/bin/all_tests.rs Cargo.toml

crates/bench/src/bin/all_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
