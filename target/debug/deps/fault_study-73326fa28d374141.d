/root/repo/target/debug/deps/fault_study-73326fa28d374141.d: crates/bench/src/bin/fault_study.rs

/root/repo/target/debug/deps/fault_study-73326fa28d374141: crates/bench/src/bin/fault_study.rs

crates/bench/src/bin/fault_study.rs:
