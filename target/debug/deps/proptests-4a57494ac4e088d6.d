/root/repo/target/debug/deps/proptests-4a57494ac4e088d6.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4a57494ac4e088d6: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
