/root/repo/target/debug/deps/debug_mis-bd2954371ed67f34.d: crates/bench/src/bin/debug_mis.rs

/root/repo/target/debug/deps/debug_mis-bd2954371ed67f34: crates/bench/src/bin/debug_mis.rs

crates/bench/src/bin/debug_mis.rs:
