/root/repo/target/debug/deps/ecl_suite-b9b41095abf3821f.d: src/lib.rs

/root/repo/target/debug/deps/ecl_suite-b9b41095abf3821f: src/lib.rs

src/lib.rs:
