/root/repo/target/debug/deps/racecheck_tool-6c533c486285b36f.d: crates/bench/src/bin/racecheck_tool.rs

/root/repo/target/debug/deps/racecheck_tool-6c533c486285b36f: crates/bench/src/bin/racecheck_tool.rs

crates/bench/src/bin/racecheck_tool.rs:
