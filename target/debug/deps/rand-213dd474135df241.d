/root/repo/target/debug/deps/rand-213dd474135df241.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-213dd474135df241.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
