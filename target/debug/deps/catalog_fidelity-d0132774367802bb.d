/root/repo/target/debug/deps/catalog_fidelity-d0132774367802bb.d: crates/graph/tests/catalog_fidelity.rs Cargo.toml

/root/repo/target/debug/deps/libcatalog_fidelity-d0132774367802bb.rmeta: crates/graph/tests/catalog_fidelity.rs Cargo.toml

crates/graph/tests/catalog_fidelity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
