/root/repo/target/debug/deps/catalog-f9d1291c6e8e7933.d: tests/catalog.rs Cargo.toml

/root/repo/target/debug/deps/libcatalog-f9d1291c6e8e7933.rmeta: tests/catalog.rs Cargo.toml

tests/catalog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
