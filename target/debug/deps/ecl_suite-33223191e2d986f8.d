/root/repo/target/debug/deps/ecl_suite-33223191e2d986f8.d: src/lib.rs

/root/repo/target/debug/deps/libecl_suite-33223191e2d986f8.rlib: src/lib.rs

/root/repo/target/debug/deps/libecl_suite-33223191e2d986f8.rmeta: src/lib.rs

src/lib.rs:
