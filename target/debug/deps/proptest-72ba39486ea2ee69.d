/root/repo/target/debug/deps/proptest-72ba39486ea2ee69.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-72ba39486ea2ee69.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
