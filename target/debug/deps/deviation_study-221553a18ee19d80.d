/root/repo/target/debug/deps/deviation_study-221553a18ee19d80.d: crates/bench/src/bin/deviation_study.rs Cargo.toml

/root/repo/target/debug/deps/libdeviation_study-221553a18ee19d80.rmeta: crates/bench/src/bin/deviation_study.rs Cargo.toml

crates/bench/src/bin/deviation_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
