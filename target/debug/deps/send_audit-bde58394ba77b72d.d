/root/repo/target/debug/deps/send_audit-bde58394ba77b72d.d: crates/simt/tests/send_audit.rs Cargo.toml

/root/repo/target/debug/deps/libsend_audit-bde58394ba77b72d.rmeta: crates/simt/tests/send_audit.rs Cargo.toml

crates/simt/tests/send_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
