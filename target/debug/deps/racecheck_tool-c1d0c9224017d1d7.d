/root/repo/target/debug/deps/racecheck_tool-c1d0c9224017d1d7.d: crates/bench/src/bin/racecheck_tool.rs

/root/repo/target/debug/deps/racecheck_tool-c1d0c9224017d1d7: crates/bench/src/bin/racecheck_tool.rs

crates/bench/src/bin/racecheck_tool.rs:
