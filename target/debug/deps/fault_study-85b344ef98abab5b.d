/root/repo/target/debug/deps/fault_study-85b344ef98abab5b.d: crates/bench/src/bin/fault_study.rs Cargo.toml

/root/repo/target/debug/deps/libfault_study-85b344ef98abab5b.rmeta: crates/bench/src/bin/fault_study.rs Cargo.toml

crates/bench/src/bin/fault_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
