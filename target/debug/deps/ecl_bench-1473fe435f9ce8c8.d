/root/repo/target/debug/deps/ecl_bench-1473fe435f9ce8c8.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/matrix.rs crates/bench/src/pool.rs crates/bench/src/stats.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libecl_bench-1473fe435f9ce8c8.rlib: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/matrix.rs crates/bench/src/pool.rs crates/bench/src/stats.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libecl_bench-1473fe435f9ce8c8.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/matrix.rs crates/bench/src/pool.rs crates/bench/src/stats.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/matrix.rs:
crates/bench/src/pool.rs:
crates/bench/src/stats.rs:
crates/bench/src/tables.rs:
