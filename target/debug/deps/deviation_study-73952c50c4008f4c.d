/root/repo/target/debug/deps/deviation_study-73952c50c4008f4c.d: crates/bench/src/bin/deviation_study.rs Cargo.toml

/root/repo/target/debug/deps/libdeviation_study-73952c50c4008f4c.rmeta: crates/bench/src/bin/deviation_study.rs Cargo.toml

crates/bench/src/bin/deviation_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
