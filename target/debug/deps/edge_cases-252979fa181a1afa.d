/root/repo/target/debug/deps/edge_cases-252979fa181a1afa.d: crates/core/tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-252979fa181a1afa: crates/core/tests/edge_cases.rs

crates/core/tests/edge_cases.rs:
