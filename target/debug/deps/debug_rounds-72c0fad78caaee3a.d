/root/repo/target/debug/deps/debug_rounds-72c0fad78caaee3a.d: crates/bench/src/bin/debug_rounds.rs

/root/repo/target/debug/deps/debug_rounds-72c0fad78caaee3a: crates/bench/src/bin/debug_rounds.rs

crates/bench/src/bin/debug_rounds.rs:
