/root/repo/target/debug/deps/debug_mis-610d55d16ee775fd.d: crates/bench/src/bin/debug_mis.rs

/root/repo/target/debug/deps/debug_mis-610d55d16ee775fd: crates/bench/src/bin/debug_mis.rs

crates/bench/src/bin/debug_mis.rs:
