/root/repo/target/debug/deps/fault_layer-ca4ec5361667ed91.d: crates/simt/tests/fault_layer.rs Cargo.toml

/root/repo/target/debug/deps/libfault_layer-ca4ec5361667ed91.rmeta: crates/simt/tests/fault_layer.rs Cargo.toml

crates/simt/tests/fault_layer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
