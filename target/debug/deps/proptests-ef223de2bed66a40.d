/root/repo/target/debug/deps/proptests-ef223de2bed66a40.d: crates/racecheck/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ef223de2bed66a40: crates/racecheck/tests/proptests.rs

crates/racecheck/tests/proptests.rs:
