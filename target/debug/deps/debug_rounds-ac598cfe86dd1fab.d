/root/repo/target/debug/deps/debug_rounds-ac598cfe86dd1fab.d: crates/bench/src/bin/debug_rounds.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_rounds-ac598cfe86dd1fab.rmeta: crates/bench/src/bin/debug_rounds.rs Cargo.toml

crates/bench/src/bin/debug_rounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
