/root/repo/target/debug/deps/fault_layer-6d81d26cdf81f175.d: crates/simt/tests/fault_layer.rs

/root/repo/target/debug/deps/fault_layer-6d81d26cdf81f175: crates/simt/tests/fault_layer.rs

crates/simt/tests/fault_layer.rs:
