/root/repo/target/debug/deps/proptests-357af8d05d50f060.d: crates/simt/tests/proptests.rs

/root/repo/target/debug/deps/proptests-357af8d05d50f060: crates/simt/tests/proptests.rs

crates/simt/tests/proptests.rs:
