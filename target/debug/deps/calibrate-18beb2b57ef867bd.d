/root/repo/target/debug/deps/calibrate-18beb2b57ef867bd.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-18beb2b57ef867bd.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
