/root/repo/target/debug/deps/ecl_bench-3eae67d2bb561be8.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/matrix.rs crates/bench/src/pool.rs crates/bench/src/stats.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/ecl_bench-3eae67d2bb561be8: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/matrix.rs crates/bench/src/pool.rs crates/bench/src/stats.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/matrix.rs:
crates/bench/src/pool.rs:
crates/bench/src/stats.rs:
crates/bench/src/tables.rs:
