/root/repo/target/debug/deps/ecl_graph-bcd0c601720fc13e.d: crates/graph/src/lib.rs crates/graph/src/cache.rs crates/graph/src/csr.rs crates/graph/src/gen/mod.rs crates/graph/src/gen/delaunay.rs crates/graph/src/gen/grid.rs crates/graph/src/gen/mesh.rs crates/graph/src/gen/prefattach.rs crates/graph/src/gen/random.rs crates/graph/src/gen/rmat.rs crates/graph/src/gen/road.rs crates/graph/src/gen/special.rs crates/graph/src/inputs.rs crates/graph/src/io.rs crates/graph/src/mtx.rs crates/graph/src/props.rs crates/graph/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libecl_graph-bcd0c601720fc13e.rmeta: crates/graph/src/lib.rs crates/graph/src/cache.rs crates/graph/src/csr.rs crates/graph/src/gen/mod.rs crates/graph/src/gen/delaunay.rs crates/graph/src/gen/grid.rs crates/graph/src/gen/mesh.rs crates/graph/src/gen/prefattach.rs crates/graph/src/gen/random.rs crates/graph/src/gen/rmat.rs crates/graph/src/gen/road.rs crates/graph/src/gen/special.rs crates/graph/src/inputs.rs crates/graph/src/io.rs crates/graph/src/mtx.rs crates/graph/src/props.rs crates/graph/src/transform.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/cache.rs:
crates/graph/src/csr.rs:
crates/graph/src/gen/mod.rs:
crates/graph/src/gen/delaunay.rs:
crates/graph/src/gen/grid.rs:
crates/graph/src/gen/mesh.rs:
crates/graph/src/gen/prefattach.rs:
crates/graph/src/gen/random.rs:
crates/graph/src/gen/rmat.rs:
crates/graph/src/gen/road.rs:
crates/graph/src/gen/special.rs:
crates/graph/src/inputs.rs:
crates/graph/src/io.rs:
crates/graph/src/mtx.rs:
crates/graph/src/props.rs:
crates/graph/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
