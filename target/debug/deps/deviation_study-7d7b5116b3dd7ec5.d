/root/repo/target/debug/deps/deviation_study-7d7b5116b3dd7ec5.d: crates/bench/src/bin/deviation_study.rs

/root/repo/target/debug/deps/deviation_study-7d7b5116b3dd7ec5: crates/bench/src/bin/deviation_study.rs

crates/bench/src/bin/deviation_study.rs:
