/root/repo/target/debug/deps/proptests-9c8c0b5756425ba5.d: crates/simt/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-9c8c0b5756425ba5.rmeta: crates/simt/tests/proptests.rs Cargo.toml

crates/simt/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
