/root/repo/target/debug/deps/debug_mis-89b018548ccdaee8.d: crates/bench/src/bin/debug_mis.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_mis-89b018548ccdaee8.rmeta: crates/bench/src/bin/debug_mis.rs Cargo.toml

crates/bench/src/bin/debug_mis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
