/root/repo/target/debug/deps/exec_more-b6a3648a8837abe5.d: crates/simt/tests/exec_more.rs Cargo.toml

/root/repo/target/debug/deps/libexec_more-b6a3648a8837abe5.rmeta: crates/simt/tests/exec_more.rs Cargo.toml

crates/simt/tests/exec_more.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
