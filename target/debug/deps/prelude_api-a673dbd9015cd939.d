/root/repo/target/debug/deps/prelude_api-a673dbd9015cd939.d: tests/prelude_api.rs Cargo.toml

/root/repo/target/debug/deps/libprelude_api-a673dbd9015cd939.rmeta: tests/prelude_api.rs Cargo.toml

tests/prelude_api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
