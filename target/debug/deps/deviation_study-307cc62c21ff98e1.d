/root/repo/target/debug/deps/deviation_study-307cc62c21ff98e1.d: crates/bench/src/bin/deviation_study.rs

/root/repo/target/debug/deps/deviation_study-307cc62c21ff98e1: crates/bench/src/bin/deviation_study.rs

crates/bench/src/bin/deviation_study.rs:
