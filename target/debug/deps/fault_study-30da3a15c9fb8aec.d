/root/repo/target/debug/deps/fault_study-30da3a15c9fb8aec.d: crates/bench/src/bin/fault_study.rs

/root/repo/target/debug/deps/fault_study-30da3a15c9fb8aec: crates/bench/src/bin/fault_study.rs

crates/bench/src/bin/fault_study.rs:
