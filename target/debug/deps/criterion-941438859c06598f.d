/root/repo/target/debug/deps/criterion-941438859c06598f.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-941438859c06598f.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
