/root/repo/target/debug/deps/ecl_simt-c347e6461da8d9eb.d: crates/simt/src/lib.rs crates/simt/src/access.rs crates/simt/src/config.rs crates/simt/src/error.rs crates/simt/src/exec.rs crates/simt/src/fault.rs crates/simt/src/host.rs crates/simt/src/mem/mod.rs crates/simt/src/mem/arena.rs crates/simt/src/mem/cache.rs crates/simt/src/mem/hierarchy.rs crates/simt/src/metrics.rs crates/simt/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libecl_simt-c347e6461da8d9eb.rmeta: crates/simt/src/lib.rs crates/simt/src/access.rs crates/simt/src/config.rs crates/simt/src/error.rs crates/simt/src/exec.rs crates/simt/src/fault.rs crates/simt/src/host.rs crates/simt/src/mem/mod.rs crates/simt/src/mem/arena.rs crates/simt/src/mem/cache.rs crates/simt/src/mem/hierarchy.rs crates/simt/src/metrics.rs crates/simt/src/trace.rs Cargo.toml

crates/simt/src/lib.rs:
crates/simt/src/access.rs:
crates/simt/src/config.rs:
crates/simt/src/error.rs:
crates/simt/src/exec.rs:
crates/simt/src/fault.rs:
crates/simt/src/host.rs:
crates/simt/src/mem/mod.rs:
crates/simt/src/mem/arena.rs:
crates/simt/src/mem/cache.rs:
crates/simt/src/mem/hierarchy.rs:
crates/simt/src/metrics.rs:
crates/simt/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
