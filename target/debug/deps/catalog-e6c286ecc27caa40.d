/root/repo/target/debug/deps/catalog-e6c286ecc27caa40.d: tests/catalog.rs

/root/repo/target/debug/deps/catalog-e6c286ecc27caa40: tests/catalog.rs

tests/catalog.rs:
