/root/repo/target/debug/deps/debug_rounds-a88d18c1379ac717.d: crates/bench/src/bin/debug_rounds.rs

/root/repo/target/debug/deps/debug_rounds-a88d18c1379ac717: crates/bench/src/bin/debug_rounds.rs

crates/bench/src/bin/debug_rounds.rs:
