/root/repo/target/debug/deps/all_tests-80014216888f8478.d: crates/bench/src/bin/all_tests.rs Cargo.toml

/root/repo/target/debug/deps/liball_tests-80014216888f8478.rmeta: crates/bench/src/bin/all_tests.rs Cargo.toml

crates/bench/src/bin/all_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
