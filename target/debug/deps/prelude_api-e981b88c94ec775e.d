/root/repo/target/debug/deps/prelude_api-e981b88c94ec775e.d: tests/prelude_api.rs

/root/repo/target/debug/deps/prelude_api-e981b88c94ec775e: tests/prelude_api.rs

tests/prelude_api.rs:
