/root/repo/target/debug/deps/proptests-8488db18a9e6995a.d: crates/racecheck/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-8488db18a9e6995a.rmeta: crates/racecheck/tests/proptests.rs Cargo.toml

crates/racecheck/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
