/root/repo/target/debug/deps/all_tests-08f157c8e1f13fc4.d: crates/bench/src/bin/all_tests.rs

/root/repo/target/debug/deps/all_tests-08f157c8e1f13fc4: crates/bench/src/bin/all_tests.rs

crates/bench/src/bin/all_tests.rs:
