/root/repo/target/debug/deps/profile_vi_a-012b2df45fc602c7.d: crates/bench/src/bin/profile_vi_a.rs Cargo.toml

/root/repo/target/debug/deps/libprofile_vi_a-012b2df45fc602c7.rmeta: crates/bench/src/bin/profile_vi_a.rs Cargo.toml

crates/bench/src/bin/profile_vi_a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
