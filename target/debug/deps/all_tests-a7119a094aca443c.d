/root/repo/target/debug/deps/all_tests-a7119a094aca443c.d: crates/bench/src/bin/all_tests.rs

/root/repo/target/debug/deps/all_tests-a7119a094aca443c: crates/bench/src/bin/all_tests.rs

crates/bench/src/bin/all_tests.rs:
