/root/repo/target/debug/deps/ecl_core-794c85ba15232321.d: crates/core/src/lib.rs crates/core/src/apsp/mod.rs crates/core/src/apsp/kernels.rs crates/core/src/apsp/verify.rs crates/core/src/cc/mod.rs crates/core/src/cc/kernels.rs crates/core/src/cc/verify.rs crates/core/src/common.rs crates/core/src/gc/mod.rs crates/core/src/gc/kernels.rs crates/core/src/gc/verify.rs crates/core/src/mis/mod.rs crates/core/src/mis/kernels.rs crates/core/src/mis/verify.rs crates/core/src/mst/mod.rs crates/core/src/mst/kernels.rs crates/core/src/mst/verify.rs crates/core/src/primitives.rs crates/core/src/scc/mod.rs crates/core/src/scc/kernels.rs crates/core/src/scc/verify.rs crates/core/src/scc/worklist.rs crates/core/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libecl_core-794c85ba15232321.rmeta: crates/core/src/lib.rs crates/core/src/apsp/mod.rs crates/core/src/apsp/kernels.rs crates/core/src/apsp/verify.rs crates/core/src/cc/mod.rs crates/core/src/cc/kernels.rs crates/core/src/cc/verify.rs crates/core/src/common.rs crates/core/src/gc/mod.rs crates/core/src/gc/kernels.rs crates/core/src/gc/verify.rs crates/core/src/mis/mod.rs crates/core/src/mis/kernels.rs crates/core/src/mis/verify.rs crates/core/src/mst/mod.rs crates/core/src/mst/kernels.rs crates/core/src/mst/verify.rs crates/core/src/primitives.rs crates/core/src/scc/mod.rs crates/core/src/scc/kernels.rs crates/core/src/scc/verify.rs crates/core/src/scc/worklist.rs crates/core/src/suite.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/apsp/mod.rs:
crates/core/src/apsp/kernels.rs:
crates/core/src/apsp/verify.rs:
crates/core/src/cc/mod.rs:
crates/core/src/cc/kernels.rs:
crates/core/src/cc/verify.rs:
crates/core/src/common.rs:
crates/core/src/gc/mod.rs:
crates/core/src/gc/kernels.rs:
crates/core/src/gc/verify.rs:
crates/core/src/mis/mod.rs:
crates/core/src/mis/kernels.rs:
crates/core/src/mis/verify.rs:
crates/core/src/mst/mod.rs:
crates/core/src/mst/kernels.rs:
crates/core/src/mst/verify.rs:
crates/core/src/primitives.rs:
crates/core/src/scc/mod.rs:
crates/core/src/scc/kernels.rs:
crates/core/src/scc/verify.rs:
crates/core/src/scc/worklist.rs:
crates/core/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
