/root/repo/target/debug/deps/profile_vi_a-b177036a347f6be7.d: crates/bench/src/bin/profile_vi_a.rs

/root/repo/target/debug/deps/profile_vi_a-b177036a347f6be7: crates/bench/src/bin/profile_vi_a.rs

crates/bench/src/bin/profile_vi_a.rs:
