/root/repo/target/debug/deps/proptests-13a9bd246ababd52.d: crates/graph/tests/proptests.rs

/root/repo/target/debug/deps/proptests-13a9bd246ababd52: crates/graph/tests/proptests.rs

crates/graph/tests/proptests.rs:
