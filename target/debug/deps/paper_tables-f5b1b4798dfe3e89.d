/root/repo/target/debug/deps/paper_tables-f5b1b4798dfe3e89.d: crates/bench/benches/paper_tables.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_tables-f5b1b4798dfe3e89.rmeta: crates/bench/benches/paper_tables.rs Cargo.toml

crates/bench/benches/paper_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
