/root/repo/target/debug/deps/ecl_racecheck-ef27ae6b7f34ef84.d: crates/racecheck/src/lib.rs crates/racecheck/src/detect.rs crates/racecheck/src/hb.rs crates/racecheck/src/profile.rs crates/racecheck/src/report.rs

/root/repo/target/debug/deps/ecl_racecheck-ef27ae6b7f34ef84: crates/racecheck/src/lib.rs crates/racecheck/src/detect.rs crates/racecheck/src/hb.rs crates/racecheck/src/profile.rs crates/racecheck/src/report.rs

crates/racecheck/src/lib.rs:
crates/racecheck/src/detect.rs:
crates/racecheck/src/hb.rs:
crates/racecheck/src/profile.rs:
crates/racecheck/src/report.rs:
