/root/repo/target/debug/deps/make_inputs-03660c29e86e7b18.d: crates/bench/src/bin/make_inputs.rs

/root/repo/target/debug/deps/make_inputs-03660c29e86e7b18: crates/bench/src/bin/make_inputs.rs

crates/bench/src/bin/make_inputs.rs:
