/root/repo/target/debug/deps/ecl_suite-0c33b84fd81b1612.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libecl_suite-0c33b84fd81b1612.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
