/root/repo/target/debug/deps/calibrate-de8dabf952ee90c1.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-de8dabf952ee90c1.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
