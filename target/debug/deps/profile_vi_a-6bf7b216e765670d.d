/root/repo/target/debug/deps/profile_vi_a-6bf7b216e765670d.d: crates/bench/src/bin/profile_vi_a.rs

/root/repo/target/debug/deps/profile_vi_a-6bf7b216e765670d: crates/bench/src/bin/profile_vi_a.rs

crates/bench/src/bin/profile_vi_a.rs:
