/root/repo/target/debug/deps/edge_cases-a0789027d133ca12.d: crates/core/tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-a0789027d133ca12.rmeta: crates/core/tests/edge_cases.rs Cargo.toml

crates/core/tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
