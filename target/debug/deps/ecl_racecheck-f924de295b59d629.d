/root/repo/target/debug/deps/ecl_racecheck-f924de295b59d629.d: crates/racecheck/src/lib.rs crates/racecheck/src/detect.rs crates/racecheck/src/hb.rs crates/racecheck/src/profile.rs crates/racecheck/src/report.rs

/root/repo/target/debug/deps/libecl_racecheck-f924de295b59d629.rlib: crates/racecheck/src/lib.rs crates/racecheck/src/detect.rs crates/racecheck/src/hb.rs crates/racecheck/src/profile.rs crates/racecheck/src/report.rs

/root/repo/target/debug/deps/libecl_racecheck-f924de295b59d629.rmeta: crates/racecheck/src/lib.rs crates/racecheck/src/detect.rs crates/racecheck/src/hb.rs crates/racecheck/src/profile.rs crates/racecheck/src/report.rs

crates/racecheck/src/lib.rs:
crates/racecheck/src/detect.rs:
crates/racecheck/src/hb.rs:
crates/racecheck/src/profile.rs:
crates/racecheck/src/report.rs:
