/root/repo/target/debug/deps/parallel_determinism-3273621088d6b3fa.d: crates/bench/tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-3273621088d6b3fa: crates/bench/tests/parallel_determinism.rs

crates/bench/tests/parallel_determinism.rs:
