/root/repo/target/debug/deps/make_inputs-96396f16d7ca4291.d: crates/bench/src/bin/make_inputs.rs Cargo.toml

/root/repo/target/debug/deps/libmake_inputs-96396f16d7ca4291.rmeta: crates/bench/src/bin/make_inputs.rs Cargo.toml

crates/bench/src/bin/make_inputs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
