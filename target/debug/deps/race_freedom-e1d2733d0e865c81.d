/root/repo/target/debug/deps/race_freedom-e1d2733d0e865c81.d: tests/race_freedom.rs Cargo.toml

/root/repo/target/debug/deps/librace_freedom-e1d2733d0e865c81.rmeta: tests/race_freedom.rs Cargo.toml

tests/race_freedom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
