/root/repo/target/debug/deps/calibrate-6d9f443c3b3e1bbe.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-6d9f443c3b3e1bbe: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
