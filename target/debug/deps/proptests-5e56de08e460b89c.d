/root/repo/target/debug/deps/proptests-5e56de08e460b89c.d: crates/graph/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-5e56de08e460b89c.rmeta: crates/graph/tests/proptests.rs Cargo.toml

crates/graph/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
