/root/repo/target/debug/deps/make_inputs-5fd0b1c502f394ab.d: crates/bench/src/bin/make_inputs.rs

/root/repo/target/debug/deps/make_inputs-5fd0b1c502f394ab: crates/bench/src/bin/make_inputs.rs

crates/bench/src/bin/make_inputs.rs:
