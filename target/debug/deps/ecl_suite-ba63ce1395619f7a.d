/root/repo/target/debug/deps/ecl_suite-ba63ce1395619f7a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libecl_suite-ba63ce1395619f7a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
