/root/repo/target/debug/deps/proptests-d15781ba21addb39.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d15781ba21addb39.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
