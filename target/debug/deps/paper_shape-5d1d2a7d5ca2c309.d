/root/repo/target/debug/deps/paper_shape-5d1d2a7d5ca2c309.d: tests/paper_shape.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_shape-5d1d2a7d5ca2c309.rmeta: tests/paper_shape.rs Cargo.toml

tests/paper_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
