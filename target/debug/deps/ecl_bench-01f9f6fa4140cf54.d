/root/repo/target/debug/deps/ecl_bench-01f9f6fa4140cf54.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/matrix.rs crates/bench/src/pool.rs crates/bench/src/stats.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libecl_bench-01f9f6fa4140cf54.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/matrix.rs crates/bench/src/pool.rs crates/bench/src/stats.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/matrix.rs:
crates/bench/src/pool.rs:
crates/bench/src/stats.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
