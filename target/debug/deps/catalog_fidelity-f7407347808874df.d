/root/repo/target/debug/deps/catalog_fidelity-f7407347808874df.d: crates/graph/tests/catalog_fidelity.rs

/root/repo/target/debug/deps/catalog_fidelity-f7407347808874df: crates/graph/tests/catalog_fidelity.rs

crates/graph/tests/catalog_fidelity.rs:
