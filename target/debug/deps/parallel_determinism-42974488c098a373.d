/root/repo/target/debug/deps/parallel_determinism-42974488c098a373.d: crates/bench/tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-42974488c098a373.rmeta: crates/bench/tests/parallel_determinism.rs Cargo.toml

crates/bench/tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
