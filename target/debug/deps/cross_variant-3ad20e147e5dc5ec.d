/root/repo/target/debug/deps/cross_variant-3ad20e147e5dc5ec.d: tests/cross_variant.rs Cargo.toml

/root/repo/target/debug/deps/libcross_variant-3ad20e147e5dc5ec.rmeta: tests/cross_variant.rs Cargo.toml

tests/cross_variant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
