/root/repo/target/debug/deps/calibrate-6bd6d8550fdb20f0.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-6bd6d8550fdb20f0: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
