/root/repo/target/debug/deps/proptest-9b4907c8e143b483.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-9b4907c8e143b483.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-9b4907c8e143b483.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
