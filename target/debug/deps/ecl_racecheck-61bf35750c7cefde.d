/root/repo/target/debug/deps/ecl_racecheck-61bf35750c7cefde.d: crates/racecheck/src/lib.rs crates/racecheck/src/detect.rs crates/racecheck/src/hb.rs crates/racecheck/src/profile.rs crates/racecheck/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libecl_racecheck-61bf35750c7cefde.rmeta: crates/racecheck/src/lib.rs crates/racecheck/src/detect.rs crates/racecheck/src/hb.rs crates/racecheck/src/profile.rs crates/racecheck/src/report.rs Cargo.toml

crates/racecheck/src/lib.rs:
crates/racecheck/src/detect.rs:
crates/racecheck/src/hb.rs:
crates/racecheck/src/profile.rs:
crates/racecheck/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
