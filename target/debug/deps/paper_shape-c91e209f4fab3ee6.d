/root/repo/target/debug/deps/paper_shape-c91e209f4fab3ee6.d: tests/paper_shape.rs

/root/repo/target/debug/deps/paper_shape-c91e209f4fab3ee6: tests/paper_shape.rs

tests/paper_shape.rs:
