/root/repo/target/debug/deps/racecheck_tool-6da24e70eefc47e2.d: crates/bench/src/bin/racecheck_tool.rs Cargo.toml

/root/repo/target/debug/deps/libracecheck_tool-6da24e70eefc47e2.rmeta: crates/bench/src/bin/racecheck_tool.rs Cargo.toml

crates/bench/src/bin/racecheck_tool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
