/root/repo/target/debug/deps/racecheck_tool-2ca1a9c222338d3f.d: crates/bench/src/bin/racecheck_tool.rs Cargo.toml

/root/repo/target/debug/deps/libracecheck_tool-2ca1a9c222338d3f.rmeta: crates/bench/src/bin/racecheck_tool.rs Cargo.toml

crates/bench/src/bin/racecheck_tool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
