/root/repo/target/debug/deps/send_audit-4e64eca3c10cf0fd.d: crates/simt/tests/send_audit.rs

/root/repo/target/debug/deps/send_audit-4e64eca3c10cf0fd: crates/simt/tests/send_audit.rs

crates/simt/tests/send_audit.rs:
