/root/repo/target/debug/deps/exec_more-0ac2d7d9fdada64e.d: crates/simt/tests/exec_more.rs

/root/repo/target/debug/deps/exec_more-0ac2d7d9fdada64e: crates/simt/tests/exec_more.rs

crates/simt/tests/exec_more.rs:
