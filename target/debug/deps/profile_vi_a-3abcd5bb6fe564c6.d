/root/repo/target/debug/deps/profile_vi_a-3abcd5bb6fe564c6.d: crates/bench/src/bin/profile_vi_a.rs Cargo.toml

/root/repo/target/debug/deps/libprofile_vi_a-3abcd5bb6fe564c6.rmeta: crates/bench/src/bin/profile_vi_a.rs Cargo.toml

crates/bench/src/bin/profile_vi_a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
