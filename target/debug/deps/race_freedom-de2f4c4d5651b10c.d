/root/repo/target/debug/deps/race_freedom-de2f4c4d5651b10c.d: tests/race_freedom.rs

/root/repo/target/debug/deps/race_freedom-de2f4c4d5651b10c: tests/race_freedom.rs

tests/race_freedom.rs:
