/root/repo/target/debug/deps/micro-b537d6be586e29dd.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-b537d6be586e29dd.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
