/root/repo/target/debug/examples/word_tearing-efc5b6deca09818f.d: examples/word_tearing.rs Cargo.toml

/root/repo/target/debug/examples/libword_tearing-efc5b6deca09818f.rmeta: examples/word_tearing.rs Cargo.toml

examples/word_tearing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
