/root/repo/target/debug/examples/race_detection-8e2883f295872fe7.d: examples/race_detection.rs

/root/repo/target/debug/examples/race_detection-8e2883f295872fe7: examples/race_detection.rs

examples/race_detection.rs:
