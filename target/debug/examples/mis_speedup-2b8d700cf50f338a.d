/root/repo/target/debug/examples/mis_speedup-2b8d700cf50f338a.d: examples/mis_speedup.rs Cargo.toml

/root/repo/target/debug/examples/libmis_speedup-2b8d700cf50f338a.rmeta: examples/mis_speedup.rs Cargo.toml

examples/mis_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
