/root/repo/target/debug/examples/race_detection-b8b4934f5be9af5c.d: examples/race_detection.rs Cargo.toml

/root/repo/target/debug/examples/librace_detection-b8b4934f5be9af5c.rmeta: examples/race_detection.rs Cargo.toml

examples/race_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
