/root/repo/target/debug/examples/custom_gpu-bd00873df53cdd23.d: examples/custom_gpu.rs

/root/repo/target/debug/examples/custom_gpu-bd00873df53cdd23: examples/custom_gpu.rs

examples/custom_gpu.rs:
