/root/repo/target/debug/examples/external_graph-dbc32e7f644d88d1.d: examples/external_graph.rs

/root/repo/target/debug/examples/external_graph-dbc32e7f644d88d1: examples/external_graph.rs

examples/external_graph.rs:
