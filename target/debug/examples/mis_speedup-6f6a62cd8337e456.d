/root/repo/target/debug/examples/mis_speedup-6f6a62cd8337e456.d: examples/mis_speedup.rs

/root/repo/target/debug/examples/mis_speedup-6f6a62cd8337e456: examples/mis_speedup.rs

examples/mis_speedup.rs:
