/root/repo/target/debug/examples/word_tearing-340df24db606977c.d: examples/word_tearing.rs

/root/repo/target/debug/examples/word_tearing-340df24db606977c: examples/word_tearing.rs

examples/word_tearing.rs:
