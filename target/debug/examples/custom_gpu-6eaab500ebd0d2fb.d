/root/repo/target/debug/examples/custom_gpu-6eaab500ebd0d2fb.d: examples/custom_gpu.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_gpu-6eaab500ebd0d2fb.rmeta: examples/custom_gpu.rs Cargo.toml

examples/custom_gpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
