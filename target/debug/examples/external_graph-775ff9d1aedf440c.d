/root/repo/target/debug/examples/external_graph-775ff9d1aedf440c.d: examples/external_graph.rs Cargo.toml

/root/repo/target/debug/examples/libexternal_graph-775ff9d1aedf440c.rmeta: examples/external_graph.rs Cargo.toml

examples/external_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
