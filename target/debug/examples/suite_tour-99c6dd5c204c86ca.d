/root/repo/target/debug/examples/suite_tour-99c6dd5c204c86ca.d: examples/suite_tour.rs

/root/repo/target/debug/examples/suite_tour-99c6dd5c204c86ca: examples/suite_tour.rs

examples/suite_tour.rs:
