/root/repo/target/debug/examples/suite_tour-86c216383d3d46af.d: examples/suite_tour.rs Cargo.toml

/root/repo/target/debug/examples/libsuite_tour-86c216383d3d46af.rmeta: examples/suite_tour.rs Cargo.toml

examples/suite_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
