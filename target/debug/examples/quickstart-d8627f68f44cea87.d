/root/repo/target/debug/examples/quickstart-d8627f68f44cea87.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d8627f68f44cea87: examples/quickstart.rs

examples/quickstart.rs:
