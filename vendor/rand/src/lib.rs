//! Offline, dependency-free subset of the `rand` crate API used by this
//! workspace. The build environment has no network access to crates.io, so
//! the workspace vendors the small slice of `rand` it actually calls:
//! `StdRng::seed_from_u64`, `random::<f64>()`, `random_bool`, and
//! `random_range` over integer ranges.
//!
//! The generator is xoshiro256**, seeded through splitmix64 — deterministic
//! across platforms, which is all the graph generators need (they are seeded
//! explicitly everywhere; nothing in the workspace asks for OS entropy).

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full RNG word.
pub trait StandardUniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in [0, 1) with 53 bits of precision, matching the standard
    /// `rand` construction.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `random_range` can draw from.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (bounded(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform integer in [0, span) by widening multiply (Lemire-style, without
/// the rejection loop; bias is < 2^-32 for the span sizes used here and the
/// workspace only needs determinism, not cryptographic uniformity).
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Convenience sampling methods, mirroring `rand::Rng` / `rand::RngExt`.
pub trait RngExt: RngCore {
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }

    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Legacy alias: older call sites spell the extension trait `Rng`.
pub use self::RngExt as Rng;

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through splitmix64, as rand_core does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>().to_bits(), b.random::<f64>().to_bits());
            assert_eq!(a.random_range(0usize..97), b.random_range(0usize..97));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u32..=9);
            assert!((5..=9).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
