//! Value-generation strategies: the composable core of the proptest API.
//! Generation only — no shrinking trees (see the crate docs).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` from an RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a pure function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Rejects generated values that fail a predicate, retrying (bounded).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 10000 candidates", self.whence);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty : $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform in [0, 1): plenty for property tests that need "some" f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy producing arbitrary values of `T`. Built by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the universal strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Erases a strategy's concrete type so heterogeneous strategies can share
/// a [`Union`] (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Uniform choice among alternatives. Built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Length specification for [`vec`]: a count, a half-open range, or an
/// inclusive range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        Self {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy for vectors of values from an element strategy. Built by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
