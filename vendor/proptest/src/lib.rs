//! Offline, dependency-free subset of the `proptest` crate API used by this
//! workspace. The build environment cannot reach crates.io, so the workspace
//! vendors the slice of proptest its test suites call: the `proptest!` macro,
//! `Strategy` with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `Just`, `any::<T>()`, `prop::collection::vec`, `prop_oneof!`, the
//! `prop_assert*` family, `prop_assume!`, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberate and documented:
//! - **No shrinking.** A failing case reports its inputs (via the pattern
//!   `Debug`) and the case index, but is not minimized.
//! - **Deterministic seeding.** Each `#[test]` derives its RNG seed from the
//!   test's name, so failures reproduce exactly across runs. Set
//!   `PROPTEST_SEED_OFFSET` to explore a different deterministic schedule.
//! - The default case count is 64 (real proptest defaults to 256); suites in
//!   this workspace that care set `ProptestConfig::with_cases` explicitly.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

/// Mirror of `proptest::prelude`, the one import every test file uses.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// `prop::collection::vec(...)` etc. resolve through this re-export.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with formatted context) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

/// Discards the current case (drawing a fresh one) when its inputs do not
/// satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
/// Weighted entries (`N => strat`) are accepted and the weight ignored —
/// the workspace only uses unweighted unions.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::boxed($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// The test-suite entry point: wraps each `#[test] fn name(pat in strategy)`
/// item in a loop that draws `cases` inputs and runs the body against each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while accepted < config.cases {
                    case += 1;
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                            )*
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            if rejected > config.cases.saturating_mul(16).max(1024) {
                                panic!(
                                    "proptest `{}`: too many rejected cases ({} accepted, {} rejected)",
                                    stringify!($name), accepted, rejected,
                                );
                            }
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest `{}` failed at case {}: {}",
                                stringify!($name), case, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}
