//! Test-runner support types: configuration, case-level error signalling,
//! and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Subset of proptest's run configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps offline CI fast while
        // still exercising a meaningful input spread.
        Self { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; it does not count against
    /// the budget (up to a rejection cap).
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The RNG handed to strategies. Deterministic: seeded from the test name,
/// so a failure reproduces on every run without recording a seed file.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Builds the deterministic RNG for one named test. The optional
/// `PROPTEST_SEED_OFFSET` environment variable (a u64) shifts the whole
/// schedule to explore different cases without code changes.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let offset = std::env::var("PROPTEST_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    TestRng::from_seed(h ^ offset)
}
