/root/repo/vendor/proptest/target/debug/deps/proptest-b821896e06f6b81b.d: src/lib.rs src/strategy.rs src/test_runner.rs

/root/repo/vendor/proptest/target/debug/deps/libproptest-b821896e06f6b81b.rlib: src/lib.rs src/strategy.rs src/test_runner.rs

/root/repo/vendor/proptest/target/debug/deps/libproptest-b821896e06f6b81b.rmeta: src/lib.rs src/strategy.rs src/test_runner.rs

src/lib.rs:
src/strategy.rs:
src/test_runner.rs:
