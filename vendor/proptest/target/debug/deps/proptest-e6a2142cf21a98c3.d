/root/repo/vendor/proptest/target/debug/deps/proptest-e6a2142cf21a98c3.d: src/lib.rs src/strategy.rs src/test_runner.rs

/root/repo/vendor/proptest/target/debug/deps/proptest-e6a2142cf21a98c3: src/lib.rs src/strategy.rs src/test_runner.rs

src/lib.rs:
src/strategy.rs:
src/test_runner.rs:
