/root/repo/vendor/proptest/target/debug/deps/smoke-bd436af89111343b.d: tests/smoke.rs

/root/repo/vendor/proptest/target/debug/deps/smoke-bd436af89111343b: tests/smoke.rs

tests/smoke.rs:
