/root/repo/vendor/proptest/target/debug/deps/rand-6ec56c51644c982e.d: /root/repo/vendor/rand/src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/librand-6ec56c51644c982e.rlib: /root/repo/vendor/rand/src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/librand-6ec56c51644c982e.rmeta: /root/repo/vendor/rand/src/lib.rs

/root/repo/vendor/rand/src/lib.rs:
