//! Smoke tests for the vendored proptest subset itself: the macro must run
//! the configured number of cases, honor rejection, and report failures.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn assume_discards_without_failing(x in 0u32..100) {
        prop_assume!(x % 2 == 0);
        prop_assert!(x % 2 == 0);
    }

    #[test]
    fn strategies_compose(
        (n, v) in (2u32..10).prop_flat_map(|n| (Just(n), prop::collection::vec(0..n, 1..20))),
        flag in any::<bool>(),
    ) {
        prop_assert!(v.len() < 20 && !v.is_empty());
        for x in v {
            prop_assert!(x < n);
        }
        let _ = flag;
    }

    #[test]
    fn oneof_covers_all_arms(choice in prop_oneof![Just(1u8), Just(2u8), (5u8..8)]) {
        prop_assert!(choice == 1 || choice == 2 || (5..8).contains(&choice));
    }
}

#[test]
#[allow(unnameable_test_items)]
fn case_count_is_exact() {
    static RUNS: AtomicU32 = AtomicU32::new(0);
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn counted(x in 0u32..100) {
            RUNS.fetch_add(1, Ordering::Relaxed);
            prop_assert!(x < 100);
        }
    }
    counted();
    assert_eq!(RUNS.load(Ordering::Relaxed), 48);
}

#[test]
#[allow(unnameable_test_items)]
fn failures_are_reported() {
    let result = std::panic::catch_unwind(|| {
        proptest! {
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    });
    assert!(result.is_err(), "failing property must panic");
}

#[test]
#[allow(unnameable_test_items)]
fn generation_is_deterministic() {
    static FIRST: AtomicU32 = AtomicU32::new(u32::MAX);
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(1))]
        #[test]
        fn probe(x in 0u32..1_000_000) {
            let prev = FIRST.swap(x, Ordering::Relaxed);
            prop_assert!(prev == u32::MAX || prev == x);
        }
    }
    probe();
    let a = FIRST.load(Ordering::Relaxed);
    probe();
    let b = FIRST.load(Ordering::Relaxed);
    assert_eq!(a, b, "same test name must yield the same case sequence");
}
