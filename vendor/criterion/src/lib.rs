//! Offline, dependency-free subset of the `criterion` benchmark API used by
//! this workspace. The build environment cannot reach crates.io, so the
//! workspace vendors the slice `benches/micro.rs` calls: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId::from_parameter`, `Bencher::iter`, `sample_size`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are intentionally simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples of an adaptively chosen iteration count,
//! and reports the mean and min per-iteration wall time as plain text. There
//! are no plots, no HTML reports, and no saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Passed to benchmark closures; `iter` times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let stats = run_samples(self.sample_size, &mut f);
        self.criterion.report(&full, stats);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let stats = run_samples(self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self.criterion.report(&full, stats);
        self
    }

    pub fn finish(self) {}
}

struct SampleStats {
    mean: Duration,
    min: Duration,
    iters: u64,
}

fn run_samples<F: FnMut(&mut Bencher)>(samples: usize, f: &mut F) -> SampleStats {
    // Warm-up and calibration: find an iteration count that runs for at
    // least ~2ms per sample so Instant resolution is not the signal.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed / (iters as u32).max(1);
        total += per_iter;
        min = min.min(per_iter);
    }
    SampleStats {
        mean: total / samples.max(1) as u32,
        min,
        iters,
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let stats = run_samples(self.default_sample_size, &mut f);
        self.report(&id.id, stats);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.default_sample_size = n;
        self
    }

    fn report(&mut self, name: &str, stats: SampleStats) {
        println!(
            "{name:<48} mean {:>12?}  min {:>12?}  ({} iters/sample)",
            stats.mean, stats.min, stats.iters
        );
    }
}

/// Re-export so existing `criterion::black_box` call sites keep working.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
