//! Property-based tests for the graph substrate.

use ecl_graph::{gen, io, props, Csr, CsrBuilder};
use proptest::prelude::*;

/// Strategy: an arbitrary edge list over up to `max_n` vertices.
fn edge_lists(max_n: u32) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..200);
        (Just(n), edges)
    })
}

proptest! {
    #[test]
    fn builder_always_produces_valid_csr((n, edges) in edge_lists(64)) {
        let mut b = CsrBuilder::new(n as usize);
        b.extend_edges(edges);
        let g = b.build();
        // Re-validating through from_raw must succeed.
        let rebuilt = Csr::from_raw(
            g.row_offsets().to_vec(),
            g.col_indices().to_vec(),
            None,
        );
        prop_assert!(rebuilt.is_ok());
        // No self-loops, no duplicates within a row.
        for v in 0..g.num_vertices() {
            let nb = g.neighbors(v);
            prop_assert!(!nb.contains(&(v as u32)));
            let mut sorted = nb.to_vec();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), nb.len());
        }
    }

    #[test]
    fn symmetric_builder_is_symmetric((n, edges) in edge_lists(48)) {
        let mut b = CsrBuilder::new(n as usize).symmetric(true);
        b.extend_edges(edges);
        let g = b.build();
        prop_assert!(g.is_symmetric());
    }

    #[test]
    fn transpose_is_involutive((n, edges) in edge_lists(48)) {
        let mut b = CsrBuilder::new(n as usize);
        b.extend_edges(edges);
        let g = b.build();
        prop_assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn transpose_preserves_edge_count((n, edges) in edge_lists(48)) {
        let mut b = CsrBuilder::new(n as usize);
        b.extend_edges(edges);
        let g = b.build();
        prop_assert_eq!(g.transpose().num_edges(), g.num_edges());
    }

    #[test]
    fn io_roundtrip_arbitrary_graphs((n, edges) in edge_lists(48), weighted in any::<bool>()) {
        let mut b = CsrBuilder::new(n as usize).symmetric(true);
        b.extend_edges(edges);
        let mut g = b.build();
        if weighted {
            g = g.with_random_weights(1000, 7);
        }
        let mut buf = Vec::new();
        io::write_graph(&g, &mut buf).unwrap();
        let back = io::read_graph(&buf[..]).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn weights_are_symmetric_and_in_range(
        (n, edges) in edge_lists(48),
        max_w in 1u32..5000,
        seed in any::<u64>(),
    ) {
        let mut b = CsrBuilder::new(n as usize).symmetric(true);
        b.extend_edges(edges);
        let g = b.build().with_random_weights(max_w, seed);
        let w = g.weights().unwrap();
        for (e, (u, v)) in g.edges().enumerate() {
            prop_assert!((1..=max_w).contains(&w[e]));
            // Find the mirror edge's weight.
            let pos = g.neighbors(v as usize).iter().position(|&x| x == u).unwrap();
            let mirror = w[g.row_offsets()[v as usize] as usize + pos];
            prop_assert_eq!(w[e], mirror);
        }
    }

    #[test]
    fn properties_are_consistent((n, edges) in edge_lists(64)) {
        let mut b = CsrBuilder::new(n as usize);
        b.extend_edges(edges);
        let g = b.build();
        let p = props::properties(&g);
        prop_assert_eq!(p.num_vertices, g.num_vertices());
        prop_assert_eq!(p.num_edges, g.num_edges());
        prop_assert!(p.min_degree <= p.max_degree || p.num_vertices == 0);
        let hist = props::degree_histogram(&g);
        prop_assert_eq!(hist.iter().sum::<usize>(), p.num_vertices);
        prop_assert_eq!(
            hist.iter().enumerate().map(|(d, &c)| d * c).sum::<usize>(),
            p.num_edges
        );
    }

    #[test]
    fn generators_are_deterministic(seed in any::<u64>()) {
        let a = gen::rmat(256, 1024, 0.57, 0.19, 0.19, true, seed);
        let b = gen::rmat(256, 1024, 0.57, 0.19, 0.19, true, seed);
        prop_assert_eq!(a, b);
        let a = gen::pref_attach(128, 3, 0.1, seed);
        let b = gen::pref_attach(128, 3, 0.1, seed);
        prop_assert_eq!(a, b);
        let a = gen::road_network(128, 0.05, seed);
        let b = gen::road_network(128, 0.05, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn star_polygon_degrees_exact(n in 8usize..200, step in 2usize..7) {
        prop_assume!(step < n);
        let g = gen::star_polygon(n, step);
        let p = props::properties(&g);
        prop_assert_eq!(p.max_degree, 2);
        prop_assert!(p.min_degree >= 1);
    }
}
