//! Fidelity checks: each catalog stand-in must land in the same structural
//! class as the paper's original input (Tables II/III), and the published
//! metadata must round-trip through the API.

use ecl_graph::inputs::{directed_catalog, undirected_catalog, Directedness, GraphInput};
use ecl_graph::props::{properties, pseudo_diameter};

#[test]
fn paper_metadata_matches_tables() {
    // Spot-check the published numbers the harness prints.
    let kron = GraphInput::by_name("kron_g500-logn21")
        .unwrap()
        .paper_meta();
    assert_eq!(kron.edges, 182_081_864);
    assert_eq!(kron.vertices, 2_097_152);
    assert_eq!(kron.d_max, 213_904);
    let circuit = GraphInput::by_name("circuit5M").unwrap().paper_meta();
    assert_eq!(circuit.d_max, 1_290_501);
    assert_eq!(circuit.kind, "power-law");
    let osm = GraphInput::by_name("europe_osm").unwrap().paper_meta();
    assert!((osm.d_avg - 2.1).abs() < 1e-9);
}

#[test]
fn directedness_matches_tables() {
    for input in undirected_catalog() {
        assert_eq!(
            input.directedness(),
            Directedness::Undirected,
            "{}",
            input.name()
        );
    }
    for input in directed_catalog() {
        assert_eq!(
            input.directedness(),
            Directedness::Directed,
            "{}",
            input.name()
        );
    }
}

/// The average degree of every stand-in should be within a factor of ~2.5
/// of the paper's (exact matching is impossible at 1000x smaller scale, but
/// the degree *class* must be right for the Table IX correlations to mean
/// anything).
#[test]
fn average_degrees_track_the_paper() {
    for input in undirected_catalog().iter().chain(directed_catalog()) {
        let g = input.build(1.0, 1);
        let p = properties(&g);
        let paper = input.paper_meta().d_avg;
        let ratio = p.avg_degree / paper;
        assert!(
            (0.25..=2.5).contains(&ratio),
            "{}: stand-in d-avg {:.1} vs paper {:.1} (ratio {:.2})",
            input.name(),
            p.avg_degree,
            paper,
            ratio
        );
    }
}

#[test]
fn mesh_inputs_have_large_diameter_power_law_small() {
    let klein = GraphInput::by_name("klein-bottle").unwrap().build(1.0, 1);
    let wiki = GraphInput::by_name("wikipedia").unwrap().build(1.0, 1);
    // Directed pseudo-diameter along out-edges.
    let d_klein = pseudo_diameter(&klein, 0);
    let d_wiki = pseudo_diameter(&wiki, 0);
    assert!(
        d_klein > 3 * d_wiki.max(1),
        "mesh diameter {d_klein} should dwarf power-law {d_wiki}"
    );
}

#[test]
fn heavy_tail_inputs_have_heavy_tails() {
    for name in [
        "kron_g500-logn21",
        "as-skitter",
        "circuit5M",
        "soc-LiveJournal1",
    ] {
        let input = GraphInput::by_name(name).unwrap();
        let p = properties(&input.build(1.0, 1));
        assert!(
            p.max_degree as f64 > 8.0 * p.avg_degree,
            "{name}: d-max {} vs d-avg {:.1} — tail too thin",
            p.max_degree,
            p.avg_degree
        );
    }
}

#[test]
fn low_degree_inputs_stay_low_degree() {
    for name in [
        "europe_osm",
        "USA-road-d.NY",
        "USA-road-d.USA",
        "star",
        "toroid-wedge",
    ] {
        let input = GraphInput::by_name(name).unwrap();
        let p = properties(&input.build(1.0, 1));
        assert!(
            p.avg_degree < 3.6,
            "{name}: d-avg {:.1} too high for its class",
            p.avg_degree
        );
        assert!(p.max_degree <= 24, "{name}: d-max {}", p.max_degree);
    }
}
