//! Binary CSR file format (ECLgraph-style).
//!
//! Layout (all little-endian `u32` unless noted):
//!
//! ```text
//! magic "ECLR" | version | flags | num_vertices | num_edges
//! row_offsets[num_vertices + 1]
//! col_indices[num_edges]
//! weights[num_edges]            (only if flags bit 0 set)
//! ```

use crate::{Csr, GraphError};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"ECLR";
const VERSION: u32 = 1;
const FLAG_WEIGHTS: u32 = 1;

/// Writes a graph to `writer` in the binary CSR format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_graph<W: Write>(g: &Csr, mut writer: W) -> std::io::Result<()> {
    writer.write_all(MAGIC)?;
    let flags = if g.weights().is_some() {
        FLAG_WEIGHTS
    } else {
        0
    };
    for word in [
        VERSION,
        flags,
        g.num_vertices() as u32,
        g.num_edges() as u32,
    ] {
        writer.write_all(&word.to_le_bytes())?;
    }
    for &w in g.row_offsets() {
        writer.write_all(&w.to_le_bytes())?;
    }
    for &w in g.col_indices() {
        writer.write_all(&w.to_le_bytes())?;
    }
    if let Some(weights) = g.weights() {
        for &w in weights {
            writer.write_all(&w.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a graph previously written by [`write_graph`].
///
/// # Errors
///
/// Returns [`GraphError::Format`] on malformed input and propagates the
/// validation errors of [`Csr::from_raw`].
pub fn read_graph<R: Read>(mut reader: R) -> Result<Csr, GraphError> {
    let mut magic = [0u8; 4];
    read_exact(&mut reader, &mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Format("bad magic".into()));
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(GraphError::Format(format!("unsupported version {version}")));
    }
    let flags = read_u32(&mut reader)?;
    let n = read_u32(&mut reader)? as usize;
    let m = read_u32(&mut reader)? as usize;
    let row_offsets = read_u32_vec(&mut reader, n + 1)?;
    let col_indices = read_u32_vec(&mut reader, m)?;
    let weights = if flags & FLAG_WEIGHTS != 0 {
        Some(read_u32_vec(&mut reader, m)?)
    } else {
        None
    };
    Csr::from_raw(row_offsets, col_indices, weights)
}

/// Writes a graph to a file path. See [`write_graph`].
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save<P: AsRef<Path>>(g: &Csr, path: P) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_graph(g, std::io::BufWriter::new(file))
}

/// Reads a graph from a file path. See [`read_graph`].
///
/// # Errors
///
/// Returns [`GraphError::Io`] — reporting the path — when the file cannot be
/// opened or decoded.
pub fn load<P: AsRef<Path>>(path: P) -> Result<Csr, GraphError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| GraphError::Io {
        path: path.display().to_string(),
        message: format!("open failed: {e}"),
    })?;
    read_graph(std::io::BufReader::new(file)).map_err(|e| e.in_file(path))
}

fn read_exact<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<(), GraphError> {
    reader
        .read_exact(buf)
        .map_err(|e| GraphError::Format(format!("short read: {e}")))
}

fn read_u32<R: Read>(reader: &mut R) -> Result<u32, GraphError> {
    let mut buf = [0u8; 4];
    read_exact(reader, &mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u32_vec<R: Read>(reader: &mut R, len: usize) -> Result<Vec<u32>, GraphError> {
    let mut bytes = vec![0u8; len * 4];
    read_exact(reader, &mut bytes)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_unweighted() {
        let g = gen::rmat(256, 1024, 0.57, 0.19, 0.19, true, 4);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_weighted() {
        let g = gen::grid2d_torus(8, 8).with_random_weights(1000, 3);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_graph(&b"NOPE\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, GraphError::Format(_)));
    }

    #[test]
    fn rejects_truncated_file() {
        let g = gen::grid2d_torus(4, 4);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_graph(&buf[..]).is_err());
    }
}
