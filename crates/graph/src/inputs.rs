//! The input catalog: every row of the paper's Table II (undirected) and
//! Table III (directed), mapped to a scaled synthetic generator.
//!
//! The `scale` parameter multiplies the default (scale = 1.0) vertex budget;
//! the defaults are chosen so the full experiment matrix completes in minutes
//! on one CPU core (the paper's originals are 250–5000× larger — see
//! DESIGN.md §2 for the substitution rationale).

use crate::{gen, Csr};

/// Whether an input is an undirected (Table II) or directed (Table III) graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Directedness {
    /// Symmetric CSR; used by CC, GC, MIS, and MST.
    Undirected,
    /// Directed CSR; used by SCC.
    Directed,
}

/// Metadata published in the paper's input tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperMeta {
    /// Edge count from Table II/III.
    pub edges: u64,
    /// Vertex count from Table II/III.
    pub vertices: u64,
    /// The "Type" column.
    pub kind: &'static str,
    /// Average degree column.
    pub d_avg: f64,
    /// Maximum degree column.
    pub d_max: u64,
}

/// One row of the input catalog.
#[derive(Clone, Copy)]
pub struct GraphInput {
    name: &'static str,
    directedness: Directedness,
    paper: PaperMeta,
    builder: fn(f64, u64) -> Csr,
}

impl std::fmt::Debug for GraphInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphInput")
            .field("name", &self.name)
            .field("directedness", &self.directedness)
            .finish_non_exhaustive()
    }
}

impl GraphInput {
    /// The input's name, identical to the paper's tables.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether this is a Table II (undirected) or Table III (directed) input.
    pub fn directedness(&self) -> Directedness {
        self.directedness
    }

    /// The metadata the paper publishes for the original input.
    pub fn paper_meta(&self) -> PaperMeta {
        self.paper
    }

    /// Builds the scaled synthetic stand-in.
    ///
    /// `scale` multiplies the default vertex budget (1.0 = the repo default);
    /// `seed` controls all randomness.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive or is small enough to underflow a
    /// generator's minimum size.
    pub fn build(&self, scale: f64, seed: u64) -> Csr {
        assert!(scale > 0.0, "scale must be positive");
        (self.builder)(scale, seed)
    }

    /// [`build`](Self::build) with the scale validated up front, for tools
    /// that must turn bad user input into a diagnostic instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::Format`] when `scale` is not a positive
    /// finite number.
    pub fn try_build(&self, scale: f64, seed: u64) -> Result<Csr, crate::GraphError> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(crate::GraphError::Format(format!(
                "scale must be a positive finite number, got {scale}"
            )));
        }
        Ok((self.builder)(scale, seed))
    }

    /// Looks up a catalog entry by its paper name.
    pub fn by_name(name: &str) -> Option<GraphInput> {
        undirected_catalog()
            .iter()
            .chain(directed_catalog().iter())
            .find(|i| i.name == name)
            .copied()
    }
}

/// Scales a vertex budget, keeping at least `min`.
fn sv(base: usize, scale: f64, min: usize) -> usize {
    ((base as f64 * scale) as usize).max(min)
}

/// The 17 undirected inputs of Table II (used by CC, GC, MIS, MST).
pub fn undirected_catalog() -> &'static [GraphInput] {
    macro_rules! meta {
        ($e:expr, $v:expr, $k:expr, $da:expr, $dm:expr) => {
            PaperMeta {
                edges: $e,
                vertices: $v,
                kind: $k,
                d_avg: $da,
                d_max: $dm,
            }
        };
    }
    const CATALOG: &[GraphInput] = &[
        GraphInput {
            name: "2d-2e20.sym",
            directedness: Directedness::Undirected,
            paper: meta!(4_190_208, 1_048_576, "grid", 4.0, 4),
            builder: |s, _| {
                let side = (sv(4096, s, 64) as f64).sqrt() as usize;
                gen::grid2d_torus(side, side)
            },
        },
        GraphInput {
            name: "amazon0601",
            directedness: Directedness::Undirected,
            paper: meta!(4_886_816, 403_394, "co-purchases", 12.1, 2_752),
            builder: |s, seed| gen::pref_attach(sv(4000, s, 64), 6, 0.02, seed),
        },
        GraphInput {
            name: "as-skitter",
            directedness: Directedness::Undirected,
            paper: meta!(22_190_596, 1_696_415, "Internet topology", 13.1, 35_455),
            builder: |s, seed| gen::pref_attach(sv(6000, s, 64), 6, 0.12, seed),
        },
        GraphInput {
            name: "citationCiteseer",
            directedness: Directedness::Undirected,
            paper: meta!(2_313_294, 268_495, "publication citations", 8.6, 1_318),
            builder: |s, seed| gen::pref_attach(sv(2700, s, 64), 4, 0.03, seed),
        },
        GraphInput {
            name: "cit-Patents",
            directedness: Directedness::Undirected,
            paper: meta!(33_037_894, 3_774_768, "patent citations", 8.8, 793),
            builder: |s, seed| gen::pref_attach(sv(15000, s, 64), 4, 0.005, seed),
        },
        GraphInput {
            name: "coPapersDBLP",
            directedness: Directedness::Undirected,
            paper: meta!(30_491_458, 540_486, "publication citations", 56.4, 3_299),
            builder: |s, seed| {
                let n = sv(2200, s, 64);
                gen::clique_overlay(n, n / 2, 10, seed)
            },
        },
        GraphInput {
            name: "delaunay_n24",
            directedness: Directedness::Undirected,
            paper: meta!(100_663_202, 16_777_216, "triangulation", 6.0, 26),
            builder: |s, seed| gen::delaunay_like(sv(16384, s, 64), seed),
        },
        GraphInput {
            name: "europe_osm",
            directedness: Directedness::Undirected,
            paper: meta!(108_109_320, 50_912_018, "roadmap", 2.1, 13),
            builder: |s, seed| gen::road_network(sv(32768, s, 64), 0.02, seed),
        },
        GraphInput {
            name: "in-2004",
            directedness: Directedness::Undirected,
            paper: meta!(27_182_946, 1_382_908, "weblinks", 19.7, 21_869),
            builder: |s, seed| gen::pref_attach(sv(5500, s, 64), 9, 0.10, seed),
        },
        GraphInput {
            name: "internet",
            directedness: Directedness::Undirected,
            paper: meta!(387_240, 124_651, "Internet topology", 3.1, 151),
            builder: |s, seed| gen::pref_attach(sv(2000, s, 64), 2, 0.01, seed),
        },
        GraphInput {
            name: "kron_g500-logn21",
            directedness: Directedness::Undirected,
            paper: meta!(182_081_864, 2_097_152, "Kronecker", 86.8, 213_904),
            builder: |s, seed| {
                let n = sv(8192, s, 64);
                gen::rmat(n, n * 20, 0.57, 0.19, 0.19, true, seed)
            },
        },
        GraphInput {
            name: "r4-2e23.sym",
            directedness: Directedness::Undirected,
            paper: meta!(67_108_846, 8_388_608, "random", 8.0, 26),
            builder: |s, seed| {
                let n = sv(16384, s, 64);
                gen::random_uniform(n, n * 4, true, seed)
            },
        },
        GraphInput {
            name: "rmat16.sym",
            directedness: Directedness::Undirected,
            paper: meta!(967_866, 65_536, "RMAT", 14.8, 569),
            builder: |s, seed| {
                let n = sv(4096, s, 64);
                gen::rmat(n, n * 7, 0.45, 0.22, 0.22, true, seed)
            },
        },
        GraphInput {
            name: "rmat22.sym",
            directedness: Directedness::Undirected,
            paper: meta!(65_660_814, 4_194_304, "RMAT", 15.7, 3_687),
            builder: |s, seed| {
                let n = sv(16384, s, 64);
                gen::rmat(n, n * 8, 0.45, 0.22, 0.22, true, seed)
            },
        },
        GraphInput {
            name: "soc-LiveJournal1",
            directedness: Directedness::Undirected,
            paper: meta!(85_702_474, 4_847_571, "community", 17.7, 20_333),
            builder: |s, seed| gen::pref_attach(sv(16384, s, 64), 8, 0.03, seed),
        },
        GraphInput {
            name: "USA-road-d.NY",
            directedness: Directedness::Undirected,
            paper: meta!(730_100, 264_346, "roadmap", 2.8, 8),
            builder: |s, seed| gen::road_network(sv(4096, s, 64), 0.08, seed),
        },
        GraphInput {
            name: "USA-road-d.USA",
            directedness: Directedness::Undirected,
            paper: meta!(57_708_624, 23_947_347, "roadmap", 2.4, 9),
            builder: |s, seed| gen::road_network(sv(24576, s, 64), 0.04, seed),
        },
    ];
    CATALOG
}

/// The 10 directed inputs of Table III (used by SCC).
pub fn directed_catalog() -> &'static [GraphInput] {
    macro_rules! meta {
        ($e:expr, $v:expr, $k:expr, $da:expr, $dm:expr) => {
            PaperMeta {
                edges: $e,
                vertices: $v,
                kind: $k,
                d_avg: $da,
                d_max: $dm,
            }
        };
    }
    const CATALOG: &[GraphInput] = &[
        GraphInput {
            name: "cage14",
            directedness: Directedness::Directed,
            paper: meta!(27_130_349, 1_505_785, "power-law", 18.02, 41),
            builder: |s, seed| gen::near_regular_directed(sv(5000, s, 64), 16, seed),
        },
        GraphInput {
            name: "circuit5M",
            directedness: Directedness::Directed,
            paper: meta!(59_524_291, 5_558_326, "power-law", 10.71, 1_290_501),
            builder: |s, seed| gen::hub_directed(sv(8192, s, 64), 8, 0.23, seed),
        },
        GraphInput {
            name: "cold-flow",
            directedness: Directedness::Directed,
            paper: meta!(6_295_941, 2_112_512, "mesh", 2.98, 5),
            builder: |s, _| {
                let side = ((sv(8192, s, 64) as f64).powf(1.0 / 3.0)) as usize;
                gen::mesh3d_directed(side.max(2) * 2, side.max(2), side.max(2))
            },
        },
        GraphInput {
            name: "flickr",
            directedness: Directedness::Directed,
            paper: meta!(9_837_214, 820_878, "power-law", 11.98, 10_272),
            builder: |s, seed| gen::pref_attach_directed(sv(3300, s, 64), 8, 0.08, seed),
        },
        GraphInput {
            name: "klein-bottle",
            directedness: Directedness::Directed,
            paper: meta!(18_793_715, 8_388_608, "mesh", 2.24, 4),
            builder: |s, seed| {
                let side = (sv(16384, s, 64) as f64).sqrt() as usize;
                gen::klein_bottle(side, side, seed)
            },
        },
        GraphInput {
            name: "star",
            directedness: Directedness::Directed,
            paper: meta!(654_080, 327_680, "mesh", 2.00, 2),
            builder: |s, _| gen::star_polygon(sv(1280, s, 64), 37),
        },
        GraphInput {
            name: "toroid-hex",
            directedness: Directedness::Directed,
            paper: meta!(4_684_142, 1_572_864, "mesh", 2.98, 4),
            builder: |s, _| {
                let side = (sv(6144, s, 64) as f64).sqrt() as usize;
                gen::toroid_hex(side, side)
            },
        },
        GraphInput {
            name: "toroid-wedge",
            directedness: Directedness::Directed,
            paper: meta!(487_798, 196_608, "mesh", 2.48, 4),
            builder: |s, _| {
                let side = (sv(768, s, 16) as f64).sqrt() as usize;
                gen::toroid_wedge(side.max(4), side.max(4))
            },
        },
        GraphInput {
            name: "web-Google",
            directedness: Directedness::Directed,
            paper: meta!(5_105_039, 916_428, "power-law", 5.57, 456),
            builder: |s, seed| gen::pref_attach_directed(sv(3600, s, 64), 4, 0.01, seed),
        },
        GraphInput {
            name: "wikipedia",
            directedness: Directedness::Directed,
            paper: meta!(39_383_235, 3_148_440, "power-law", 12.51, 6_576),
            builder: |s, seed| gen::pref_attach_directed(sv(12288, s, 64), 8, 0.03, seed),
        },
    ];
    CATALOG
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::properties;

    #[test]
    fn catalog_sizes_match_paper_tables() {
        assert_eq!(undirected_catalog().len(), 17);
        assert_eq!(directed_catalog().len(), 10);
    }

    #[test]
    fn all_names_unique() {
        let mut names: Vec<_> = undirected_catalog()
            .iter()
            .chain(directed_catalog())
            .map(|i| i.name())
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn by_name_finds_entries() {
        assert!(GraphInput::by_name("rmat16.sym").is_some());
        assert!(GraphInput::by_name("wikipedia").is_some());
        assert!(GraphInput::by_name("no-such-graph").is_none());
    }

    #[test]
    fn undirected_inputs_build_symmetric_graphs() {
        for input in undirected_catalog() {
            let g = input.build(0.1, 1);
            assert!(g.num_vertices() >= 16, "{} too small", input.name());
            assert!(g.is_symmetric(), "{} should be symmetric", input.name());
        }
    }

    #[test]
    fn directed_inputs_build_nonempty_graphs() {
        for input in directed_catalog() {
            let g = input.build(0.1, 1);
            assert!(g.num_edges() > 0, "{} empty", input.name());
        }
    }

    #[test]
    fn degree_classes_roughly_match_paper() {
        // Spot-check that each scaled stand-in lands in the right degree
        // class (mesh vs power-law vs road).
        let road = properties(&GraphInput::by_name("europe_osm").unwrap().build(0.25, 1));
        assert!(road.avg_degree < 3.5);
        let kron = properties(
            &GraphInput::by_name("kron_g500-logn21")
                .unwrap()
                .build(0.25, 1),
        );
        assert!(kron.max_degree as f64 > 20.0 * kron.avg_degree);
        let star = properties(&GraphInput::by_name("star").unwrap().build(1.0, 1));
        assert_eq!(star.max_degree, 2);
    }

    #[test]
    fn scale_changes_size() {
        let small = GraphInput::by_name("r4-2e23.sym").unwrap().build(0.1, 1);
        let large = GraphInput::by_name("r4-2e23.sym").unwrap().build(0.5, 1);
        assert!(large.num_vertices() > 3 * small.num_vertices());
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        let _ = GraphInput::by_name("star").unwrap().build(0.0, 1);
    }
}
