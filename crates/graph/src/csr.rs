//! Compressed-sparse-row graph representation.

use std::fmt;

/// Error type for graph construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a vertex id outside `0..num_vertices`.
    VertexOutOfRange { vertex: u32, num_vertices: u32 },
    /// The row-offset array is not monotonically non-decreasing.
    NonMonotonicOffsets { row: usize },
    /// The offsets/indices/weights arrays have inconsistent lengths.
    InconsistentLengths,
    /// An I/O or decode problem (see [`crate::io`]).
    Format(String),
    /// A parse error at a specific line of a text input (see [`crate::mtx`]).
    /// `path` is empty when the input was an anonymous stream.
    Parse {
        /// Source file, or empty for a stream.
        path: String,
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// An I/O failure on a specific file.
    Io {
        /// The file involved.
        path: String,
        /// The underlying I/O error.
        message: String,
    },
}

impl GraphError {
    /// Attaches a file path to an error produced while reading an anonymous
    /// stream, so callers see `graph.mtx:17: bad coordinate` instead of just
    /// the line. Leaves errors that already carry a path untouched.
    pub fn in_file(self, path: &std::path::Path) -> GraphError {
        let name = path.display().to_string();
        match self {
            GraphError::Parse {
                path,
                line,
                message,
            } if path.is_empty() => GraphError::Parse {
                path: name,
                line,
                message,
            },
            GraphError::Format(message) => GraphError::Io {
                path: name,
                message,
            },
            other => other,
        }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(f, "vertex {vertex} out of range (n = {num_vertices})"),
            GraphError::NonMonotonicOffsets { row } => {
                write!(f, "row offsets decrease at row {row}")
            }
            GraphError::InconsistentLengths => write!(f, "inconsistent array lengths"),
            GraphError::Format(msg) => write!(f, "bad graph format: {msg}"),
            GraphError::Parse {
                path,
                line,
                message,
            } => {
                let path = if path.is_empty() { "<stream>" } else { path };
                write!(f, "{path}:{line}: {message}")
            }
            GraphError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed or undirected graph in compressed-sparse-row format.
///
/// An undirected graph stores each edge twice (once per direction), exactly
/// like the ECL graph files used by the paper. Edge weights are optional and
/// only used by the weighted algorithms (MST, APSP).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    row_offsets: Vec<u32>,
    col_indices: Vec<u32>,
    weights: Option<Vec<u32>>,
}

impl Csr {
    /// Creates a CSR graph from raw arrays, validating the invariants.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if offsets are non-monotonic, lengths are
    /// inconsistent, or any column index is out of range.
    pub fn from_raw(
        row_offsets: Vec<u32>,
        col_indices: Vec<u32>,
        weights: Option<Vec<u32>>,
    ) -> Result<Self, GraphError> {
        if row_offsets.is_empty() || *row_offsets.last().unwrap() as usize != col_indices.len() {
            return Err(GraphError::InconsistentLengths);
        }
        if let Some(w) = &weights {
            if w.len() != col_indices.len() {
                return Err(GraphError::InconsistentLengths);
            }
        }
        for i in 1..row_offsets.len() {
            if row_offsets[i] < row_offsets[i - 1] {
                return Err(GraphError::NonMonotonicOffsets { row: i });
            }
        }
        let n = (row_offsets.len() - 1) as u32;
        for &c in &col_indices {
            if c >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: c,
                    num_vertices: n,
                });
            }
        }
        Ok(Csr {
            row_offsets,
            col_indices,
            weights,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of stored (directed) edges. For undirected graphs this counts
    /// each edge twice, matching the paper's Table II/III edge counts.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col_indices.len()
    }

    /// Row-offset array (`num_vertices + 1` entries).
    #[inline]
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    /// Column-index array (`num_edges` entries).
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// Edge weights, if present.
    #[inline]
    pub fn weights(&self) -> Option<&[u32]> {
        self.weights.as_deref()
    }

    /// The out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.row_offsets[v + 1] - self.row_offsets[v]) as usize
    }

    /// The neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let b = self.row_offsets[v] as usize;
        let e = self.row_offsets[v + 1] as usize;
        &self.col_indices[b..e]
    }

    /// Iterates over all directed edges as `(src, dst)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices())
            .flat_map(move |v| self.neighbors(v).iter().map(move |&u| (v as u32, u)))
    }

    /// Returns `true` if for every stored edge `(u, v)` the reverse edge
    /// `(v, u)` is also stored (i.e. the graph is a symmetric/undirected CSR).
    pub fn is_symmetric(&self) -> bool {
        for v in 0..self.num_vertices() {
            for &u in self.neighbors(v) {
                if !self.neighbors(u as usize).contains(&(v as u32)) {
                    return false;
                }
            }
        }
        true
    }

    /// Builds the transpose (all edges reversed). Weights follow their edges.
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut counts = vec![0u32; n + 1];
        for &c in &self.col_indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_offsets = counts.clone();
        let mut cursor = counts;
        let mut col_indices = vec![0u32; self.col_indices.len()];
        let mut weights = self.weights.as_ref().map(|w| vec![0u32; w.len()]);
        for v in 0..n {
            let b = self.row_offsets[v] as usize;
            let e = self.row_offsets[v + 1] as usize;
            for i in b..e {
                let u = self.col_indices[i] as usize;
                let slot = cursor[u] as usize;
                cursor[u] += 1;
                col_indices[slot] = v as u32;
                if let (Some(dst), Some(src)) = (&mut weights, &self.weights) {
                    dst[slot] = src[i];
                }
            }
        }
        Csr {
            row_offsets,
            col_indices,
            weights,
        }
    }

    /// Attaches deterministic pseudo-random edge weights in `1..=max_weight`.
    ///
    /// Symmetric edges `(u, v)` and `(v, u)` receive the same weight (required
    /// by MST), derived from a hash of the unordered endpoint pair and `seed`.
    pub fn with_random_weights(mut self, max_weight: u32, seed: u64) -> Csr {
        assert!(max_weight >= 1, "max_weight must be at least 1");
        let mut weights = vec![0u32; self.col_indices.len()];
        for v in 0..self.num_vertices() {
            let b = self.row_offsets[v] as usize;
            let e = self.row_offsets[v + 1] as usize;
            for (i, w) in weights[b..e].iter_mut().enumerate() {
                let u = self.col_indices[b + i] as usize;
                let (a, b2) = if v <= u { (v, u) } else { (u, v) };
                *w = 1 + (edge_hash(a as u64, b2 as u64, seed) % max_weight as u64) as u32;
            }
        }
        self.weights = Some(weights);
        self
    }
}

/// Deterministic 64-bit mix used for symmetric edge weights.
fn edge_hash(a: u64, b: u64, seed: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
        .wrapping_add(seed.wrapping_mul(0x1656_67b1_9e37_79f9));
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Incremental builder that collects an edge list and produces a [`Csr`].
///
/// Duplicate edges and self-loops are removed, matching how the ECL input
/// graphs are preprocessed.
#[derive(Debug, Clone, Default)]
pub struct CsrBuilder {
    num_vertices: usize,
    edges: Vec<(u32, u32)>,
    symmetric: bool,
}

impl CsrBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        CsrBuilder {
            num_vertices,
            edges: Vec::new(),
            symmetric: false,
        }
    }

    /// When set, every added edge is mirrored so the result is undirected.
    pub fn symmetric(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// Adds a directed edge. Out-of-range endpoints and self-loops are
    /// silently dropped (they are dropped by ECL preprocessing too).
    pub fn add_edge(&mut self, src: u32, dst: u32) -> &mut Self {
        let n = self.num_vertices as u32;
        if src < n && dst < n && src != dst {
            self.edges.push((src, dst));
            if self.symmetric {
                self.edges.push((dst, src));
            }
        }
        self
    }

    /// Adds every edge from an iterator of `(src, dst)` pairs.
    pub fn extend_edges<I: IntoIterator<Item = (u32, u32)>>(&mut self, iter: I) -> &mut Self {
        for (s, d) in iter {
            self.add_edge(s, d);
        }
        self
    }

    /// Number of edges currently staged (after mirroring, before dedup).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Sorts, deduplicates, and produces the CSR arrays.
    pub fn build(mut self) -> Csr {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.num_vertices;
        let mut row_offsets = vec![0u32; n + 1];
        for &(s, _) in &self.edges {
            row_offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            row_offsets[i + 1] += row_offsets[i];
        }
        let col_indices = self.edges.iter().map(|&(_, d)| d).collect();
        Csr {
            row_offsets,
            col_indices,
            weights: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Csr {
        let mut b = CsrBuilder::new(3).symmetric(true);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        b.build()
    }

    #[test]
    fn builder_produces_valid_symmetric_graph() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_symmetric());
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn builder_drops_self_loops_and_duplicates() {
        let mut b = CsrBuilder::new(4);
        b.add_edge(0, 0)
            .add_edge(1, 2)
            .add_edge(1, 2)
            .add_edge(9, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(1), &[2]);
    }

    #[test]
    fn from_raw_rejects_bad_offsets() {
        let err = Csr::from_raw(vec![0, 2, 1, 2], vec![0, 1], None).unwrap_err();
        assert_eq!(err, GraphError::NonMonotonicOffsets { row: 2 });
    }

    #[test]
    fn from_raw_rejects_out_of_range_vertex() {
        let err = Csr::from_raw(vec![0, 1], vec![5], None).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
    }

    #[test]
    fn from_raw_rejects_inconsistent_lengths() {
        assert_eq!(
            Csr::from_raw(vec![0, 2], vec![0], None).unwrap_err(),
            GraphError::InconsistentLengths
        );
        assert_eq!(
            Csr::from_raw(vec![0, 1, 1], vec![1], Some(vec![1, 2])).unwrap_err(),
            GraphError::InconsistentLengths
        );
    }

    #[test]
    fn transpose_reverses_edges() {
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 1).add_edge(0, 2).add_edge(1, 2);
        let g = b.build();
        let t = g.transpose();
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.neighbors(0), &[] as &[u32]);
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn transpose_carries_weights() {
        let g = Csr::from_raw(vec![0, 2, 2], vec![0, 1], None).unwrap_or_else(|_| unreachable!());
        // 0 -> 0 is impossible via builder but fine via raw; use 2 vertices.
        let g = Csr {
            row_offsets: g.row_offsets.clone(),
            col_indices: vec![1, 0],
            weights: Some(vec![7, 9]),
        };
        let t = g.transpose();
        assert_eq!(t.weights().unwrap().len(), 2);
        // edge 0->1 w7 becomes 1->0 w7; edge 0->0 w9 stays at row 0.
        assert_eq!(t.neighbors(1), &[0]);
    }

    #[test]
    fn symmetric_weights_match_on_both_directions() {
        let g = triangle().with_random_weights(100, 11);
        let w = g.weights().unwrap();
        // Find weight of (0,1) and of (1,0); they must be equal.
        let w01 =
            w[g.row_offsets()[0] as usize + g.neighbors(0).iter().position(|&x| x == 1).unwrap()];
        let w10 =
            w[g.row_offsets()[1] as usize + g.neighbors(1).iter().position(|&x| x == 0).unwrap()];
        assert_eq!(w01, w10);
        assert!((1..=100).contains(&w01));
    }

    #[test]
    fn edges_iterator_covers_all_edges() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 6);
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(2, 0)));
    }
}
