//! Matrix Market (`.mtx`) import/export.
//!
//! The paper's original inputs are SuiteSparse/SNAP matrices distributed in
//! the Matrix Market coordinate format; this module lets the suite load the
//! *real* graphs when they are available, instead of the synthetic
//! stand-ins. Supports the `matrix coordinate` format with `pattern`,
//! `integer`, or `real` values and `general` or `symmetric` symmetry.

use crate::{Csr, CsrBuilder, GraphError};
use std::io::{BufRead, Write};
use std::path::Path;

/// How the entry values of an `.mtx` file are mapped to edge weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueKind {
    Pattern,
    Integer,
    Real,
}

/// Parses a Matrix Market stream into a graph.
///
/// Rows/columns become vertices, entries become edges; `symmetric` files
/// are mirrored. Self-loops are dropped (as in ECL preprocessing). Values
/// are rounded/clamped into `u32` weights when present; `pattern` files
/// yield an unweighted graph.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] — carrying the 1-based line number — for
/// anything that is not a supported `matrix coordinate` file. Use
/// [`GraphError::in_file`] (or [`load_mtx`], which does it for you) to
/// attach the file path.
pub fn read_mtx<R: BufRead>(reader: R) -> Result<Csr, GraphError> {
    let at = |line: usize, message: String| GraphError::Parse {
        path: String::new(),
        line,
        message,
    };
    let mut lines = reader
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.map_err(|e| at(i + 1, format!("read failed: {e}")))));

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let header = match lines.next() {
        Some((_, line)) => line?,
        None => return Err(at(1, "empty file".into())),
    };
    let lower = header.to_lowercase();
    let tokens: Vec<&str> = lower.split_whitespace().collect();
    if tokens.len() < 5 || !tokens[0].starts_with("%%matrixmarket") {
        return Err(at(1, "missing MatrixMarket header".into()));
    }
    if tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(at(
            1,
            format!("unsupported object/format '{} {}'", tokens[1], tokens[2]),
        ));
    }
    let value_kind = match tokens[3] {
        "pattern" => ValueKind::Pattern,
        "integer" => ValueKind::Integer,
        "real" => ValueKind::Real,
        other => return Err(at(1, format!("unsupported field '{other}'"))),
    };
    let symmetric = match tokens[4] {
        "general" => false,
        "symmetric" => true,
        other => return Err(at(1, format!("unsupported symmetry '{other}'"))),
    };

    // Size line (skipping comments).
    let mut size_line = None;
    let mut last_line = 1;
    for (lineno, line) in lines.by_ref() {
        let line = line?;
        last_line = lineno;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some((lineno, trimmed.to_string()));
        break;
    }
    let (size_lineno, size_line) =
        size_line.ok_or_else(|| at(last_line, "missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| at(size_lineno, format!("bad size token '{t}'")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(at(size_lineno, "size line needs rows cols nnz".into()));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);
    let n = rows.max(cols);

    let mut builder = CsrBuilder::new(n).symmetric(symmetric);
    let mut weights: Vec<((u32, u32), u32)> = Vec::new();
    let mut seen = 0usize;
    for (lineno, line) in lines {
        let line = line?;
        last_line = lineno;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: u32 = parse_coord(it.next(), lineno)?;
        let c: u32 = parse_coord(it.next(), lineno)?;
        if r as usize > n || c as usize > n {
            return Err(at(
                lineno,
                format!("coordinate ({r}, {c}) outside declared {rows}x{cols} matrix"),
            ));
        }
        // 1-indexed in the format.
        let (src, dst) = (r - 1, c - 1);
        let w = match value_kind {
            ValueKind::Pattern => None,
            ValueKind::Integer => Some(
                it.next()
                    .and_then(|t| t.parse::<i64>().ok())
                    .map(|v| v.unsigned_abs().min(u32::MAX as u64) as u32)
                    .ok_or_else(|| at(lineno, "missing integer value".into()))?,
            ),
            ValueKind::Real => Some(
                it.next()
                    .and_then(|t| t.parse::<f64>().ok())
                    .map(|v| v.abs().round().min(u32::MAX as f64) as u32)
                    .ok_or_else(|| at(lineno, "missing real value".into()))?,
            ),
        };
        if src != dst {
            builder.add_edge(src, dst);
            if let Some(w) = w {
                let key = if symmetric {
                    (src.min(dst), src.max(dst))
                } else {
                    (src, dst)
                };
                weights.push((key, w.max(1)));
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(at(
            last_line,
            format!("entry count mismatch: header says {nnz}, found {seen}"),
        ));
    }

    let g = builder.build();
    if value_kind == ValueKind::Pattern {
        return Ok(g);
    }
    // Attach weights by looking each edge up in the collected map.
    weights.sort_unstable();
    weights.dedup_by_key(|(k, _)| *k);
    let lookup = |a: u32, b: u32| -> u32 {
        let key = if symmetric {
            (a.min(b), a.max(b))
        } else {
            (a, b)
        };
        weights
            .binary_search_by_key(&key, |(k, _)| *k)
            .map(|i| weights[i].1)
            .unwrap_or(1)
    };
    let w: Vec<u32> = g.edges().map(|(u, v)| lookup(u, v)).collect();
    Csr::from_raw(g.row_offsets().to_vec(), g.col_indices().to_vec(), Some(w))
}

fn parse_coord(token: Option<&str>, line: usize) -> Result<u32, GraphError> {
    token
        .and_then(|t| t.parse::<u32>().ok())
        .filter(|&v| v >= 1)
        .ok_or_else(|| GraphError::Parse {
            path: String::new(),
            line,
            message: match token {
                Some(t) => format!("bad coordinate '{t}' (need a 1-based integer)"),
                None => "missing coordinate".into(),
            },
        })
}

/// Writes a graph as a Matrix Market coordinate file (`general` symmetry,
/// `pattern` or `integer` depending on whether the graph is weighted).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_mtx<W: Write>(g: &Csr, mut writer: W) -> std::io::Result<()> {
    let field = if g.weights().is_some() {
        "integer"
    } else {
        "pattern"
    };
    writeln!(writer, "%%MatrixMarket matrix coordinate {field} general")?;
    writeln!(writer, "% written by ecl-graph")?;
    writeln!(
        writer,
        "{} {} {}",
        g.num_vertices(),
        g.num_vertices(),
        g.num_edges()
    )?;
    let weights = g.weights();
    for (e, (u, v)) in g.edges().enumerate() {
        match weights {
            Some(w) => writeln!(writer, "{} {} {}", u + 1, v + 1, w[e])?,
            None => writeln!(writer, "{} {}", u + 1, v + 1)?,
        }
    }
    Ok(())
}

/// Reads an `.mtx` file from a path. See [`read_mtx`].
///
/// # Errors
///
/// Returns [`GraphError::Io`] when the file cannot be opened and
/// [`GraphError::Parse`] for malformed content; both report the path (and,
/// for parse errors, the line).
pub fn load_mtx<P: AsRef<Path>>(path: P) -> Result<Csr, GraphError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| GraphError::Io {
        path: path.display().to_string(),
        message: format!("open failed: {e}"),
    })?;
    read_mtx(std::io::BufReader::new(file)).map_err(|e| e.in_file(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pattern_symmetric() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    % a triangle\n\
                    3 3 3\n\
                    2 1\n\
                    3 1\n\
                    3 2\n";
        let g = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6); // mirrored
        assert!(g.is_symmetric());
        assert!(g.weights().is_none());
    }

    #[test]
    fn parses_integer_general() {
        let text = "%%MatrixMarket matrix coordinate integer general\n\
                    2 2 2\n\
                    1 2 7\n\
                    2 1 9\n";
        let g = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        let w = g.weights().unwrap();
        assert_eq!(w.len(), 2);
        assert!(w.contains(&7) && w.contains(&9));
    }

    #[test]
    fn parses_real_values_rounded() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 1\n\
                    1 2 3.7\n";
        let g = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(g.weights().unwrap()[0], 4);
    }

    #[test]
    fn drops_self_loops_but_counts_them() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 1\n\
                    1 2\n";
        let g = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rejects_bad_header_and_counts() {
        assert!(read_mtx("not a matrix\n1 1 0\n".as_bytes()).is_err());
        assert!(read_mtx(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 5\n1 2\n".as_bytes()
        )
        .is_err());
        assert!(
            read_mtx("%%MatrixMarket matrix array real general\n2 2 1\n1 2 1.0\n".as_bytes())
                .is_err()
        );
    }

    #[test]
    fn parse_errors_report_the_line() {
        // Bad coordinate on line 4 (header, size, good entry, bad entry).
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    3 3 2\n\
                    1 2\n\
                    1 frog\n";
        match read_mtx(text.as_bytes()).unwrap_err() {
            GraphError::Parse { line, message, .. } => {
                assert_eq!(line, 4);
                assert!(message.contains("frog"), "got: {message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_coordinates_are_an_error_not_a_panic() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 1\n\
                    1 9\n";
        match read_mtx(text.as_bytes()).unwrap_err() {
            GraphError::Parse { line, message, .. } => {
                assert_eq!(line, 3);
                assert!(message.contains("outside declared"), "got: {message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn load_errors_report_the_path() {
        let err = load_mtx("/no/such/dir/graph.mtx").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("/no/such/dir/graph.mtx"), "got: {text}");
        // Parse errors get the path stitched in by load_mtx.
        let dir = std::env::temp_dir().join("ecl_mtx_err_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.mtx");
        std::fs::write(&path, "not a matrix\n").unwrap();
        let text = load_mtx(&path).unwrap_err().to_string();
        assert!(text.contains("bad.mtx:1:"), "got: {text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn roundtrip_through_mtx() {
        let g = crate::gen::rmat(64, 256, 0.5, 0.2, 0.2, true, 3).with_random_weights(50, 1);
        let mut buf = Vec::new();
        write_mtx(&g, &mut buf).unwrap();
        let back = read_mtx(&buf[..]).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_unweighted() {
        let g = crate::gen::star_polygon(32, 5);
        let mut buf = Vec::new();
        write_mtx(&g, &mut buf).unwrap();
        let back = read_mtx(&buf[..]).unwrap();
        assert_eq!(g, back);
    }
}
