//! Structural graph properties (Table II/III metadata columns).

use crate::Csr;

/// Degree statistics and sizes of a graph, as reported in the paper's input
/// tables and used for the Table IX correlation study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphProperties {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of stored (directed) edges.
    pub num_edges: usize,
    /// Average out-degree (`num_edges / num_vertices`).
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Minimum out-degree.
    pub min_degree: usize,
}

/// Computes [`GraphProperties`] for a graph.
///
/// # Example
///
/// ```
/// let g = ecl_graph::gen::grid2d_torus(8, 8);
/// let p = ecl_graph::props::properties(&g);
/// assert_eq!(p.max_degree, 4);
/// ```
pub fn properties(g: &Csr) -> GraphProperties {
    let n = g.num_vertices();
    let mut max_degree = 0usize;
    let mut min_degree = usize::MAX;
    for v in 0..n {
        let d = g.degree(v);
        max_degree = max_degree.max(d);
        min_degree = min_degree.min(d);
    }
    if n == 0 {
        min_degree = 0;
    }
    GraphProperties {
        num_vertices: n,
        num_edges: g.num_edges(),
        avg_degree: if n == 0 {
            0.0
        } else {
            g.num_edges() as f64 / n as f64
        },
        max_degree,
        min_degree,
    }
}

/// Counts the connected components of a graph, treating edges as
/// undirected (used to sanity-check generators and the CC reference).
pub fn component_count(g: &Csr) -> usize {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut stack = Vec::new();
    let mut count = 0;
    // For directed graphs, reach both ways via the transpose.
    let transpose = if g.is_symmetric() {
        None
    } else {
        Some(g.transpose())
    };
    for s in 0..n {
        if seen[s] {
            continue;
        }
        count += 1;
        seen[s] = true;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u as usize);
                }
            }
            if let Some(t) = &transpose {
                for &u in t.neighbors(v) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        stack.push(u as usize);
                    }
                }
            }
        }
    }
    count
}

/// Estimates the diameter with a double-sweep BFS from `start`: runs one BFS
/// to find a far vertex, then a second BFS from it, returning the larger
/// eccentricity. Exact on trees, a good lower bound in general — enough to
/// separate mesh-class inputs (huge diameter) from power-law ones (tiny).
pub fn pseudo_diameter(g: &Csr, start: usize) -> usize {
    let (far, _) = bfs_far(g, start);
    let (_, dist) = bfs_far(g, far);
    dist
}

/// BFS helper: returns the farthest reachable vertex and its distance.
fn bfs_far(g: &Csr, start: usize) -> (usize, usize) {
    let n = g.num_vertices();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[start] = 0;
    queue.push_back(start);
    let mut far = (start, 0);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            let u = u as usize;
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                if dist[u] > far.1 {
                    far = (u, dist[u]);
                }
                queue.push_back(u);
            }
        }
    }
    far
}

/// Returns the degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let p = properties(g);
    let mut hist = vec![0usize; p.max_degree + 1];
    for v in 0..g.num_vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrBuilder;

    #[test]
    fn properties_of_path() {
        let mut b = CsrBuilder::new(3).symmetric(true);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        let p = properties(&g);
        assert_eq!(p.num_vertices, 3);
        assert_eq!(p.num_edges, 4);
        assert_eq!(p.max_degree, 2);
        assert_eq!(p.min_degree, 1);
        assert!((p.avg_degree - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn component_count_on_forest() {
        let mut b = CsrBuilder::new(7).symmetric(true);
        b.add_edge(0, 1).add_edge(2, 3).add_edge(3, 4);
        let g = b.build();
        assert_eq!(component_count(&g), 4); // {0,1} {2,3,4} {5} {6}
    }

    #[test]
    fn component_count_treats_directed_as_undirected() {
        let mut b = CsrBuilder::new(4);
        b.add_edge(0, 1).add_edge(2, 1); // weakly connected: {0,1,2}, {3}
        let g = b.build();
        assert_eq!(component_count(&g), 2);
    }

    #[test]
    fn pseudo_diameter_separates_topology_classes() {
        // Road-class graphs have large diameter, power-law graphs tiny.
        let road = crate::gen::road_network(1024, 0.0, 1);
        let hub = crate::gen::pref_attach(1024, 4, 0.2, 1);
        let d_road = pseudo_diameter(&road, 0);
        let d_hub = pseudo_diameter(&hub, 0);
        assert!(
            d_road > 4 * d_hub,
            "road diameter {d_road} should dwarf power-law {d_hub}"
        );
    }

    #[test]
    fn pseudo_diameter_exact_on_path() {
        let mut b = CsrBuilder::new(10).symmetric(true);
        for v in 0..9u32 {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        assert_eq!(pseudo_diameter(&g, 5), 9);
    }

    #[test]
    fn histogram_sums_to_vertex_count() {
        let g = crate::gen::rmat(512, 2048, 0.57, 0.19, 0.19, true, 1);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), g.num_vertices());
    }
}
