//! A thread-safe cache of built input graphs.
//!
//! The experiment matrix fans (input × algorithm × GPU) cells out across
//! worker threads, and several cells — every algorithm/GPU pair of the same
//! input, or the repeated rows of the study bins — need the *same* graph.
//! Generators are pure functions of `(scale, seed)`, so the built `Csr` (and
//! its derived [`GraphProperties`], which every measured cell records) can be
//! shared behind an [`Arc`] instead of being rebuilt per cell.

use crate::inputs::GraphInput;
use crate::props::{properties, GraphProperties};
use crate::Csr;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A built graph plus the structural properties derived from it, cached as
/// a unit so sweep cells never recompute either.
#[derive(Debug)]
pub struct CachedGraph {
    /// The built graph.
    pub csr: Csr,
    /// `properties(&csr)`, computed once at insertion.
    pub props: GraphProperties,
}

/// Cache key: the catalog name plus the exact build parameters. `scale` is
/// keyed by its bit pattern so distinct floats never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    name: &'static str,
    scale_bits: u64,
    seed: u64,
}

/// A keyed, thread-safe `(input, scale, seed) → Arc<CachedGraph>` cache.
///
/// Lookups under contention may race to *build* (builders run outside the
/// lock so a slow generator never serializes the pool), but the first insert
/// wins and builders are pure, so every caller observes identical bytes —
/// the determinism contract of the parallel sweep does not depend on which
/// worker built the graph.
#[derive(Debug, Default)]
pub struct GraphCache {
    map: Mutex<HashMap<Key, Arc<CachedGraph>>>,
    hits: AtomicU64,
    builds: AtomicU64,
}

impl GraphCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached graph for `(input, scale, seed)`, building (and
    /// inserting) it on first use.
    pub fn get_or_build(&self, input: &GraphInput, scale: f64, seed: u64) -> Arc<CachedGraph> {
        self.get_or_insert_with(input.name(), scale, seed, || input.build(scale, seed))
    }

    /// Generic form for graphs that are not catalog entries (the study bins'
    /// fixed inputs): `name` plus the parameters form the key, `build` runs
    /// only on a miss.
    pub fn get_or_insert_with(
        &self,
        name: &'static str,
        scale: f64,
        seed: u64,
        build: impl FnOnce() -> Csr,
    ) -> Arc<CachedGraph> {
        let key = Key {
            name,
            scale_bits: scale.to_bits(),
            seed,
        };
        if let Some(hit) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let csr = build();
        let props = properties(&csr);
        let entry = Arc::new(CachedGraph { csr, props });
        self.builds.fetch_add(1, Ordering::Relaxed);
        Arc::clone(self.map.lock().unwrap().entry(key).or_insert(entry))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Builder invocations so far (a racing duplicate build counts too, but
    /// only the first insert is ever served).
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Number of distinct graphs currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_is_served_from_cache() {
        let cache = GraphCache::new();
        let input = GraphInput::by_name("rmat16.sym").unwrap();
        let a = cache.get_or_build(&input, 0.1, 1);
        let b = cache.get_or_build(&input, 0.1, 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(a.props, properties(&a.csr));
    }

    #[test]
    fn distinct_parameters_get_distinct_entries() {
        let cache = GraphCache::new();
        let input = GraphInput::by_name("rmat16.sym").unwrap();
        let a = cache.get_or_build(&input, 0.1, 1);
        let b = cache.get_or_build(&input, 0.1, 2); // different seed
        let c = cache.get_or_build(&input, 0.2, 1); // different scale
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn custom_builders_are_keyed_by_name() {
        let cache = GraphCache::new();
        let a = cache.get_or_insert_with("study-grid", 1.0, 7, || crate::gen::grid2d_torus(8, 8));
        let b = cache.get_or_insert_with("study-grid", 1.0, 7, || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_lookups_share_one_entry() {
        let cache = GraphCache::new();
        let input = GraphInput::by_name("star").unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let g = cache.get_or_build(&input, 0.5, 3);
                    assert!(g.csr.num_edges() > 0);
                });
            }
        });
        assert_eq!(cache.len(), 1);
    }
}
