//! Road-network generator (`europe_osm`, `USA-road-d.*` families).

use crate::{Csr, CsrBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a road-network-like graph: vertices are embedded in a square
/// lattice, connected by a spanning backbone of lattice paths plus a small
/// fraction `extra_frac` of short-range shortcut edges. The result has the
/// low, narrow degree distribution (d-avg ≈ 2–3, tiny d-max) and the very
/// large diameter characteristic of the paper's OSM/USA-road inputs.
///
/// # Panics
///
/// Panics if `n < 4` or `extra_frac` is negative.
pub fn road_network(n: usize, extra_frac: f64, seed: u64) -> Csr {
    assert!(n >= 4, "need at least four vertices");
    assert!(extra_frac >= 0.0, "extra_frac must be non-negative");
    let width = (n as f64).sqrt().ceil() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CsrBuilder::new(n).symmetric(true);

    // Backbone: serpentine path through the lattice guarantees connectivity
    // with degree 2, like a long road.
    for v in 1..n {
        b.add_edge(v as u32 - 1, v as u32);
    }
    // Cross streets: connect a random subset of vertical lattice neighbors.
    for v in 0..n.saturating_sub(width) {
        if rng.random_bool(0.35) {
            b.add_edge(v as u32, (v + width) as u32);
        }
    }
    // Shortcuts: a few short-range extra edges (ramps, bridges).
    let extras = (n as f64 * extra_frac) as usize;
    for _ in 0..extras {
        let v = rng.random_range(0..n);
        let span = rng.random_range(2..=width.max(3));
        let u = (v + span).min(n - 1);
        if u != v {
            b.add_edge(v as u32, u as u32);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::properties;

    #[test]
    fn road_degrees_are_low_and_narrow() {
        let g = road_network(4096, 0.05, 2);
        let p = properties(&g);
        assert!(p.avg_degree < 3.5, "avg degree {} too high", p.avg_degree);
        assert!(p.max_degree <= 16, "max degree {} too high", p.max_degree);
        assert!(g.is_symmetric());
    }

    #[test]
    fn road_is_connected_via_backbone() {
        let g = road_network(256, 0.0, 1);
        // BFS from 0 must reach everything.
        let mut seen = vec![false; g.num_vertices()];
        let mut queue = vec![0usize];
        seen[0] = true;
        while let Some(v) = queue.pop() {
            for &u in g.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push(u as usize);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
