//! Regular 2D grid topologies (`2d-2e20.sym` family).

use crate::{Csr, CsrBuilder};

/// Generates a 2D torus grid of `width * height` vertices where every vertex
/// connects to its four wrap-around neighbors (so every degree is exactly 4,
/// matching the paper's `2d-2e20.sym` with d-avg = d-max = 4).
///
/// # Panics
///
/// Panics if `width < 2` or `height < 2`.
pub fn grid2d_torus(width: usize, height: usize) -> Csr {
    assert!(width >= 2 && height >= 2, "torus needs at least 2x2 cells");
    let n = width * height;
    let mut b = CsrBuilder::new(n).symmetric(true);
    let idx = |x: usize, y: usize| (y * width + x) as u32;
    for y in 0..height {
        for x in 0..width {
            let v = idx(x, y);
            b.add_edge(v, idx((x + 1) % width, y));
            b.add_edge(v, idx(x, (y + 1) % height));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::properties;

    #[test]
    fn torus_is_4_regular() {
        let g = grid2d_torus(8, 8);
        assert_eq!(g.num_vertices(), 64);
        let p = properties(&g);
        assert_eq!(p.max_degree, 4);
        assert!((p.avg_degree - 4.0).abs() < 1e-9);
        assert!(g.is_symmetric());
    }

    #[test]
    fn small_torus_has_no_duplicate_edges() {
        // 2x2 torus: wrap edges coincide, builder must dedup them.
        let g = grid2d_torus(2, 2);
        assert_eq!(g.num_vertices(), 4);
        for v in 0..4 {
            let nb = g.neighbors(v);
            let mut sorted = nb.to_vec();
            sorted.dedup();
            assert_eq!(sorted.len(), nb.len());
        }
    }
}
