//! Triangulation-like generator (`delaunay_n24` family).

use crate::{Csr, CsrBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a planar-triangulation-like graph: a lattice with one diagonal
/// per cell plus jittered extra local edges. Average degree lands near 6 with
/// a small maximum, matching the Delaunay inputs (d-avg 6.0, d-max 26).
///
/// # Panics
///
/// Panics if `n < 9`.
pub fn delaunay_like(n: usize, seed: u64) -> Csr {
    assert!(n >= 9, "need at least a 3x3 lattice");
    let width = (n as f64).sqrt().ceil() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CsrBuilder::new(n).symmetric(true);
    let idx = |x: usize, y: usize| y * width + x;
    for y in 0..width {
        for x in 0..width {
            let v = idx(x, y);
            if v >= n {
                continue;
            }
            // Lattice edges.
            if x + 1 < width && idx(x + 1, y) < n {
                b.add_edge(v as u32, idx(x + 1, y) as u32);
            }
            if y + 1 < width && idx(x, y + 1) < n {
                b.add_edge(v as u32, idx(x, y + 1) as u32);
            }
            // One diagonal per cell, orientation chosen randomly — this is
            // what turns the quad mesh into a triangulation.
            if x + 1 < width && y + 1 < width {
                let (a, c) = if rng.random_bool(0.5) {
                    (idx(x, y), idx(x + 1, y + 1))
                } else {
                    (idx(x + 1, y), idx(x, y + 1))
                };
                if a < n && c < n {
                    b.add_edge(a as u32, c as u32);
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::properties;

    #[test]
    fn triangulation_has_degree_about_six() {
        let g = delaunay_like(4096, 8);
        let p = properties(&g);
        assert!(
            (4.5..7.0).contains(&p.avg_degree),
            "avg degree {} not triangulation-like",
            p.avg_degree
        );
        assert!(p.max_degree <= 12);
        assert!(g.is_symmetric());
    }
}
