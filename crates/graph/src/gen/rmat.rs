//! Recursive-matrix (RMAT/Kronecker) generators
//! (`rmat16.sym`, `rmat22.sym`, `kron_g500-logn21` families).

use crate::{Csr, CsrBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates an RMAT graph with `n` vertices (rounded up to a power of two
/// internally) and approximately `num_edges` edges before mirroring.
///
/// `a`, `b`, `c` are the standard RMAT quadrant probabilities (the fourth is
/// `1 - a - b - c`). Graph500/Kronecker graphs use `a = 0.57, b = c = 0.19`,
/// producing the heavy-tailed degree distributions of the paper's `rmat*` and
/// `kron_g500` inputs.
///
/// # Panics
///
/// Panics if `n < 2` or the probabilities are not a sub-distribution.
pub fn rmat(n: usize, num_edges: usize, a: f64, b: f64, c: f64, symmetric: bool, seed: u64) -> Csr {
    assert!(n >= 2, "need at least two vertices");
    assert!(
        a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0 + 1e-12,
        "quadrant probabilities must form a sub-distribution"
    );
    let levels = usize::BITS - (n - 1).leading_zeros();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = CsrBuilder::new(n).symmetric(symmetric);
    let mut produced = 0usize;
    let mut attempts = 0usize;
    let max_attempts = num_edges * 4 + 64;
    while produced < num_edges && attempts < max_attempts {
        attempts += 1;
        let (mut x, mut y) = (0usize, 0usize);
        for _ in 0..levels {
            x <<= 1;
            y <<= 1;
            // Add per-level noise so the distribution is not exactly self-similar,
            // which is what reference RMAT implementations do.
            let r: f64 = rng.random();
            if r < a {
                // top-left quadrant: no bits set
            } else if r < a + b {
                y |= 1;
            } else if r < a + b + c {
                x |= 1;
            } else {
                x |= 1;
                y |= 1;
            }
        }
        if x < n && y < n && x != y {
            builder.add_edge(x as u32, y as u32);
            produced += 1;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::properties;

    #[test]
    fn rmat_is_heavy_tailed() {
        let g = rmat(4096, 32768, 0.57, 0.19, 0.19, true, 5);
        let p = properties(&g);
        // Power-law-ish: the max degree dwarfs the average.
        assert!(p.max_degree as f64 > 10.0 * p.avg_degree);
        assert!(g.is_symmetric());
    }

    #[test]
    fn rmat_deterministic() {
        let a = rmat(1024, 4096, 0.57, 0.19, 0.19, true, 9);
        let b = rmat(1024, 4096, 0.57, 0.19, 0.19, true, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sub-distribution")]
    fn rmat_rejects_bad_probabilities() {
        let _ = rmat(16, 16, 0.9, 0.9, 0.9, false, 0);
    }
}
