//! Synthetic graph generators for the paper's input families.
//!
//! Each generator is deterministic for a given seed and produces graphs whose
//! *structural class* (degree distribution shape, diameter class, directed
//! topology) matches one of the paper's inputs, at configurable scale.
//!
//! | Generator | Paper inputs covered |
//! |---|---|
//! | [`grid2d_torus`] | `2d-2e20.sym` |
//! | [`random_uniform`] | `r4-2e23.sym` |
//! | [`rmat`] | `rmat16.sym`, `rmat22.sym`, `kron_g500-logn21` |
//! | [`pref_attach`] | `amazon0601`, `citationCiteseer`, `cit-Patents`, `in-2004`, `internet`, `as-skitter`, `soc-LiveJournal1` |
//! | [`clique_overlay`] | `coPapersDBLP` |
//! | [`road_network`] | `europe_osm`, `USA-road-d.NY`, `USA-road-d.USA` |
//! | [`delaunay_like`] | `delaunay_n24` |
//! | [`pref_attach_directed`] | `flickr`, `web-Google`, `wikipedia` |
//! | [`near_regular_directed`] | `cage14` |
//! | [`hub_directed`] | `circuit5M` |
//! | [`mesh3d_directed`] | `cold-flow` |
//! | [`klein_bottle`] | `klein-bottle` |
//! | [`star_polygon`] | `star` |
//! | [`toroid_hex`] | `toroid-hex` |
//! | [`toroid_wedge`] | `toroid-wedge` |

mod delaunay;
mod grid;
mod mesh;
mod prefattach;
mod random;
mod rmat;
mod road;
mod special;

pub use delaunay::delaunay_like;
pub use grid::grid2d_torus;
pub use mesh::{klein_bottle, mesh3d_directed, star_polygon, toroid_hex, toroid_wedge};
pub use prefattach::{pref_attach, pref_attach_directed};
pub use random::random_uniform;
pub use rmat::rmat;
pub use road::road_network;
pub use special::{clique_overlay, hub_directed, near_regular_directed};
