//! Directed mesh topologies used by the SCC experiments
//! (`cold-flow`, `klein-bottle`, `star`, `toroid-hex`, `toroid-wedge`).
//!
//! The ECL-SCC paper evaluates on meshes whose strongly connected components
//! follow the mesh's cyclic structure. These generators build directed
//! meshes whose edges wrap, so large SCCs exist, and whose degrees match the
//! published d-avg/d-max (all between 2.0 and 3.0).

use crate::{Csr, CsrBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A directed 3D mesh (`cold-flow` family): vertices on a `w × h × d` box,
/// each with directed edges to +x/+y/+z neighbors (wrapping in x only), which
/// yields d-avg ≈ 3 and long directed cycles along x.
///
/// # Panics
///
/// Panics if any dimension is < 2.
pub fn mesh3d_directed(w: usize, h: usize, d: usize) -> Csr {
    assert!(
        w >= 2 && h >= 2 && d >= 2,
        "all mesh dimensions must be >= 2"
    );
    let n = w * h * d;
    let mut b = CsrBuilder::new(n);
    let idx = |x: usize, y: usize, z: usize| (z * h + y) * w + x;
    for z in 0..d {
        for y in 0..h {
            for x in 0..w {
                let v = idx(x, y, z) as u32;
                b.add_edge(v, idx((x + 1) % w, y, z) as u32);
                if y + 1 < h {
                    b.add_edge(v, idx(x, y + 1, z) as u32);
                } else {
                    b.add_edge(idx(x, y, z) as u32, idx(x, 0, z) as u32);
                }
                if z + 1 < d {
                    b.add_edge(v, idx(x, y, z + 1) as u32);
                }
            }
        }
    }
    b.build()
}

/// A directed Klein-bottle mesh (`klein-bottle` family): a `w × h` grid where
/// rows wrap normally but columns wrap with a flip. Roughly 2 out-edges per
/// vertex (d-avg ≈ 2.24 in the paper).
///
/// # Panics
///
/// Panics if `w < 2` or `h < 2`.
pub fn klein_bottle(w: usize, h: usize, seed: u64) -> Csr {
    assert!(w >= 2 && h >= 2, "klein bottle needs at least 2x2 cells");
    let n = w * h;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CsrBuilder::new(n);
    let idx = |x: usize, y: usize| y * w + x;
    for y in 0..h {
        for x in 0..w {
            let v = idx(x, y) as u32;
            b.add_edge(v, idx((x + 1) % w, y) as u32);
            // Vertical edges wrap with the Klein-bottle x-flip on the top row.
            if y + 1 < h {
                b.add_edge(v, idx(x, y + 1) as u32);
            } else {
                b.add_edge(v, idx(w - 1 - x, 0) as u32);
            }
            // Sparse diagonals push d-avg to ≈ 2.25 as published.
            if rng.random_bool(0.25) {
                b.add_edge(v, idx((x + 1) % w, (y + 1) % h) as u32);
            }
        }
    }
    b.build()
}

/// The `star` mesh: a star polygon `{n/k}` overlay — every vertex has exactly
/// two out-edges, to its cycle successor and to the vertex `k` steps ahead
/// (d-avg = d-max = 2 in the paper).
///
/// # Panics
///
/// Panics if `n < 4` or `step` is not in `2..n`.
pub fn star_polygon(n: usize, step: usize) -> Csr {
    assert!(n >= 4, "need at least four vertices");
    assert!((2..n).contains(&step), "step must be in 2..n");
    let mut b = CsrBuilder::new(n);
    for v in 0..n {
        b.add_edge(v as u32, ((v + 1) % n) as u32);
        b.add_edge(v as u32, ((v + step) % n) as u32);
    }
    b.build()
}

/// A hexagonal torus mesh (`toroid-hex` family): each vertex points to three
/// wrapped neighbors (d-avg ≈ 3).
///
/// # Panics
///
/// Panics if `w < 2` or `h < 2`.
pub fn toroid_hex(w: usize, h: usize) -> Csr {
    assert!(w >= 2 && h >= 2, "torus needs at least 2x2 cells");
    let n = w * h;
    let mut b = CsrBuilder::new(n);
    let idx = |x: usize, y: usize| y * w + x;
    for y in 0..h {
        for x in 0..w {
            let v = idx(x, y) as u32;
            b.add_edge(v, idx((x + 1) % w, y) as u32);
            b.add_edge(v, idx(x, (y + 1) % h) as u32);
            // The hex diagonal.
            b.add_edge(v, idx((x + 1) % w, (y + 1) % h) as u32);
        }
    }
    b.build()
}

/// A wedge-shaped torus mesh (`toroid-wedge` family): a torus where half the
/// vertices have two out-edges and half have three (d-avg ≈ 2.5).
///
/// # Panics
///
/// Panics if `w < 2` or `h < 2`.
pub fn toroid_wedge(w: usize, h: usize) -> Csr {
    assert!(w >= 2 && h >= 2, "torus needs at least 2x2 cells");
    let n = w * h;
    let mut b = CsrBuilder::new(n);
    let idx = |x: usize, y: usize| y * w + x;
    for y in 0..h {
        for x in 0..w {
            let v = idx(x, y) as u32;
            b.add_edge(v, idx((x + 1) % w, y) as u32);
            b.add_edge(v, idx(x, (y + 1) % h) as u32);
            if (x + y) % 2 == 0 {
                b.add_edge(v, idx((x + w - 1) % w, y) as u32);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::properties;

    #[test]
    fn mesh3d_degree_near_three() {
        let g = mesh3d_directed(16, 8, 8);
        let p = properties(&g);
        assert!((2.0..=3.2).contains(&p.avg_degree));
        assert!(p.max_degree <= 5);
    }

    #[test]
    fn klein_bottle_degree_near_two() {
        let g = klein_bottle(64, 64, 1);
        let p = properties(&g);
        assert!((1.9..=2.6).contains(&p.avg_degree), "avg {}", p.avg_degree);
    }

    #[test]
    fn star_polygon_is_two_regular() {
        let g = star_polygon(320, 7);
        let p = properties(&g);
        assert_eq!(p.max_degree, 2);
        assert!((p.avg_degree - 2.0).abs() < 1e-9);
    }

    #[test]
    fn toroid_hex_is_three_regular() {
        let g = toroid_hex(32, 32);
        let p = properties(&g);
        assert_eq!(p.max_degree, 3);
    }

    #[test]
    fn toroid_wedge_degree_near_two_and_a_half() {
        let g = toroid_wedge(32, 24);
        let p = properties(&g);
        assert!((2.2..=2.8).contains(&p.avg_degree));
    }

    #[test]
    fn meshes_are_directed() {
        assert!(!mesh3d_directed(4, 4, 4).is_symmetric());
        assert!(!star_polygon(16, 3).is_symmetric());
    }
}
