//! Special-case generators: co-authorship cliques (`coPapersDBLP`),
//! near-regular matrices (`cage14`), and hub-dominated circuits (`circuit5M`).

use crate::{Csr, CsrBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a clique-overlay graph: `num_cliques` random vertex groups of
/// size `clique_size` are fully connected, plus a sparse random background.
/// Co-authorship graphs like `coPapersDBLP` are exactly such clique unions,
/// which is why their average degree (56.4) is so high relative to d-max.
///
/// # Panics
///
/// Panics if `n < clique_size` or `clique_size < 2`.
pub fn clique_overlay(n: usize, num_cliques: usize, clique_size: usize, seed: u64) -> Csr {
    assert!(clique_size >= 2, "cliques need at least two vertices");
    assert!(n >= clique_size, "graph smaller than one clique");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CsrBuilder::new(n).symmetric(true);
    let mut members = Vec::with_capacity(clique_size);
    for _ in 0..num_cliques {
        members.clear();
        let base = rng.random_range(0..n);
        // Cliques are clustered: members come from a local window, matching
        // the community structure of co-authorship data.
        for _ in 0..clique_size {
            let offset = rng.random_range(0..clique_size * 4);
            members.push(((base + offset) % n) as u32);
        }
        members.sort_unstable();
        members.dedup();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                b.add_edge(members[i], members[j]);
            }
        }
    }
    // Background connectivity so no vertex is isolated.
    for v in 1..n {
        b.add_edge(v as u32, rng.random_range(0..v) as u32);
    }
    b.build()
}

/// Generates a near-regular directed graph (`cage14` family): every vertex
/// has close to `degree` out-neighbors drawn from a local band, giving the
/// narrow degree distribution (d-avg 18.0, d-max 41) of DNA-electrophoresis
/// matrices.
///
/// # Panics
///
/// Panics if `n < 2 * degree` or `degree == 0`.
pub fn near_regular_directed(n: usize, degree: usize, seed: u64) -> Csr {
    assert!(degree >= 1, "degree must be positive");
    assert!(n >= 2 * degree, "graph too small for requested degree");
    let mut rng = StdRng::seed_from_u64(seed);
    let band = (degree * 4).max(16);
    let mut b = CsrBuilder::new(n);
    for v in 0..n {
        for _ in 0..degree {
            let offset = rng.random_range(1..band);
            let u = (v + offset) % n;
            b.add_edge(v as u32, u as u32);
        }
        // A wrap edge keeps the whole band structure strongly connected.
        b.add_edge(v as u32, ((v + 1) % n) as u32);
    }
    b.build()
}

/// Generates a hub-dominated directed graph (`circuit5M` family): a sparse
/// near-regular background plus a handful of hub nets (think clock/reset
/// lines) each touching a large fraction of all vertices — reproducing the
/// published d-max of 1.29 M on 5.5 M vertices (≈ 23% of the graph).
///
/// # Panics
///
/// Panics if `n < 16`.
pub fn hub_directed(n: usize, background_degree: usize, hub_fanout_frac: f64, seed: u64) -> Csr {
    assert!(n >= 16, "need at least 16 vertices");
    assert!((0.0..=1.0).contains(&hub_fanout_frac), "fraction in 0..=1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CsrBuilder::new(n);
    for v in 0..n {
        for _ in 0..background_degree {
            let u = rng.random_range(0..n);
            b.add_edge(v as u32, u as u32);
        }
    }
    // Hub nets: vertex 0 fans out to a contiguous fraction of the graph and
    // receives sparse feedback edges.
    let fanout = ((n as f64) * hub_fanout_frac) as usize;
    for u in 1..=fanout.min(n - 1) {
        b.add_edge(0, u as u32);
        if u % 16 == 0 {
            b.add_edge(u as u32, 0);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::properties;

    #[test]
    fn clique_overlay_is_dense_and_symmetric() {
        let g = clique_overlay(2000, 700, 9, 1);
        let p = properties(&g);
        assert!(p.avg_degree > 5.0);
        assert!(g.is_symmetric());
    }

    #[test]
    fn near_regular_has_narrow_degrees() {
        let g = near_regular_directed(4000, 18, 2);
        let p = properties(&g);
        assert!((12.0..20.0).contains(&p.avg_degree), "avg {}", p.avg_degree);
        assert!(p.max_degree <= 30, "max {}", p.max_degree);
    }

    #[test]
    fn hub_graph_has_extreme_max_degree() {
        let g = hub_directed(4096, 8, 0.25, 3);
        let p = properties(&g);
        assert!(p.max_degree > 900, "hub fanout missing: {}", p.max_degree);
    }
}
