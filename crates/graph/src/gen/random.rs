//! Uniform random (Erdős–Rényi style) graphs (`r4-2e23.sym` family).

use crate::{Csr, CsrBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a uniform random graph with `n` vertices and approximately
/// `num_edges` edges (before mirroring when `symmetric`).
///
/// Endpoints are drawn uniformly, giving a binomial (narrow) degree
/// distribution like the paper's `r4-2e23.sym` input (d-avg 8, d-max 26).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn random_uniform(n: usize, num_edges: usize, symmetric: bool, seed: u64) -> Csr {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CsrBuilder::new(n).symmetric(symmetric);
    let mut added = 0usize;
    let mut attempts = 0usize;
    let max_attempts = num_edges * 4 + 64;
    while added < num_edges && attempts < max_attempts {
        attempts += 1;
        let s = rng.random_range(0..n) as u32;
        let d = rng.random_range(0..n) as u32;
        if s != d {
            b.add_edge(s, d);
            added += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::properties;

    #[test]
    fn size_is_close_to_requested() {
        let g = random_uniform(1000, 4000, true, 7);
        // Each undirected edge stored twice; a few duplicates collapse.
        assert!(g.num_edges() > 7000 && g.num_edges() <= 8000);
        assert!(g.is_symmetric());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = random_uniform(500, 2000, true, 1);
        let b = random_uniform(500, 2000, true, 1);
        let c = random_uniform(500, 2000, true, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_distribution_is_narrow() {
        let g = random_uniform(2048, 8192, true, 3);
        let p = properties(&g);
        // Binomial tail: max degree stays within a small multiple of the mean.
        assert!(p.max_degree < (8.0 * p.avg_degree) as usize + 8);
    }
}
