//! Preferential-attachment generators for the co-purchase, citation,
//! web-link, and social-community input families.

use crate::{Csr, CsrBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates an undirected preferential-attachment (Barabási–Albert style)
/// graph: each new vertex attaches to `edges_per_vertex` existing vertices,
/// chosen proportionally to their current degree.
///
/// This produces the power-law degree distributions of the paper's
/// co-purchase (`amazon0601`), citation (`citationCiteseer`, `cit-Patents`),
/// web (`in-2004`), topology (`internet`, `as-skitter`) and community
/// (`soc-LiveJournal1`) inputs; `hub_boost` (0.0–1.0) mixes in extra
/// attachments to the single highest-degree vertex, fattening the tail for
/// inputs with extreme d-max.
///
/// # Panics
///
/// Panics if `n < 2` or `edges_per_vertex == 0`.
pub fn pref_attach(n: usize, edges_per_vertex: usize, hub_boost: f64, seed: u64) -> Csr {
    let targets = attachment_targets(n, edges_per_vertex, hub_boost, seed);
    let mut b = CsrBuilder::new(n).symmetric(true);
    for (src, dst) in targets {
        b.add_edge(src, dst);
    }
    b.build()
}

/// Directed variant of [`pref_attach`] used for the paper's directed
/// power-law inputs (`flickr`, `web-Google`, `wikipedia`): newly added
/// vertices point *at* popular vertices, and with probability 1/2 an extra
/// back-edge is added so SCCs of nontrivial size exist.
///
/// # Panics
///
/// Panics if `n < 2` or `edges_per_vertex == 0`.
pub fn pref_attach_directed(n: usize, edges_per_vertex: usize, hub_boost: f64, seed: u64) -> Csr {
    let targets = attachment_targets(n, edges_per_vertex, hub_boost, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1ec7ed);
    let mut b = CsrBuilder::new(n);
    for (src, dst) in targets {
        b.add_edge(src, dst);
        if rng.random_bool(0.5) {
            b.add_edge(dst, src);
        }
    }
    b.build()
}

/// Shared core: produces the attachment edge list via the classic
/// repeated-endpoints trick (picking a uniform element of the endpoint list
/// is equivalent to degree-proportional sampling).
fn attachment_targets(
    n: usize,
    edges_per_vertex: usize,
    hub_boost: f64,
    seed: u64,
) -> Vec<(u32, u32)> {
    assert!(n >= 2, "need at least two vertices");
    assert!(edges_per_vertex >= 1, "need at least one edge per vertex");
    assert!(
        (0.0..=1.0).contains(&hub_boost),
        "hub_boost must be in 0..=1"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut endpoints: Vec<u32> = vec![0, 1, 1, 0];
    let mut edges = Vec::with_capacity(n * edges_per_vertex);
    edges.push((0u32, 1u32));
    for v in 2..n as u32 {
        for _ in 0..edges_per_vertex.min(v as usize) {
            let dst = if rng.random_bool(hub_boost) {
                // Attach to the global hub: vertex 0 accumulates endpoint mass
                // fastest, use it directly for a deterministic fat tail.
                0
            } else {
                endpoints[rng.random_range(0..endpoints.len())]
            };
            if dst != v {
                edges.push((v, dst));
                endpoints.push(v);
                endpoints.push(dst);
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::properties;

    #[test]
    fn undirected_power_law_shape() {
        let g = pref_attach(4000, 6, 0.0, 3);
        let p = properties(&g);
        assert!(p.max_degree as f64 > 8.0 * p.avg_degree);
        assert!(g.is_symmetric());
    }

    #[test]
    fn hub_boost_fattens_tail() {
        let plain = properties(&pref_attach(3000, 6, 0.0, 3));
        let boosted = properties(&pref_attach(3000, 6, 0.4, 3));
        assert!(boosted.max_degree > plain.max_degree);
    }

    #[test]
    fn directed_variant_is_directed_but_cyclic() {
        let g = pref_attach_directed(2000, 5, 0.1, 4);
        assert!(!g.is_symmetric());
        // The 0.5-probability back-edges guarantee some 2-cycles.
        let has_two_cycle = (0..g.num_vertices()).any(|v| {
            g.neighbors(v)
                .iter()
                .any(|&u| g.neighbors(u as usize).contains(&(v as u32)))
        });
        assert!(has_two_cycle);
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn rejects_zero_edges_per_vertex() {
        let _ = pref_attach(10, 0, 0.0, 0);
    }
}
