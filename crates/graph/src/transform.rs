//! Graph transformations: relabeling and subgraph extraction.
//!
//! The ECL graph preprocessing relabels vertices for memory locality before
//! writing its binary inputs; these utilities provide the same operations
//! for preparing external graphs for the suite.

use crate::{Csr, CsrBuilder};

/// Relabels the graph's vertices by a permutation: vertex `v` becomes
/// `perm[v]`. Weights follow their edges.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..num_vertices`.
pub fn relabel(g: &Csr, perm: &[u32]) -> Csr {
    let n = g.num_vertices();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(
            (p as usize) < n && !seen[p as usize],
            "perm is not a permutation"
        );
        seen[p as usize] = true;
    }
    let mut edges: Vec<(u32, u32, Option<u32>)> = g
        .edges()
        .enumerate()
        .map(|(e, (u, v))| {
            (
                perm[u as usize],
                perm[v as usize],
                g.weights().map(|w| w[e]),
            )
        })
        .collect();
    edges.sort_unstable();
    let mut b = CsrBuilder::new(n);
    for &(u, v, _) in &edges {
        b.add_edge(u, v);
    }
    let out = b.build();
    if g.weights().is_none() {
        return out;
    }
    // Builder dedups; align weights to the deduped edge order.
    edges.dedup_by_key(|&mut (u, v, _)| (u, v));
    let weights: Vec<u32> = edges.iter().map(|&(_, _, w)| w.unwrap_or(1)).collect();
    Csr::from_raw(
        out.row_offsets().to_vec(),
        out.col_indices().to_vec(),
        Some(weights),
    )
    .expect("relabel produced valid arrays")
}

/// Returns a permutation placing vertices in decreasing-degree order —
/// hub-first relabeling, which improves locality for power-law graphs.
pub fn degree_order(g: &Csr) -> Vec<u32> {
    let mut order: Vec<u32> = (0..g.num_vertices() as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v as usize)));
    // order[i] = old vertex at new position i; invert to get perm[old] = new.
    let mut perm = vec![0u32; g.num_vertices()];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as u32;
    }
    perm
}

/// Extracts the subgraph induced by `keep` (a vertex subset), relabeling
/// the kept vertices densely in their original order. Weights follow.
pub fn induced_subgraph(g: &Csr, keep: &[bool]) -> Csr {
    assert_eq!(keep.len(), g.num_vertices(), "mask length mismatch");
    let mut new_id = vec![u32::MAX; g.num_vertices()];
    let mut n = 0u32;
    for (v, &k) in keep.iter().enumerate() {
        if k {
            new_id[v] = n;
            n += 1;
        }
    }
    let mut edges: Vec<(u32, u32, Option<u32>)> = Vec::new();
    for (e, (u, v)) in g.edges().enumerate() {
        if keep[u as usize] && keep[v as usize] {
            edges.push((
                new_id[u as usize],
                new_id[v as usize],
                g.weights().map(|w| w[e]),
            ));
        }
    }
    edges.sort_unstable();
    let mut b = CsrBuilder::new(n as usize);
    for &(u, v, _) in &edges {
        b.add_edge(u, v);
    }
    let out = b.build();
    if g.weights().is_none() {
        return out;
    }
    edges.dedup_by_key(|&mut (u, v, _)| (u, v));
    let weights: Vec<u32> = edges.iter().map(|&(_, _, w)| w.unwrap_or(1)).collect();
    Csr::from_raw(
        out.row_offsets().to_vec(),
        out.col_indices().to_vec(),
        Some(weights),
    )
    .expect("subgraph produced valid arrays")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::props::properties;

    #[test]
    fn relabel_preserves_structure() {
        let g = gen::rmat(128, 512, 0.5, 0.2, 0.2, true, 1).with_random_weights(50, 2);
        let perm = degree_order(&g);
        let r = relabel(&g, &perm);
        assert_eq!(r.num_vertices(), g.num_vertices());
        assert_eq!(r.num_edges(), g.num_edges());
        // Degree multiset is invariant.
        let mut d1: Vec<usize> = (0..g.num_vertices()).map(|v| g.degree(v)).collect();
        let mut d2: Vec<usize> = (0..r.num_vertices()).map(|v| r.degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
        // Total weight is invariant.
        let sum = |c: &crate::Csr| c.weights().unwrap().iter().map(|&w| w as u64).sum::<u64>();
        assert_eq!(sum(&g), sum(&r));
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = gen::pref_attach(200, 3, 0.3, 1);
        let perm = degree_order(&g);
        let r = relabel(&g, &perm);
        // New vertex 0 has the maximum degree.
        let p = properties(&r);
        assert_eq!(r.degree(0), p.max_degree);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_bad_permutation() {
        let g = gen::grid2d_torus(4, 4);
        let perm = vec![0u32; 16];
        let _ = relabel(&g, &perm);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        // Path 0-1-2-3; keep {0, 1, 3}: only the 0-1 edge survives.
        let mut b = CsrBuilder::new(4).symmetric(true);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3);
        let g = b.build();
        let sub = induced_subgraph(&g, &[true, true, false, true]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2); // 0-1 both directions
        assert_eq!(sub.neighbors(0), &[1]);
        assert_eq!(sub.neighbors(2), &[] as &[u32]);
    }

    #[test]
    fn subgraph_of_everything_is_identity() {
        let g = gen::rmat(64, 256, 0.5, 0.2, 0.2, true, 2);
        let sub = induced_subgraph(&g, &vec![true; g.num_vertices()]);
        assert_eq!(g, sub);
    }
}
