//! Graph substrate for the ECL-Suite reproduction.
//!
//! This crate provides:
//!
//! - [`Csr`]: the compressed-sparse-row representation every ECL code
//!   operates on (row offsets, column indices, optional edge weights);
//! - [`gen`]: synthetic generators for all topology families used by the
//!   paper's input catalog (grids, RMAT/Kronecker, preferential attachment,
//!   road networks, triangulations, directed meshes, …);
//! - [`inputs`]: the catalog mapping every row of the paper's Tables II and
//!   III to a generator with scaled-down parameters;
//! - [`props`]: degree statistics and other structural properties;
//! - [`io`]: a compact binary CSR file format (ECLgraph-style).
//!
//! # Example
//!
//! ```
//! use ecl_graph::{gen, props};
//!
//! let g = gen::rmat(1 << 10, 8 * (1 << 10), 0.57, 0.19, 0.19, true, 1);
//! assert!(g.num_vertices() == 1 << 10);
//! let p = props::properties(&g);
//! assert!(p.avg_degree > 0.0);
//! ```

pub mod cache;
mod csr;
pub mod gen;
pub mod inputs;
pub mod io;
pub mod mtx;
pub mod props;
pub mod transform;

pub use cache::{CachedGraph, GraphCache};
pub use csr::{Csr, CsrBuilder, GraphError};
