//! The sweep farm: a long-lived daemon executing sweep jobs on a
//! supervised worker fleet.
//!
//! `all_tests --isolate` runs *one* sweep, spawning a worker per cell.
//! The farm turns that into a *service*: it accepts sweep-specification
//! jobs over a JSONL API (stdin or TCP), schedules their cells onto a
//! fixed fleet of persistent worker subprocesses, and survives anything
//! short of losing the state directory:
//!
//! * a worker that panics, aborts, hangs, or is OOM-killed is detected by
//!   heartbeat, restarted with exponential backoff, and its cell retried;
//! * a cell that kills its worker [`supervisor::FleetConfig::max_attempts`]
//!   times is **quarantined** — one typed failure record plus a repro
//!   bundle — while the rest of the sweep proceeds;
//! * a daemon that is `kill -9`'d restarts, replays its fsync'd job store
//!   and per-job journals, and finishes every accepted job with reports
//!   **byte-identical** to an uninterrupted run.
//!
//! The determinism inheritance is the point: cells are measured by the
//! exact code path `all_tests --worker-cell` uses, journaled in the same
//! `ecl-bench/JOURNAL/v1` format, and reports are reassembled from journal
//! bodies in canonical cell order with the experiment's `jobs` pinned
//! to 1 — so fleet size, scheduling order, worker deaths, and daemon
//! restarts are all invisible in the output bytes.
//!
//! Module map: [`api`] (job schema), [`queue`] (bounded priority queue),
//! [`submit`] (the admission/ACK contract), [`supervisor`] (the fleet),
//! [`worker`] (the worker-loop subprocess side), [`recovery`] (durable job
//! store, journals, report assembly). All durable writes go through
//! `ecl_bench::storage`, so every path here is exercised under injected
//! storage faults and simulated power loss (`tests/crash_consistency.rs`);
//! see DESIGN.md §12 for the durability model. The `farm` binary wires
//! them together; see `README.md` for the quickstart.

pub mod api;
pub mod queue;
pub mod recovery;
pub mod submit;
pub mod supervisor;
pub mod worker;

pub use api::{ack, event, job_json, parse_job, JobSpec, SweepSpec};
pub use queue::{CellQueue, CellTask};
pub use recovery::{ActiveJob, JobStore, StoreError, StoredJob};
pub use submit::{admit, Admission};
pub use supervisor::{restart_backoff_ms, Fleet, FleetConfig, FleetOutcome};
