//! The farm's JSONL job API: submission lines, acknowledgements, events.
//!
//! A client submits one job per line, on the daemon's stdin or over its TCP
//! listener:
//!
//! ```text
//! {"schema":"ecl-farm/JOB/v1","id":"nightly-directed","priority":5,
//!  "spec":{"scale":0.05,"runs":1,"seed":1,"gpus":["TestTiny"],
//!          "sets":["directed"],"retries":1,"cell_timeout":300}}
//! ```
//!
//! and receives exactly one acknowledgement line back
//! (`ecl-farm/ACK/v1`, `accepted` true or false with a `reason` — queue
//! backpressure, duplicate id, draining, parse error). Progress and
//! completion travel as `ecl-farm/EVENT/v1` lines on the daemon's stdout.
//!
//! Every field of `spec` except `sets`/`gpus` mirrors the corresponding
//! `all_tests` flag; a job is a sweep specification, nothing more. The
//! daemon normalizes the spec on acceptance (defaults filled in, GPU names
//! resolved) and persists the *normalized* form, so a job reloaded after a
//! daemon crash reconstructs the identical experiment.

use ecl_bench::{Experiment, Json};
use ecl_core::suite::RetryPolicy;
use ecl_core::SimOptions;
use ecl_simt::{FaultPlan, GpuConfig, MemLevel};

/// Schema tag of a job submission line.
pub const JOB_SCHEMA: &str = "ecl-farm/JOB/v1";
/// Schema tag of an acknowledgement line.
pub const ACK_SCHEMA: &str = "ecl-farm/ACK/v1";
/// Schema tag of a daemon event line.
pub const EVENT_SCHEMA: &str = "ecl-farm/EVENT/v1";

/// One accepted sweep job: identity, scheduling priority, and the sweep
/// specification.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Client-chosen job id; names the job's journal and report files, so
    /// it is restricted to `[A-Za-z0-9._-]`, at most 64 chars.
    pub id: String,
    /// Scheduling priority: higher runs first; ties run in submission
    /// order. Default 0.
    pub priority: i64,
    /// What to sweep.
    pub sweep: SweepSpec,
}

/// The sweep a job asks for — the same knobs as the `all_tests` CLI.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Input scale multiplier.
    pub scale: f64,
    /// Runs per configuration.
    pub runs: usize,
    /// Base experiment seed.
    pub seed: u64,
    /// GPUs to measure, resolved to catalog configurations.
    pub gpus: Vec<GpuConfig>,
    /// Cell sets to run, each `"undirected"` or `"directed"`.
    pub sets: Vec<String>,
    /// Attempts per measurement.
    pub retries: u32,
    /// Per-launch watchdog budget in cycles.
    pub watchdog: Option<u64>,
    /// Fault injection: (bitflip rate, level, plan seed).
    pub fault: Option<(f64, MemLevel, u64)>,
    /// Wall-clock budget per cell in seconds; a worker that blows it is
    /// killed and the attempt counts toward quarantine.
    pub cell_timeout: u64,
}

impl SweepSpec {
    /// The [`Experiment`] this spec describes. `jobs` is pinned to 1: the
    /// report must not depend on how many fleet workers happened to execute
    /// it, only on what was measured.
    pub fn experiment(&self) -> Experiment {
        Experiment {
            scale: self.scale,
            runs: self.runs,
            gpus: self.gpus.clone(),
            seed: self.seed,
            jobs: 1,
            opts: SimOptions {
                watchdog: self.watchdog,
                fault: self
                    .fault
                    .map(|(rate, level, seed)| FaultPlan::new(seed).with_bitflips(rate, level)),
                deadline: None,
                mode_table: None,
            },
            retry: RetryPolicy {
                max_attempts: self.retries.max(1),
                seed_stride: 1,
            },
        }
    }

    /// The journal identity of this spec — byte-compatible with the
    /// identity `all_tests` journals pin, so the same determinism contract
    /// applies.
    pub fn identity(&self) -> Json {
        let sets: Vec<&str> = self.sets.iter().map(String::as_str).collect();
        ecl_bench::journal::identity_json(&self.experiment(), &sets)
    }

    /// Every cell key of this sweep, all sets concatenated, each set in its
    /// canonical order.
    pub fn cell_keys(&self) -> Vec<String> {
        let e = self.experiment();
        self.sets
            .iter()
            .flat_map(|s| ecl_bench::set_cell_keys(&e, s))
            .collect()
    }
}

fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Parses and normalizes one submission line.
///
/// # Errors
///
/// A human-readable reason, suitable for the ACK's `reason` field.
pub fn parse_job(line: &str) -> Result<JobSpec, String> {
    let doc = Json::parse(line.trim()).map_err(|e| format!("not JSON: {e}"))?;
    if doc.get("schema").and_then(Json::as_str) != Some(JOB_SCHEMA) {
        return Err(format!("not a {JOB_SCHEMA} line"));
    }
    let id = doc
        .get("id")
        .and_then(Json::as_str)
        .ok_or("missing 'id'")?
        .to_string();
    if !valid_id(&id) {
        return Err(format!(
            "invalid id '{id}' (want 1-64 chars of [A-Za-z0-9._-])"
        ));
    }
    let priority = doc
        .get("priority")
        .and_then(Json::as_num)
        .map(|p| p as i64)
        .unwrap_or(0);
    let spec = doc.get("spec").cloned().unwrap_or(Json::obj(vec![]));
    let num = |key: &str| spec.get(key).and_then(Json::as_num);

    let gpus: Vec<GpuConfig> = match spec.get("gpus").and_then(Json::as_arr) {
        None => GpuConfig::paper_gpus(),
        Some(names) => {
            let mut out = Vec::with_capacity(names.len());
            for n in names {
                let name = n.as_str().ok_or("'gpus' entries must be strings")?;
                out.push(GpuConfig::by_name(name).ok_or_else(|| format!("unknown gpu '{name}'"))?);
            }
            if out.is_empty() {
                return Err("'gpus' must not be empty".into());
            }
            out
        }
    };
    let sets: Vec<String> = match spec.get("sets").and_then(Json::as_arr) {
        None => vec!["undirected".into(), "directed".into()],
        Some(entries) => {
            let mut out = Vec::with_capacity(entries.len());
            for s in entries {
                let s = s.as_str().ok_or("'sets' entries must be strings")?;
                if ecl_bench::set_plan(s).is_none() {
                    return Err(format!("unknown set '{s}' (want undirected or directed)"));
                }
                if !out.contains(&s.to_string()) {
                    out.push(s.to_string());
                }
            }
            if out.is_empty() {
                return Err("'sets' must not be empty".into());
            }
            out
        }
    };
    let fault = match spec.get("fault") {
        None | Some(Json::Null) => None,
        Some(f) => {
            let rate = f.get("rate").and_then(Json::as_num).unwrap_or(0.0);
            let level = match f.get("level").and_then(Json::as_str) {
                None | Some("dram") => MemLevel::Dram,
                Some("l2") => MemLevel::L2,
                Some("l1") => MemLevel::L1,
                Some(other) => return Err(format!("unknown fault level '{other}'")),
            };
            let seed = f.get("seed").and_then(Json::as_num).unwrap_or(42.0) as u64;
            (rate > 0.0).then_some((rate, level, seed))
        }
    };
    Ok(JobSpec {
        id,
        priority,
        sweep: SweepSpec {
            scale: num("scale").unwrap_or(1.0),
            runs: (num("runs").unwrap_or(3.0) as usize).max(1),
            seed: num("seed").unwrap_or(1.0) as u64,
            gpus,
            sets,
            retries: (num("retries").unwrap_or(1.0) as u32).max(1),
            watchdog: num("watchdog").map(|w| w as u64),
            fault,
            cell_timeout: (num("cell_timeout").unwrap_or(300.0) as u64).max(1),
        },
    })
}

/// Serializes a (normalized) job for the durable job store. Round-trips
/// through [`parse_job`]: `parse_job(&job_json(j).render_compact())`
/// reconstructs an identical job.
pub fn job_json(job: &JobSpec) -> Json {
    let s = &job.sweep;
    let fault = match s.fault {
        None => Json::Null,
        Some((rate, level, seed)) => Json::obj(vec![
            ("rate", Json::Num(rate)),
            (
                "level",
                Json::Str(
                    match level {
                        MemLevel::Dram => "dram",
                        MemLevel::L2 => "l2",
                        MemLevel::L1 => "l1",
                    }
                    .into(),
                ),
            ),
            ("seed", Json::Num(seed as f64)),
        ]),
    };
    Json::obj(vec![
        ("schema", Json::Str(JOB_SCHEMA.into())),
        ("id", Json::Str(job.id.clone())),
        ("priority", Json::Num(job.priority as f64)),
        (
            "spec",
            Json::obj(vec![
                ("scale", Json::Num(s.scale)),
                ("runs", Json::Num(s.runs as f64)),
                ("seed", Json::Num(s.seed as f64)),
                (
                    "gpus",
                    Json::Arr(s.gpus.iter().map(|g| Json::Str(g.name.into())).collect()),
                ),
                (
                    "sets",
                    Json::Arr(s.sets.iter().cloned().map(Json::Str).collect()),
                ),
                ("retries", Json::Num(s.retries as f64)),
                (
                    "watchdog",
                    s.watchdog
                        .map(|w| Json::Num(w as f64))
                        .unwrap_or(Json::Null),
                ),
                ("fault", fault),
                ("cell_timeout", Json::Num(s.cell_timeout as f64)),
            ]),
        ),
    ])
}

/// Builds an acknowledgement line for a submission.
pub fn ack(id: &str, accepted: bool, reason: Option<&str>, queued_cells: usize) -> Json {
    let mut pairs = vec![
        ("schema", Json::Str(ACK_SCHEMA.into())),
        ("id", Json::Str(id.into())),
        ("accepted", Json::Bool(accepted)),
    ];
    if let Some(r) = reason {
        pairs.push(("reason", Json::Str(r.into())));
    }
    if accepted {
        pairs.push(("queued_cells", Json::Num(queued_cells as f64)));
    }
    Json::obj(pairs)
}

/// Builds an event line: `event(kind, [(field, value)…])`.
pub fn event(kind: &str, fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("schema", Json::Str(EVENT_SCHEMA.into())),
        ("event", Json::Str(kind.into())),
    ];
    pairs.extend(fields);
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_job_fills_defaults() {
        let j = parse_job(r#"{"schema":"ecl-farm/JOB/v1","id":"a"}"#).unwrap();
        assert_eq!(j.id, "a");
        assert_eq!(j.priority, 0);
        assert_eq!(j.sweep.scale, 1.0);
        assert_eq!(j.sweep.runs, 3);
        assert_eq!(j.sweep.sets, ["undirected", "directed"]);
        assert_eq!(j.sweep.gpus.len(), 4);
        assert_eq!(j.sweep.cell_timeout, 300);
        assert!(j.sweep.fault.is_none());
    }

    #[test]
    fn job_round_trips_through_the_store_form() {
        let line = r#"{"schema":"ecl-farm/JOB/v1","id":"n1","priority":7,
            "spec":{"scale":0.05,"runs":2,"seed":9,"gpus":["TestTiny"],
                    "sets":["directed"],"retries":2,"watchdog":100000,
                    "fault":{"rate":0.001,"level":"l2","seed":5},
                    "cell_timeout":60}}"#;
        let j = parse_job(line).unwrap();
        let stored = job_json(&j).render_compact();
        let j2 = parse_job(&stored).unwrap();
        assert_eq!(
            job_json(&j2).render_compact(),
            stored,
            "normal form is a fixpoint"
        );
        assert_eq!(j2.sweep.identity(), j.sweep.identity());
        assert_eq!(j2.priority, 7);
        assert_eq!(j2.sweep.fault.map(|f| f.0), Some(0.001));
    }

    #[test]
    fn bad_submissions_are_rejected_with_reasons() {
        for (line, needle) in [
            ("not json", "not JSON"),
            (r#"{"schema":"nope","id":"a"}"#, "not a ecl-farm/JOB"),
            (r#"{"schema":"ecl-farm/JOB/v1"}"#, "missing 'id'"),
            (
                r#"{"schema":"ecl-farm/JOB/v1","id":"has space"}"#,
                "invalid id",
            ),
            (
                r#"{"schema":"ecl-farm/JOB/v1","id":"a","spec":{"gpus":["NoSuch"]}}"#,
                "unknown gpu",
            ),
            (
                r#"{"schema":"ecl-farm/JOB/v1","id":"a","spec":{"sets":["diagonal"]}}"#,
                "unknown set",
            ),
        ] {
            let err = parse_job(line).unwrap_err();
            assert!(err.contains(needle), "line {line}: got '{err}'");
        }
    }

    #[test]
    fn cell_keys_enumerate_all_sets_in_canonical_order() {
        let j = parse_job(
            r#"{"schema":"ecl-farm/JOB/v1","id":"a",
                "spec":{"gpus":["TestTiny"],"sets":["directed"]}}"#,
        )
        .unwrap();
        let keys = j.sweep.cell_keys();
        assert_eq!(keys.len(), 10, "10 directed inputs x 1 alg x 1 gpu");
        assert!(keys[0].starts_with("directed/cage14/SCC/"));
        assert!(keys.iter().all(|k| k.ends_with("/TestTiny")));
    }

    #[test]
    fn identity_matches_the_all_tests_journal_identity() {
        // A farm job and an `all_tests --journal` run with the same knobs
        // must pin the same identity, or cross-resume soundness breaks.
        let j = parse_job(
            r#"{"schema":"ecl-farm/JOB/v1","id":"a",
                "spec":{"scale":0.05,"runs":1,"seed":1,"gpus":["TestTiny"],"sets":["directed"]}}"#,
        )
        .unwrap();
        let e = j.sweep.experiment();
        let direct = ecl_bench::journal::identity_json(&e, &["directed"]);
        assert_eq!(j.sweep.identity(), direct);
    }
}
