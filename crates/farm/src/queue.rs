//! The farm's cell queue: a bounded priority queue of runnable cells.
//!
//! Scheduling order is job priority (higher first), then global submission
//! sequence (earlier first). The sequence is assigned per cell at enqueue
//! time, so all cells of an earlier job outrank same-priority cells of a
//! later one, and a requeued cell (its worker died) keeps its original
//! sequence — it goes back to the *front* of its priority class rather than
//! behind freshly-submitted work, which keeps retry latency bounded.
//!
//! The queue is bounded for backpressure: a job is admitted all-or-nothing,
//! so a rejected submission leaves no partial residue. Requeues bypass the
//! cap — they represent work the daemon already accepted and must finish.

use std::collections::BinaryHeap;

/// One runnable cell: the unit the supervisor hands to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellTask {
    /// Owning job id.
    pub job: String,
    /// Cell key, `set/input/algorithm/gpu`.
    pub key: String,
    /// Owning job's priority.
    pub priority: i64,
    /// Global enqueue sequence; preserved across requeues.
    pub seq: u64,
}

impl Ord for CellTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: greater = scheduled sooner.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for CellTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded priority queue of [`CellTask`]s.
pub struct CellQueue {
    heap: BinaryHeap<CellTask>,
    cap: usize,
    next_seq: u64,
}

impl CellQueue {
    /// An empty queue admitting at most `cap` queued cells.
    pub fn new(cap: usize) -> CellQueue {
        CellQueue {
            heap: BinaryHeap::new(),
            cap,
            next_seq: 0,
        }
    }

    /// Cells currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether a job of `cells` cells would fit under the cap right now.
    pub fn would_fit(&self, cells: usize) -> bool {
        self.heap.len() + cells <= self.cap
    }

    /// Admits a whole job: every cell key, at `priority`, in the given
    /// order. All-or-nothing against the cap.
    ///
    /// # Errors
    ///
    /// A backpressure reason when the job does not fit.
    pub fn push_job(&mut self, job: &str, priority: i64, keys: &[String]) -> Result<(), String> {
        if !self.would_fit(keys.len()) {
            return Err(format!(
                "queue full: {} queued + {} new > cap {}",
                self.heap.len(),
                keys.len(),
                self.cap
            ));
        }
        for key in keys {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(CellTask {
                job: job.to_string(),
                key: key.clone(),
                priority,
                seq,
            });
        }
        Ok(())
    }

    /// Admits a job *bypassing* the cap: recovery re-enqueues work the
    /// daemon already accepted durably, and backpressure must never turn a
    /// restart into job loss.
    pub fn push_job_forced(&mut self, job: &str, priority: i64, keys: &[String]) {
        for key in keys {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(CellTask {
                job: job.to_string(),
                key: key.clone(),
                priority,
                seq,
            });
        }
    }

    /// Puts a cell back after a worker death. Bypasses the cap and keeps
    /// the task's original sequence, so it re-sorts to the front of its
    /// priority class.
    pub fn requeue(&mut self, task: CellTask) {
        self.heap.push(task);
    }

    /// The highest-priority runnable cell, if any.
    pub fn pop(&mut self) -> Option<CellTask> {
        self.heap.pop()
    }

    /// Drops every queued cell of `job` (used when a job is abandoned).
    pub fn drop_job(&mut self, job: &str) -> usize {
        let before = self.heap.len();
        let kept: Vec<CellTask> = self.heap.drain().filter(|t| t.job != job).collect();
        self.heap = kept.into();
        before - self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn priority_then_submission_order() {
        let mut q = CellQueue::new(16);
        q.push_job("low", 0, &keys(&["a", "b"])).unwrap();
        q.push_job("high", 5, &keys(&["c"])).unwrap();
        q.push_job("low2", 0, &keys(&["d"])).unwrap();
        let order: Vec<String> = std::iter::from_fn(|| q.pop()).map(|t| t.key).collect();
        assert_eq!(order, ["c", "a", "b", "d"]);
    }

    #[test]
    fn requeued_cell_outranks_newer_work_of_equal_priority() {
        let mut q = CellQueue::new(16);
        q.push_job("j1", 0, &keys(&["a", "b"])).unwrap();
        let a = q.pop().unwrap();
        assert_eq!(a.key, "a");
        q.push_job("j2", 0, &keys(&["c"])).unwrap();
        q.requeue(a);
        let order: Vec<String> = std::iter::from_fn(|| q.pop()).map(|t| t.key).collect();
        assert_eq!(order, ["a", "b", "c"], "retry keeps its place in line");
    }

    #[test]
    fn jobs_are_admitted_all_or_nothing() {
        let mut q = CellQueue::new(3);
        q.push_job("j1", 0, &keys(&["a", "b"])).unwrap();
        let err = q.push_job("j2", 9, &keys(&["c", "d"])).unwrap_err();
        assert!(err.contains("queue full"), "{err}");
        assert_eq!(q.len(), 2, "rejected job leaves no residue");
        q.push_job("j3", 0, &keys(&["e"])).unwrap();
    }

    #[test]
    fn requeue_bypasses_the_cap() {
        let mut q = CellQueue::new(1);
        q.push_job("j1", 0, &keys(&["a"])).unwrap();
        let a = q.pop().unwrap();
        q.push_job("j2", 0, &keys(&["b"])).unwrap();
        q.requeue(a); // 2 > cap 1, but accepted work must finish
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().key, "a");
    }

    #[test]
    fn drop_job_removes_only_that_job() {
        let mut q = CellQueue::new(16);
        q.push_job("j1", 0, &keys(&["a", "b"])).unwrap();
        q.push_job("j2", 0, &keys(&["c"])).unwrap();
        assert_eq!(q.drop_job("j1"), 2);
        assert_eq!(q.pop().unwrap().key, "c");
        assert!(q.pop().is_none());
    }
}
