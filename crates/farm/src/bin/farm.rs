//! The sweep farm daemon.
//!
//! ```text
//! cargo run --release -p ecl-farm --bin farm -- [options]
//!
//! --state <dir>        durable state directory        (default ./farm-state)
//! --workers <n>        worker fleet size              (default 2)
//! --listen <addr>      also accept jobs on a TCP socket, e.g. 127.0.0.1:0
//!                      (port 0 = ephemeral; the bound address is announced
//!                      in a "listening" event line)
//! --once               exit when stdin is closed and every job is done
//!                      (exit 1 if any job recorded failures)
//! --heartbeat-ms <n>   worker heartbeat interval      (default 250)
//! --deadline-ms <n>    busy-worker silence tolerance  (default 10000)
//! --max-attempts <n>   worker deaths per cell before quarantine (default 3)
//! --backoff-ms <n>     first respawn backoff          (default 100)
//! --backoff-cap-ms <n> respawn backoff ceiling        (default 2000)
//! --jitter-seed <n>    restart-jitter seed (deterministic; default fixed)
//! --queue-cap <n>      max queued cells (backpressure) (default 4096)
//! --worker-loop        internal: run as a fleet worker
//! ```
//!
//! Jobs are `ecl-farm/JOB/v1` JSONL lines on stdin or the TCP socket; each
//! gets one `ecl-farm/ACK/v1` reply on the same channel. Progress events
//! (`ecl-farm/EVENT/v1`) stream on stdout. State (job store, per-job
//! journals, reports, repro bundles) lives under `--state`; a daemon killed
//! at any instant — `kill -9` included — resumes from that directory and
//! finishes every accepted job with byte-identical reports.
//!
//! Signals: the first SIGINT/SIGTERM starts a cooperative drain (new
//! submissions are rejected, accepted jobs run to completion, exit 0); a
//! second SIGINT force-quits immediately — exit 130 — after appending a
//! final note line to every in-flight journal. Nothing is lost either way;
//! the journals carry the progress.

use ecl_bench::Json;
use ecl_farm::{api, recovery, ActiveJob, CellQueue, Fleet, FleetConfig, FleetOutcome, JobStore};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Duration;

struct Options {
    state: PathBuf,
    workers: usize,
    listen: Option<String>,
    once: bool,
    heartbeat_ms: u64,
    deadline_ms: u64,
    max_attempts: u32,
    backoff_ms: u64,
    backoff_cap_ms: u64,
    jitter_seed: u64,
    queue_cap: usize,
}

fn parse_options(args: &[String]) -> Options {
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let num = |flag: &str, default: u64| -> u64 {
        get(flag).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    Options {
        state: PathBuf::from(get("--state").unwrap_or_else(|| "farm-state".into())),
        workers: num("--workers", 2) as usize,
        listen: get("--listen"),
        once: args.iter().any(|a| a == "--once"),
        heartbeat_ms: num("--heartbeat-ms", 250),
        deadline_ms: num("--deadline-ms", 10_000),
        max_attempts: num("--max-attempts", 3) as u32,
        backoff_ms: num("--backoff-ms", 100),
        backoff_cap_ms: num("--backoff-cap-ms", 2_000),
        jitter_seed: num("--jitter-seed", 0xec1f_a3a7),
        queue_cap: num("--queue-cap", 4_096) as usize,
    }
}

enum ReplyTo {
    Stdout,
    Chan(Sender<String>),
}

struct Submission {
    line: String,
    reply: ReplyTo,
}

fn emit(doc: &Json) {
    println!("{}", doc.render_compact());
}

fn reply(to: &ReplyTo, ack: &Json) {
    let line = ack.render_compact();
    match to {
        ReplyTo::Stdout => println!("{line}"),
        ReplyTo::Chan(tx) => {
            let _ = tx.send(line);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--worker-loop") {
        let hb = args
            .iter()
            .position(|a| a == "--heartbeat-ms")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(250);
        ecl_farm::worker::run_loop(hb);
    }
    let opts = parse_options(&args);
    std::process::exit(daemon_main(&opts));
}

fn daemon_main(opts: &Options) -> i32 {
    ecl_bench::install_interrupt_handler();

    // The force-quit watcher: a second SIGINT appends one final note line
    // to every in-flight journal (each append is already fsync'd, so this
    // is bookkeeping, not durability) and exits 130 immediately.
    let journals: Arc<std::sync::Mutex<Vec<Arc<ecl_bench::JournalWriter>>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    let watcher_journals = journals.clone();
    ecl_bench::spawn_force_quit_watcher(move || {
        if let Ok(list) = watcher_journals.lock() {
            for w in list.iter() {
                let _ = w.append_note("force-quit", w.cells_recorded());
            }
        }
    });

    let (mut store, stored) = match JobStore::open(&opts.state) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("farm: {e}");
            return 2;
        }
    };

    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("farm: cannot locate own executable: {e}");
            return 2;
        }
    };
    let mut fleet = Fleet::new(FleetConfig {
        workers: opts.workers,
        exe,
        heartbeat_ms: opts.heartbeat_ms,
        deadline_ms: opts.deadline_ms,
        max_attempts: opts.max_attempts,
        backoff_base_ms: opts.backoff_ms,
        backoff_cap_ms: opts.backoff_cap_ms,
        jitter_seed: opts.jitter_seed,
        scratch: recovery::tmp_dir(&opts.state),
    });
    let mut queue = CellQueue::new(opts.queue_cap);
    let mut active: HashMap<String, ActiveJob> = HashMap::new();
    let mut done_ids: Vec<String> = Vec::new();
    let mut any_failures = false;

    // Crash recovery: reopen every unfinished stored job, finalize the ones
    // whose journals are already complete, and re-enqueue the rest. The
    // queue cap is bypassed — this work was accepted durably.
    for sj in stored {
        if sj.done {
            done_ids.push(sj.spec.id.clone());
            continue;
        }
        let id = sj.spec.id.clone();
        match ActiveJob::open(&opts.state, sj.spec) {
            Ok(job) => {
                emit(&api::event(
                    "recovered",
                    vec![
                        ("id", Json::Str(id.clone())),
                        ("remaining", Json::Num(job.remaining.len() as f64)),
                    ],
                ));
                journals.lock().unwrap().push(job.journal_writer());
                let mut keys: Vec<String> = job
                    .keys
                    .iter()
                    .filter(|k| job.remaining.contains(*k))
                    .cloned()
                    .collect();
                keys.sort_by_key(|k| job.keys.iter().position(|x| x == k));
                queue.push_job_forced(&id, job.spec.priority, &keys);
                fleet.register_job(job.spec.clone(), job.doc.clone());
                active.insert(id, job);
            }
            Err(e) => {
                eprintln!("farm: cannot recover job '{id}': {e}");
                return 2;
            }
        }
    }

    // Intake: stdin always; TCP when asked.
    let (sub_tx, sub_rx) = std::sync::mpsc::channel::<Submission>();
    let stdin_eof = Arc::new(AtomicBool::new(false));
    {
        let tx = sub_tx.clone();
        let eof = stdin_eof.clone();
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(l) if !l.trim().is_empty() => {
                        if tx
                            .send(Submission {
                                line: l,
                                reply: ReplyTo::Stdout,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            eof.store(true, Ordering::SeqCst);
        });
    }
    if let Some(addr) = &opts.listen {
        match std::net::TcpListener::bind(addr) {
            Ok(listener) => {
                let bound = listener
                    .local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| addr.clone());
                emit(&api::event("listening", vec![("addr", Json::Str(bound))]));
                let tx = sub_tx.clone();
                std::thread::spawn(move || {
                    for conn in listener.incoming() {
                        let Ok(conn) = conn else { continue };
                        let tx = tx.clone();
                        std::thread::spawn(move || {
                            let mut writer = match conn.try_clone() {
                                Ok(w) => w,
                                Err(_) => return,
                            };
                            let reader = std::io::BufReader::new(conn);
                            for line in reader.lines() {
                                let Ok(line) = line else { break };
                                if line.trim().is_empty() {
                                    continue;
                                }
                                let (ack_tx, ack_rx) = std::sync::mpsc::channel();
                                if tx
                                    .send(Submission {
                                        line,
                                        reply: ReplyTo::Chan(ack_tx),
                                    })
                                    .is_err()
                                {
                                    break;
                                }
                                match ack_rx.recv() {
                                    Ok(ack) => {
                                        if writeln!(writer, "{ack}").is_err() {
                                            break;
                                        }
                                    }
                                    Err(_) => break,
                                }
                            }
                        });
                    }
                });
            }
            Err(e) => {
                eprintln!("farm: cannot bind {addr}: {e}");
                return 2;
            }
        }
    }
    drop(sub_tx);

    let mut draining = false;
    loop {
        // Sample EOF *before* draining the channel: the intake thread sets
        // the flag only after its last send, so observing it here means
        // every submission is already drainable below — the `--once` exit
        // cannot race past a job still in flight.
        let eof = stdin_eof.load(Ordering::SeqCst);
        if ecl_bench::interrupted() && !draining {
            draining = true;
            emit(&api::event(
                "draining",
                vec![
                    ("active_jobs", Json::Num(active.len() as f64)),
                    ("queued_cells", Json::Num(queue.len() as f64)),
                ],
            ));
        }

        // Submissions.
        while let Ok(sub) = sub_rx.try_recv() {
            handle_submission(
                &sub,
                opts,
                draining,
                &mut store,
                &mut queue,
                &mut fleet,
                &mut active,
                &done_ids,
                &journals,
            );
        }

        // Supervision + execution.
        let outcomes = fleet.tick(&mut queue, true);
        for outcome in outcomes {
            apply_outcome(outcome, opts, &mut active, &mut any_failures);
        }

        // Finalization.
        let finished: Vec<String> = active
            .iter()
            .filter(|(_, j)| j.is_complete())
            .map(|(id, _)| id.clone())
            .collect();
        for id in finished {
            let job = active.remove(&id).expect("job is active");
            fleet.unregister_job(&id);
            let failures = job.failures();
            if failures > 0 {
                any_failures = true;
            }
            match job.finalize(&opts.state) {
                Ok(path) => {
                    if let Err(e) = store.record_done(&id, failures) {
                        eprintln!("farm: {e}");
                    }
                    done_ids.push(id.clone());
                    emit(&api::event(
                        "job-done",
                        vec![
                            ("id", Json::Str(id)),
                            ("report", Json::Str(path.display().to_string())),
                            ("failures", Json::Num(failures as f64)),
                        ],
                    ));
                }
                Err(e) => {
                    // An incomplete or unusable journal here is a bug, not a
                    // user error; surface it loudly and abandon the job.
                    any_failures = true;
                    eprintln!("farm: cannot finalize job '{id}': {e}");
                    emit(&api::event(
                        "job-error",
                        vec![("id", Json::Str(id)), ("error", Json::Str(e))],
                    ));
                }
            }
        }

        let idle = active.is_empty() && queue.is_empty() && fleet.busy() == 0;
        if draining && idle {
            emit(&api::event("drained", vec![]));
            fleet.shutdown();
            return 0;
        }
        if opts.once && eof && idle {
            fleet.shutdown();
            return if any_failures { 1 } else { 0 };
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_submission(
    sub: &Submission,
    opts: &Options,
    draining: bool,
    store: &mut JobStore,
    queue: &mut CellQueue,
    fleet: &mut Fleet,
    active: &mut HashMap<String, ActiveJob>,
    done_ids: &[String],
    journals: &Arc<std::sync::Mutex<Vec<Arc<ecl_bench::JournalWriter>>>>,
) {
    // The admission contract (ACK only after the record's fsync; typed
    // NACKs for everything else) lives in `ecl_farm::submit` where the
    // fault backend can pin it.
    let admission = ecl_farm::admit(
        &ecl_bench::Storage::real(),
        &opts.state,
        &sub.line,
        draining,
        store,
        |id| active.contains_key(id) || done_ids.iter().any(|d| d == id),
        |cells| {
            (!queue.would_fit(cells)).then(|| {
                format!(
                    "queue full: {} queued + {cells} new > cap {}",
                    queue.len(),
                    opts.queue_cap
                )
            })
        },
    );
    match admission {
        ecl_farm::Admission::Rejected { id, reason } => {
            reply(&sub.reply, &api::ack(&id, false, Some(&reason), 0));
        }
        ecl_farm::Admission::Accepted {
            job,
            active: active_job,
        } => {
            let id = job.id.clone();
            let keys = job.sweep.cell_keys();
            queue
                .push_job(&id, job.priority, &keys)
                .expect("would_fit was checked");
            journals.lock().unwrap().push(active_job.journal_writer());
            fleet.register_job(job.clone(), active_job.doc.clone());
            active.insert(id.clone(), *active_job);
            reply(&sub.reply, &api::ack(&id, true, None, keys.len()));
            emit(&api::event(
                "job-accepted",
                vec![
                    ("id", Json::Str(id)),
                    ("cells", Json::Num(keys.len() as f64)),
                ],
            ));
        }
    }
}

fn apply_outcome(
    outcome: FleetOutcome,
    opts: &Options,
    active: &mut HashMap<String, ActiveJob>,
    any_failures: &mut bool,
) {
    match outcome {
        FleetOutcome::CellDone { job, key, ok, body } => {
            let Some(aj) = active.get_mut(&job) else {
                return;
            };
            if !ok {
                *any_failures = true;
            }
            if let Err(e) = aj.record_cell(&key, ok, body) {
                // A divergent duplicate is a determinism violation — the
                // one invariant the whole pipeline exists to protect.
                eprintln!("farm: job '{job}': {e}");
                emit(&api::event(
                    "determinism-violation",
                    vec![
                        ("id", Json::Str(job)),
                        ("key", Json::Str(key)),
                        ("error", Json::Str(e)),
                    ],
                ));
                *any_failures = true;
            }
        }
        FleetOutcome::Quarantined {
            job,
            key,
            body,
            attempts,
        } => {
            *any_failures = true;
            let Some(aj) = active.get_mut(&job) else {
                return;
            };
            let error = body
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("worker process died")
                .to_string();
            let bundle = ecl_bench::repro::Bundle {
                key: &key,
                error: error.clone(),
                run: 0,
                experiment: aj.doc.get("spec").cloned().unwrap_or(Json::Null),
                replay_args: vec![
                    "--scale".into(),
                    aj.spec.sweep.scale.to_string(),
                    "--runs".into(),
                    aj.spec.sweep.runs.to_string(),
                    "--seed".into(),
                    aj.spec.sweep.seed.to_string(),
                    "--retries".into(),
                    aj.spec.sweep.retries.to_string(),
                    "--cell-timeout".into(),
                    aj.spec.sweep.cell_timeout.to_string(),
                    "--worker-cell".into(),
                    key.clone(),
                ],
            };
            let bundle_path =
                ecl_bench::repro::write_bundle(&recovery::repro_dir(&opts.state), &bundle)
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|e| format!("(bundle write failed: {e})"));
            if let Err(e) = aj.record_cell(&key, false, body) {
                eprintln!("farm: job '{job}': {e}");
            }
            emit(&api::event(
                "quarantined",
                vec![
                    ("id", Json::Str(job)),
                    ("key", Json::Str(key)),
                    ("attempts", Json::Num(attempts as f64)),
                    ("error", Json::Str(error)),
                    ("repro", Json::Str(bundle_path)),
                ],
            ));
        }
    }
}
