//! The fleet worker: a persistent subprocess measuring cells one at a time.
//!
//! The supervisor spawns `farm --worker-loop --heartbeat-ms <n>` and speaks
//! JSONL over its stdin/stdout:
//!
//! ```text
//! supervisor → worker  {"type":"run","key":"<set/input/alg/gpu>","job":<JOB/v1>}
//! worker → supervisor  {"type":"heartbeat"}                (every interval)
//! worker → supervisor  {"type":"result","key":"…","doc":<WORKER_CELL/v1>}
//! ```
//!
//! The `doc` payload is a literal `ecl-bench/WORKER_CELL/v1` document — the
//! same bytes a one-shot `--worker-cell` subprocess would print — so the
//! farm's journals and reports are byte-compatible with `all_tests`
//! sweeps. Measuring happens in-process here: a panic, abort, or OOM kill
//! takes down this worker, the supervisor sees the death, and the cell is
//! retried or quarantined. Stdin EOF is the shutdown signal; the worker
//! exits 0.
//!
//! Heartbeats come from a dedicated thread so a long (but healthy) cell
//! does not look dead; the *cell* deadline is the supervisor's job. Each
//! `println!` emits one complete line under the stdout lock, so heartbeat
//! and result lines never interleave.

use crate::api;
use ecl_bench::{cell_json, failure_json, graph_seed, Json, Matrix};
use ecl_core::suite::Algorithm;
use ecl_graph::inputs::GraphInput;
use ecl_graph::props::properties;
use ecl_simt::GpuConfig;
use std::io::BufRead;
use std::time::{Duration, Instant};

/// Chaos hook: `ECL_FARM_POISON=<substr>` makes every cell whose key
/// contains the substring abort the worker before measuring — a
/// deterministic poison cell for quarantine tests.
const POISON_ENV: &str = "ECL_FARM_POISON";
/// Chaos hook: `ECL_FARM_KILL=<substr>:<n>` SIGKILLs the worker the first
/// `n` times it is asked to run a matching cell. Attempts are counted with
/// marker files in `$ECL_FARM_KILL_DIR`, so the count survives respawns.
const KILL_ENV: &str = "ECL_FARM_KILL";
const KILL_DIR_ENV: &str = "ECL_FARM_KILL_DIR";
/// Chaos hook: `ECL_FARM_SLOW_MS=<n>` sleeps before each cell, widening
/// the window in which kill tests can land mid-sweep.
const SLOW_ENV: &str = "ECL_FARM_SLOW_MS";

fn apply_chaos_hooks(key: &str) {
    if let Ok(ms) = std::env::var(SLOW_ENV) {
        if let Ok(ms) = ms.parse::<u64>() {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
    if let Ok(needle) = std::env::var(POISON_ENV) {
        if !needle.is_empty() && key.contains(&needle) {
            eprintln!("{POISON_ENV}: injected abort for '{key}'");
            std::process::abort();
        }
    }
    if let (Ok(spec), Ok(dir)) = (std::env::var(KILL_ENV), std::env::var(KILL_DIR_ENV)) {
        if let Some((needle, times)) = spec.rsplit_once(':') {
            let times: u32 = times.parse().unwrap_or(0);
            if !needle.is_empty() && key.contains(needle) {
                for i in 0..times {
                    let marker = std::path::Path::new(&dir).join(format!("kill-{i}"));
                    // create_new is the atomic claim: exactly one incarnation
                    // consumes each marker even if respawns race.
                    if std::fs::OpenOptions::new()
                        .write(true)
                        .create_new(true)
                        .open(&marker)
                        .is_ok()
                    {
                        eprintln!("{KILL_ENV}: injected SIGKILL #{} for '{key}'", i + 1);
                        let _ = std::process::Command::new("sh")
                            .arg("-c")
                            .arg(format!("kill -9 {}", std::process::id()))
                            .status();
                        // Unreachable unless `sh` itself failed; fall through
                        // and run the cell rather than wedge.
                    }
                }
            }
        }
    }
}

/// Measures one cell exactly as a `--worker-cell` subprocess would,
/// returning the `WORKER_CELL/v1` document.
fn measure(key: &str, job: &api::JobSpec) -> Result<Json, String> {
    let mut parts = key.splitn(4, '/');
    let (set, input, alg, gpu) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(s), Some(i), Some(a), Some(g)) => (s, i, a, g),
        _ => return Err(format!("malformed cell key '{key}'")),
    };
    let _ = set;
    let input =
        GraphInput::by_name(input).ok_or_else(|| format!("unknown input '{input}' in '{key}'"))?;
    let algorithm =
        Algorithm::parse(alg).ok_or_else(|| format!("unknown algorithm '{alg}' in '{key}'"))?;
    let gpu = GpuConfig::by_name(gpu).ok_or_else(|| format!("unknown gpu '{gpu}' in '{key}'"))?;

    let s = &job.sweep;
    // Same 0.9x margin as the one-shot worker: the in-process deadline
    // fires as a typed SimError before the supervisor's wall-clock kill.
    let e = s.experiment();
    let mut opts = e.opts.clone();
    opts.deadline = Some(Instant::now() + Duration::from_secs_f64(s.cell_timeout as f64 * 0.9));
    let matrix = Matrix::quick()
        .scale(e.scale)
        .runs(e.runs)
        .seed(e.seed)
        .gpus(vec![gpu.clone()])
        .jobs(1)
        .sim_options(opts)
        .retry(e.retry);
    let graph = input.build(s.scale, graph_seed(s.seed));
    let props = properties(&graph);
    let verdict = match matrix.try_measure(input.name(), algorithm, &graph, &gpu, props) {
        Ok(cell) => ecl_bench::isolate::WorkerVerdict::Ok(cell_json(&cell)),
        Err(failure) => ecl_bench::isolate::WorkerVerdict::Failed(failure_json(&failure)),
    };
    Ok(ecl_bench::isolate::worker_doc(&verdict))
}

/// Entry point of `farm --worker-loop`. Never returns normally except on
/// stdin EOF (exit 0) or a malformed command (exit 2).
pub fn run_loop(heartbeat_ms: u64) -> ! {
    std::thread::spawn(move || loop {
        std::thread::sleep(Duration::from_millis(heartbeat_ms.max(10)));
        println!(
            "{}",
            Json::obj(vec![("type", Json::Str("heartbeat".into()))]).render_compact()
        );
    });
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let cmd = match Json::parse(&line) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("worker: bad command line ({e}): {line}");
                std::process::exit(2);
            }
        };
        match cmd.get("type").and_then(Json::as_str) {
            Some("run") => {
                let key = cmd
                    .get("key")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string();
                let job = cmd
                    .get("job")
                    .map(|j| api::parse_job(&j.render_compact()))
                    .unwrap_or_else(|| Err("run command carries no 'job'".into()));
                apply_chaos_hooks(&key);
                let doc = job.and_then(|j| measure(&key, &j));
                let doc = match doc {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("worker: cannot run '{key}': {e}");
                        std::process::exit(2);
                    }
                };
                println!(
                    "{}",
                    Json::obj(vec![
                        ("type", Json::Str("result".into())),
                        ("key", Json::Str(key)),
                        ("doc", doc),
                    ])
                    .render_compact()
                );
            }
            Some("shutdown") | None => break,
            Some(other) => {
                eprintln!("worker: unknown command type '{other}'");
                std::process::exit(2);
            }
        }
    }
    std::process::exit(0);
}
