//! The worker fleet supervisor: spawn, watch, restart, quarantine.
//!
//! The supervisor owns a fixed number of worker *slots*. Each slot cycles
//! through dead → idle → busy; a dead slot respawns after an exponential
//! backoff (reset by the first successful result). Liveness is judged two
//! ways, both on the supervisor's clock:
//!
//! * **heartbeat deadline** — a busy worker that has not written anything
//!   (heartbeat or result) for `deadline_ms` is presumed wedged and killed;
//! * **cell deadline** — a busy worker still holding a cell past the job's
//!   `cell_timeout` is killed even if it heartbeats on time (alive but
//!   stuck in a runaway launch).
//!
//! Either kill, and any uncommanded death (abort, OOM, SIGKILL), counts as
//! one failed *attempt* for the cell the worker held. The cell is requeued
//! at the front of its priority class until it has consumed `max_attempts`
//! attempts; then it is **quarantined**: converted into one typed failure
//! record (`worker process died …`, same shape [`ecl_bench::parse_failure`]
//! reads) and a repro bundle, and the rest of the sweep proceeds. Attempt
//! counts key on (job, cell), not on the worker — a poison cell chews
//! through respawned workers but only ever burns its own budget.
//!
//! Every worker incarnation is generation-stamped. Reader threads tag the
//! lines they forward with (slot, generation), so output straggling in
//! from a killed incarnation cannot be credited to its replacement.

use crate::api::JobSpec;
use crate::queue::{CellQueue, CellTask};
use ecl_bench::isolate::tail_of;
use ecl_bench::{Json, STDERR_TAIL_BUDGET};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{Receiver, Sender};
use std::time::{Duration, Instant};

/// Fleet tuning knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker slots (concurrent cells).
    pub workers: usize,
    /// The binary to spawn with `--worker-loop` (normally
    /// `std::env::current_exe()`).
    pub exe: PathBuf,
    /// Interval workers are told to heartbeat at.
    pub heartbeat_ms: u64,
    /// Silence longer than this on a busy worker = presumed dead.
    pub deadline_ms: u64,
    /// Worker deaths a single cell may cause before quarantine.
    pub max_attempts: u32,
    /// First respawn backoff; doubles per consecutive death of a slot.
    pub backoff_base_ms: u64,
    /// Backoff ceiling (before jitter; see [`restart_backoff_ms`]).
    pub backoff_cap_ms: u64,
    /// Seed for the deterministic per-slot restart jitter.
    pub jitter_seed: u64,
    /// Directory for worker stderr capture files.
    pub scratch: PathBuf,
}

/// The jittered exponential restart backoff, as a pure function so the
/// schedule can be pinned by tests: `base·2^min(deaths,16)` capped at
/// `cap`, plus a seed-derived jitter in `[0, exp/2]` mixed from
/// `(seed, slot, deaths)`.
///
/// Without the jitter a fleet whose workers all died together (shared
/// poison input, machine hiccup) restarts in lockstep and reconverges on
/// whatever killed it in lockstep too. Deriving the jitter from the slot
/// index decorrelates the slots; deriving it deterministically keeps farm
/// runs reproducible — the same seed always yields the same schedule.
pub fn restart_backoff_ms(base: u64, cap: u64, deaths: u32, seed: u64, slot: u64) -> u64 {
    let exp = base.saturating_mul(1u64 << deaths.min(16)).min(cap);
    let span = exp / 2 + 1;
    let mix = ecl_bench::splitmix64(
        seed ^ slot.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (deaths as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9),
    );
    exp.saturating_add(mix % span)
}

/// What a tick observed, in observation order.
#[derive(Debug)]
pub enum FleetOutcome {
    /// A worker returned a `WORKER_CELL/v1` verdict for its cell.
    CellDone {
        /// Owning job.
        job: String,
        /// Cell key.
        key: String,
        /// Measured (`true`) or typed in-process failure.
        ok: bool,
        /// The verdict body (cell or failure JSON).
        body: Json,
    },
    /// A cell exhausted its attempt budget killing workers.
    Quarantined {
        /// Owning job.
        job: String,
        /// Cell key.
        key: String,
        /// Failure body, shaped for [`ecl_bench::parse_failure`].
        body: Json,
        /// Attempts consumed.
        attempts: u32,
    },
}

enum SlotState {
    Dead {
        respawn_at: Instant,
    },
    Idle,
    Busy {
        task: CellTask,
        cell_deadline: Instant,
        last_seen: Instant,
    },
}

struct Slot {
    state: SlotState,
    gen: u64,
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    err_path: PathBuf,
    /// Consecutive deaths (for backoff); reset by a delivered result.
    deaths: u32,
}

enum EventKind {
    Line(String),
    Eof,
}

struct WorkerEvent {
    slot: usize,
    gen: u64,
    kind: EventKind,
}

/// The supervised fleet. Drive it by calling [`Fleet::tick`] frequently
/// (every few milliseconds); all supervision is time-based and synchronous
/// inside `tick`, so there is nothing to join or lock elsewhere.
pub struct Fleet {
    cfg: FleetConfig,
    slots: Vec<Slot>,
    events_rx: Receiver<WorkerEvent>,
    events_tx: Sender<WorkerEvent>,
    /// (job, key) → worker deaths charged to that cell.
    attempts: HashMap<(String, String), u32>,
    /// Known jobs: the normalized JOB/v1 document (sent verbatim to
    /// workers) and the parsed spec (for per-job cell timeouts).
    jobs: HashMap<String, (Json, JobSpec)>,
}

impl Fleet {
    /// A fleet with every slot dead and due for immediate spawn.
    pub fn new(cfg: FleetConfig) -> Fleet {
        let (events_tx, events_rx) = std::sync::mpsc::channel();
        let now = Instant::now();
        let slots = (0..cfg.workers.max(1))
            .map(|_| Slot {
                state: SlotState::Dead { respawn_at: now },
                gen: 0,
                child: None,
                stdin: None,
                err_path: PathBuf::new(),
                deaths: 0,
            })
            .collect();
        Fleet {
            cfg,
            slots,
            events_rx,
            events_tx,
            attempts: HashMap::new(),
            jobs: HashMap::new(),
        }
    }

    /// Registers a job so its cells can be assigned. `doc` must be the
    /// normalized `JOB/v1` document (what [`crate::api::job_json`] renders).
    pub fn register_job(&mut self, spec: JobSpec, doc: Json) {
        self.jobs.insert(spec.id.clone(), (doc, spec));
    }

    /// Forgets a finished job and its attempt counters.
    pub fn unregister_job(&mut self, id: &str) {
        self.jobs.remove(id);
        self.attempts.retain(|(job, _), _| job != id);
    }

    /// Busy slots right now.
    pub fn busy(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.state, SlotState::Busy { .. }))
            .count()
    }

    fn spawn_slot(&mut self, idx: usize) {
        let slot = &mut self.slots[idx];
        slot.gen += 1;
        let gen = slot.gen;
        slot.err_path = self.cfg.scratch.join(format!("worker-{idx}-{gen}.err"));
        let _ = std::fs::create_dir_all(&self.cfg.scratch);
        let spawned = Command::new(&self.cfg.exe)
            .arg("--worker-loop")
            .arg("--heartbeat-ms")
            .arg(self.cfg.heartbeat_ms.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(
                std::fs::File::create(&slot.err_path)
                    .map(Stdio::from)
                    .unwrap_or(Stdio::null()),
            )
            .spawn();
        match spawned {
            Ok(mut child) => {
                slot.stdin = child.stdin.take();
                let stdout = child.stdout.take();
                slot.child = Some(child);
                slot.state = SlotState::Idle;
                if let Some(out) = stdout {
                    let tx = self.events_tx.clone();
                    std::thread::spawn(move || {
                        let reader = std::io::BufReader::new(out);
                        for line in reader.lines() {
                            match line {
                                Ok(l) => {
                                    if tx
                                        .send(WorkerEvent {
                                            slot: idx,
                                            gen,
                                            kind: EventKind::Line(l),
                                        })
                                        .is_err()
                                    {
                                        return;
                                    }
                                }
                                Err(_) => break,
                            }
                        }
                        let _ = tx.send(WorkerEvent {
                            slot: idx,
                            gen,
                            kind: EventKind::Eof,
                        });
                    });
                }
            }
            Err(e) => {
                eprintln!("farm: cannot spawn worker slot {idx}: {e}");
                slot.state = SlotState::Dead {
                    // Cap-level backoff, jittered like any other restart so
                    // a fleet-wide spawn failure doesn't retry in lockstep.
                    respawn_at: Instant::now()
                        + Duration::from_millis(restart_backoff_ms(
                            self.cfg.backoff_cap_ms,
                            self.cfg.backoff_cap_ms,
                            0,
                            self.cfg.jitter_seed,
                            idx as u64,
                        )),
                };
            }
        }
    }

    fn backoff(&self, deaths: u32, slot: usize) -> Duration {
        Duration::from_millis(restart_backoff_ms(
            self.cfg.backoff_base_ms,
            self.cfg.backoff_cap_ms,
            deaths,
            self.cfg.jitter_seed,
            slot as u64,
        ))
    }

    /// Kills slot `idx`'s worker (if any) and charges the death to the cell
    /// it held, requeueing or quarantining. Returns the quarantine outcome
    /// if one was produced.
    fn reap_slot(
        &mut self,
        idx: usize,
        queue: &mut CellQueue,
        exit: Option<i32>,
        signal: Option<i32>,
        timed_out: bool,
    ) -> Option<FleetOutcome> {
        let stderr_tail = tail_of(&self.slots[idx].err_path, STDERR_TAIL_BUDGET);
        let slot = &mut self.slots[idx];
        slot.stdin = None; // closing stdin asks a live worker to exit
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        slot.deaths = slot.deaths.saturating_add(1);
        let backoff = self.backoff(self.slots[idx].deaths - 1, idx);
        let prev = std::mem::replace(
            &mut self.slots[idx].state,
            SlotState::Dead {
                respawn_at: Instant::now() + backoff,
            },
        );
        let SlotState::Busy { task, .. } = prev else {
            return None;
        };
        let counter = self
            .attempts
            .entry((task.job.clone(), task.key.clone()))
            .or_insert(0);
        *counter += 1;
        let attempts = *counter;
        if attempts < self.cfg.max_attempts {
            queue.requeue(task);
            return None;
        }
        // Quarantine: one typed CellFailure record; shaped exactly like
        // `failure_json` so `parse_failure`/`table_from_records` accept it.
        let mut parts = task.key.splitn(4, '/');
        let (_set, input, alg, gpu) = (
            parts.next().unwrap_or(""),
            parts.next().unwrap_or("?"),
            parts.next().unwrap_or("?"),
            parts.next().unwrap_or("?"),
        );
        let error = ecl_core::suite::RunError::Worker {
            exit,
            signal,
            timed_out,
            stderr_tail,
        };
        let body = Json::obj(vec![
            ("input", Json::Str(input.into())),
            ("algorithm", Json::Str(alg.into())),
            ("gpu", Json::Str(gpu.into())),
            ("run", Json::Num(0.0)),
            ("error", Json::Str(error.to_string())),
        ]);
        Some(FleetOutcome::Quarantined {
            job: task.job,
            key: task.key,
            body,
            attempts,
        })
    }

    /// One supervision step: respawn due slots, drain worker output, detect
    /// deaths and deadline blows, and (when `assign` is true) hand queued
    /// cells to idle workers. Returns the outcomes observed this tick.
    pub fn tick(&mut self, queue: &mut CellQueue, assign: bool) -> Vec<FleetOutcome> {
        let mut out = Vec::new();
        let now = Instant::now();

        // Respawn slots whose backoff elapsed — only while there is (or
        // could be) work; an idle farm keeps its fleet warm anyway.
        for idx in 0..self.slots.len() {
            if let SlotState::Dead { respawn_at } = self.slots[idx].state {
                if now >= respawn_at {
                    self.spawn_slot(idx);
                }
            }
        }

        // Drain everything the reader threads forwarded.
        while let Ok(ev) = self.events_rx.try_recv() {
            let slot = &mut self.slots[ev.slot];
            if ev.gen != slot.gen {
                continue; // straggler from a killed incarnation
            }
            match ev.kind {
                EventKind::Eof => {
                    // Reader saw stdout close; the wait/try_wait pass below
                    // will reap it. Nothing to credit.
                }
                EventKind::Line(line) => {
                    let doc = match Json::parse(&line) {
                        Ok(d) => d,
                        Err(_) => continue, // stray print; ignore
                    };
                    match doc.get("type").and_then(Json::as_str) {
                        Some("heartbeat") => {
                            if let SlotState::Busy { last_seen, .. } = &mut slot.state {
                                *last_seen = Instant::now();
                            }
                        }
                        Some("result") => {
                            let key = doc.get("key").and_then(Json::as_str).unwrap_or("");
                            let held = matches!(&slot.state,
                                SlotState::Busy { task, .. } if task.key == key);
                            if !held {
                                continue; // result for a cell we no longer track
                            }
                            let verdict = doc.get("doc");
                            let (ok, body) = match verdict {
                                Some(v) => {
                                    if let Some(b) = v.get("ok") {
                                        (true, b.clone())
                                    } else if let Some(b) = v.get("failed") {
                                        (false, b.clone())
                                    } else {
                                        continue;
                                    }
                                }
                                None => continue,
                            };
                            let prev = std::mem::replace(&mut slot.state, SlotState::Idle);
                            slot.deaths = 0;
                            let SlotState::Busy { task, .. } = prev else {
                                unreachable!()
                            };
                            self.attempts.remove(&(task.job.clone(), task.key.clone()));
                            out.push(FleetOutcome::CellDone {
                                job: task.job,
                                key: task.key,
                                ok,
                                body,
                            });
                        }
                        _ => {}
                    }
                }
            }
        }

        // Death and deadline detection.
        for idx in 0..self.slots.len() {
            let (died, exit, signal, timed_out) = {
                let slot = &mut self.slots[idx];
                if let SlotState::Dead { .. } = &slot.state {
                    continue;
                }
                let status = slot
                    .child
                    .as_mut()
                    .and_then(|c| c.try_wait().ok().flatten());
                if let Some(status) = status {
                    (true, status.code(), unix_signal(&status), false)
                } else {
                    match &slot.state {
                        SlotState::Busy {
                            last_seen,
                            cell_deadline,
                            ..
                        } => {
                            if now.duration_since(*last_seen).as_millis() as u64
                                > self.cfg.deadline_ms
                            {
                                (true, None, None, false)
                            } else if now >= *cell_deadline {
                                (true, None, None, true)
                            } else {
                                (false, None, None, false)
                            }
                        }
                        _ => (false, None, None, false),
                    }
                }
            };
            if died {
                if let Some(q) = self.reap_slot(idx, queue, exit, signal, timed_out) {
                    out.push(q);
                }
            }
        }

        // Assignment.
        if assign {
            for idx in 0..self.slots.len() {
                if !matches!(self.slots[idx].state, SlotState::Idle) {
                    continue;
                }
                let Some(task) = queue.pop() else { break };
                let Some((doc, spec)) = self.jobs.get(&task.job) else {
                    // Job was abandoned while its cell sat queued; drop it.
                    continue;
                };
                let cmd = Json::obj(vec![
                    ("type", Json::Str("run".into())),
                    ("key", Json::Str(task.key.clone())),
                    ("job", doc.clone()),
                ]);
                let timeout = Duration::from_secs(spec.sweep.cell_timeout);
                let sent = self.slots[idx]
                    .stdin
                    .as_mut()
                    .map(|w| writeln!(w, "{}", cmd.render_compact()).and_then(|_| w.flush()))
                    .unwrap_or(Err(std::io::Error::other("no stdin")));
                match sent {
                    Ok(()) => {
                        self.slots[idx].state = SlotState::Busy {
                            task,
                            cell_deadline: now + timeout,
                            last_seen: now,
                        };
                    }
                    Err(_) => {
                        // Treat as an immediate death of the (not yet
                        // assigned) worker; the cell is not charged.
                        queue.requeue(task);
                        let slot = &mut self.slots[idx];
                        if let Some(mut c) = slot.child.take() {
                            let _ = c.kill();
                            let _ = c.wait();
                        }
                        slot.stdin = None;
                        slot.deaths = slot.deaths.saturating_add(1);
                        let deaths = slot.deaths;
                        let backoff = self.backoff(deaths - 1, idx);
                        self.slots[idx].state = SlotState::Dead {
                            respawn_at: now + backoff,
                        };
                    }
                }
            }
        }
        out
    }

    /// Kills the whole fleet. Requeues nothing — callers drain or abandon
    /// the queue themselves.
    pub fn shutdown(&mut self) {
        for slot in &mut self.slots {
            slot.stdin = None;
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            slot.state = SlotState::Dead {
                respawn_at: Instant::now(),
            };
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(unix)]
fn unix_signal(status: &std::process::ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.signal()
}

#[cfg(not(unix))]
fn unix_signal(_status: &std::process::ExitStatus) -> Option<i32> {
    None
}

#[cfg(test)]
mod tests {
    use super::restart_backoff_ms;

    #[test]
    fn restart_backoff_schedule_is_pinned() {
        // The exact schedule for (base 100ms, cap 2000ms, seed 0xec1fa3a7):
        // exponential growth is visible, jitter is bounded by exp/2, slots
        // diverge, and the numbers are frozen — a silent change to the
        // mixing breaks this test, not production reproducibility.
        let sched = |slot: u64| -> Vec<u64> {
            (0..7)
                .map(|d| restart_backoff_ms(100, 2000, d, 0xec1f_a3a7, slot))
                .collect()
        };
        assert_eq!(sched(0), [114, 221, 547, 834, 2175, 2490, 2035]);
        assert_eq!(sched(1), [150, 254, 460, 938, 2347, 2546, 2388]);
        assert_eq!(
            (0..7)
                .map(|d| restart_backoff_ms(100, 2000, d, 1, 0))
                .collect::<Vec<_>>(),
            [144, 243, 508, 1003, 1810, 2381, 2346]
        );
    }

    #[test]
    fn restart_backoff_is_bounded_and_deterministic() {
        for deaths in 0..20 {
            for slot in 0..8u64 {
                let ms = restart_backoff_ms(100, 2000, deaths, 7, slot);
                let exp = 100u64.saturating_mul(1 << deaths.min(16)).min(2000);
                assert!(ms >= exp, "jitter never shortens the backoff");
                assert!(ms <= exp + exp / 2, "jitter bounded by exp/2");
                assert_eq!(ms, restart_backoff_ms(100, 2000, deaths, 7, slot));
            }
        }
        // Degenerate configs don't panic or overflow.
        assert_eq!(restart_backoff_ms(0, 0, 63, 0, 0), 0);
        let _ = restart_backoff_ms(u64::MAX, u64::MAX, u32::MAX, u64::MAX, u64::MAX);
    }

    #[test]
    fn slots_do_not_restart_in_lockstep() {
        // For any death count, at least some pair of slots must disagree —
        // the whole point of the jitter.
        for deaths in 0..6 {
            let times: Vec<u64> = (0..8)
                .map(|slot| restart_backoff_ms(100, 2000, deaths, 0xec1f_a3a7, slot))
                .collect();
            let first = times[0];
            assert!(
                times.iter().any(|&t| t != first),
                "deaths {deaths}: all slots at {first}ms"
            );
        }
    }
}
