//! Job admission: the decision path between a `JOB/v1` line arriving and
//! the `ACK/v1` leaving.
//!
//! Extracted from the daemon loop so the one contract clients build on can
//! be pinned by unit tests against the fault-injecting storage backend:
//! **an ACK is only emitted after the job record's fsync succeeded.** Every
//! failure before that point — parse error, drain, duplicate id, queue
//! backpressure, a stale journal identity, a degraded store, or the fsync
//! itself failing — produces a typed NACK with an explicit reason, never a
//! crash and never a silent acknowledgement the disk doesn't back.
//!
//! Order matters and is deliberate: the job journal is opened *before* the
//! store record is written. The reverse order could durably record a job,
//! then fail to open its journal and NACK — leaving a store whose replay
//! resurrects a job the client was told was refused.

use crate::api::{self, JobSpec};
use crate::recovery::{ActiveJob, JobStore};
use ecl_bench::storage::Storage;
use std::path::Path;

/// The outcome of admitting one submission line.
pub enum Admission {
    /// NACK: `reason` goes to the client verbatim.
    Rejected {
        /// Job id, or `"?"` when the line didn't parse far enough to have one.
        id: String,
        /// Why the job was refused.
        reason: String,
    },
    /// ACK: the job record is durable and the journal is open.
    Accepted {
        /// The parsed, normalized job.
        job: JobSpec,
        /// Its opened execution state (journal created or resumed); boxed
        /// so a rejection doesn't carry an `ActiveJob`-sized variant.
        active: Box<ActiveJob>,
    },
}

/// Decides one submission. `known` answers "is this id active or done?";
/// `queue_refusal` returns a backpressure reason if `n` more cells don't
/// fit. On `Accepted`, the caller enqueues the cells and sends the ACK —
/// the durable work is already done here, in the order the contract
/// requires.
pub fn admit(
    storage: &Storage,
    state: &Path,
    line: &str,
    draining: bool,
    store: &mut JobStore,
    known: impl Fn(&str) -> bool,
    queue_refusal: impl Fn(usize) -> Option<String>,
) -> Admission {
    let reject = |id: &str, reason: String| Admission::Rejected {
        id: id.to_string(),
        reason,
    };
    let job = match api::parse_job(line) {
        Ok(j) => j,
        Err(e) => return reject("?", e),
    };
    let id = job.id.clone();
    if draining {
        return reject(&id, "daemon is draining".into());
    }
    if let Some(e) = store.degraded() {
        // The store refused an earlier record; nothing can be made durable,
        // so nothing can be honestly ACKed. Name the root cause.
        return reject(
            &id,
            format!("job store is degraded ({e}); new submissions are refused"),
        );
    }
    if known(&id) {
        return reject(&id, "duplicate job id".into());
    }
    let keys = job.sweep.cell_keys();
    if let Some(reason) = queue_refusal(keys.len()) {
        return reject(&id, reason);
    }
    // Open the journal first (it can fail on a stale identity), then make
    // acceptance durable BEFORE acking — a daemon killed right after the
    // fsync resumes the job even though no ack went out; a daemon killed
    // before it never told anyone yes.
    let active = match ActiveJob::open_on(storage, state, job.clone()) {
        Ok(a) => a,
        Err(e) => return reject(&id, e),
    };
    if let Err(e) = store.record_accepted(&job) {
        return reject(&id, format!("job not accepted ({e})"));
    }
    Admission::Accepted {
        job,
        active: Box::new(active),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_bench::storage::FaultPlan;
    use std::path::PathBuf;

    fn job_line(id: &str) -> String {
        format!(
            r#"{{"schema":"ecl-farm/JOB/v1","id":"{id}",
                "spec":{{"scale":0.05,"runs":1,"seed":1,"gpus":["TestTiny"],"sets":["directed"]}}}}"#
        )
    }

    fn no_refusal(_: usize) -> Option<String> {
        None
    }

    #[test]
    fn ack_is_emitted_only_after_the_job_record_fsync_succeeds() {
        let state = PathBuf::from("/state");

        // Dry run on a clean backend to learn which fsync is the job
        // record's: it is the last one a successful admit performs.
        let (storage, fs) = Storage::mem(FaultPlan::none(1));
        let (mut store, _) = JobStore::open_on(&storage, &state).unwrap();
        let a = admit(
            &storage,
            &state,
            &job_line("j"),
            false,
            &mut store,
            |_| false,
            no_refusal,
        );
        assert!(matches!(a, Admission::Accepted { .. }));
        let record_fsync = fs.fsyncs() - 1;
        // The positive direction: after the ACK, the record is durable —
        // it survives a power cycle and replays.
        fs.power_cycle();
        let (_s, jobs) = JobStore::open_on(&storage, &state).unwrap();
        assert_eq!(jobs.len(), 1, "ACKed job survives power loss");
        assert_eq!(jobs[0].spec.id, "j");

        // The audited direction: fail exactly that fsync — the client gets
        // a typed NACK naming the fault, never an ACK.
        let (storage, _fs) = Storage::mem(FaultPlan {
            seed: 1,
            fail_fsync: Some(record_fsync),
            ..FaultPlan::default()
        });
        let (mut store, _) = JobStore::open_on(&storage, &state).unwrap();
        match admit(
            &storage,
            &state,
            &job_line("j"),
            false,
            &mut store,
            |_| false,
            no_refusal,
        ) {
            Admission::Rejected { id, reason } => {
                assert_eq!(id, "j");
                assert!(reason.contains("not accepted"), "{reason}");
                assert!(reason.contains("fsync failed"), "{reason}");
            }
            Admission::Accepted { .. } => panic!("ACK despite a failed fsync"),
        }
        // The store is now degraded: the next submission is refused up
        // front with the latched error as the reason.
        assert!(store.degraded().is_some());
        match admit(
            &storage,
            &state,
            &job_line("j2"),
            false,
            &mut store,
            |_| false,
            no_refusal,
        ) {
            Admission::Rejected { id, reason } => {
                assert_eq!(id, "j2");
                assert!(reason.contains("degraded"), "{reason}");
                assert!(reason.contains("fsync failed"), "{reason}");
            }
            Admission::Accepted { .. } => panic!("degraded store accepted a job"),
        }
    }

    #[test]
    fn every_refusal_path_is_a_typed_nack() {
        let state = PathBuf::from("/state");
        let (storage, _fs) = Storage::mem(FaultPlan::none(1));
        let (mut store, _) = JobStore::open_on(&storage, &state).unwrap();
        type Case = (
            String,
            bool,
            fn(&str) -> bool,
            fn(usize) -> Option<String>,
            &'static str,
        );
        let cases: Vec<Case> = vec![
            ("not json".into(), false, |_| false, no_refusal, ""),
            (job_line("j"), true, |_| false, no_refusal, "draining"),
            (job_line("j"), false, |_| true, no_refusal, "duplicate"),
            (
                job_line("j"),
                false,
                |_| false,
                |n| Some(format!("queue full: {n} cells over cap")),
                "queue full",
            ),
        ];
        for (line, draining, known, refusal, needle) in cases {
            match admit(
                &storage, &state, &line, draining, &mut store, known, refusal,
            ) {
                Admission::Rejected { reason, .. } => {
                    assert!(reason.contains(needle), "{reason} !~ {needle}")
                }
                Admission::Accepted { .. } => panic!("expected rejection ({needle})"),
            }
        }
        // None of the refusals wrote anything: replay is still empty.
        let (_s, jobs) = JobStore::open_on(&storage, &state).unwrap();
        assert!(jobs.is_empty());
    }
}
