//! Durable job state: the store, per-job journals, and report assembly.
//!
//! Everything the daemon must not lose lives under one state directory:
//!
//! ```text
//! <state>/jobs.jsonl            accepted/done job log  (ecl-farm/JOBSTORE/v1)
//! <state>/journals/job-<id>.jsonl   per-job cell journal (ecl-bench/JOURNAL/v1)
//! <state>/reports/REPORT-<id>.json  finished reports     (BENCH_RESULTS/v1)
//! <state>/repro/                repro bundles for quarantined cells
//! <state>/tmp/                  worker stderr capture
//! ```
//!
//! The write protocol makes `kill -9` at any instant recoverable:
//!
//! 1. A job is appended to `jobs.jsonl` and **fsync'd before it is acked**,
//!    so any job a client saw accepted survives a daemon crash.
//! 2. Every finished cell is appended to the job's journal and fsync'd
//!    before the daemon moves on — the same fsync-before-progress contract
//!    `all_tests --journal` keeps, with the same torn-tail tolerance.
//! 3. Reports are assembled only from journal bodies, in canonical cell
//!    order, with `jobs` pinned to 1 in the experiment header — so the
//!    report bytes depend on *what was measured*, never on fleet size,
//!    execution order, or how many times the daemon was restarted.
//!
//! On restart the daemon replays `jobs.jsonl`, reopens each unfinished
//! job's journal (verifying the identity header), and resumes the cells
//! with no record. Journaled records — measured or failed — are final:
//! a farm journal's failures are quarantine verdicts or deterministic
//! in-process failures, both of which a resume must preserve, not retry.

use crate::api::{self, JobSpec};
use ecl_bench::{BenchReport, JournalWriter, Json, MeasuredTable};
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Schema tag of the `jobs.jsonl` store.
pub const STORE_SCHEMA: &str = "ecl-farm/JOBSTORE/v1";

/// One job replayed from the store.
pub struct StoredJob {
    /// The job, exactly as accepted (normalized form).
    pub spec: JobSpec,
    /// Whether a `done` record follows its `accepted` record.
    pub done: bool,
}

/// Append-only fsync'd log of accepted and finished jobs.
pub struct JobStore {
    file: std::fs::File,
}

impl JobStore {
    /// Opens (or creates) the store under `state`, returning the replayed
    /// jobs in acceptance order. A torn final line (daemon killed
    /// mid-append) is dropped; since acks follow the fsync, no client saw
    /// that job accepted.
    pub fn open(state: &Path) -> Result<(JobStore, Vec<StoredJob>), String> {
        std::fs::create_dir_all(state)
            .map_err(|e| format!("cannot create {}: {e}", state.display()))?;
        let path = state.join("jobs.jsonl");
        let mut jobs: Vec<StoredJob> = Vec::new();
        let mut fresh = true;
        if let Ok(text) = std::fs::read_to_string(&path) {
            fresh = false;
            let lines: Vec<&str> = text.split('\n').collect();
            let last_content = lines.iter().rposition(|l| !l.trim().is_empty());
            for (idx, line) in lines.iter().enumerate() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let doc = match Json::parse(line) {
                    Ok(d) => d,
                    Err(_) if Some(idx) == last_content => break, // torn tail
                    Err(e) => return Err(format!("jobs.jsonl line {} is corrupt: {e}", idx + 1)),
                };
                match doc.get("type").and_then(Json::as_str) {
                    Some("header") => {
                        if doc.get("schema").and_then(Json::as_str) != Some(STORE_SCHEMA) {
                            return Err(format!(
                                "{} is not a {STORE_SCHEMA} store",
                                path.display()
                            ));
                        }
                    }
                    Some("accepted") => {
                        let job = doc
                            .get("job")
                            .map(|j| api::parse_job(&j.render_compact()))
                            .unwrap_or_else(|| Err("accepted record carries no job".into()))
                            .map_err(|e| format!("jobs.jsonl line {}: {e}", idx + 1))?;
                        jobs.push(StoredJob {
                            spec: job,
                            done: false,
                        });
                    }
                    Some("done") => {
                        let id = doc.get("id").and_then(Json::as_str).unwrap_or("");
                        if let Some(j) = jobs.iter_mut().find(|j| j.spec.id == id) {
                            j.done = true;
                        }
                    }
                    other => {
                        return Err(format!(
                            "jobs.jsonl line {}: unknown record type {other:?}",
                            idx + 1
                        ))
                    }
                }
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        if fresh {
            let header = Json::obj(vec![
                ("type", Json::Str("header".into())),
                ("schema", Json::Str(STORE_SCHEMA.into())),
            ]);
            writeln!(file, "{}", header.render_compact())
                .and_then(|_| file.sync_data())
                .map_err(|e| format!("cannot write store header: {e}"))?;
        }
        Ok((JobStore { file }, jobs))
    }

    fn append(&mut self, doc: &Json) -> Result<(), String> {
        writeln!(self.file, "{}", doc.render_compact())
            .and_then(|_| self.file.sync_data())
            .map_err(|e| format!("job store write failed: {e}"))
    }

    /// Durably records an accepted job. Call this BEFORE acking the client.
    pub fn record_accepted(&mut self, job: &JobSpec) -> Result<(), String> {
        self.append(&Json::obj(vec![
            ("type", Json::Str("accepted".into())),
            ("job", api::job_json(job)),
        ]))
    }

    /// Durably records a finished job (report written).
    pub fn record_done(&mut self, id: &str, failures: usize) -> Result<(), String> {
        self.append(&Json::obj(vec![
            ("type", Json::Str("done".into())),
            ("id", Json::Str(id.into())),
            ("failures", Json::Num(failures as f64)),
        ]))
    }
}

/// The standard state-directory paths.
pub fn journal_path(state: &Path, id: &str) -> PathBuf {
    state.join("journals").join(format!("job-{id}.jsonl"))
}
/// Where job `id`'s report goes.
pub fn report_path(state: &Path, id: &str) -> PathBuf {
    state.join("reports").join(format!("REPORT-{id}.json"))
}
/// Repro bundles for quarantined cells.
pub fn repro_dir(state: &Path) -> PathBuf {
    state.join("repro")
}
/// Worker scratch (stderr capture).
pub fn tmp_dir(state: &Path) -> PathBuf {
    state.join("tmp")
}

/// One job's in-memory execution state, backed by its journal.
pub struct ActiveJob {
    /// The job.
    pub spec: JobSpec,
    /// Normalized `JOB/v1` document (sent to workers verbatim).
    pub doc: Json,
    /// All cell keys, canonical order.
    pub keys: Vec<String>,
    /// key → (ok, body) for every journaled cell.
    pub records: HashMap<String, (bool, Json)>,
    /// Keys with no record yet.
    pub remaining: HashSet<String>,
    writer: std::sync::Arc<JournalWriter>,
}

impl ActiveJob {
    /// Opens (or creates) the job's journal and loads its progress.
    ///
    /// # Errors
    ///
    /// Identity mismatch (the state dir holds a journal for a *different*
    /// job with the same id), journal corruption, or I/O failure.
    pub fn open(state: &Path, spec: JobSpec) -> Result<ActiveJob, String> {
        let identity = spec.sweep.identity();
        let path = journal_path(state, &spec.id);
        let keys = spec.sweep.cell_keys();
        let mut records = HashMap::new();
        let writer = if path.exists() {
            let journal = ecl_bench::Journal::load(&path)?;
            journal.check_identity(&identity)?;
            // Duplicate keys (a record landed twice around a crash): identical
            // bodies collapse; divergence is a determinism violation.
            for rec in &journal.records {
                if let Some((_, prev)) = records.get(&rec.key) {
                    if prev != &rec.body {
                        return Err(format!(
                            "determinism violation in {}: cell '{}' recorded twice \
                             with different bodies",
                            path.display(),
                            rec.key
                        ));
                    }
                }
                records.insert(rec.key.clone(), (rec.ok, rec.body.clone()));
            }
            JournalWriter::append_to(&path)
                .map_err(|e| format!("cannot reopen journal {}: {e}", path.display()))?
        } else {
            JournalWriter::create(&path, &identity)
                .map_err(|e| format!("cannot create journal {}: {e}", path.display()))?
        };
        let remaining = keys
            .iter()
            .filter(|k| !records.contains_key(*k))
            .cloned()
            .collect();
        let doc = api::job_json(&spec);
        Ok(ActiveJob {
            spec,
            doc,
            keys,
            records,
            remaining,
            writer: std::sync::Arc::new(writer),
        })
    }

    /// A shared handle to the job's journal writer, for the force-quit
    /// watcher: the second SIGINT appends one final note line to every
    /// in-flight journal before the process exits.
    pub fn journal_writer(&self) -> std::sync::Arc<JournalWriter> {
        self.writer.clone()
    }

    /// Durably records one finished cell (measured or failed). Idempotent
    /// across the resume race: a record for an already-recorded key is
    /// accepted silently when the body matches.
    pub fn record_cell(&mut self, key: &str, ok: bool, body: Json) -> Result<(), String> {
        if let Some((_, prev)) = self.records.get(key) {
            if prev == &body {
                return Ok(());
            }
            return Err(format!(
                "determinism violation: cell '{key}' produced two different results"
            ));
        }
        self.writer
            .append_cell(key, ok, &body)
            .map_err(|e| format!("journal write failed for '{key}': {e}"))?;
        self.remaining.remove(key);
        self.records.insert(key.to_string(), (ok, body));
        Ok(())
    }

    /// True when every cell has a journaled record.
    pub fn is_complete(&self) -> bool {
        self.remaining.is_empty()
    }

    /// Failed records so far.
    pub fn failures(&self) -> usize {
        self.records.values().filter(|(ok, _)| !ok).count()
    }

    /// Assembles and writes the job's report. The tables are rebuilt from
    /// journal bodies in canonical cell order, so the bytes are identical
    /// no matter which workers ran which cells in what order — or how many
    /// daemon restarts happened along the way.
    pub fn finalize(&self, state: &Path) -> Result<PathBuf, String> {
        let experiment = self.spec.sweep.experiment();
        let empty = MeasuredTable::default();
        let mut undirected = None;
        let mut directed = None;
        for set in &self.spec.sweep.sets {
            let keys = ecl_bench::set_cell_keys(&experiment, set);
            let table = ecl_bench::table_from_records(&self.records, &keys)
                .map_err(|e| format!("job '{}': {e}", self.spec.id))?;
            match set.as_str() {
                "undirected" => undirected = Some(table),
                _ => directed = Some(table),
            }
        }
        let report = BenchReport {
            experiment: &experiment,
            undirected: undirected.as_ref().unwrap_or(&empty),
            directed: directed.as_ref().unwrap_or(&empty),
            timing: None,
        };
        let path = report_path(state, &self.spec.id);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, report.render())
            .and_then(|_| std::fs::rename(&tmp, &path))
            .map_err(|e| format!("cannot write report {}: {e}", path.display()))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: &str) -> JobSpec {
        api::parse_job(&format!(
            r#"{{"schema":"ecl-farm/JOB/v1","id":"{id}",
                "spec":{{"scale":0.05,"runs":1,"seed":1,"gpus":["TestTiny"],"sets":["directed"]}}}}"#
        ))
        .unwrap()
    }

    fn tmp_state(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ecl-farm-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn store_replays_accepted_and_done_jobs() {
        let state = tmp_state("store");
        {
            let (mut store, jobs) = JobStore::open(&state).unwrap();
            assert!(jobs.is_empty());
            store.record_accepted(&job("a")).unwrap();
            store.record_accepted(&job("b")).unwrap();
            store.record_done("a", 0).unwrap();
        }
        let (_store, jobs) = JobStore::open(&state).unwrap();
        assert_eq!(jobs.len(), 2);
        assert!(jobs[0].done && jobs[0].spec.id == "a");
        assert!(!jobs[1].done && jobs[1].spec.id == "b");
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn store_drops_a_torn_tail() {
        let state = tmp_state("torn");
        {
            let (mut store, _) = JobStore::open(&state).unwrap();
            store.record_accepted(&job("whole")).unwrap();
        }
        // Simulate a kill mid-append: a partial record with no newline.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(state.join("jobs.jsonl"))
            .unwrap();
        write!(f, "{{\"type\":\"accepted\",\"job\":{{\"id\":\"to").unwrap();
        drop(f);
        let (_store, jobs) = JobStore::open(&state).unwrap();
        assert_eq!(jobs.len(), 1, "torn record dropped, intact one kept");
        assert_eq!(jobs[0].spec.id, "whole");
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn active_job_resumes_and_refuses_divergence() {
        let state = tmp_state("active");
        let body = Json::obj(vec![("x", Json::Num(1.0))]);
        {
            let mut a = ActiveJob::open(&state, job("j")).unwrap();
            assert_eq!(a.remaining.len(), 10, "10 directed cells on one gpu");
            let key = a.keys[0].clone();
            a.record_cell(&key, true, body.clone()).unwrap();
            assert_eq!(a.remaining.len(), 9);
        }
        let mut a = ActiveJob::open(&state, job("j")).unwrap();
        assert_eq!(a.remaining.len(), 9, "journaled cell survives reopen");
        let key = a.keys[0].clone();
        // Same body again: benign (resume race). Different body: refused.
        a.record_cell(&key, true, body).unwrap();
        let err = a
            .record_cell(&key, true, Json::obj(vec![("x", Json::Num(2.0))]))
            .unwrap_err();
        assert!(err.contains("determinism violation"), "{err}");
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn different_job_under_same_id_is_refused() {
        let state = tmp_state("ident");
        drop(ActiveJob::open(&state, job("j")).unwrap());
        let mut other = job("j");
        other.sweep.seed = 99;
        let err = match ActiveJob::open(&state, other) {
            Err(e) => e,
            Ok(_) => panic!("identity mismatch was accepted"),
        };
        assert!(err.contains("identity mismatch"), "{err}");
        let _ = std::fs::remove_dir_all(&state);
    }
}
