//! Durable job state: the store, per-job journals, and report assembly.
//!
//! Everything the daemon must not lose lives under one state directory:
//!
//! ```text
//! <state>/jobs.jsonl            accepted/done job log  (ecl-farm/JOBSTORE/v1)
//! <state>/journals/job-<id>.jsonl   per-job cell journal (ecl-bench/JOURNAL/v1)
//! <state>/reports/REPORT-<id>.json  finished reports     (BENCH_RESULTS/v1)
//! <state>/repro/                repro bundles for quarantined cells
//! <state>/tmp/                  worker stderr capture
//! ```
//!
//! The write protocol makes `kill -9` at any instant recoverable:
//!
//! 1. A job is appended to `jobs.jsonl` and **fsync'd before it is acked**,
//!    so any job a client saw accepted survives a daemon crash.
//! 2. Every finished cell is appended to the job's journal and fsync'd
//!    before the daemon moves on — the same fsync-before-progress contract
//!    `all_tests --journal` keeps, with the same torn-tail tolerance.
//! 3. Reports are assembled only from journal bodies, in canonical cell
//!    order, with `jobs` pinned to 1 in the experiment header — so the
//!    report bytes depend on *what was measured*, never on fleet size,
//!    execution order, or how many times the daemon was restarted.
//!
//! On restart the daemon replays `jobs.jsonl`, reopens each unfinished
//! job's journal (verifying the identity header), and resumes the cells
//! with no record. Journaled records — measured or failed — are final:
//! a farm journal's failures are quarantine verdicts or deterministic
//! in-process failures, both of which a resume must preserve, not retry.

use crate::api::{self, JobSpec};
use ecl_bench::storage::{DurableFile, Storage, StorageError, StorageErrorKind};
use ecl_bench::{BenchReport, JournalWriter, Json, MeasuredTable};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

/// Schema tag of the `jobs.jsonl` store.
pub const STORE_SCHEMA: &str = "ecl-farm/JOBSTORE/v1";

/// Why the job store failed to open — each case a distinct operator action.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The backing store failed (EIO, power loss, …).
    Storage(StorageError),
    /// A non-final line is malformed or contradictory: real corruption.
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The file carries a different schema tag.
    WrongSchema,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Storage(e) => write!(f, "job store: {e}"),
            StoreError::Corrupt { line, reason } => {
                write!(f, "jobs.jsonl line {line} is corrupt: {reason}")
            }
            StoreError::WrongSchema => write!(f, "jobs.jsonl is not a {STORE_SCHEMA} store"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One job replayed from the store.
pub struct StoredJob {
    /// The job, exactly as accepted (normalized form).
    pub spec: JobSpec,
    /// Whether a `done` record follows its `accepted` record.
    pub done: bool,
}

/// Append-only fsync'd log of accepted and finished jobs.
///
/// Like the journal writer, the store latches itself **degraded** on the
/// first failed append: the partial line the failure left behind must stay
/// the final line (the tolerant replay drops it), and the daemon NACKs all
/// new submissions with the latched error as the explicit reason.
pub struct JobStore {
    file: Box<dyn DurableFile>,
    path: PathBuf,
    degraded: Option<StorageError>,
}

impl JobStore {
    /// Opens (or creates) the store under `state`, returning the replayed
    /// jobs in acceptance order. A torn final line (daemon killed
    /// mid-append) is dropped *and truncated away* — since acks follow the
    /// fsync, no client saw that job accepted, and truncating keeps the
    /// next append from gluing onto the partial line. Duplicate `accepted`
    /// records for one id (the ack-retry artifact) collapse when the job
    /// documents are identical; divergent duplicates are corruption.
    pub fn open(state: &Path) -> Result<(JobStore, Vec<StoredJob>), StoreError> {
        Self::open_on(&Storage::real(), state)
    }

    /// [`JobStore::open`] on an explicit storage backend.
    pub fn open_on(
        storage: &Storage,
        state: &Path,
    ) -> Result<(JobStore, Vec<StoredJob>), StoreError> {
        storage.create_dir_all(state).map_err(StoreError::Storage)?;
        let path = state.join("jobs.jsonl");
        let mut jobs: Vec<StoredJob> = Vec::new();
        let mut saw_header = false;
        if storage.exists(&path) {
            let bytes = storage.read(&path).map_err(StoreError::Storage)?;
            // Drop the kill artifact before appending anything after it: a
            // write is a whole line + '\n', so "no trailing newline" ⇔ torn.
            let keep = bytes
                .iter()
                .rposition(|&b| b == b'\n')
                .map(|i| i + 1)
                .unwrap_or(0);
            if keep < bytes.len() {
                storage
                    .truncate(&path, keep as u64)
                    .map_err(StoreError::Storage)?;
            }
            let text = String::from_utf8_lossy(&bytes[..keep]);
            for (idx, line) in text.split('\n').enumerate() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let doc = Json::parse(line).map_err(|e| StoreError::Corrupt {
                    line: idx + 1,
                    reason: e,
                })?;
                match doc.get("type").and_then(Json::as_str) {
                    Some("header") => {
                        if doc.get("schema").and_then(Json::as_str) != Some(STORE_SCHEMA) {
                            return Err(StoreError::WrongSchema);
                        }
                        saw_header = true;
                    }
                    Some("accepted") => {
                        let job = doc
                            .get("job")
                            .map(|j| api::parse_job(&j.render_compact()))
                            .unwrap_or_else(|| Err("accepted record carries no job".into()))
                            .map_err(|e| StoreError::Corrupt {
                                line: idx + 1,
                                reason: e,
                            })?;
                        match jobs.iter().find(|j| j.spec.id == job.id) {
                            // A crash between the fsync and the ack can make a
                            // retrying client resubmit; the daemon records the
                            // identical job again. Benign — collapse it.
                            Some(prev)
                                if api::job_json(&prev.spec).render_compact()
                                    == api::job_json(&job).render_compact() => {}
                            Some(_) => {
                                return Err(StoreError::Corrupt {
                                    line: idx + 1,
                                    reason: format!(
                                        "divergent duplicate 'accepted' record for id '{}'",
                                        job.id
                                    ),
                                })
                            }
                            None => jobs.push(StoredJob {
                                spec: job,
                                done: false,
                            }),
                        }
                    }
                    Some("done") => {
                        let id = doc.get("id").and_then(Json::as_str).unwrap_or("");
                        if let Some(j) = jobs.iter_mut().find(|j| j.spec.id == id) {
                            j.done = true;
                        }
                    }
                    other => {
                        return Err(StoreError::Corrupt {
                            line: idx + 1,
                            reason: format!("unknown record type {other:?}"),
                        })
                    }
                }
            }
        }
        let file = storage.open_append(&path).map_err(StoreError::Storage)?;
        let mut store = JobStore {
            file,
            path,
            degraded: None,
        };
        if !saw_header {
            // Fresh store — or one whose header line was torn away by a
            // crash before its fsync (then no record survived either, so
            // rewriting the header loses nothing).
            store
                .append(&Json::obj(vec![
                    ("type", Json::Str("header".into())),
                    ("schema", Json::Str(STORE_SCHEMA.into())),
                ]))
                .map_err(StoreError::Storage)?;
        }
        Ok((store, jobs))
    }

    /// The storage error that latched this store degraded, if any. A
    /// degraded store refuses new records; the daemon surfaces this as the
    /// NACK reason for every subsequent submission.
    pub fn degraded(&self) -> Option<&StorageError> {
        self.degraded.as_ref()
    }

    fn append(&mut self, doc: &Json) -> Result<(), StorageError> {
        if self.degraded.is_some() {
            return Err(StorageError {
                op: "append",
                path: self.path.clone(),
                kind: StorageErrorKind::ReadOnly,
            });
        }
        let mut text = doc.render_compact();
        text.push('\n');
        let result = self
            .file
            .append(text.as_bytes())
            .and_then(|()| self.file.sync());
        if let Err(e) = &result {
            self.degraded = Some(e.clone());
        }
        result
    }

    /// Durably records an accepted job. Call this BEFORE acking the client:
    /// the `ACK/v1` a client trusts is a promise that this fsync succeeded.
    pub fn record_accepted(&mut self, job: &JobSpec) -> Result<(), StorageError> {
        self.append(&Json::obj(vec![
            ("type", Json::Str("accepted".into())),
            ("job", api::job_json(job)),
        ]))
    }

    /// Durably records a finished job (report written).
    pub fn record_done(&mut self, id: &str, failures: usize) -> Result<(), StorageError> {
        self.append(&Json::obj(vec![
            ("type", Json::Str("done".into())),
            ("id", Json::Str(id.into())),
            ("failures", Json::Num(failures as f64)),
        ]))
    }
}

/// The standard state-directory paths.
pub fn journal_path(state: &Path, id: &str) -> PathBuf {
    state.join("journals").join(format!("job-{id}.jsonl"))
}
/// Where job `id`'s report goes.
pub fn report_path(state: &Path, id: &str) -> PathBuf {
    state.join("reports").join(format!("REPORT-{id}.json"))
}
/// Repro bundles for quarantined cells.
pub fn repro_dir(state: &Path) -> PathBuf {
    state.join("repro")
}
/// Worker scratch (stderr capture).
pub fn tmp_dir(state: &Path) -> PathBuf {
    state.join("tmp")
}

/// One job's in-memory execution state, backed by its journal.
pub struct ActiveJob {
    /// The job.
    pub spec: JobSpec,
    /// Normalized `JOB/v1` document (sent to workers verbatim).
    pub doc: Json,
    /// All cell keys, canonical order.
    pub keys: Vec<String>,
    /// key → (ok, body) for every journaled cell.
    pub records: HashMap<String, (bool, Json)>,
    /// Keys with no record yet.
    pub remaining: HashSet<String>,
    writer: std::sync::Arc<JournalWriter>,
    storage: Storage,
}

impl ActiveJob {
    /// Opens (or creates) the job's journal and loads its progress.
    ///
    /// A journal with **no intact header** — empty, or torn inside the
    /// header line — is treated as fresh and recreated: the header is line
    /// one, so its loss proves no cell record survived, and the identity is
    /// reproducible from the spec (the crash-between-create-and-fsync case).
    ///
    /// # Errors
    ///
    /// Identity mismatch (the state dir holds a journal for a *different*
    /// job with the same id), journal corruption, or storage failure.
    pub fn open(state: &Path, spec: JobSpec) -> Result<ActiveJob, String> {
        Self::open_on(&Storage::real(), state, spec)
    }

    /// [`ActiveJob::open`] on an explicit storage backend.
    pub fn open_on(storage: &Storage, state: &Path, spec: JobSpec) -> Result<ActiveJob, String> {
        let identity = spec.sweep.identity();
        let path = journal_path(state, &spec.id);
        let keys = spec.sweep.cell_keys();
        let mut records = HashMap::new();
        let loaded = if storage.exists(&path) {
            match ecl_bench::Journal::load_on(storage, &path) {
                Ok(journal) => Some(journal),
                Err(ecl_bench::LoadError::NoHeader) => None,
                Err(e) => return Err(e.to_string()),
            }
        } else {
            None
        };
        let writer = match loaded {
            Some(journal) => {
                journal.check_identity(&identity)?;
                // Duplicate keys (a record landed twice around a crash): identical
                // bodies collapse; divergence is a determinism violation.
                for rec in &journal.records {
                    if let Some((_, prev)) = records.get(&rec.key) {
                        if prev != &rec.body {
                            return Err(format!(
                                "determinism violation in {}: cell '{}' recorded twice \
                                 with different bodies",
                                path.display(),
                                rec.key
                            ));
                        }
                    }
                    records.insert(rec.key.clone(), (rec.ok, rec.body.clone()));
                }
                JournalWriter::append_to_on(storage, &path)
                    .map_err(|e| format!("cannot reopen journal: {e}"))?
            }
            None => JournalWriter::create_on(storage, &path, &identity)
                .map_err(|e| format!("cannot create journal: {e}"))?,
        };
        let remaining = keys
            .iter()
            .filter(|k| !records.contains_key(*k))
            .cloned()
            .collect();
        let doc = api::job_json(&spec);
        Ok(ActiveJob {
            spec,
            doc,
            keys,
            records,
            remaining,
            writer: std::sync::Arc::new(writer),
            storage: storage.clone(),
        })
    }

    /// A shared handle to the job's journal writer, for the force-quit
    /// watcher: the second SIGINT appends one final note line to every
    /// in-flight journal before the process exits.
    pub fn journal_writer(&self) -> std::sync::Arc<JournalWriter> {
        self.writer.clone()
    }

    /// Durably records one finished cell (measured or failed). Idempotent
    /// across the resume race: a record for an already-recorded key is
    /// accepted silently when the body matches.
    pub fn record_cell(&mut self, key: &str, ok: bool, body: Json) -> Result<(), String> {
        if let Some((_, prev)) = self.records.get(key) {
            if prev == &body {
                return Ok(());
            }
            return Err(format!(
                "determinism violation: cell '{key}' produced two different results"
            ));
        }
        self.writer
            .append_cell(key, ok, &body)
            .map_err(|e| format!("journal write failed for '{key}': {e}"))?;
        self.remaining.remove(key);
        self.records.insert(key.to_string(), (ok, body));
        Ok(())
    }

    /// True when every cell has a journaled record.
    pub fn is_complete(&self) -> bool {
        self.remaining.is_empty()
    }

    /// Failed records so far.
    pub fn failures(&self) -> usize {
        self.records.values().filter(|(ok, _)| !ok).count()
    }

    /// Assembles and writes the job's report. The tables are rebuilt from
    /// journal bodies in canonical cell order, so the bytes are identical
    /// no matter which workers ran which cells in what order — or how many
    /// daemon restarts happened along the way.
    pub fn finalize(&self, state: &Path) -> Result<PathBuf, String> {
        let experiment = self.spec.sweep.experiment();
        let empty = MeasuredTable::default();
        let mut undirected = None;
        let mut directed = None;
        for set in &self.spec.sweep.sets {
            let keys = ecl_bench::set_cell_keys(&experiment, set);
            let table = ecl_bench::table_from_records(&self.records, &keys)
                .map_err(|e| format!("job '{}': {e}", self.spec.id))?;
            match set.as_str() {
                "undirected" => undirected = Some(table),
                _ => directed = Some(table),
            }
        }
        let report = BenchReport {
            experiment: &experiment,
            undirected: undirected.as_ref().unwrap_or(&empty),
            directed: directed.as_ref().unwrap_or(&empty),
            timing: None,
        };
        let path = report_path(state, &self.spec.id);
        if let Some(dir) = path.parent() {
            self.storage
                .create_dir_all(dir)
                .map_err(|e| format!("cannot create report dir: {e}"))?;
        }
        // Atomic with an fsync before the rename: previously the rename
        // could become durable while the report content was not, leaving a
        // torn REPORT-<id>.json after a power cut.
        self.storage
            .write_atomic(&path, report.render().as_bytes())
            .map_err(|e| format!("cannot write report: {e}"))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: &str) -> JobSpec {
        api::parse_job(&format!(
            r#"{{"schema":"ecl-farm/JOB/v1","id":"{id}",
                "spec":{{"scale":0.05,"runs":1,"seed":1,"gpus":["TestTiny"],"sets":["directed"]}}}}"#
        ))
        .unwrap()
    }

    fn tmp_state(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ecl-farm-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn store_replays_accepted_and_done_jobs() {
        let state = tmp_state("store");
        {
            let (mut store, jobs) = JobStore::open(&state).unwrap();
            assert!(jobs.is_empty());
            store.record_accepted(&job("a")).unwrap();
            store.record_accepted(&job("b")).unwrap();
            store.record_done("a", 0).unwrap();
        }
        let (_store, jobs) = JobStore::open(&state).unwrap();
        assert_eq!(jobs.len(), 2);
        assert!(jobs[0].done && jobs[0].spec.id == "a");
        assert!(!jobs[1].done && jobs[1].spec.id == "b");
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn store_drops_a_torn_tail() {
        let state = tmp_state("torn");
        {
            let (mut store, _) = JobStore::open(&state).unwrap();
            store.record_accepted(&job("whole")).unwrap();
        }
        // Simulate a kill mid-append: a partial record with no newline.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(state.join("jobs.jsonl"))
            .unwrap();
        write!(f, "{{\"type\":\"accepted\",\"job\":{{\"id\":\"to").unwrap();
        drop(f);
        let (_store, jobs) = JobStore::open(&state).unwrap();
        assert_eq!(jobs.len(), 1, "torn record dropped, intact one kept");
        assert_eq!(jobs[0].spec.id, "whole");
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn store_truncates_the_torn_tail_so_appends_never_glue() {
        // Regression: record A torn mid-append, daemon restarts, records B.
        // Without truncation B glues onto A's partial line; that corrupt
        // line is then *final*, so the NEXT replay silently drops B — a
        // durably-recorded (and possibly ACKed) job vanishes.
        let state = tmp_state("glue");
        {
            let (mut store, _) = JobStore::open(&state).unwrap();
            store.record_accepted(&job("whole")).unwrap();
        }
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(state.join("jobs.jsonl"))
            .unwrap();
        write!(f, "{{\"type\":\"accepted\",\"job\":{{\"id\":\"to").unwrap();
        drop(f);
        {
            let (mut store, jobs) = JobStore::open(&state).unwrap();
            assert_eq!(jobs.len(), 1);
            store.record_accepted(&job("after-crash")).unwrap();
        }
        let (_store, jobs) = JobStore::open(&state).unwrap();
        let ids: Vec<&str> = jobs.iter().map(|j| j.spec.id.as_str()).collect();
        assert_eq!(ids, ["whole", "after-crash"], "no record glued or lost");
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn duplicate_accepted_records_collapse_or_refuse() {
        // An ack-retry artifact records the same job twice: benign, one
        // job. The same id with a *different* spec is corruption — loading
        // it as either job would silently drop the other's cells.
        let state = tmp_state("dup-ack");
        {
            let (mut store, _) = JobStore::open(&state).unwrap();
            store.record_accepted(&job("j")).unwrap();
            store.record_accepted(&job("j")).unwrap();
        }
        let (_s, jobs) = JobStore::open(&state).unwrap();
        assert_eq!(jobs.len(), 1, "identical duplicates collapse");

        let mut divergent = job("j");
        divergent.sweep.seed = 99;
        {
            let (mut store, _) = JobStore::open(&state).unwrap();
            store.record_accepted(&divergent).unwrap();
        }
        match JobStore::open(&state) {
            Err(StoreError::Corrupt { reason, .. }) => {
                assert!(reason.contains("divergent duplicate"), "{reason}")
            }
            other => panic!(
                "divergent duplicate accepted: {:?}",
                other.map(|(_, j)| j.len())
            ),
        }
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn headerless_store_heals_and_wrong_schema_is_typed() {
        // Crash before the header's fsync leaves an empty (or torn) file:
        // nothing durable was lost, the header is rewritten on open.
        let state = tmp_state("headerless");
        std::fs::write(state.join("jobs.jsonl"), "").unwrap();
        {
            let (mut store, jobs) = JobStore::open(&state).unwrap();
            assert!(jobs.is_empty());
            store.record_accepted(&job("a")).unwrap();
        }
        let (_s, jobs) = JobStore::open(&state).unwrap();
        assert_eq!(jobs.len(), 1);
        let text = std::fs::read_to_string(state.join("jobs.jsonl")).unwrap();
        assert!(text.starts_with("{\"type\":\"header\""), "header rewritten");

        std::fs::write(
            state.join("jobs.jsonl"),
            "{\"type\":\"header\",\"schema\":\"ecl-farm/OTHER/v9\"}\n",
        )
        .unwrap();
        match JobStore::open(&state) {
            Err(StoreError::WrongSchema) => {}
            other => panic!("wrong schema accepted: {:?}", other.map(|(_, j)| j.len())),
        }
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn failed_store_append_latches_degraded() {
        use ecl_bench::storage::{FaultPlan, StorageErrorKind};
        let (storage, _fs) = Storage::mem(FaultPlan {
            seed: 5,
            fail_fsync: Some(1), // header=0, first accepted=1
            ..FaultPlan::default()
        });
        let state = PathBuf::from("/state");
        let (mut store, _) = JobStore::open_on(&storage, &state).unwrap();
        assert!(store.degraded().is_none());
        let err = store.record_accepted(&job("a")).unwrap_err();
        assert_eq!(err.kind, StorageErrorKind::FsyncFailed);
        assert_eq!(store.degraded(), Some(&err));
        // Latched: the next record is refused without touching the file.
        let err = store.record_accepted(&job("b")).unwrap_err();
        assert_eq!(err.kind, StorageErrorKind::ReadOnly);
        let err = store.record_done("a", 0).unwrap_err();
        assert_eq!(err.kind, StorageErrorKind::ReadOnly);
    }

    #[test]
    fn active_job_resumes_and_refuses_divergence() {
        let state = tmp_state("active");
        let body = Json::obj(vec![("x", Json::Num(1.0))]);
        {
            let mut a = ActiveJob::open(&state, job("j")).unwrap();
            assert_eq!(a.remaining.len(), 10, "10 directed cells on one gpu");
            let key = a.keys[0].clone();
            a.record_cell(&key, true, body.clone()).unwrap();
            assert_eq!(a.remaining.len(), 9);
        }
        let mut a = ActiveJob::open(&state, job("j")).unwrap();
        assert_eq!(a.remaining.len(), 9, "journaled cell survives reopen");
        let key = a.keys[0].clone();
        // Same body again: benign (resume race). Different body: refused.
        a.record_cell(&key, true, body).unwrap();
        let err = a
            .record_cell(&key, true, Json::obj(vec![("x", Json::Num(2.0))]))
            .unwrap_err();
        assert!(err.contains("determinism violation"), "{err}");
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn different_job_under_same_id_is_refused() {
        let state = tmp_state("ident");
        drop(ActiveJob::open(&state, job("j")).unwrap());
        let mut other = job("j");
        other.sweep.seed = 99;
        let err = match ActiveJob::open(&state, other) {
            Err(e) => e,
            Ok(_) => panic!("identity mismatch was accepted"),
        };
        assert!(err.contains("identity mismatch"), "{err}");
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn headerless_job_journal_is_recreated_not_fatal() {
        // Crash between journal creation and the header fsync leaves an
        // empty journal file. The job was possibly already ACKed, so
        // recovery must not hard-fail: no record existed, recreate fresh.
        let state = tmp_state("noheader");
        let jpath = journal_path(&state, "j");
        std::fs::create_dir_all(jpath.parent().unwrap()).unwrap();
        std::fs::write(&jpath, "").unwrap();
        let a = ActiveJob::open(&state, job("j")).expect("empty journal recreated");
        assert_eq!(a.remaining.len(), 10, "all cells pending");
        drop(a);
        // Torn header (no newline): same story.
        std::fs::write(&jpath, "{\"schema\":\"ecl-ben").unwrap();
        let a = ActiveJob::open(&state, job("j")).expect("torn header recreated");
        assert_eq!(a.remaining.len(), 10);
        let _ = std::fs::remove_dir_all(&state);
    }
}
