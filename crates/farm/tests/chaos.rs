//! Chaos end-to-end tests for the farm daemon: SIGKILL the daemon and its
//! workers mid-sweep and demand byte-identical reports anyway.
//!
//! These spawn the real `farm` binary (workers and all), so they exercise
//! the full stack: JSONL intake, the durable job store, the supervised
//! fleet, per-job journals, crash recovery, and report assembly.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const FARM: &str = env!("CARGO_BIN_EXE_farm");

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecl-farm-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn job_line(id: &str, seed: u64, priority: i64) -> String {
    format!(
        r#"{{"schema":"ecl-farm/JOB/v1","id":"{id}","priority":{priority},"spec":{{"scale":0.05,"runs":1,"seed":{seed},"gpus":["TestTiny"],"sets":["directed"]}}}}"#
    )
}

struct Daemon {
    child: Child,
    lines: Arc<Mutex<Vec<String>>>,
}

fn spawn_daemon(state: &Path, env: &[(&str, String)], extra: &[&str]) -> Daemon {
    let mut cmd = Command::new(FARM);
    cmd.arg("--state")
        .arg(state)
        .arg("--workers")
        .arg("2")
        .arg("--once")
        .arg("--backoff-ms")
        .arg("20")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (k, v) in env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn farm daemon");
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink = lines.clone();
    let out = child.stdout.take().unwrap();
    std::thread::spawn(move || {
        for line in std::io::BufReader::new(out).lines().map_while(Result::ok) {
            sink.lock().unwrap().push(line);
        }
    });
    Daemon { child, lines }
}

impl Daemon {
    fn submit(&mut self, line: &str) {
        let stdin = self.child.stdin.as_mut().expect("daemon stdin");
        writeln!(stdin, "{line}").unwrap();
        stdin.flush().unwrap();
    }

    fn close_stdin(&mut self) {
        drop(self.child.stdin.take());
    }

    fn wait(mut self) -> (i32, Vec<String>) {
        let status = self.child.wait().unwrap();
        // Give the output thread a beat to drain the pipe.
        std::thread::sleep(Duration::from_millis(100));
        let lines = self.lines.lock().unwrap().clone();
        (status.code().unwrap_or(-1), lines)
    }
}

fn journaled_cells(state: &Path) -> usize {
    let dir = state.join("journals");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return 0;
    };
    entries
        .filter_map(Result::ok)
        .filter_map(|e| std::fs::read_to_string(e.path()).ok())
        .map(|text| {
            text.lines()
                .filter(|l| l.contains(r#""type":"cell""#))
                .count()
        })
        .sum()
}

fn wait_for<F: Fn() -> bool>(what: &str, timeout: Duration, cond: F) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn read_report(state: &Path, id: &str) -> String {
    let path = state.join("reports").join(format!("REPORT-{id}.json"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing report {}: {e}", path.display()))
}

/// The headline acceptance test: two overlapping jobs; the daemon is
/// SIGKILL'd once mid-sweep and one worker is SIGKILL'd twice (same cell,
/// so it exercises requeue-and-retry); the restarted daemon finishes both
/// jobs and the reports are byte-identical to an uninterrupted run.
#[test]
fn daemon_and_worker_sigkills_leave_reports_byte_identical() {
    // Uninterrupted reference run, no chaos.
    let ref_state = scratch("ref");
    let mut reference = spawn_daemon(&ref_state, &[], &[]);
    reference.submit(&job_line("c1", 1, 0));
    reference.submit(&job_line("c2", 7, 3));
    reference.close_stdin();
    let (code, _) = reference.wait();
    assert_eq!(code, 0, "reference run failed");

    // Chaos run: slow cells (to widen the kill window), and a worker that
    // self-SIGKILLs the first two times it is handed a flickr cell.
    let chaos_state = scratch("chaos");
    let kill_dir = scratch("kill-markers");
    let env: Vec<(&str, String)> = vec![
        ("ECL_FARM_SLOW_MS", "200".into()),
        ("ECL_FARM_KILL", "flickr:2".into()),
        ("ECL_FARM_KILL_DIR", kill_dir.display().to_string()),
    ];
    let mut daemon = spawn_daemon(&chaos_state, &env, &[]);
    daemon.submit(&job_line("c1", 1, 0));
    daemon.submit(&job_line("c2", 7, 3));
    // Let the sweep make real progress, then SIGKILL the daemon mid-flight
    // (stdin stays open, so it is not draining — this is a hard crash).
    wait_for("3 journaled cells", Duration::from_secs(120), || {
        journaled_cells(&chaos_state) >= 3
    });
    daemon.child.kill().unwrap(); // SIGKILL on unix
    let _ = daemon.child.wait();
    let at_kill = journaled_cells(&chaos_state);
    assert!(
        at_kill < 20,
        "daemon outran the kill; nothing was in flight"
    );

    // Restart over the same state directory. Chaos env stays: if the
    // flickr kills did not both land before the crash, they land now —
    // either way the markers prove exactly two worker SIGKILLs happened.
    let mut resumed = spawn_daemon(&chaos_state, &env, &[]);
    resumed.close_stdin();
    let (code, lines) = resumed.wait();
    assert_eq!(code, 0, "resumed run failed: {lines:?}");
    assert!(
        lines.iter().any(|l| l.contains(r#""event":"recovered""#)),
        "restart did not report recovery: {lines:?}"
    );
    assert!(
        kill_dir.join("kill-0").exists() && kill_dir.join("kill-1").exists(),
        "worker was not SIGKILL'd twice"
    );

    for id in ["c1", "c2"] {
        assert_eq!(
            read_report(&ref_state, id),
            read_report(&chaos_state, id),
            "report for job '{id}' differs from the uninterrupted run"
        );
    }
    for dir in [ref_state, chaos_state, kill_dir] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A poison cell — one that aborts its worker every time — is quarantined
/// after `--max-attempts` deaths as a typed failure with a repro bundle,
/// and the other nine cells still measure.
#[test]
fn poison_cell_is_quarantined_and_the_sweep_completes() {
    let state = scratch("poison");
    let env: Vec<(&str, String)> = vec![("ECL_FARM_POISON", "cage14".into())];
    let mut daemon = spawn_daemon(&state, &env, &["--max-attempts", "3"]);
    daemon.submit(&job_line("p1", 1, 0));
    daemon.close_stdin();
    let (code, lines) = daemon.wait();
    assert_eq!(code, 1, "a quarantined cell must fail the --once run");
    let quarantine = lines
        .iter()
        .find(|l| l.contains(r#""event":"quarantined""#))
        .unwrap_or_else(|| panic!("no quarantine event: {lines:?}"));
    assert!(quarantine.contains("cage14"), "{quarantine}");
    assert!(quarantine.contains(r#""attempts":3"#), "{quarantine}");

    let report = read_report(&state, "p1");
    assert!(
        report.contains("worker process died"),
        "quarantine verdict missing from report"
    );
    // 9 measured cells, 1 failure.
    let parsed = ecl_bench::Json::parse(&report).unwrap();
    let tables = parsed.get("tables").unwrap().get("directed").unwrap();
    assert_eq!(tables.get("cells").unwrap().as_arr().unwrap().len(), 9);
    assert_eq!(tables.get("failures").unwrap().as_arr().unwrap().len(), 1);

    let repro = state
        .join("repro")
        .join("directed-cage14-SCC-TestTiny.json");
    assert!(repro.exists(), "quarantine must write a repro bundle");
    let bundle = ecl_bench::Json::parse(&std::fs::read_to_string(&repro).unwrap()).unwrap();
    assert_eq!(
        bundle.get("schema").and_then(ecl_bench::Json::as_str),
        Some("ecl-bench/REPRO/v1")
    );
    let _ = std::fs::remove_dir_all(&state);
}

/// A resumed job's journaled verdicts are final: re-running the daemon over
/// a completed state directory rewrites nothing and exits clean.
#[test]
fn completed_state_is_idempotent() {
    let state = scratch("idem");
    let mut daemon = spawn_daemon(&state, &[], &[]);
    daemon.submit(&job_line("j", 5, 0));
    daemon.close_stdin();
    let (code, _) = daemon.wait();
    assert_eq!(code, 0);
    let before = read_report(&state, "j");

    let mut again = spawn_daemon(&state, &[], &[]);
    again.close_stdin();
    let (code, _) = again.wait();
    assert_eq!(code, 0, "re-running over finished state must be a no-op");
    assert_eq!(before, read_report(&state, "j"));
    let _ = std::fs::remove_dir_all(&state);
}

/// Backpressure: a job that does not fit under `--queue-cap` is rejected
/// atomically — a typed NACK, no partial enqueue, no state-dir residue.
#[test]
fn oversized_job_is_rejected_with_backpressure() {
    let state = scratch("backpressure");
    let mut daemon = spawn_daemon(&state, &[], &["--queue-cap", "5"]);
    daemon.submit(&job_line("big", 1, 0)); // 10 cells > cap 5
    daemon.close_stdin();
    let (code, lines) = daemon.wait();
    assert_eq!(code, 0, "a rejected job is not a daemon failure");
    let ack = lines
        .iter()
        .find(|l| l.contains("ecl-farm/ACK/v1"))
        .unwrap_or_else(|| panic!("no ack: {lines:?}"));
    assert!(ack.contains(r#""accepted":false"#), "{ack}");
    assert!(ack.contains("queue full"), "{ack}");
    assert!(
        !state.join("journals").join("job-big.jsonl").exists(),
        "rejected job must leave no journal"
    );
    let _ = std::fs::remove_dir_all(&state);
}

/// Duplicate ids and malformed lines get typed NACKs; the daemon survives.
#[test]
fn bad_submissions_are_nacked_not_fatal() {
    let state = scratch("nack");
    let mut daemon = spawn_daemon(&state, &[], &[]);
    daemon.submit("this is not json");
    daemon.submit(&job_line("dup", 1, 0));
    daemon.submit(&job_line("dup", 1, 0));
    daemon.close_stdin();
    let (code, lines) = daemon.wait();
    assert_eq!(code, 0);
    let acks: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("ecl-farm/ACK/v1"))
        .collect();
    assert_eq!(acks.len(), 3, "{lines:?}");
    assert!(acks[0].contains(r#""accepted":false"#) && acks[0].contains("not JSON"));
    assert!(acks[1].contains(r#""accepted":true"#));
    assert!(acks[2].contains(r#""accepted":false"#) && acks[2].contains("duplicate"));
    let _ = std::fs::remove_dir_all(&state);
}

/// First SIGINT drains cooperatively; a second SIGINT force-quits with
/// exit 130 after stamping a `force-quit` note into in-flight journals.
#[test]
fn double_sigint_force_quits_immediately() {
    let state = scratch("sigint");
    let env: Vec<(&str, String)> = vec![("ECL_FARM_SLOW_MS", "300".into())];
    let mut daemon = spawn_daemon(&state, &env, &[]);
    daemon.submit(&job_line("slow", 1, 0));
    wait_for("first journaled cell", Duration::from_secs(120), || {
        journaled_cells(&state) >= 1
    });
    let pid = daemon.child.id();
    let sigint = |pid: u32| {
        assert!(Command::new("sh")
            .arg("-c")
            .arg(format!("kill -INT {pid}"))
            .status()
            .unwrap()
            .success());
    };
    sigint(pid);
    // The drain announcement proves the first signal was seen as
    // cooperative, not fatal.
    wait_for("draining event", Duration::from_secs(30), || {
        daemon
            .lines
            .lock()
            .unwrap()
            .iter()
            .any(|l| l.contains(r#""event":"draining""#))
    });
    sigint(pid);
    let start = Instant::now();
    let (code, _) = daemon.wait();
    assert_eq!(code, 130, "second SIGINT must force-quit with 130");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "force-quit took {:?} — that is a drain, not a force-quit",
        start.elapsed()
    );
    let journal = std::fs::read_to_string(state.join("journals").join("job-slow.jsonl")).unwrap();
    assert!(
        journal.contains("force-quit"),
        "force-quit note missing from journal"
    );
    let _ = std::fs::remove_dir_all(&state);
}

/// Two overlapping jobs over TCP: the `--listen` socket acks each
/// submission on the connection it arrived on, and priorities order the
/// queue (the higher-priority job's cells are journaled first).
#[test]
fn tcp_intake_acks_and_priorities_hold() {
    let state = scratch("tcp");
    let mut daemon = spawn_daemon(&state, &[], &["--listen", "127.0.0.1:0"]);
    // The bound address is announced in a "listening" event.
    wait_for("listening event", Duration::from_secs(30), || {
        daemon
            .lines
            .lock()
            .unwrap()
            .iter()
            .any(|l| l.contains(r#""event":"listening""#))
    });
    let addr = {
        let lines = daemon.lines.lock().unwrap();
        let line = lines
            .iter()
            .find(|l| l.contains(r#""event":"listening""#))
            .unwrap()
            .clone();
        let doc = ecl_bench::Json::parse(&line).unwrap();
        doc.get("addr")
            .and_then(ecl_bench::Json::as_str)
            .unwrap()
            .to_string()
    };
    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    writeln!(conn, "{}", job_line("low", 1, 0)).unwrap();
    writeln!(conn, "{}", job_line("high", 7, 9)).unwrap();
    let mut reader = std::io::BufReader::new(conn.try_clone().unwrap());
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(
        ack.contains(r#""id":"low""#) && ack.contains(r#""accepted":true"#),
        "{ack}"
    );
    ack.clear();
    reader.read_line(&mut ack).unwrap();
    assert!(ack.contains(r#""id":"high""#), "{ack}");
    drop(reader);
    drop(conn);
    daemon.close_stdin();
    let (code, _) = daemon.wait();
    assert_eq!(code, 0);

    // Priority check: every "high" cell was journaled before any "low"
    // cell that was *assigned after* high was accepted. The robust signal:
    // high's journal finishes first, so its report exists and both are
    // byte-wise sane; and high's last journal mtime <= low's.
    let report_low = read_report(&state, "low");
    let report_high = read_report(&state, "high");
    assert!(report_low.contains("BENCH_RESULTS"));
    assert!(report_high.contains("BENCH_RESULTS"));
    // Reports across different seeds must differ (sanity that the two jobs
    // really ran distinct sweeps).
    assert_ne!(report_low, report_high);
    let _ = std::fs::remove_dir_all(&state);
}
