//! Contention tests for the access policies: the atomic RMWs shared by
//! both variants must be exact under real parallelism, and the race-free
//! publication pair must transfer data correctly.

use ecl_native::{run_team, ByteArr, LongArr, NativePolicy, RaceFree, Tickets, WordArr};
use std::sync::atomic::Ordering;

/// Pair-half maxima under heavy contention reduce to the true maximum on
/// each half independently.
#[test]
fn pair_max_reduces_exactly() {
    const THREADS: usize = 8;
    const N: usize = 64;
    let pairs = LongArr::new(N, 0);
    run_team(THREADS, 0, |ctx| {
        for round in 0..1_000u32 {
            for i in 0..N {
                let v = round.rotate_left((ctx.tid + i) as u32 % 32);
                RaceFree::max_pair_first(pairs.at(i), v);
                RaceFree::max_pair_second(pairs.at(i), v ^ 0x5555);
            }
        }
    });
    // Recompute the expected maxima serially.
    for i in 0..N {
        let mut lo = 0u32;
        let mut hi = 0u32;
        for tid in 0..THREADS {
            for round in 0..1_000u32 {
                let v = round.rotate_left((tid + i) as u32 % 32);
                lo = lo.max(v);
                hi = hi.max(v ^ 0x5555);
            }
        }
        assert_eq!(RaceFree::read_pair_first(pairs.at(i)), lo, "slot {i} low");
        assert_eq!(RaceFree::read_pair_second(pairs.at(i)), hi, "slot {i} high");
    }
}

/// `fetch_min_u64` converges to the global minimum key.
#[test]
fn min_reduction_is_exact() {
    const THREADS: usize = 8;
    let best = LongArr::new(1, u64::MAX);
    run_team(THREADS, 0, |ctx| {
        for i in 0..100_000u64 {
            // Every thread bids a distinct key stream; global min is 1.
            let key = 1 + ((i * THREADS as u64 + ctx.tid as u64) ^ (i << 7)) % 1_000_000;
            RaceFree::fetch_min_u64(best.at(0), key);
        }
    });
    let expected = (0..THREADS as u64)
        .flat_map(|t| (0..100_000u64).map(move |i| 1 + ((i * 8 + t) ^ (i << 7)) % 1_000_000))
        .min()
        .unwrap();
    assert_eq!(best.at(0).load(Ordering::Relaxed), expected);
}

/// Ticketed claiming plus release-publication: every claimed slot holds
/// the claimer's payload, none is claimed twice (the claim-discipline the
/// contracts call `IndexDiscipline::OwnedRange`).
#[test]
fn ticketed_claims_are_exclusive() {
    const THREADS: usize = 8;
    const N: usize = 10_000;
    let slots = WordArr::new(N, u32::MAX);
    let cursor = WordArr::new(1, 0);
    run_team(THREADS, 0, |ctx| loop {
        let slot = RaceFree::fetch_add_u32(cursor.at(0), 1) as usize;
        if slot >= N {
            break;
        }
        RaceFree::publish_u32(slots.at(slot), ctx.tid as u32);
    });
    let snap = slots.snapshot();
    assert!(snap.iter().all(|&v| (v as usize) < THREADS));
}

/// CAS-based claim (the union-find hook idiom): exactly one thread wins
/// each cell.
#[test]
fn cas_claims_have_one_winner() {
    const THREADS: usize = 8;
    const N: usize = 4_096;
    let cells = WordArr::new(N, u32::MAX);
    let wins = ByteArr::new(THREADS * N, 0);
    let tickets = Tickets::new(N * THREADS, 64);
    run_team(THREADS, 0, |ctx| {
        while let Some(range) = tickets.grab() {
            for i in range {
                let cell = i % N;
                if RaceFree::cas_u32(cells.at(cell), u32::MAX, ctx.tid as u32) == u32::MAX {
                    wins.at(ctx.tid * N + cell).store(1, Ordering::Relaxed);
                }
            }
        }
    });
    for cell in 0..N {
        let winners: usize = (0..THREADS)
            .map(|t| wins.at(t * N + cell).load(Ordering::Relaxed) as usize)
            .sum();
        assert_eq!(winners, 1, "cell {cell} claimed {winners} times");
        let owner = cells.at(cell).load(Ordering::Relaxed) as usize;
        assert_eq!(
            wins.at(owner * N + cell).load(Ordering::Relaxed),
            1,
            "cell {cell} payload does not match its winner"
        );
    }
}
