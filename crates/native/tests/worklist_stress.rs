//! Concurrency stress tests for the chunked worklist and its epoch-based
//! reclamation.

use ecl_native::{run_team, Worklist};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Every pushed item is popped exactly once, across concurrent producers
/// and consumers.
#[test]
fn items_conserved_under_contention() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let wl = Worklist::new(THREADS);
    let seen = (0..THREADS as u64 * PER_THREAD)
        .map(|_| AtomicUsize::new(0))
        .collect::<Vec<_>>();

    run_team(THREADS, 0, |ctx| {
        let mut h = wl.handle(ctx.tid);
        let base = ctx.tid as u64 * PER_THREAD;
        // Interleave producing and consuming so chunks churn while other
        // threads are mid-pop (the reclamation-hazard window).
        for i in 0..PER_THREAD {
            h.push(base + i);
            if i % 64 == 63 {
                if let Some(chunk) = h.pop_chunk() {
                    for item in chunk {
                        seen[item as usize].fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        h.flush();
        ctx.barrier();
        // Drain whatever is left, cooperatively.
        while let Some(chunk) = h.pop_chunk() {
            for item in chunk {
                seen[item as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
    });

    assert!(wl.is_empty());
    for (i, s) in seen.iter().enumerate() {
        assert_eq!(
            s.load(Ordering::Relaxed),
            1,
            "item {i} not seen exactly once"
        );
    }
}

/// Epoch reclamation actually frees chunks while the structure is still
/// live and contended — not just at drop time.
#[test]
fn reclamation_happens_mid_run() {
    const THREADS: usize = 4;
    let wl = Worklist::new(THREADS);
    let popped = AtomicU64::new(0);

    run_team(THREADS, 0, |ctx| {
        let mut h = wl.handle(ctx.tid);
        for round in 0..200u64 {
            for i in 0..512u64 {
                h.push(round * 512 + i);
            }
            h.flush();
            while let Some(chunk) = h.pop_chunk() {
                popped.fetch_add(chunk.len() as u64, Ordering::Relaxed);
            }
        }
    });

    let (allocated, freed) = wl.debug_counts();
    assert!(allocated > 0);
    assert!(
        freed > allocated / 2,
        "epoch reclamation barely ran: {freed}/{allocated} nodes freed"
    );
    assert_eq!(
        popped.load(Ordering::Relaxed),
        THREADS as u64 * 200 * 512,
        "items lost or duplicated"
    );
    drop(wl);
}

/// Double-buffered frontier usage: the exact pattern the native algorithms
/// run (push survivors to the next round's list while draining this
/// round's), for many rounds.
#[test]
fn double_buffered_rounds_converge() {
    const THREADS: usize = 6;
    const N: u64 = 50_000;
    let a = Worklist::new(THREADS);
    let b = Worklist::new(THREADS);
    let survivors = AtomicU64::new(0);

    // Seed list A with 0..N; each round halves the population (keep evens,
    // shifted down) until empty — every item must be seen exactly once per
    // round it is alive.
    run_team(THREADS, 0, |ctx| {
        let mut ha = a.handle(ctx.tid);
        for i in ctx.my_block(N as usize) {
            ha.push(i as u64);
        }
        ha.flush();
        drop(ha);
        ctx.barrier();

        let (mut cur, mut next) = (&a, &b);
        loop {
            {
                let mut hc = cur.handle(ctx.tid);
                let mut hn = next.handle(ctx.tid);
                while let Some(chunk) = hc.pop_chunk() {
                    for item in chunk {
                        survivors.fetch_add(1, Ordering::Relaxed);
                        if item % 2 == 0 && item > 0 {
                            hn.push(item / 2);
                        }
                    }
                }
                hn.flush();
            }
            ctx.barrier();
            if next.is_empty() {
                break;
            }
            std::mem::swap(&mut cur, &mut next);
            ctx.barrier();
        }
    });

    // Item k survives for (trailing_zeros(k) + 1) rounds (it halves while
    // even); the closed-form total over 0..N is data-independent.
    let expected: u64 = (0..N)
        .map(|k| {
            if k == 0 {
                1
            } else {
                k.trailing_zeros() as u64 + 1
            }
        })
        .sum();
    assert_eq!(survivors.load(Ordering::Relaxed), expected);
}
