//! SPMD thread teams: scoped threads + a shared barrier, the native
//! analogue of a persistent-threads kernel launch.
//!
//! Every algorithm runs as one team executing the same round-structured
//! code; `Barrier::wait` separates rounds the way kernel launch boundaries
//! do on the device. A barrier is also a synchronization edge in the Rust
//! memory model, so values written before a wait are visible after it even
//! to the racy baseline policy — which is exactly the guarantee a kernel
//! boundary gives the published CUDA codes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

/// Resolves the worker-thread count: an explicit request (`--threads N`)
/// beats the `ECL_THREADS` environment variable beats the machine's
/// available parallelism. Clamped to `1..=256`.
pub fn thread_count(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var("ECL_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .clamp(1, 256)
}

/// One team member's identity and the team's barrier.
pub struct TeamCtx<'a> {
    /// This member's index in `0..threads`.
    pub tid: usize,
    /// Team size.
    pub threads: usize,
    /// Schedule-perturbation seed the team was launched with.
    pub seed: u64,
    barrier: &'a Barrier,
}

impl TeamCtx<'_> {
    /// Waits for the whole team (a kernel-boundary-equivalent sync edge).
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// This member's contiguous share of `0..n` for the current pass,
    /// rotated by the schedule seed so different seeds hand different
    /// vertices to different threads — the native analogue of the
    /// simulator's scheduler-seed perturbation.
    pub fn my_block(&self, n: usize) -> std::ops::Range<usize> {
        let worker = (self.tid + self.seed as usize) % self.threads;
        block_of(n, worker, self.threads)
    }
}

/// The `worker`-th of `workers` contiguous, balanced blocks of `0..n`.
pub fn block_of(n: usize, worker: usize, workers: usize) -> std::ops::Range<usize> {
    let per = n / workers;
    let extra = n % workers;
    let start = worker * per + worker.min(extra);
    let len = per + usize::from(worker < extra);
    start..(start + len).min(n)
}

/// Runs `f` on `threads` scoped team members sharing one barrier. Returns
/// once every member finished; panics propagate.
pub fn run_team<F>(threads: usize, seed: u64, f: F)
where
    F: Fn(TeamCtx<'_>) + Sync,
{
    assert!(threads >= 1, "a team needs at least one thread");
    let barrier = Barrier::new(threads);
    if threads == 1 {
        // Degenerate team: run inline (no spawn cost, easier debugging).
        f(TeamCtx {
            tid: 0,
            threads,
            seed,
            barrier: &barrier,
        });
        return;
    }
    std::thread::scope(|s| {
        for tid in 0..threads {
            let barrier = &barrier;
            let f = &f;
            s.spawn(move || {
                f(TeamCtx {
                    tid,
                    threads,
                    seed,
                    barrier,
                })
            });
        }
    });
}

/// A dynamic work ticket: threads grab disjoint index chunks until `n` is
/// exhausted — the load-balancing analogue of a grid-stride loop over a
/// worklist whose items have very uneven cost.
pub struct Tickets {
    next: AtomicUsize,
    n: usize,
    chunk: usize,
}

impl Tickets {
    /// A ticket dispenser over `0..n` in chunks of `chunk` (min 1).
    pub fn new(n: usize, chunk: usize) -> Tickets {
        Tickets {
            next: AtomicUsize::new(0),
            n,
            chunk: chunk.max(1),
        }
    }

    /// Grabs the next chunk, or `None` when the range is exhausted.
    pub fn grab(&self) -> Option<std::ops::Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.n {
            return None;
        }
        Some(start..(start + self.chunk).min(self.n))
    }

    /// Rewinds the dispenser for another pass (call between barriers only).
    pub fn reset(&self) {
        self.next.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn blocks_cover_and_partition() {
        for n in [0usize, 1, 7, 64, 1000] {
            for workers in [1usize, 2, 3, 8] {
                let mut seen = vec![false; n];
                for w in 0..workers {
                    for i in block_of(n, w, workers) {
                        assert!(!seen[i], "index {i} covered twice");
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "n={n} workers={workers}");
            }
        }
    }

    #[test]
    fn my_block_rotation_still_partitions() {
        let barrier = Barrier::new(1);
        for seed in [0u64, 1, 5, 1234] {
            let mut seen = [false; 100];
            for tid in 0..4 {
                let ctx = TeamCtx {
                    tid,
                    threads: 4,
                    seed,
                    barrier: &barrier,
                };
                for i in ctx.my_block(100) {
                    assert!(!seen[i]);
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn team_sums_in_parallel() {
        let total = AtomicU64::new(0);
        run_team(4, 0, |ctx| {
            let mut local = 0u64;
            for i in ctx.my_block(1000) {
                local += i as u64;
            }
            total.fetch_add(local, Ordering::Relaxed);
            ctx.barrier();
        });
        assert_eq!(total.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn tickets_cover_exactly_once() {
        let t = Tickets::new(1003, 17);
        let hits = (0..1003).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        run_team(8, 0, |_ctx| {
            while let Some(r) = t.grab() {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        t.reset();
        assert_eq!(t.grab(), Some(0..17));
    }

    #[test]
    fn thread_count_clamps() {
        assert_eq!(thread_count(Some(0)), 1);
        assert_eq!(thread_count(Some(3)), 3);
        assert_eq!(thread_count(Some(100_000)), 256);
        assert!(thread_count(None) >= 1);
    }
}
