//! Shared atomic arrays: the native analogue of device buffers.
//!
//! Every element is an atomic cell so the race-free policy can use real
//! orderings; the baseline policy reaches through the cells with volatile
//! raw-pointer accesses (see [`crate::policy`]), which is exactly the
//! layout trick the paper's Fig. 2 conversion exploits in reverse: an
//! `AtomicU32` and a `u32` share a representation, so the same array can be
//! accessed racily or atomically without copying.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// A shared array of `u32` cells.
#[derive(Debug)]
pub struct WordArr {
    data: Box<[AtomicU32]>,
}

impl WordArr {
    /// Allocates `n` cells, all holding `fill`.
    pub fn new(n: usize, fill: u32) -> WordArr {
        WordArr {
            data: (0..n).map(|_| AtomicU32::new(fill)).collect(),
        }
    }

    /// Allocates from a per-index initializer.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize) -> u32) -> WordArr {
        WordArr {
            data: (0..n).map(|i| AtomicU32::new(f(i))).collect(),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The cell at `i`.
    #[inline]
    pub fn at(&self, i: usize) -> &AtomicU32 {
        &self.data[i]
    }

    /// Copies the array out with relaxed loads. Call only from a point
    /// where writers are quiescent (after a barrier or join).
    pub fn snapshot(&self) -> Vec<u32> {
        self.data
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// A shared array of `u64` cells (packed pairs, min-reduction keys).
#[derive(Debug)]
pub struct LongArr {
    data: Box<[AtomicU64]>,
}

impl LongArr {
    /// Allocates `n` cells, all holding `fill`.
    pub fn new(n: usize, fill: u64) -> LongArr {
        LongArr {
            data: (0..n).map(|_| AtomicU64::new(fill)).collect(),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The cell at `i`.
    #[inline]
    pub fn at(&self, i: usize) -> &AtomicU64 {
        &self.data[i]
    }

    /// Copies the array out with relaxed loads (quiescent callers only).
    pub fn snapshot(&self) -> Vec<u64> {
        self.data
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// A shared array of byte cells (MIS status bytes, MST edge flags).
///
/// The GPU race-free conversion needs the Fig. 3/4 typecast-and-mask
/// helpers because CUDA has no byte atomics; the host has `AtomicU8`, so
/// the native conversion uses it directly — the mapping table in DESIGN.md
/// §13 records the substitution.
#[derive(Debug)]
pub struct ByteArr {
    data: Box<[AtomicU8]>,
}

impl ByteArr {
    /// Allocates `n` cells, all holding `fill`.
    pub fn new(n: usize, fill: u8) -> ByteArr {
        ByteArr {
            data: (0..n).map(|_| AtomicU8::new(fill)).collect(),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The cell at `i`.
    #[inline]
    pub fn at(&self, i: usize) -> &AtomicU8 {
        &self.data[i]
    }

    /// Copies the array out with relaxed loads (quiescent callers only).
    pub fn snapshot(&self) -> Vec<u8> {
        self.data
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_roundtrip() {
        let w = WordArr::from_fn(5, |i| i as u32 * 2);
        assert_eq!(w.snapshot(), vec![0, 2, 4, 6, 8]);
        w.at(3).store(99, Ordering::Relaxed);
        assert_eq!(w.snapshot()[3], 99);

        let l = LongArr::new(2, u64::MAX);
        assert_eq!(l.snapshot(), vec![u64::MAX; 2]);

        let b = ByteArr::new(3, 7);
        assert_eq!(b.snapshot(), vec![7, 7, 7]);
        assert!(!w.is_empty() && !l.is_empty() && !b.is_empty());
        assert_eq!((w.len(), l.len(), b.len()), (5, 2, 3));
    }
}
