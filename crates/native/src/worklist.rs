//! A lock-free chunked worklist with epoch-based reclamation — the native
//! analogue of the device worklists the worklist-driven codes use.
//!
//! Design (after the classic epoch scheme, specialized to this access
//! pattern):
//!
//! - Producers buffer items in a handle-local `Vec`; a full buffer is
//!   published as one chunk node onto a global Treiber stack (a single
//!   release-CAS). Pushing never dereferences another thread's node, so it
//!   needs no epoch protection — an ABA'd head pointer is still a valid
//!   head.
//! - Consumers pop whole chunks. Popping reads `head` and then `head.next`,
//!   so the node must not be freed (or recycled — the CAS would suffer ABA)
//!   while any consumer might still hold the pointer. That is what the
//!   epochs guarantee: a popped node is *retired*, tagged with the global
//!   epoch, and only freed once the global epoch has advanced far enough
//!   that no thread can still be pinned in an epoch that could have seen
//!   the node linked.
//! - The global epoch only advances when every pinned slot has caught up
//!   with it, and retired garbage is freed only once `global - tag >= 3`.
//!   The slack of 3 (rather than the textbook 2) absorbs the one-epoch
//!   staleness a retirer's tag can have relative to a concurrent pin —
//!   see the safety comment on [`Worklist::try_advance`].
//!
//! Chunk items are written single-threadedly before publication and read
//! single-threadedly after an exclusive pop, so the items themselves need
//! no atomics; only the stack spine is contended.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Items a full handle buffer publishes per chunk.
pub const CHUNK_CAP: usize = 256;

/// Slot value meaning "this handle is not inside a pop".
const UNPINNED: usize = usize::MAX;

/// Retired garbage is freed once the global epoch is this far past its tag.
const GRACE: usize = 3;

/// Local garbage list length that triggers an advance/collect attempt.
const COLLECT_EVERY: usize = 8;

struct Node {
    next: AtomicPtr<Node>,
    /// Written before publication, taken (exactly once) by the popping
    /// winner; the cell arbitrates nothing — exclusivity comes from the
    /// stack CAS.
    items: std::cell::UnsafeCell<Vec<u64>>,
}

/// A multi-producer multi-consumer chunked worklist.
///
/// Create one per round (or double-buffer two), hand each team member a
/// [`WorklistHandle`] via [`Worklist::handle`], and drop all handles before
/// reading [`Worklist::is_empty`] for the round-termination check.
pub struct Worklist {
    head: AtomicPtr<Node>,
    epoch: AtomicUsize,
    /// One pin slot per handle index, `UNPINNED` when outside a pop.
    slots: Box<[AtomicUsize]>,
    /// Garbage handed back by dropped handles, freed on [`Worklist::drop`].
    orphans: Mutex<Vec<(usize, *mut Node)>>,
    nodes_allocated: AtomicUsize,
    nodes_freed: AtomicUsize,
}

// The raw node pointers in `orphans` are owned exclusively by the worklist
// once a handle has surrendered them.
unsafe impl Send for Worklist {}
unsafe impl Sync for Worklist {}

impl Worklist {
    /// A worklist serving handle indices `0..max_handles`.
    pub fn new(max_handles: usize) -> Worklist {
        Worklist {
            head: AtomicPtr::new(std::ptr::null_mut()),
            epoch: AtomicUsize::new(0),
            slots: (0..max_handles.max(1))
                .map(|_| AtomicUsize::new(UNPINNED))
                .collect(),
            orphans: Mutex::new(Vec::new()),
            nodes_allocated: AtomicUsize::new(0),
            nodes_freed: AtomicUsize::new(0),
        }
    }

    /// The handle for pin slot `slot`. Each live handle must use a distinct
    /// slot (use the team member's `tid`); sharing a slot between two live
    /// handles would let one unpin the other's epoch.
    pub fn handle(&self, slot: usize) -> WorklistHandle<'_> {
        assert!(slot < self.slots.len(), "handle slot out of range");
        debug_assert_eq!(
            self.slots[slot].load(Ordering::Relaxed),
            UNPINNED,
            "slot {slot} already pinned by a live handle"
        );
        WorklistHandle {
            wl: self,
            slot,
            local: Vec::new(),
            garbage: Vec::new(),
        }
    }

    /// `true` if no published chunk remains. Handle-local buffers are not
    /// visible — flush (or drop) all handles before a termination check.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }

    /// `(nodes allocated, nodes freed)` — for reclamation tests.
    pub fn debug_counts(&self) -> (usize, usize) {
        (
            self.nodes_allocated.load(Ordering::Relaxed),
            self.nodes_freed.load(Ordering::Relaxed),
        )
    }

    fn publish(&self, items: Vec<u64>) {
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(std::ptr::null_mut()),
            items: std::cell::UnsafeCell::new(items),
        }));
        self.nodes_allocated.fetch_add(1, Ordering::Relaxed);
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            unsafe { (*node).next.store(head, Ordering::Relaxed) };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => head = now,
            }
        }
    }

    /// Advances the global epoch if every pinned slot has caught up.
    ///
    /// Safety argument for the `GRACE = 3` free rule: a popper pins with a
    /// store-then-validate loop, so once it proceeds its slot holds the
    /// then-current epoch `g`. While it stays pinned at `g` the global
    /// epoch can advance at most once (to `g + 1`: the next advance would
    /// need the slot to read `g + 1`). Any node the popper can still reach
    /// was unlinked no earlier than its pin, and the unlinker tags it with
    /// an epoch it read no staler than `g - 1`. Freeing needs
    /// `global - tag >= 3`, i.e. global `>= g + 2` — unreachable while the
    /// popper is pinned. Hence no reachable node is ever freed, and no
    /// node's address can be recycled into an ABA on the head CAS.
    fn try_advance(&self) {
        let g = self.epoch.load(Ordering::SeqCst);
        for slot in self.slots.iter() {
            let e = slot.load(Ordering::SeqCst);
            if e != UNPINNED && e != g {
                return;
            }
        }
        // A lost race just means someone else advanced — equally good.
        let _ = self
            .epoch
            .compare_exchange(g, g + 1, Ordering::SeqCst, Ordering::SeqCst);
    }

    fn free_node(&self, node: *mut Node) {
        unsafe { drop(Box::from_raw(node)) };
        self.nodes_freed.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for Worklist {
    fn drop(&mut self) {
        // Exclusive access: free the remaining stack and all orphans.
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            self.free_node(cur);
            cur = next;
        }
        let orphans = std::mem::take(&mut *self.orphans.lock().unwrap());
        for (_, node) in orphans {
            self.free_node(node);
        }
    }
}

/// One thread's producer/consumer endpoint on a [`Worklist`].
pub struct WorklistHandle<'a> {
    wl: &'a Worklist,
    slot: usize,
    local: Vec<u64>,
    garbage: Vec<(usize, *mut Node)>,
}

impl WorklistHandle<'_> {
    /// Appends an item; publishes a chunk when the local buffer fills.
    pub fn push(&mut self, item: u64) {
        self.local.push(item);
        if self.local.len() >= CHUNK_CAP {
            self.flush();
        }
    }

    /// Publishes any locally buffered items as a (possibly short) chunk.
    pub fn flush(&mut self) {
        if !self.local.is_empty() {
            let items = std::mem::take(&mut self.local);
            self.wl.publish(items);
        }
    }

    /// Pops one published chunk, or `None` if the stack is (momentarily)
    /// empty. Locally buffered items of *this* handle are not eligible
    /// until flushed.
    pub fn pop_chunk(&mut self) -> Option<Vec<u64>> {
        self.pin();
        let popped = loop {
            let head = self.wl.head.load(Ordering::Acquire);
            if head.is_null() {
                break None;
            }
            let next = unsafe { (*head).next.load(Ordering::Relaxed) };
            if self
                .wl
                .head
                .compare_exchange_weak(head, next, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // Exclusive owner of the node's payload now.
                let items = unsafe { std::mem::take(&mut *(*head).items.get()) };
                self.retire(head);
                break Some(items);
            }
        };
        self.unpin();
        popped
    }

    fn pin(&self) {
        // Store-then-validate: the slot must hold the *current* epoch
        // before we touch the stack (see `Worklist::try_advance`).
        loop {
            let e = self.wl.epoch.load(Ordering::SeqCst);
            self.wl.slots[self.slot].store(e, Ordering::SeqCst);
            if self.wl.epoch.load(Ordering::SeqCst) == e {
                return;
            }
        }
    }

    fn unpin(&self) {
        self.wl.slots[self.slot].store(UNPINNED, Ordering::SeqCst);
    }

    fn retire(&mut self, node: *mut Node) {
        let tag = self.wl.epoch.load(Ordering::SeqCst);
        self.garbage.push((tag, node));
        if self.garbage.len() >= COLLECT_EVERY {
            self.wl.try_advance();
            self.collect();
        }
    }

    fn collect(&mut self) {
        let global = self.wl.epoch.load(Ordering::SeqCst);
        let mut kept = Vec::with_capacity(self.garbage.len());
        for (tag, node) in self.garbage.drain(..) {
            if global.wrapping_sub(tag) >= GRACE {
                self.wl.free_node(node);
            } else {
                kept.push((tag, node));
            }
        }
        self.garbage = kept;
    }
}

impl Drop for WorklistHandle<'_> {
    fn drop(&mut self) {
        self.flush();
        self.wl.try_advance();
        self.collect();
        if !self.garbage.is_empty() {
            // Still-unsafe-to-free nodes outlive the handle; the worklist
            // frees them on drop (or never reuses them — no leak either way).
            self.wl.orphans.lock().unwrap().append(&mut self.garbage);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_roundtrip() {
        let wl = Worklist::new(1);
        let mut h = wl.handle(0);
        for i in 0..1000u64 {
            h.push(i);
        }
        h.flush();
        let mut got = Vec::new();
        while let Some(chunk) = h.pop_chunk() {
            got.extend(chunk);
        }
        drop(h);
        got.sort_unstable();
        assert_eq!(got, (0..1000).collect::<Vec<u64>>());
        assert!(wl.is_empty());
    }

    #[test]
    fn unflushed_items_invisible_until_flush() {
        let wl = Worklist::new(1);
        let mut h = wl.handle(0);
        h.push(7);
        assert!(wl.is_empty());
        assert!(h.pop_chunk().is_none());
        h.flush();
        assert!(!wl.is_empty());
        assert_eq!(h.pop_chunk(), Some(vec![7]));
    }
}
