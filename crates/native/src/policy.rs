//! Native access policies: the baseline/race-free split on host atomics.
//!
//! The method split mirrors the access *roles* the kernel contracts
//! declare (see `ecl-core::contracts` and DESIGN.md §13):
//!
//! | role                 | contract evidence                          | race-free ordering      |
//! |----------------------|--------------------------------------------|-------------------------|
//! | `load`/`store`       | `BenignClass::MonotonicUpdate` /           | `Relaxed`               |
//! |                      | `RePropagatedLostUpdate` (parents, pairs,  |                         |
//! |                      | minposs, best keys)                        |                         |
//! | `observe`/`publish`  | one-shot terminal values peers poll (MIS   | `Acquire` / `Release`   |
//! |                      | status bytes, colors, settled ids)         |                         |
//! | `raise_flag`         | `BenignClass::IdempotentWrite` repeat /    | `Release` store         |
//! |                      | changed flags                              |                         |
//! | RMWs (`cas`, `min`,  | atomic in the published baselines too      | `Relaxed`               |
//! | `add`, pair-max)     | (`atomicCAS`/`atomicMin`/tickets)          | (single-cell invariant) |
//!
//! `SeqCst` appears nowhere: no kernel relies on a total order across
//! *different* cells — every cross-thread protocol here is either a
//! single-cell monotone convergence or a single-cell publication whose
//! readers tolerate staleness (DESIGN.md §13 gives the per-kernel
//! argument).
//!
//! [`Baseline`] implements the plain-access roles with **volatile raw
//! pointer accesses** through the atomic cells. This is a deliberate,
//! genuine data race under the Rust memory model — it is what the paper's
//! baseline *is*, and what ThreadSanitizer is expected to flag (the CI
//! lane treats baseline reports as informational). Volatile keeps the
//! compiler from fusing or hoisting the accesses, which matches the
//! hardware guarantee the CUDA baselines lean on: every access is one
//! machine-level load/store of its full width.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// One variant's mapping from access roles to host memory operations.
pub trait NativePolicy: Send + Sync + 'static {
    /// Policy name for reports.
    const NAME: &'static str;
    /// `true` for the converted (data-race-free) policy.
    const IS_RACE_FREE: bool;

    /// Plain/monotone read (union-find parents, max-ID pair halves, …).
    fn load_u32(c: &AtomicU32) -> u32;
    /// Plain/monotone write.
    fn store_u32(c: &AtomicU32, v: u32);
    /// Read side of a publication (polling a peer's decided value).
    fn observe_u32(c: &AtomicU32) -> u32;
    /// Write side of a publication (a terminal decided value).
    fn publish_u32(c: &AtomicU32, v: u32);

    /// Plain/monotone byte read.
    fn load_u8(c: &AtomicU8) -> u8;
    /// Plain byte write (init-time stores nobody concurrently reads).
    fn store_u8(c: &AtomicU8, v: u8);
    /// Read side of a byte publication.
    fn observe_u8(c: &AtomicU8) -> u8;
    /// Write side of a byte publication.
    fn publish_u8(c: &AtomicU8, v: u8);

    /// Plain 64-bit read (packed pair / best-key slots). On the host this
    /// is a single machine load either way; the baseline's volatile read
    /// models the `volatile long long` loads ECL-MST's baseline uses.
    fn load_u64(c: &AtomicU64) -> u64;
    /// Plain 64-bit write.
    fn store_u64(c: &AtomicU64, v: u64);

    /// Raises a repeat/changed flag (idempotent: every writer stores 1).
    fn raise_flag(c: &AtomicU32) {
        Self::publish_u32(c, 1);
    }

    /// `compare_exchange` — atomic in both variants, like `atomicCAS` in
    /// both published variants. Returns the previous value.
    #[inline]
    fn cas_u32(c: &AtomicU32, current: u32, new: u32) -> u32 {
        match c.compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(prev) | Err(prev) => prev,
        }
    }

    /// `fetch_add` ticket counter — atomic in both variants.
    #[inline]
    fn fetch_add_u32(c: &AtomicU32, v: u32) -> u32 {
        c.fetch_add(v, Ordering::Relaxed)
    }

    /// 64-bit `atomicMin` — atomic in both variants (monotone toward the
    /// per-component minimum key).
    #[inline]
    fn fetch_min_u64(c: &AtomicU64, v: u64) -> u64 {
        c.fetch_min(v, Ordering::Relaxed)
    }

    /// Reads the low half of a packed `(first, second)` pair.
    #[inline]
    fn read_pair_first(c: &AtomicU64) -> u32 {
        Self::load_u64(c) as u32
    }

    /// Reads the high half of a packed `(first, second)` pair.
    #[inline]
    fn read_pair_second(c: &AtomicU64) -> u32 {
        (Self::load_u64(c) >> 32) as u32
    }

    /// Monotone max on the low pair half (the paper's Fig. 5 per-half
    /// atomic). Returns `true` if the half grew.
    #[inline]
    fn max_pair_first(c: &AtomicU64, v: u32) -> bool {
        let mut cur = c.load(Ordering::Relaxed);
        loop {
            if cur as u32 >= v {
                return false;
            }
            let upd = (cur & 0xffff_ffff_0000_0000) | v as u64;
            match c.compare_exchange_weak(cur, upd, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Monotone max on the high pair half. Returns `true` if it grew.
    #[inline]
    fn max_pair_second(c: &AtomicU64, v: u32) -> bool {
        let mut cur = c.load(Ordering::Relaxed);
        loop {
            if (cur >> 32) as u32 >= v {
                return false;
            }
            let upd = (cur & 0x0000_0000_ffff_ffff) | ((v as u64) << 32);
            match c.compare_exchange_weak(cur, upd, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }
}

/// The published codes' access pattern: racy volatile loads/stores for the
/// plain accesses, atomics only where the CUDA originals already used
/// `atomicCAS`/`atomicMin`/tickets.
pub struct Baseline;

impl NativePolicy for Baseline {
    const NAME: &'static str = "baseline";
    const IS_RACE_FREE: bool = false;

    #[inline]
    fn load_u32(c: &AtomicU32) -> u32 {
        unsafe { c.as_ptr().read_volatile() }
    }
    #[inline]
    fn store_u32(c: &AtomicU32, v: u32) {
        unsafe { c.as_ptr().write_volatile(v) }
    }
    #[inline]
    fn observe_u32(c: &AtomicU32) -> u32 {
        unsafe { c.as_ptr().read_volatile() }
    }
    #[inline]
    fn publish_u32(c: &AtomicU32, v: u32) {
        unsafe { c.as_ptr().write_volatile(v) }
    }
    #[inline]
    fn load_u8(c: &AtomicU8) -> u8 {
        unsafe { c.as_ptr().read_volatile() }
    }
    #[inline]
    fn store_u8(c: &AtomicU8, v: u8) {
        unsafe { c.as_ptr().write_volatile(v) }
    }
    #[inline]
    fn observe_u8(c: &AtomicU8) -> u8 {
        unsafe { c.as_ptr().read_volatile() }
    }
    #[inline]
    fn publish_u8(c: &AtomicU8, v: u8) {
        unsafe { c.as_ptr().write_volatile(v) }
    }
    #[inline]
    fn load_u64(c: &AtomicU64) -> u64 {
        unsafe { c.as_ptr().read_volatile() }
    }
    #[inline]
    fn store_u64(c: &AtomicU64, v: u64) {
        unsafe { c.as_ptr().write_volatile(v) }
    }
}

/// The converted codes: every shared access is a real atomic with the
/// ordering its contract role calls for (module-level table).
pub struct RaceFree;

impl NativePolicy for RaceFree {
    const NAME: &'static str = "race-free";
    const IS_RACE_FREE: bool = true;

    #[inline]
    fn load_u32(c: &AtomicU32) -> u32 {
        c.load(Ordering::Relaxed)
    }
    #[inline]
    fn store_u32(c: &AtomicU32, v: u32) {
        c.store(v, Ordering::Relaxed)
    }
    #[inline]
    fn observe_u32(c: &AtomicU32) -> u32 {
        c.load(Ordering::Acquire)
    }
    #[inline]
    fn publish_u32(c: &AtomicU32, v: u32) {
        c.store(v, Ordering::Release)
    }
    #[inline]
    fn load_u8(c: &AtomicU8) -> u8 {
        c.load(Ordering::Relaxed)
    }
    #[inline]
    fn store_u8(c: &AtomicU8, v: u8) {
        c.store(v, Ordering::Relaxed)
    }
    #[inline]
    fn observe_u8(c: &AtomicU8) -> u8 {
        c.load(Ordering::Acquire)
    }
    #[inline]
    fn publish_u8(c: &AtomicU8, v: u8) {
        c.store(v, Ordering::Release)
    }
    #[inline]
    fn load_u64(c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }
    #[inline]
    fn store_u64(c: &AtomicU64, v: u64) {
        c.store(v, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<P: NativePolicy>() {
        let w = AtomicU32::new(5);
        assert_eq!(P::load_u32(&w), 5);
        P::store_u32(&w, 7);
        assert_eq!(P::observe_u32(&w), 7);
        P::publish_u32(&w, 9);
        assert_eq!(P::load_u32(&w), 9);
        assert_eq!(P::cas_u32(&w, 9, 10), 9);
        assert_eq!(P::cas_u32(&w, 9, 11), 10);
        assert_eq!(P::fetch_add_u32(&w, 5), 10);

        let b = AtomicU8::new(2);
        P::store_u8(&b, 3);
        assert_eq!(P::load_u8(&b), 3);
        P::publish_u8(&b, 1);
        assert_eq!(P::load_u8(&b), 1);
        assert_eq!(P::observe_u8(&b), 1);

        let l = AtomicU64::new(u64::MAX);
        assert_eq!(P::fetch_min_u64(&l, 42), u64::MAX);
        assert_eq!(P::load_u64(&l), 42);
        P::store_u64(&l, 7);
        assert_eq!(P::load_u64(&l), 7);

        let pair = AtomicU64::new(0);
        assert!(P::max_pair_first(&pair, 3));
        assert!(!P::max_pair_first(&pair, 2));
        assert!(P::max_pair_second(&pair, 8));
        assert_eq!(P::read_pair_first(&pair), 3);
        assert_eq!(P::read_pair_second(&pair), 8);
        assert!(P::max_pair_first(&pair, 5));
        assert_eq!(P::read_pair_second(&pair), 8, "halves are independent");

        let flag = AtomicU32::new(0);
        P::raise_flag(&flag);
        assert_eq!(P::observe_u32(&flag), 1);
    }

    #[test]
    fn baseline_roundtrips() {
        exercise::<Baseline>();
        const { assert!(!Baseline::IS_RACE_FREE) };
    }

    #[test]
    fn race_free_roundtrips() {
        exercise::<RaceFree>();
        const { assert!(RaceFree::IS_RACE_FREE) };
    }
}
