//! Native multithreaded backend infrastructure: the shared-memory building
//! blocks the six graph codes run on when dispatched to real host threads
//! instead of the SIMT simulator.
//!
//! The simulator reproduces the paper's *measurements* (cycles, cache
//! behaviour, race witnesses); this crate exists to test the paper's
//! *claims* against actual hardware memory orderings. The same
//! baseline-vs-race-free split is kept:
//!
//! - [`Baseline`] performs the racy plain accesses of the published CUDA
//!   codes as genuinely racy host accesses — raw volatile loads/stores
//!   through [`std::sync::atomic`] cells' `as_ptr`, which the Rust memory
//!   model calls a data race (ThreadSanitizer agrees). Volatile pins each
//!   access to a single machine instruction, mirroring what the GPU
//!   baselines get from hardware: no tearing on word-sized accesses, but no
//!   ordering and no visibility guarantees either.
//! - [`RaceFree`] maps every shared access to a real atomic with an
//!   explicit [`std::sync::atomic::Ordering`] derived from the kernel's
//!   access contract (see DESIGN.md §13 for the mapping table).
//!
//! Read-modify-writes (`atomicCAS`, `atomicMin`, ticket counters) stay
//! atomic in *both* variants, exactly as in the published baselines — the
//! races the paper studies are in the plain loads and stores around them.
//!
//! The other pieces:
//!
//! - [`mem`]: shared atomic arrays ([`WordArr`]/[`LongArr`]/[`ByteArr`])
//!   standing in for device buffers.
//! - [`worklist`]: a lock-free chunked worklist with epoch-based
//!   reclamation, the native analogue of the device worklists the
//!   worklist-driven codes (CC/MIS/MST/SCC) use.
//! - [`pool`]: scoped-thread SPMD teams with barriers, thread-count
//!   resolution (`ECL_THREADS`), and schedule perturbation helpers.

pub mod mem;
pub mod policy;
pub mod pool;
pub mod worklist;

pub use mem::{ByteArr, LongArr, WordArr};
pub use policy::{Baseline, NativePolicy, RaceFree};
pub use pool::{block_of, run_team, thread_count, TeamCtx, Tickets};
pub use worklist::{Worklist, WorklistHandle};
