//! ECL-MST on host threads: data-driven Borůvka where the still-active
//! cross-component edges live in a double-buffered worklist (instead of
//! re-scanning every edge each round) and the per-component connect step is
//! ticket-dispatched.
//!
//! Weights pack above the edge index, so every key is unique and the found
//! spanning forest — hence the `(weight, count)` digest — is identical to
//! the simulator's for every thread count and interleaving.

use crate::common::Digest;
use ecl_graph::Csr;
use ecl_native::{run_team, ByteArr, LongArr, NativePolicy, Tickets, WordArr, Worklist};

use super::MstResult;

/// Packs `(weight, edge)` into the `u64` key minimized per component.
#[inline]
fn pack(weight: u32, edge: u32) -> u64 {
    ((weight as u64) << 26) | edge as u64
}

/// Extracts the edge index from a packed key.
#[inline]
fn unpack_edge(key: u64) -> u32 {
    (key & ((1 << 26) - 1)) as u32
}

/// Follows parent links with intermediate pointer jumping (the same
/// traversal as the CC native kernel; links only decrease).
#[inline]
fn rep<P: NativePolicy>(parent: &WordArr, v: u32) -> u32 {
    let mut cur = P::load_u32(parent.at(v as usize));
    if cur == v {
        return v;
    }
    let mut prev = v;
    loop {
        let next = P::load_u32(parent.at(cur as usize));
        if next == cur {
            return cur;
        }
        P::store_u32(parent.at(prev as usize), next);
        prev = cur;
        cur = next;
    }
}

/// Runs native ECL-MST on `threads` host threads; `seed` perturbs only the
/// schedule.
///
/// # Panics
///
/// Panics if the graph has no vertices or carries no edge weights.
pub fn run<P: NativePolicy>(g: &Csr, threads: usize, seed: u64) -> MstResult {
    assert!(g.num_vertices() > 0, "empty graph");
    let weights = g
        .weights()
        .expect("MST needs edge weights: call Csr::with_random_weights first");
    let start = std::time::Instant::now();
    let n = g.num_vertices();
    let m = g.num_edges();
    assert!(m < (1 << 26), "edge index overflows the packed key");
    let col = g.col_indices();
    let edge_src: Vec<u32> = g.edges().map(|(s, _)| s).collect();

    let parent = WordArr::from_fn(n, |v| v as u32);
    let best = LongArr::new(n, u64::MAX);
    let in_mst = ByteArr::new(m.max(1), 0);
    let changed = WordArr::new(1, 0);
    let connect = Tickets::new(n, 512);
    let a = Worklist::new(threads);
    let b = Worklist::new(threads);

    run_team(threads, seed, |ctx| {
        // Seed the active-edge list with each undirected edge's u < v half.
        {
            let mut h = a.handle(ctx.tid);
            for e in ctx.my_block(m) {
                if edge_src[e] < col[e] {
                    h.push(e as u64);
                }
            }
            h.flush();
        }
        ctx.barrier();

        let (mut cur, mut next) = (&a, &b);
        loop {
            // Part 1: every still-cross-component edge bids for both
            // endpoint components' best slots; settled edges drop out.
            {
                let mut hc = cur.handle(ctx.tid);
                let mut hn = next.handle(ctx.tid);
                while let Some(chunk) = hc.pop_chunk() {
                    for item in chunk {
                        let e = item as u32;
                        let u = edge_src[e as usize];
                        let v = col[e as usize];
                        let ru = rep::<P>(&parent, u);
                        let rv = rep::<P>(&parent, v);
                        if ru == rv {
                            continue;
                        }
                        let key = pack(weights[e as usize], e);
                        P::fetch_min_u64(best.at(ru as usize), key);
                        P::fetch_min_u64(best.at(rv as usize), key);
                        hn.push(item);
                    }
                }
                hn.flush();
            }
            ctx.barrier();

            // Part 2: each component adopts its best edge and merges.
            while let Some(range) = connect.grab() {
                for v in range {
                    let key = P::load_u64(best.at(v));
                    if key == u64::MAX {
                        continue;
                    }
                    P::store_u64(best.at(v), u64::MAX);
                    let e = unpack_edge(key);
                    let ea = edge_src[e as usize];
                    let eb = col[e as usize];
                    loop {
                        let ra = rep::<P>(&parent, ea);
                        let rb = rep::<P>(&parent, eb);
                        if ra == rb {
                            break;
                        }
                        let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
                        if P::cas_u32(parent.at(hi as usize), hi, lo) == hi {
                            // This call performed the merge: the edge joins
                            // the forest exactly once, so no cycle can form.
                            P::publish_u8(in_mst.at(e as usize), 1);
                            P::raise_flag(changed.at(0));
                            break;
                        }
                    }
                }
            }
            ctx.barrier();

            let done = P::load_u32(changed.at(0)) == 0;
            // Everyone must read `changed` before thread 0 resets it, or the
            // team could split on the break decision and deadlock.
            ctx.barrier();
            if done {
                break;
            }
            std::mem::swap(&mut cur, &mut next);
            if ctx.tid == 0 {
                P::store_u32(changed.at(0), 0);
                connect.reset();
            }
            ctx.barrier();
        }
    });

    let host_flags = in_mst.snapshot();
    let in_mst_vec: Vec<bool> = host_flags[..m].iter().map(|&f| f != 0).collect();
    let mut total_weight = 0u64;
    let mut num_edges = 0usize;
    for (e, &inside) in in_mst_vec.iter().enumerate() {
        if inside {
            total_weight += weights[e] as u64;
            num_edges += 1;
        }
    }
    let mut digest = Digest::new();
    digest.push(total_weight);
    digest.push(num_edges as u64);
    MstResult {
        total_weight,
        num_edges,
        cycles: start.elapsed().as_nanos() as u64,
        stats: Default::default(),
        digest: digest.finish(),
        in_mst: in_mst_vec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::{reference_mst_weight, verify_mst};
    use ecl_graph::gen;
    use ecl_native::{Baseline, RaceFree};

    #[test]
    fn both_policies_find_the_forest() {
        let g = gen::rmat(256, 1024, 0.57, 0.19, 0.19, true, 5).with_random_weights(1000, 7);
        let reference = reference_mst_weight(&g);
        let b = run::<Baseline>(&g, 4, 1);
        let f = run::<RaceFree>(&g, 4, 2);
        assert!(verify_mst(&g, &b.in_mst));
        assert!(verify_mst(&g, &f.in_mst));
        assert_eq!(b.total_weight, reference);
        assert_eq!(b.digest, f.digest);
    }

    #[test]
    fn disconnected_graph_yields_a_forest() {
        let mut bld = ecl_graph::CsrBuilder::new(6).symmetric(true);
        bld.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(3, 4)
            .add_edge(4, 5);
        let g = bld.build().with_random_weights(10, 1);
        let r = run::<RaceFree>(&g, 3, 0);
        assert_eq!(r.num_edges, 4);
        assert!(verify_mst(&g, &r.in_mst));
    }
}
