//! The ECL-MST kernels: per-round best-edge reduction and component merging.

use crate::common::{union_find_rep, DeviceGraph};
use crate::primitives::AccessPolicy;
use ecl_graph::Csr;
use ecl_simt::{
    DeviceBuffer, ForEach, FullHooks, Gpu, Hooks, LaunchConfig, NoHooks, StoreVisibility,
};

/// Packs `(weight, edge)` into the `u64` key minimized per component.
/// 26 bits of edge index keep keys unique for graphs up to 67 M edges.
#[inline]
fn pack(weight: u32, edge: u32) -> u64 {
    ((weight as u64) << 26) | edge as u64
}

/// Extracts the edge index from a packed key.
#[inline]
fn unpack_edge(key: u64) -> u32 {
    (key & ((1 << 26) - 1)) as u32
}

/// Launches the Borůvka rounds; returns the per-edge MST membership flags.
///
/// Dispatches to the monomorphized fast path when no hooks are armed.
pub(super) fn run_on<P: AccessPolicy>(
    gpu: &mut Gpu,
    dg: &DeviceGraph,
    g: &Csr,
    visibility: StoreVisibility,
) -> DeviceBuffer<u8> {
    if gpu.fast_path_eligible() {
        run_on_hooks::<P, NoHooks>(gpu, dg, g, visibility)
    } else {
        run_on_hooks::<P, FullHooks>(gpu, dg, g, visibility)
    }
}

fn run_on_hooks<P: AccessPolicy, H: Hooks>(
    gpu: &mut Gpu,
    dg: &DeviceGraph,
    g: &Csr,
    visibility: StoreVisibility,
) -> DeviceBuffer<u8> {
    let n = dg.n;
    let m = dg.m;
    assert!(m < (1 << 26), "edge index overflows the packed key");
    let parent = gpu.alloc_named::<u32>(n as usize, "parent");
    let best = gpu.alloc_named::<u64>(n as usize, "best");
    // Padded to a word multiple for the race-free byte writes (Fig. 4).
    let in_mst = gpu.alloc_named::<u8>(((m as usize).max(1) + 3) & !3, "in_mst");
    let changed = gpu.alloc_named::<u32>(1, "changed");

    // The edge-centric kernels need each edge's source vertex.
    let edge_src_host: Vec<u32> = g.edges().map(|(s, _)| s).collect();
    let edge_src = gpu.alloc_named::<u32>((m as usize).max(1), "edge_src");
    gpu.upload(&edge_src, &edge_src_host);
    let graph = *dg;
    let weights = dg.weights.expect("weights uploaded");

    gpu.launch_with::<H, _>(
        LaunchConfig::for_items(n).with_visibility(visibility),
        ForEach::with_hooks::<H>("mst_init", n, move |ctx, v| {
            ctx.store(parent.at(v as usize), v);
            ctx.store(best.at(v as usize), u64::MAX);
        }),
    );

    loop {
        gpu.write_scalar(&changed, 0, 0u32);

        // Round part 1: every cross-component edge bids for both of its
        // endpoint components' best-edge slots (atomicMin in both variants,
        // as in ECL-MST — the races are in the parent/best *reads*).
        gpu.launch_with::<H, _>(
            LaunchConfig::for_items(m).with_visibility(visibility),
            ForEach::with_hooks::<H>("mst_find_min", m, move |ctx, e| {
                let u = ctx.load(edge_src.at(e as usize));
                let v = ctx.load(graph.col_indices.at(e as usize));
                if u >= v {
                    // Process each undirected edge once.
                    return;
                }
                let ru = union_find_rep::<P, _>(ctx, parent, u);
                let rv = union_find_rep::<P, _>(ctx, parent, v);
                if ru == rv {
                    return;
                }
                let w = ctx.load(weights.at(e as usize));
                let key = pack(w, e);
                ctx.atomic_min_u64(best.at(ru as usize), key);
                ctx.atomic_min_u64(best.at(rv as usize), key);
            })
            .with_chunk(8),
        );

        // Round part 2: each component adopts its best edge and merges.
        gpu.launch_with::<H, _>(
            LaunchConfig::for_items(n).with_visibility(visibility),
            ForEach::with_hooks::<H>("mst_connect", n, move |ctx, v| {
                let key = P::read_u64(ctx, best.at(v as usize));
                if key == u64::MAX {
                    return;
                }
                // Reset for the next round (own slot, single writer).
                ctx.store(best.at(v as usize), u64::MAX);
                let e = unpack_edge(key);
                let a = ctx.load(edge_src.at(e as usize));
                let b = ctx.load(graph.col_indices.at(e as usize));
                loop {
                    let ra = union_find_rep::<P, _>(ctx, parent, a);
                    let rb = union_find_rep::<P, _>(ctx, parent, b);
                    if ra == rb {
                        break;
                    }
                    let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
                    if ctx.atomic_cas_u32(parent.at(hi as usize), hi, lo) == hi {
                        // This call performed the merge: the edge joins the
                        // MST exactly once, so no cycle can form.
                        P::write_byte(ctx, in_mst.as_ptr(), e, 1);
                        P::raise_flag(ctx, changed.at(0));
                        break;
                    }
                }
            })
            .with_chunk(8),
        );

        if gpu.read_scalar(&changed, 0) == 0 {
            break;
        }
    }

    in_mst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_orders_by_weight_then_edge() {
        assert!(pack(5, 100) < pack(6, 0));
        assert!(pack(5, 1) < pack(5, 2));
        assert_eq!(unpack_edge(pack(123, 4567)), 4567);
    }
}
