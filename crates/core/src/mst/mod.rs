//! ECL-MST: minimum spanning tree/forest via a data-driven, edge-based
//! Borůvka algorithm with implicit path compression in the union-find
//! (paper §II-B-5).
//!
//! Shared state: the union-find parent array (traversed exactly like
//! ECL-CC's, with racy plain reads and shortening writes in the baseline)
//! and a per-component *best edge* array holding `(weight, edge)` packed in
//! a `long long`, updated with `atomicMin` in both variants but *read* with
//! `volatile` 64-bit loads in the baseline — the access the paper converts.
//!
//! Weights are packed above the edge index, so every key is unique and the
//! MST is deterministic across variants and interleavings.

mod kernels;
pub mod native;
mod verify;

pub use verify::{reference_mst_weight, verify_mst};

use crate::common::{DeviceGraph, Digest, SimOptions};
use crate::primitives::AccessPolicy;
use ecl_graph::Csr;
use ecl_simt::{catch_sim, Gpu, GpuConfig, SimError, StoreVisibility};

/// Outcome of an MST run.
#[derive(Debug, Clone)]
pub struct MstResult {
    /// `true` for edge indices chosen into the MST (canonical `u < v` halves).
    pub in_mst: Vec<bool>,
    /// Total weight of the chosen edges.
    pub total_weight: u64,
    /// Number of chosen edges.
    pub num_edges: usize,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Per-launch profile.
    pub stats: ecl_simt::metrics::RunStats,
    /// Digest over (weight, edge count) — identical across variants because
    /// unique keys make the MST unique.
    pub digest: u64,
}

/// Runs ECL-MST with the given access policy on a fresh simulated GPU.
///
/// # Panics
///
/// Panics if the graph has no vertices or carries no edge weights.
pub fn run<P: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
) -> MstResult {
    run_with::<P>(g, cfg, seed, visibility, &SimOptions::default())
}

/// [`run`] with simulator options (watchdog budget, fault injection).
pub fn run_with<P: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
    opts: &SimOptions,
) -> MstResult {
    assert!(g.num_vertices() > 0, "empty graph");
    assert!(
        g.weights().is_some(),
        "MST needs edge weights: call Csr::with_random_weights first"
    );
    let mut gpu = opts.make_gpu(cfg, seed);
    let dg = DeviceGraph::upload(&mut gpu, g);
    let flags = kernels::run_on::<P>(&mut gpu, &dg, g, visibility);
    let mut host_flags: Vec<u8> = gpu.download(&flags);
    host_flags.truncate(g.num_edges());
    let weights = g.weights().unwrap();
    let mut total_weight = 0u64;
    let mut num_edges = 0usize;
    let in_mst: Vec<bool> = host_flags.iter().map(|&f| f != 0).collect();
    for (e, &inside) in in_mst.iter().enumerate() {
        if inside {
            total_weight += weights[e] as u64;
            num_edges += 1;
        }
    }
    let mut digest = Digest::new();
    digest.push(total_weight);
    digest.push(num_edges as u64);
    MstResult {
        total_weight,
        num_edges,
        cycles: gpu.elapsed_cycles(),
        stats: gpu.run_stats().clone(),
        digest: digest.finish(),
        in_mst,
    }
}

/// [`run_with`], catching launch failures (watchdog timeout, out-of-bounds
/// access, livelock, barrier divergence, fault budget) as typed errors
/// instead of panicking.
pub fn run_checked<P: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
    opts: &SimOptions,
) -> Result<MstResult, SimError> {
    catch_sim(|| run_with::<P>(g, cfg, seed, visibility, opts))
}

/// Runs the ECL-MST kernels on a caller-provided GPU (e.g. with tracing
/// enabled for the race detector). Returns the per-edge membership flags.
///
/// # Panics
///
/// Panics if the graph has no vertices or no weights.
pub fn run_traced<P: AccessPolicy>(
    gpu: &mut Gpu,
    g: &Csr,
    visibility: StoreVisibility,
) -> Vec<bool> {
    assert!(g.num_vertices() > 0, "empty graph");
    assert!(g.weights().is_some(), "MST needs edge weights");
    let dg = DeviceGraph::upload(gpu, g);
    let flags = kernels::run_on::<P>(gpu, &dg, g, visibility);
    let mut host: Vec<u8> = gpu.download(&flags);
    host.truncate(g.num_edges());
    host.iter().map(|&f| f != 0).collect()
}

/// Access-level IR of the ECL-MST kernels under the canonical policy for
/// the variant. The `parent` chasing, the 64-bit `best` reads, the `in_mst`
/// byte flags, and the `changed` flag are policy-mediated; the launch-ordered
/// init stores, the owned `best` reset, and the `atomicMin` bid are
/// hard-coded.
pub fn ir(race_free: bool) -> Vec<ecl_simt::KernelIr> {
    use crate::contracts::*;
    use crate::primitives::{Atomic, Volatile};
    use ecl_simt::{AccessOp, KernelIr, OpWidth};

    fn build<P: AccessPolicy>() -> Vec<KernelIr> {
        vec![
            // Init stores through plain accesses in both variants (no other
            // thread can observe them before the launch boundary).
            KernelIr::new("mst_init")
                .op(AccessOp::store("parent", OpWidth::B4, AccessMode::Plain, own4()).fixed())
                .op(AccessOp::store("best", OpWidth::B8, AccessMode::Plain, own8()).fixed()),
            KernelIr::new("mst_find_min")
                .ops(ir_csr_loads(&["edge_src", "col_indices", "weights"]))
                .ops(ir_union_find_rep::<P>("parent"))
                .op(ir_atomic_rmw("best")),
            // `mst_connect` reads and resets its own component's best slot,
            // merges via `atomicCAS`, and flags edges/progress.
            KernelIr::new("mst_connect")
                .ops(ir_csr_loads(&["edge_src", "col_indices"]))
                .op(ir_word64_read::<P>("best", claim8()))
                .op(AccessOp::store("best", OpWidth::B8, AccessMode::Plain, claim8()).fixed())
                .ops(ir_union_find_hook::<P>("parent"))
                .op(ir_byte_write::<P>("in_mst", claim1()))
                .op(ir_flag_raise::<P>("changed")),
        ]
    }
    if race_free {
        build::<Atomic>()
    } else {
        build::<Volatile>()
    }
}

/// Access contracts for the ECL-MST kernels under the canonical policy for
/// the variant ([`crate::primitives::Volatile`] baseline,
/// [`crate::primitives::Atomic`] race-free). The best-edge bidding is
/// `atomicMin` in both variants, as in ECL-MST — the baseline races are in
/// the `parent`/`best` reads around it.
pub fn contracts(race_free: bool) -> Vec<ecl_simt::KernelContract> {
    use crate::contracts::*;
    use crate::primitives::{Atomic, Volatile};

    fn build<P: AccessPolicy>() -> Vec<ecl_simt::KernelContract> {
        use ecl_simt::KernelContract;
        vec![
            // Init stores through plain accesses in both variants (no other
            // thread can observe them before the launch boundary).
            KernelContract::new("mst_init")
                .entry(FootprintEntry::global(
                    "parent",
                    AccessMode::Plain,
                    Store,
                    own4(),
                ))
                .entry(FootprintEntry::global(
                    "best",
                    AccessMode::Plain,
                    Store,
                    own8(),
                )),
            KernelContract::new("mst_find_min")
                .entries(csr_loads(&["edge_src", "col_indices", "weights"]))
                .entries(union_find_rep_entries::<P>("parent"))
                .entry(atomic_rmw("best")),
            // `mst_connect` reads and resets its own component's best slot,
            // merges via `atomicCAS`, and flags edges/progress.
            KernelContract::new("mst_connect")
                .entries(csr_loads(&["edge_src", "col_indices"]))
                .entry(word64_read::<P>("best", claim8()))
                .entry(FootprintEntry::global(
                    "best",
                    AccessMode::Plain,
                    Store,
                    claim8(),
                ))
                .entries(union_find_hook_entries::<P>("parent"))
                .entries(byte_write_entries::<P>("in_mst", claim1()))
                .entry(flag_raise::<P>("changed")),
        ]
    }
    if race_free {
        build::<Atomic>()
    } else {
        build::<Volatile>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::{Atomic, Volatile};
    use ecl_graph::gen;

    fn check_graph(g: &Csr) {
        let cfg = GpuConfig::test_tiny();
        let base = run::<Volatile>(g, &cfg, 1, StoreVisibility::Immediate);
        let free = run::<Atomic>(g, &cfg, 1, StoreVisibility::Immediate);
        assert!(verify_mst(g, &base.in_mst), "baseline MST invalid");
        assert!(verify_mst(g, &free.in_mst), "race-free MST invalid");
        assert_eq!(base.digest, free.digest);
        let reference = reference_mst_weight(g);
        assert_eq!(base.total_weight, reference, "baseline weight wrong");
        assert_eq!(free.total_weight, reference, "race-free weight wrong");
    }

    #[test]
    fn mst_of_rmat() {
        check_graph(&gen::rmat(256, 1024, 0.57, 0.19, 0.19, true, 5).with_random_weights(1000, 7));
    }

    #[test]
    fn mst_of_torus() {
        check_graph(&gen::grid2d_torus(12, 12).with_random_weights(100, 3));
    }

    #[test]
    fn mst_of_disconnected_graph_is_a_forest() {
        let mut b = ecl_graph::CsrBuilder::new(6).symmetric(true);
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(3, 4)
            .add_edge(4, 5);
        let g = b.build().with_random_weights(10, 1);
        let r = run::<Atomic>(&g, &GpuConfig::test_tiny(), 1, StoreVisibility::Immediate);
        // 6 vertices, 2 components -> 4 forest edges.
        assert_eq!(r.num_edges, 4);
        assert!(verify_mst(&g, &r.in_mst));
    }

    #[test]
    fn seeds_do_not_change_the_tree() {
        let g = gen::random_uniform(200, 800, true, 2).with_random_weights(500, 9);
        let a = run::<Volatile>(&g, &GpuConfig::test_tiny(), 1, StoreVisibility::Immediate);
        let b = run::<Volatile>(&g, &GpuConfig::test_tiny(), 42, StoreVisibility::Immediate);
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    #[should_panic(expected = "needs edge weights")]
    fn unweighted_graph_rejected() {
        let g = gen::grid2d_torus(4, 4);
        let _ = run::<Atomic>(&g, &GpuConfig::test_tiny(), 1, StoreVisibility::Immediate);
    }
}
