//! Serial Kruskal reference and validation for minimum spanning forests.

use ecl_graph::Csr;

/// Simple host-side disjoint-set union.
struct Dsu(Vec<u32>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n as u32).collect())
    }

    fn find(&mut self, v: u32) -> u32 {
        let mut root = v;
        while self.0[root as usize] != root {
            root = self.0[root as usize];
        }
        let mut cur = v;
        while cur != root {
            let next = self.0[cur as usize];
            self.0[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            false
        } else {
            self.0[ra.max(rb) as usize] = ra.min(rb);
            true
        }
    }
}

/// Computes the minimum spanning forest weight with serial Kruskal — the
/// ground truth for the GPU results. Ties are broken by edge index, which
/// matches the device kernels' packed keys, though with unique keys the
/// forest weight is unique anyway.
///
/// # Panics
///
/// Panics if the graph has no weights.
pub fn reference_mst_weight(g: &Csr) -> u64 {
    let weights = g.weights().expect("weighted graph required");
    let mut edges: Vec<(u32, u32, u32, u32)> = g
        .edges()
        .enumerate()
        .filter(|&(_, (u, v))| u < v)
        .map(|(e, (u, v))| (weights[e], e as u32, u, v))
        .collect();
    edges.sort_unstable();
    let mut dsu = Dsu::new(g.num_vertices());
    let mut total = 0u64;
    for (w, _, u, v) in edges {
        if dsu.union(u, v) {
            total += w as u64;
        }
    }
    total
}

/// Checks that the flagged edges form a spanning forest of minimum total
/// weight: acyclic, spanning every component, and weight-equal to Kruskal.
pub fn verify_mst(g: &Csr, in_mst: &[bool]) -> bool {
    if in_mst.len() != g.num_edges() {
        return false;
    }
    let weights = match g.weights() {
        Some(w) => w,
        None => return false,
    };
    let mut dsu = Dsu::new(g.num_vertices());
    let mut total = 0u64;
    let mut count = 0usize;
    for (e, (u, v)) in g.edges().enumerate() {
        if in_mst[e] {
            if !dsu.union(u, v) {
                return false; // cycle
            }
            total += weights[e] as u64;
            count += 1;
        }
    }
    // Spanning: the chosen edges must connect exactly what the graph
    // connects, i.e. component count with only MST edges equals the true
    // component count — guaranteed when count = n - #components.
    let components = crate::cc::reference_components(g);
    if count != g.num_vertices() - components {
        return false;
    }
    total == reference_mst_weight(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::CsrBuilder;

    /// 4-cycle with one heavy edge: MST is the three light edges.
    fn weighted_square() -> Csr {
        let mut b = CsrBuilder::new(4).symmetric(true);
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 0);
        let g = b.build();
        // Deterministic custom weights: edge (3,0) is the heaviest.
        let weights: Vec<u32> = g
            .edges()
            .map(|(u, v)| {
                let (a, b) = (u.min(v), u.max(v));
                match (a, b) {
                    (0, 1) => 1,
                    (1, 2) => 2,
                    (2, 3) => 3,
                    (0, 3) => 9,
                    _ => unreachable!(),
                }
            })
            .collect();
        ecl_graph::Csr::from_raw(
            g.row_offsets().to_vec(),
            g.col_indices().to_vec(),
            Some(weights),
        )
        .unwrap()
    }

    #[test]
    fn kruskal_reference() {
        assert_eq!(reference_mst_weight(&weighted_square()), 6);
    }

    #[test]
    fn verify_accepts_true_mst() {
        let g = weighted_square();
        let in_mst: Vec<bool> = g
            .edges()
            .map(|(u, v)| {
                let (a, b) = (u.min(v), u.max(v));
                u < v && !(a == 0 && b == 3)
            })
            .collect();
        assert!(verify_mst(&g, &in_mst));
    }

    #[test]
    fn verify_rejects_cycle() {
        let g = weighted_square();
        let in_mst: Vec<bool> = g.edges().map(|(u, v)| u < v).collect(); // all 4 edges
        assert!(!verify_mst(&g, &in_mst));
    }

    #[test]
    fn verify_rejects_suboptimal_tree() {
        let g = weighted_square();
        // Spanning but includes the heavy (0,3) edge instead of (0,1).
        let in_mst: Vec<bool> = g
            .edges()
            .map(|(u, v)| {
                let (a, b) = (u.min(v), u.max(v));
                u < v && !(a == 0 && b == 1)
            })
            .collect();
        assert!(!verify_mst(&g, &in_mst));
    }

    #[test]
    fn verify_rejects_non_spanning() {
        let g = weighted_square();
        let in_mst = vec![false; g.num_edges()];
        assert!(!verify_mst(&g, &in_mst));
    }
}
