//! ECL-APSP on host threads: row-parallel Floyd-Warshall with a team
//! barrier per pivot `k`.
//!
//! APSP is the suite's one regular code — at pivot step `k`, row `k` and
//! column `k` are never modified (`dist[k][k] == 0` with non-negative
//! weights), so every cross-thread read targets data that is stable for the
//! whole step. The same code therefore serves both "variants"; the
//! baseline/race-free split is a no-op here, exactly as in the paper
//! (§IV-A: the published APSP has no data races).

use crate::common::Digest;
use ecl_graph::Csr;
use ecl_native::{run_team, NativePolicy, WordArr};

use super::{ApspResult, INF};

/// Runs native Floyd-Warshall on `threads` host threads; `seed` perturbs
/// only the schedule.
///
/// # Panics
///
/// Panics if the graph has no vertices, carries no weights, or has more
/// than 2048 vertices (dense O(n²) matrix).
pub fn run<P: NativePolicy>(g: &Csr, threads: usize, seed: u64) -> ApspResult {
    assert!(g.num_vertices() > 0, "empty graph");
    assert!(
        g.num_vertices() <= 2048,
        "APSP is dense: {} vertices would need a {}-entry matrix",
        g.num_vertices(),
        g.num_vertices() * g.num_vertices()
    );
    let weights = g.weights().expect("APSP needs edge weights");
    let start = std::time::Instant::now();
    let n = g.num_vertices();

    // Initial matrix: 0 on the diagonal, min edge weight on edges, INF
    // elsewhere (duplicate edges keep the lightest parallel edge).
    let mut init = vec![INF; n * n];
    for v in 0..n {
        init[v * n + v] = 0;
    }
    for (e, (u, v)) in g.edges().enumerate() {
        let slot = &mut init[u as usize * n + v as usize];
        *slot = (*slot).min(weights[e]);
    }
    let dist = WordArr::from_fn(n * n, |i| init[i]);

    run_team(threads, seed, |ctx| {
        for k in 0..n {
            for i in ctx.my_block(n) {
                let dik = P::load_u32(dist.at(i * n + k));
                if dik == INF {
                    continue;
                }
                for j in 0..n {
                    let dkj = P::load_u32(dist.at(k * n + j));
                    if dkj == INF {
                        continue;
                    }
                    let through = dik + dkj;
                    if through < P::load_u32(dist.at(i * n + j)) {
                        P::store_u32(dist.at(i * n + j), through);
                    }
                }
            }
            ctx.barrier();
        }
    });

    let out = dist.snapshot();
    let mut digest = Digest::new();
    for &d in &out {
        digest.push(d as u64);
    }
    ApspResult {
        n,
        cycles: start.elapsed().as_nanos() as u64,
        stats: Default::default(),
        digest: digest.finish(),
        dist: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apsp::verify_apsp;
    use ecl_graph::gen;
    use ecl_native::{Baseline, RaceFree};

    #[test]
    fn matches_dijkstra_on_torus() {
        let g = gen::grid2d_torus(6, 6).with_random_weights(9, 3);
        let b = run::<Baseline>(&g, 4, 1);
        let f = run::<RaceFree>(&g, 4, 2);
        assert!(verify_apsp(&g, &b.dist));
        assert_eq!(b.digest, f.digest);
    }

    #[test]
    fn disconnected_pairs_stay_inf() {
        let mut bld = ecl_graph::CsrBuilder::new(4).symmetric(true);
        bld.add_edge(0, 1).add_edge(2, 3);
        let g = bld.build().with_random_weights(5, 1);
        let r = run::<RaceFree>(&g, 2, 0);
        assert_eq!(r.dist[2], INF);
        assert_ne!(r.dist[1], INF);
        assert!(verify_apsp(&g, &r.dist));
    }
}
