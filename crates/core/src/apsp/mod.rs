//! ECL-APSP: all-pairs shortest paths via the blocked Floyd-Warshall
//! algorithm (paper §II-B-1).
//!
//! The adjacency matrix is divided into tiles processed in the classic
//! three-phase schedule (diagonal tile, its row/column, everything else),
//! with each tile staged through per-block shared memory and block-wide
//! barriers between dependency steps.
//!
//! APSP is the suite's one *regular* code: every matrix element is touched
//! by exactly one thread per phase, so the baseline has **no data races**
//! (paper §IV-A) and the paper does not measure a race-free conversion for
//! it. We implement and verify it for completeness, and the race detector
//! confirms it is race-free as published.

mod kernels;
pub mod native;
mod verify;

pub use verify::{reference_apsp, verify_apsp};

use crate::common::{Digest, SimOptions};
use ecl_graph::Csr;
use ecl_simt::{catch_sim, GpuConfig, SimError};

/// "No path" distance. Small enough that `INF + weight` cannot overflow.
pub const INF: u32 = 0x3f3f_3f3f;

/// Tile side length. The paper uses 64×64 tiles on real GPUs; the simulator
/// uses 16×16 so a tile's threads (256) exactly fill one block.
pub const TILE: usize = 16;

/// Outcome of an APSP run.
#[derive(Debug, Clone)]
pub struct ApspResult {
    /// Row-major distance matrix (`n * n`), `INF` for unreachable pairs.
    pub dist: Vec<u32>,
    /// Number of vertices.
    pub n: usize,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Per-launch profile.
    pub stats: ecl_simt::metrics::RunStats,
    /// Digest of the full distance matrix.
    pub digest: u64,
}

/// Runs blocked Floyd-Warshall on a weighted graph.
///
/// # Panics
///
/// Panics if the graph has no vertices, carries no weights, or has more
/// than 2048 vertices (the dense O(n²) matrix is meant for the small inputs
/// the quickstart and tests use).
pub fn run(g: &Csr, cfg: &GpuConfig, seed: u64) -> ApspResult {
    run_with(g, cfg, seed, &SimOptions::default())
}

/// [`run`] with simulator options (watchdog budget, fault injection).
pub fn run_with(g: &Csr, cfg: &GpuConfig, seed: u64, opts: &SimOptions) -> ApspResult {
    assert!(g.num_vertices() > 0, "empty graph");
    assert!(
        g.num_vertices() <= 2048,
        "APSP is dense: {} vertices would need a {}-entry matrix",
        g.num_vertices(),
        g.num_vertices() * g.num_vertices()
    );
    let weights = g.weights().expect("APSP needs edge weights");
    let n = g.num_vertices();
    let padded = n.div_ceil(TILE).max(1) * TILE;

    // Host-side initial matrix: 0 on the diagonal, w on edges, INF elsewhere.
    let mut init = vec![INF; padded * padded];
    for v in 0..n {
        init[v * padded + v] = 0;
    }
    for (e, (u, v)) in g.edges().enumerate() {
        let slot = &mut init[u as usize * padded + v as usize];
        *slot = (*slot).min(weights[e]);
    }

    let mut gpu = opts.make_gpu(cfg, seed);
    let dist = gpu.alloc_named::<u32>(padded * padded, "dist");
    gpu.upload(&dist, &init);
    kernels::run_on(&mut gpu, dist, padded);
    let full = gpu.download(&dist);

    // Strip the padding.
    let mut out = vec![INF; n * n];
    for i in 0..n {
        out[i * n..(i + 1) * n].copy_from_slice(&full[i * padded..i * padded + n]);
    }
    let mut digest = Digest::new();
    for &d in &out {
        digest.push(d as u64);
    }
    ApspResult {
        n,
        cycles: gpu.elapsed_cycles(),
        stats: gpu.run_stats().clone(),
        digest: digest.finish(),
        dist: out,
    }
}

/// [`run_with`], catching launch failures (watchdog timeout, out-of-bounds
/// access, livelock, barrier divergence, fault budget) as typed errors
/// instead of panicking.
pub fn run_checked(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    opts: &SimOptions,
) -> Result<ApspResult, SimError> {
    catch_sim(|| run_with(g, cfg, seed, opts))
}

/// Runs the blocked Floyd-Warshall kernels on a caller-provided GPU (e.g.
/// with tracing enabled for the race detector). Returns the unpadded
/// row-major distance matrix.
///
/// # Panics
///
/// Panics if the graph has no vertices or carries no weights.
pub fn run_traced(gpu: &mut ecl_simt::Gpu, g: &Csr) -> Vec<u32> {
    assert!(g.num_vertices() > 0, "empty graph");
    let weights = g.weights().expect("APSP needs edge weights");
    let n = g.num_vertices();
    let padded = n.div_ceil(TILE).max(1) * TILE;
    let mut init = vec![INF; padded * padded];
    for v in 0..n {
        init[v * padded + v] = 0;
    }
    for (e, (u, v)) in g.edges().enumerate() {
        let slot = &mut init[u as usize * padded + v as usize];
        *slot = (*slot).min(weights[e]);
    }
    let dist = gpu.alloc_named::<u32>(padded * padded, "dist");
    gpu.upload(&dist, &init);
    kernels::run_on(gpu, dist, padded);
    let full = gpu.download(&dist);
    let mut out = vec![INF; n * n];
    for i in 0..n {
        out[i * n..(i + 1) * n].copy_from_slice(&full[i * padded..i * padded + n]);
    }
    out
}

/// Access-level IR of the blocked Floyd-Warshall kernels. APSP has no
/// variants and no policy-mediated sites — every op is fixed plain, which
/// is exactly why the repair pass finds nothing to rewrite (the published
/// code is race-free, §IV-A).
pub fn ir() -> Vec<ecl_simt::KernelIr> {
    use crate::contracts::*;
    use ecl_simt::{AccessOp, KernelIr, OpWidth};

    // Epoch 0: staging stores before the first block barrier. Epoch 1: the
    // relaxation steps after it.
    let stage_store = || {
        AccessOp::store("shared", OpWidth::B4, AccessMode::Plain, claim4())
            .shared()
            .region("elem")
            .phase(0)
            .fixed()
    };
    let elem_load = || {
        AccessOp::load("shared", OpWidth::B4, AccessMode::Plain, claim4())
            .shared()
            .region("elem")
            .phase(1)
            .fixed()
    };
    let pivot_load = || {
        AccessOp::load("shared", OpWidth::B4, AccessMode::Plain, Arbitrary)
            .shared()
            .region("pivot-line")
            .phase(1)
            .fixed()
    };
    let elem_store = || {
        AccessOp::store("shared", OpWidth::B4, AccessMode::Plain, claim4())
            .shared()
            .region("elem")
            .phase(1)
            .fixed()
    };
    let own_tile_load = || {
        AccessOp::load("dist", OpWidth::B4, AccessMode::Plain, claim4())
            .region("own-tile")
            .fixed()
    };
    let own_tile_store = || {
        AccessOp::store("dist", OpWidth::B4, AccessMode::Plain, claim4())
            .region("own-tile")
            .fixed()
    };
    let pivot_tile_load = |tag: &'static str| {
        AccessOp::load("dist", OpWidth::B4, AccessMode::Plain, Arbitrary)
            .region(tag)
            .fixed()
    };

    vec![
        KernelIr::new("apsp_phase1")
            .op(own_tile_load())
            .op(own_tile_store())
            .op(stage_store())
            .op(elem_load())
            .op(pivot_load())
            .op(elem_store()),
        // Phase 2 additionally stages and reads the finished diagonal tile,
        // which it never writes.
        KernelIr::new("apsp_phase2")
            .op(own_tile_load())
            .op(pivot_tile_load("pivot-diag"))
            .op(own_tile_store())
            .op(stage_store())
            .op(elem_load())
            .op(pivot_load())
            .op(elem_store()),
        // Phase 3 stages the pivot row/column tiles (read-shared across
        // blocks, never written here) and updates only its own tile.
        KernelIr::new("apsp_phase3")
            .op(pivot_tile_load("pivot-cross"))
            .op(own_tile_load())
            .op(own_tile_store())
            .op(stage_store())
            .op(pivot_load()),
    ]
}

/// Access contracts for the blocked Floyd-Warshall kernels. APSP has no
/// variants: the published code is race-free (paper §IV-A), and the
/// contracts express why — every matrix element and staged tile slot has a
/// single owning thread, barrier epochs order staging against relaxation,
/// and the pivot-line reads are declared disjoint from the owned-element
/// writes (the `if new < cur` guard keeps a tile's pivot row and column
/// unwritten during the step that reads them).
pub fn contracts() -> Vec<ecl_simt::KernelContract> {
    use crate::contracts::*;
    use ecl_simt::KernelContract;

    // Epoch 0: staging stores before the first block barrier. Epoch 1: the
    // relaxation steps after it.
    let stage_store = || {
        FootprintEntry::shared(AccessMode::Plain, Store, claim4())
            .region("elem")
            .phase(0)
    };
    let elem_load = || {
        FootprintEntry::shared(AccessMode::Plain, Load, claim4())
            .region("elem")
            .phase(1)
    };
    let pivot_load = || {
        FootprintEntry::shared(AccessMode::Plain, Load, Arbitrary)
            .region("pivot-line")
            .phase(1)
    };
    let elem_store = || {
        FootprintEntry::shared(AccessMode::Plain, Store, claim4())
            .region("elem")
            .phase(1)
    };
    let own_tile_load =
        || FootprintEntry::global("dist", AccessMode::Plain, Load, claim4()).region("own-tile");
    let own_tile_store =
        || FootprintEntry::global("dist", AccessMode::Plain, Store, claim4()).region("own-tile");
    let pivot_tile_load = |tag: &'static str| {
        FootprintEntry::global("dist", AccessMode::Plain, Load, Arbitrary).region(tag)
    };

    vec![
        KernelContract::new("apsp_phase1")
            .entry(own_tile_load())
            .entry(own_tile_store())
            .entry(stage_store())
            .entry(elem_load())
            .entry(pivot_load())
            .entry(elem_store()),
        // Phase 2 additionally stages and reads the finished diagonal tile,
        // which it never writes.
        KernelContract::new("apsp_phase2")
            .entry(own_tile_load())
            .entry(pivot_tile_load("pivot-diag"))
            .entry(own_tile_store())
            .entry(stage_store())
            .entry(elem_load())
            .entry(pivot_load())
            .entry(elem_store()),
        // Phase 3 stages the pivot row/column tiles (read-shared across
        // blocks, never written here) and updates only its own tile.
        KernelContract::new("apsp_phase3")
            .entry(pivot_tile_load("pivot-cross"))
            .entry(own_tile_load())
            .entry(own_tile_store())
            .entry(stage_store())
            .entry(pivot_load()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::gen;

    #[test]
    fn matches_dijkstra_on_torus() {
        let g = gen::grid2d_torus(6, 6).with_random_weights(9, 3);
        let r = run(&g, &GpuConfig::test_tiny(), 1);
        assert!(verify_apsp(&g, &r.dist));
    }

    #[test]
    fn matches_dijkstra_on_rmat() {
        let g = gen::rmat(48, 200, 0.57, 0.19, 0.19, true, 8).with_random_weights(50, 2);
        let r = run(&g, &GpuConfig::test_tiny(), 1);
        assert!(verify_apsp(&g, &r.dist));
    }

    #[test]
    fn disconnected_pairs_stay_inf() {
        let mut b = ecl_graph::CsrBuilder::new(4).symmetric(true);
        b.add_edge(0, 1).add_edge(2, 3);
        let g = b.build().with_random_weights(5, 1);
        let r = run(&g, &GpuConfig::test_tiny(), 1);
        assert_eq!(r.dist[2], INF); // dist(0, 2)
        assert_ne!(r.dist[1], INF); // dist(0, 1)
        assert!(verify_apsp(&g, &r.dist));
    }

    #[test]
    fn multi_tile_matrix() {
        // n = 40 forces a 48x48 padded matrix: 3x3 tiles, all three phases.
        let g = gen::random_uniform(40, 160, true, 5).with_random_weights(20, 4);
        let r = run(&g, &GpuConfig::test_tiny(), 1);
        assert!(verify_apsp(&g, &r.dist));
    }

    #[test]
    fn seeds_do_not_change_distances() {
        let g = gen::grid2d_torus(5, 5).with_random_weights(7, 6);
        let a = run(&g, &GpuConfig::test_tiny(), 1);
        let b = run(&g, &GpuConfig::test_tiny(), 123);
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn apsp_is_race_free_as_published() {
        // Paper §IV-A: the baseline APSP has no data races. Prove it with
        // the race detector on a multi-tile instance.
        let g = gen::grid2d_torus(6, 6).with_random_weights(9, 3);
        let mut gpu = ecl_simt::Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let n = g.num_vertices();
        let padded = n.div_ceil(TILE) * TILE;
        let weights = g.weights().unwrap();
        let mut init = vec![INF; padded * padded];
        for v in 0..n {
            init[v * padded + v] = 0;
        }
        for (e, (u, v)) in g.edges().enumerate() {
            init[u as usize * padded + v as usize] = weights[e];
        }
        let dist = gpu.alloc_named::<u32>(padded * padded, "dist");
        gpu.upload(&dist, &init);
        super::kernels::run_on(&mut gpu, dist, padded);
        assert!(ecl_racecheck::check_races(&gpu).is_empty());
    }
}
