//! The three blocked Floyd-Warshall phase kernels.
//!
//! Each block owns one 16×16 tile; its 256 threads each own one element.
//! Tiles are staged through shared memory, with block barriers separating
//! the per-`kk` dependency steps exactly like the CUDA original.

use super::{INF, TILE};
use ecl_simt::{
    Ctx, DeviceBuffer, FullHooks, Gpu, Hooks, Kernel, LaunchConfig, NoHooks, Step, StoreVisibility,
    ThreadInfo,
};

/// Shared-memory byte offset of the second staged tile.
const TILE_BYTES: u32 = (TILE * TILE * 4) as u32;

/// Runs all rounds of blocked Floyd-Warshall on the padded matrix.
///
/// Dispatches to the monomorphized fast path when no hooks are armed.
pub(super) fn run_on(gpu: &mut Gpu, dist: DeviceBuffer<u32>, padded: usize) {
    if gpu.fast_path_eligible() {
        run_on_hooks::<NoHooks>(gpu, dist, padded)
    } else {
        run_on_hooks::<FullHooks>(gpu, dist, padded)
    }
}

fn run_on_hooks<H: Hooks>(gpu: &mut Gpu, dist: DeviceBuffer<u32>, padded: usize) {
    let tiles = padded / TILE;
    for k in 0..tiles {
        gpu.launch_with::<H, _>(
            phase_launch(1),
            Phase1 {
                dist,
                padded: padded as u32,
                k: k as u32,
            },
        );
        if tiles > 1 {
            gpu.launch_with::<H, _>(
                phase_launch(2 * (tiles as u32 - 1)),
                Phase2 {
                    dist,
                    padded: padded as u32,
                    k: k as u32,
                    tiles: tiles as u32,
                },
            );
            gpu.launch_with::<H, _>(
                phase_launch((tiles as u32 - 1) * (tiles as u32 - 1)),
                Phase3 {
                    dist,
                    padded: padded as u32,
                    k: k as u32,
                    tiles: tiles as u32,
                },
            );
        }
    }
}

fn phase_launch(blocks: u32) -> LaunchConfig {
    LaunchConfig {
        grid_blocks: blocks,
        block_threads: (TILE * TILE) as u32,
        store_visibility: StoreVisibility::Immediate,
        shared_bytes: 2 * TILE_BYTES,
        exact_geometry: true,
    }
}

/// Per-thread coordinates within its tile.
#[derive(Debug, Clone, Copy)]
struct Lane {
    ti: u32,
    tj: u32,
    /// Next dependency step: 0 = load, 1..=TILE = compute kk, TILE+1 = store.
    stage: u32,
}

fn lane(info: ThreadInfo) -> Lane {
    Lane {
        ti: info.thread_in_block / TILE as u32,
        tj: info.thread_in_block % TILE as u32,
        stage: 0,
    }
}

/// Global matrix index of element `(ti, tj)` of tile `(bi, bj)`.
#[inline]
fn gidx(padded: u32, bi: u32, bj: u32, ti: u32, tj: u32) -> usize {
    ((bi * TILE as u32 + ti) * padded + bj * TILE as u32 + tj) as usize
}

/// Shared-memory byte offset of element `(i, j)` of staged tile `slot`.
#[inline]
fn sidx(slot: u32, i: u32, j: u32) -> u32 {
    slot * TILE_BYTES + (i * TILE as u32 + j) * 4
}

/// Relaxation of one element against the pivot pair, in shared memory.
#[inline]
fn relax<H: Hooks>(
    ctx: &mut Ctx<'_, H>,
    cur: u32,
    a_slot: u32,
    b_slot: u32,
    l: Lane,
    kk: u32,
) -> u32 {
    let via_a: u32 = ctx.shared_read(sidx(a_slot, l.ti, kk));
    let via_b: u32 = ctx.shared_read(sidx(b_slot, kk, l.tj));
    ctx.compute(2);
    cur.min(via_a.saturating_add(via_b).min(INF))
}

/// Phase 1: the diagonal tile relaxes against itself, one `kk` per barrier.
struct Phase1 {
    dist: DeviceBuffer<u32>,
    padded: u32,
    k: u32,
}

impl<H: Hooks> Kernel<H> for Phase1 {
    type State = Lane;

    fn name(&self) -> &str {
        "apsp_phase1"
    }

    fn init(&self, info: ThreadInfo) -> Lane {
        lane(info)
    }

    fn step(&self, l: &mut Lane, ctx: &mut Ctx<'_, H>) -> Step {
        let stage = l.stage;
        l.stage += 1;
        if stage == 0 {
            let v = ctx.load(self.dist.at(gidx(self.padded, self.k, self.k, l.ti, l.tj)));
            ctx.shared_write(sidx(0, l.ti, l.tj), v);
            return Step::Barrier;
        }
        if stage <= TILE as u32 {
            let kk = stage - 1;
            let cur: u32 = ctx.shared_read(sidx(0, l.ti, l.tj));
            let new = relax(ctx, cur, 0, 0, *l, kk);
            if new < cur {
                ctx.shared_write(sidx(0, l.ti, l.tj), new);
            }
            return Step::Barrier;
        }
        let v: u32 = ctx.shared_read(sidx(0, l.ti, l.tj));
        ctx.store(
            self.dist.at(gidx(self.padded, self.k, self.k, l.ti, l.tj)),
            v,
        );
        Step::Done
    }
}

/// Phase 2: the pivot row and column tiles relax against the (final)
/// diagonal tile; the updated tile is staged in slot 0, the pivot in slot 1.
struct Phase2 {
    dist: DeviceBuffer<u32>,
    padded: u32,
    k: u32,
    tiles: u32,
}

impl Phase2 {
    /// Decodes a block index into (tile coordinates, is-row-tile).
    fn tile_of(&self, block: u32) -> (u32, u32, bool) {
        let half = self.tiles - 1;
        let skip = |idx: u32| if idx >= self.k { idx + 1 } else { idx };
        if block < half {
            (self.k, skip(block), true) // row tile (k, j)
        } else {
            (skip(block - half), self.k, false) // column tile (i, k)
        }
    }
}

impl<H: Hooks> Kernel<H> for Phase2 {
    type State = (Lane, u32);

    fn name(&self) -> &str {
        "apsp_phase2"
    }

    fn init(&self, info: ThreadInfo) -> (Lane, u32) {
        (lane(info), info.block)
    }

    fn step(&self, state: &mut (Lane, u32), ctx: &mut Ctx<'_, H>) -> Step {
        let l = state.0;
        let block = state.1;
        let (bi, bj, is_row) = self.tile_of(block);
        let stage = l.stage;
        state.0.stage += 1;
        if stage == 0 {
            let v = ctx.load(self.dist.at(gidx(self.padded, bi, bj, l.ti, l.tj)));
            ctx.shared_write(sidx(0, l.ti, l.tj), v);
            let p = ctx.load(self.dist.at(gidx(self.padded, self.k, self.k, l.ti, l.tj)));
            ctx.shared_write(sidx(1, l.ti, l.tj), p);
            return Step::Barrier;
        }
        if stage <= TILE as u32 {
            let kk = stage - 1;
            let cur: u32 = ctx.shared_read(sidx(0, l.ti, l.tj));
            // Row tiles relax via pivot rows, column tiles via pivot columns.
            let new = if is_row {
                relax(ctx, cur, 1, 0, l, kk)
            } else {
                relax(ctx, cur, 0, 1, l, kk)
            };
            if new < cur {
                ctx.shared_write(sidx(0, l.ti, l.tj), new);
            }
            return Step::Barrier;
        }
        let v: u32 = ctx.shared_read(sidx(0, l.ti, l.tj));
        ctx.store(self.dist.at(gidx(self.padded, bi, bj, l.ti, l.tj)), v);
        Step::Done
    }
}

/// Phase 3: all remaining tiles relax against the finished pivot row and
/// column tiles; one load barrier, then the whole `kk` loop in one step.
struct Phase3 {
    dist: DeviceBuffer<u32>,
    padded: u32,
    k: u32,
    tiles: u32,
}

impl Phase3 {
    fn tile_of(&self, block: u32) -> (u32, u32) {
        let side = self.tiles - 1;
        let skip = |idx: u32| if idx >= self.k { idx + 1 } else { idx };
        (skip(block / side), skip(block % side))
    }
}

impl<H: Hooks> Kernel<H> for Phase3 {
    type State = (Lane, u32);

    fn name(&self) -> &str {
        "apsp_phase3"
    }

    fn init(&self, info: ThreadInfo) -> (Lane, u32) {
        (lane(info), info.block)
    }

    fn step(&self, state: &mut (Lane, u32), ctx: &mut Ctx<'_, H>) -> Step {
        let l = state.0;
        let block = state.1;
        let (bi, bj) = self.tile_of(block);
        let stage = l.stage;
        state.0.stage += 1;
        if stage == 0 {
            // Stage the pivot-column tile (bi, k) and pivot-row tile (k, bj).
            let a = ctx.load(self.dist.at(gidx(self.padded, bi, self.k, l.ti, l.tj)));
            ctx.shared_write(sidx(0, l.ti, l.tj), a);
            let b = ctx.load(self.dist.at(gidx(self.padded, self.k, bj, l.ti, l.tj)));
            ctx.shared_write(sidx(1, l.ti, l.tj), b);
            return Step::Barrier;
        }
        let idx = gidx(self.padded, bi, bj, l.ti, l.tj);
        let mut cur = ctx.load(self.dist.at(idx));
        for kk in 0..TILE as u32 {
            cur = relax(ctx, cur, 0, 1, l, kk);
        }
        ctx.store(self.dist.at(idx), cur);
        Step::Done
    }
}
