//! Dijkstra reference and validation for all-pairs shortest paths.

use super::INF;
use ecl_graph::Csr;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes the full distance matrix with one Dijkstra per source.
///
/// # Panics
///
/// Panics if the graph has no weights.
pub fn reference_apsp(g: &Csr) -> Vec<u32> {
    let weights = g.weights().expect("weighted graph required");
    let n = g.num_vertices();
    let mut dist = vec![INF; n * n];
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
    for s in 0..n {
        let row = &mut dist[s * n..(s + 1) * n];
        row[s] = 0;
        heap.clear();
        heap.push(Reverse((0, s as u32)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > row[v as usize] {
                continue;
            }
            let begin = g.row_offsets()[v as usize] as usize;
            let end = g.row_offsets()[v as usize + 1] as usize;
            for (e, &u) in g.col_indices()[begin..end].iter().enumerate() {
                let u = u as usize;
                let nd = d + weights[begin + e];
                if nd < row[u] {
                    row[u] = nd;
                    heap.push(Reverse((nd, u as u32)));
                }
            }
        }
    }
    dist
}

/// Checks a distance matrix against the Dijkstra reference.
pub fn verify_apsp(g: &Csr, dist: &[u32]) -> bool {
    let n = g.num_vertices();
    dist.len() == n * n && dist == reference_apsp(g).as_slice()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::CsrBuilder;

    fn weighted_path() -> Csr {
        let mut b = CsrBuilder::new(3).symmetric(true);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        Csr::from_raw(
            g.row_offsets().to_vec(),
            g.col_indices().to_vec(),
            Some(vec![4; g.num_edges()]),
        )
        .unwrap()
    }

    #[test]
    fn reference_on_path() {
        let d = reference_apsp(&weighted_path());
        assert_eq!(d[2], 8); // dist(0, 2)
        assert_eq!(d[2 * 3], 8); // dist(2, 0)
        assert_eq!(d[3 + 1], 0); // dist(1, 1)
    }

    #[test]
    fn verify_rejects_wrong_entry() {
        let g = weighted_path();
        let mut d = reference_apsp(&g);
        assert!(verify_apsp(&g, &d));
        d[2] = 7;
        assert!(!verify_apsp(&g, &d));
    }

    #[test]
    fn verify_rejects_wrong_size() {
        assert!(!verify_apsp(&weighted_path(), &[0, 1]));
    }
}
