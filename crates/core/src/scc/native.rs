//! ECL-SCC on host threads: the same max-ID propagation with the unsettled
//! vertices collected through the native worklist into a frontier array
//! each outer round, so inner propagation passes only touch live vertices.
//!
//! The SCC partition is a unique graph property, so the canonical partition
//! digest matches the simulator's for every thread count and interleaving.

use crate::common::partition_digest;
use ecl_graph::Csr;
use ecl_native::{run_team, LongArr, NativePolicy, WordArr, Worklist};

use super::SccResult;

/// Runs native ECL-SCC on `threads` host threads; `seed` perturbs only the
/// schedule.
pub fn run<P: NativePolicy>(g: &Csr, threads: usize, seed: u64) -> SccResult {
    assert!(g.num_vertices() > 0, "empty graph");
    let start = std::time::Instant::now();
    let n = g.num_vertices();
    let row = g.row_offsets();
    let col = g.col_indices();

    // pairs[v]: (forward max-ID, backward max-ID) halves of a u64; IDs are
    // v+1 so 0 means "none". scc_ids[v]: 0 = unsettled, else pivot id + 1.
    let pairs = LongArr::new(n, 0);
    let scc_ids = WordArr::new(n, 0);
    let frontier = WordArr::new(n, 0);
    let flen_ctr = WordArr::new(1, 0);
    let repeat = WordArr::new(1, 0);
    let settled_ctr = WordArr::new(1, 0);
    let wl = Worklist::new(threads);

    run_team(threads, seed, |ctx| {
        let mut unsettled = n;
        while unsettled > 0 {
            if ctx.tid == 0 {
                P::store_u32(flen_ctr.at(0), 0);
                P::store_u32(settled_ctr.at(0), 0);
                P::store_u32(repeat.at(0), 0);
            }
            ctx.barrier();

            // Collect the unsettled vertices and re-seed their pairs.
            {
                let mut h = wl.handle(ctx.tid);
                for v in ctx.my_block(n) {
                    if P::load_u32(scc_ids.at(v)) == 0 {
                        let id = (v + 1) as u64;
                        P::store_u64(pairs.at(v), (id << 32) | id);
                        h.push(v as u64);
                    }
                }
                h.flush();
            }
            ctx.barrier();

            // Drain into the frontier array through ticketed slots; the
            // frontier is then read-only across all inner passes.
            {
                let mut h = wl.handle(ctx.tid);
                while let Some(chunk) = h.pop_chunk() {
                    for item in chunk {
                        let slot = P::fetch_add_u32(flen_ctr.at(0), 1) as usize;
                        P::publish_u32(frontier.at(slot), item as u32);
                    }
                }
            }
            ctx.barrier();
            let flen = P::load_u32(flen_ctr.at(0)) as usize;

            // Propagate max IDs forward and backward to a fixed point. The
            // monotone max updates are exactly where the baseline races.
            loop {
                for i in ctx.my_block(flen) {
                    let u = P::observe_u32(frontier.at(i)) as usize;
                    let (begin, end) = (row[u] as usize, row[u + 1] as usize);
                    for &v in &col[begin..end] {
                        if P::load_u32(scc_ids.at(v as usize)) != 0 {
                            continue;
                        }
                        // Forward: the max ID reaching u also reaches v.
                        let fw = P::read_pair_first(pairs.at(u));
                        if P::max_pair_first(pairs.at(v as usize), fw) {
                            P::raise_flag(repeat.at(0));
                        }
                        // Backward: whatever v reaches, u reaches too.
                        let bw = P::read_pair_second(pairs.at(v as usize));
                        if P::max_pair_second(pairs.at(u), bw) {
                            P::raise_flag(repeat.at(0));
                        }
                    }
                }
                ctx.barrier();
                let again = P::load_u32(repeat.at(0)) != 0;
                // Read-before-reset: the whole team must agree on `again`.
                ctx.barrier();
                if !again {
                    break;
                }
                if ctx.tid == 0 {
                    P::store_u32(repeat.at(0), 0);
                }
                ctx.barrier();
            }

            // Settle: agreeing forward/backward maxima fix the pivot.
            for i in ctx.my_block(flen) {
                let v = P::observe_u32(frontier.at(i)) as usize;
                let fw = P::read_pair_first(pairs.at(v));
                let bw = P::read_pair_second(pairs.at(v));
                if fw == bw {
                    P::publish_u32(scc_ids.at(v), fw);
                    P::fetch_add_u32(settled_ctr.at(0), 1);
                }
            }
            ctx.barrier();
            let settled = P::load_u32(settled_ctr.at(0)) as usize;
            assert!(settled > 0, "SCC made no progress (algorithm bug)");
            unsettled -= settled;
            // Everyone has read the round's counters before they reset.
            ctx.barrier();
        }
    });

    let host_ids = scc_ids.snapshot();
    let mut distinct = host_ids.clone();
    distinct.sort_unstable();
    distinct.dedup();
    SccResult {
        digest: partition_digest(&host_ids),
        num_sccs: distinct.len(),
        cycles: start.elapsed().as_nanos() as u64,
        stats: Default::default(),
        scc_ids: host_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scc::{reference_sccs, verify_sccs};
    use ecl_graph::gen;
    use ecl_native::{Baseline, RaceFree};

    #[test]
    fn both_policies_find_the_partition() {
        let g = gen::pref_attach_directed(300, 4, 0.05, 3);
        let b = run::<Baseline>(&g, 4, 1);
        let f = run::<RaceFree>(&g, 4, 2);
        assert!(verify_sccs(&g, &b.scc_ids));
        assert!(verify_sccs(&g, &f.scc_ids));
        assert_eq!(b.digest, f.digest);
        assert_eq!(b.num_sccs, reference_sccs(&g).1);
    }

    #[test]
    fn dag_has_singleton_sccs() {
        let mut bld = ecl_graph::CsrBuilder::new(8);
        for v in 0..7u32 {
            bld.add_edge(v, v + 1);
        }
        let g = bld.build();
        let r = run::<RaceFree>(&g, 3, 0);
        assert_eq!(r.num_sccs, 8);
        assert!(verify_sccs(&g, &r.scc_ids));
    }
}
