//! Data-driven (worklist) max-ID propagation — the ECL-SCC paper's actual
//! "data-driven, edge-centric" engine.
//!
//! Instead of rescanning every edge each round, a round only visits the
//! edges whose source vertex *changed* in the previous round, maintained as
//! a device worklist appended with `atomicAdd` (worklist bookkeeping is
//! atomic even in the racy baseline, like ECL's own codes). On high-diameter
//! meshes this does orders of magnitude less work than full scans while
//! computing the identical fixed point.

use crate::common::DeviceGraph;
use crate::primitives::AccessPolicy;
use ecl_graph::Csr;
use ecl_simt::{
    DeviceBuffer, ForEach, FullHooks, Gpu, Hooks, LaunchConfig, NoHooks, StoreVisibility,
};

/// Runs the outer settle loop with worklist-based propagation; returns the
/// per-vertex SCC pivot ids. Produces exactly the same partition as the
/// full-scan engine in [`super::kernels`].
pub(super) fn run_on<P: AccessPolicy>(
    gpu: &mut Gpu,
    dg: &DeviceGraph,
    g: &Csr,
    visibility: StoreVisibility,
) -> DeviceBuffer<u32> {
    if gpu.fast_path_eligible() {
        run_on_hooks::<P, NoHooks>(gpu, dg, g, visibility)
    } else {
        run_on_hooks::<P, FullHooks>(gpu, dg, g, visibility)
    }
}

fn run_on_hooks<P: AccessPolicy, H: Hooks>(
    gpu: &mut Gpu,
    dg: &DeviceGraph,
    g: &Csr,
    visibility: StoreVisibility,
) -> DeviceBuffer<u32> {
    let n = dg.n;
    let pairs = gpu.alloc_named::<u64>(n as usize, "max_id_pair");
    let scc_ids = gpu.alloc_named::<u32>(n as usize, "scc_id");
    let settled_count = gpu.alloc_named::<u32>(1, "settled_count");

    // Two worklists (current and next) plus their cursors. A vertex can be
    // pushed more than once per round (by different improving neighbors);
    // the 2x capacity plus clamping in the push keeps that safe, and
    // duplicates only cost repeated (idempotent) relaxations.
    let capacity = 2 * n as usize + 64;
    let wl_a = gpu.alloc_named::<u32>(capacity, "worklist_a");
    let wl_b = gpu.alloc_named::<u32>(capacity, "worklist_b");
    let count_a = gpu.alloc_named::<u32>(1, "worklist_count_a");
    let count_b = gpu.alloc_named::<u32>(1, "worklist_count_b");

    // The reverse graph drives backward propagation.
    let transpose = g.transpose();
    let rev = crate::common::DeviceGraph::upload(gpu, &transpose);
    let graph = *dg;

    let mut unsettled = n;
    while unsettled > 0 {
        // Re-seed every unsettled vertex and put it on the worklist.
        gpu.write_scalar(&count_a, 0, 0u32);
        gpu.launch_with::<H, _>(
            LaunchConfig::for_items(n).with_visibility(visibility),
            ForEach::with_hooks::<H>("scc_wl_init", n, move |ctx, v| {
                if ctx.load(scc_ids.at(v as usize)) == 0 {
                    let id = (v + 1) as u64;
                    ctx.store(pairs.at(v as usize), (id << 32) | id);
                    let slot = ctx.atomic_add_u32(count_a.at(0), 1);
                    ctx.store(wl_a.at(slot as usize), v);
                }
            }),
        );

        // Frontier rounds: relax the out-edges (forward) and in-edges
        // (backward) of changed vertices only.
        let mut use_a = true;
        loop {
            let (cur, cur_count, next, next_count) = if use_a {
                (wl_a, count_a, wl_b, count_b)
            } else {
                (wl_b, count_b, wl_a, count_a)
            };
            let frontier = gpu.read_scalar(&cur_count, 0).min(capacity as u32);
            if frontier == 0 {
                break;
            }
            gpu.write_scalar(&next_count, 0, 0u32);
            let cap = capacity as u32;
            gpu.launch_with::<H, _>(
                LaunchConfig::for_items(frontier).with_visibility(visibility),
                ForEach::with_hooks::<H>("scc_wl_propagate", frontier, move |ctx, i| {
                    let v = ctx.load(cur.at(i as usize));
                    if ctx.load(scc_ids.at(v as usize)) != 0 {
                        return;
                    }
                    let fw = P::read_pair_first(ctx, pairs.at(v as usize));
                    let bw = P::read_pair_second(ctx, pairs.at(v as usize));
                    // Forward along out-edges: fw(v) flows to successors.
                    let begin = ctx.load(graph.row_offsets.at(v as usize));
                    let end = ctx.load(graph.row_offsets.at(v as usize + 1));
                    for e in begin..end {
                        let u = ctx.load(graph.col_indices.at(e as usize));
                        if ctx.load(scc_ids.at(u as usize)) != 0 {
                            continue;
                        }
                        if P::max_pair_first(ctx, pairs.at(u as usize), fw) {
                            let slot = ctx.atomic_add_u32(next_count.at(0), 1);
                            if slot < cap {
                                ctx.store(next.at(slot as usize), u);
                            }
                        }
                    }
                    // Backward along in-edges: bw(v) flows to predecessors.
                    let rbegin = ctx.load(rev.row_offsets.at(v as usize));
                    let rend = ctx.load(rev.row_offsets.at(v as usize + 1));
                    for e in rbegin..rend {
                        let u = ctx.load(rev.col_indices.at(e as usize));
                        if ctx.load(scc_ids.at(u as usize)) != 0 {
                            continue;
                        }
                        if P::max_pair_second(ctx, pairs.at(u as usize), bw) {
                            let slot = ctx.atomic_add_u32(next_count.at(0), 1);
                            if slot < cap {
                                ctx.store(next.at(slot as usize), u);
                            }
                        }
                    }
                })
                .with_chunk(4),
            );
            // A clamped (overflowed) worklist would drop updates; fall back
            // to re-seeding the frontier with every unsettled vertex. With
            // 2n capacity this is rare.
            let pushed = gpu.read_scalar(&next_count, 0);
            if pushed > cap {
                gpu.write_scalar(&next_count, 0, 0u32);
                gpu.launch_with::<H, _>(
                    LaunchConfig::for_items(n).with_visibility(visibility),
                    ForEach::with_hooks::<H>("scc_wl_reseed", n, move |ctx, v| {
                        if ctx.load(scc_ids.at(v as usize)) == 0 {
                            let slot = ctx.atomic_add_u32(next_count.at(0), 1);
                            ctx.store(next.at(slot as usize), v);
                        }
                    }),
                );
            }
            use_a = !use_a;
        }

        // Settle matching vertices (same kernel as the full-scan engine).
        gpu.write_scalar(&settled_count, 0, 0u32);
        gpu.launch_with::<H, _>(
            LaunchConfig::for_items(n).with_visibility(visibility),
            ForEach::with_hooks::<H>("scc_wl_settle", n, move |ctx, v| {
                if ctx.load(scc_ids.at(v as usize)) != 0 {
                    return;
                }
                let fw = P::read_pair_first(ctx, pairs.at(v as usize));
                let bw = P::read_pair_second(ctx, pairs.at(v as usize));
                if fw == bw {
                    ctx.store(scc_ids.at(v as usize), fw);
                    ctx.atomic_add_u32(settled_count.at(0), 1);
                }
            }),
        );
        let settled = gpu.read_scalar(&settled_count, 0);
        assert!(settled > 0, "data-driven SCC made no progress (bug)");
        unsettled -= settled;
    }

    scc_ids
}

#[cfg(test)]
mod tests {
    use crate::primitives::{Atomic, Plain};
    use crate::scc;
    use ecl_graph::gen;
    use ecl_simt::{GpuConfig, StoreVisibility};

    fn check(g: &ecl_graph::Csr) {
        let cfg = GpuConfig::test_tiny();
        let scan = scc::run::<Atomic>(g, &cfg, 1, StoreVisibility::Immediate);
        let wl = scc::run_data_driven::<Atomic>(g, &cfg, 1, StoreVisibility::Immediate);
        assert_eq!(scan.digest, wl.digest, "engines disagree");
        assert!(scc::verify_sccs(g, &wl.scc_ids));
        // Baseline policy through the worklist engine stays correct too.
        let wl_base = scc::run_data_driven::<Plain>(g, &cfg, 7, StoreVisibility::DeferUntilYield);
        assert_eq!(wl_base.digest, wl.digest);
    }

    #[test]
    fn matches_full_scan_on_meshes() {
        check(&gen::toroid_hex(10, 10));
        check(&gen::star_polygon(96, 7));
    }

    #[test]
    fn matches_full_scan_on_power_law() {
        check(&gen::pref_attach_directed(250, 4, 0.1, 2));
    }

    #[test]
    fn matches_full_scan_on_dag_plus_cycles() {
        let mut b = ecl_graph::CsrBuilder::new(12);
        for v in 0..4u32 {
            b.add_edge(v, (v + 1) % 4); // one 4-cycle
        }
        b.add_edge(3, 5).add_edge(5, 6).add_edge(6, 5); // tail + 2-cycle
        check(&b.build());
    }

    #[test]
    fn does_less_work_on_high_diameter_meshes() {
        let g = gen::klein_bottle(48, 48, 3);
        let cfg = GpuConfig::test_tiny();
        let scan = scc::run::<Atomic>(&g, &cfg, 1, StoreVisibility::Immediate);
        let wl = scc::run_data_driven::<Atomic>(&g, &cfg, 1, StoreVisibility::Immediate);
        let scan_accesses: u64 = scan.stats.launches.iter().map(|l| l.total_accesses()).sum();
        let wl_accesses: u64 = wl.stats.launches.iter().map(|l| l.total_accesses()).sum();
        assert!(
            wl_accesses * 2 < scan_accesses,
            "worklist {wl_accesses} vs scan {scan_accesses}: no savings"
        );
    }
}
