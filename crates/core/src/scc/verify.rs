//! Serial Tarjan reference and validation for strongly connected components.

use ecl_graph::Csr;

/// Computes SCC membership with an iterative Tarjan; returns the label per
/// vertex and the number of components.
pub fn reference_sccs(g: &Csr) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut labels = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut num_sccs = 0usize;

    // Explicit DFS frames: (vertex, next-edge-offset).
    let mut frames: Vec<(u32, u32)> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while !frames.is_empty() {
            let fi = frames.len() - 1;
            let v = frames[fi].0;
            let begin = g.row_offsets()[v as usize];
            let end = g.row_offsets()[v as usize + 1];
            let mut descended = false;
            while begin + frames[fi].1 < end {
                let u = g.col_indices()[(begin + frames[fi].1) as usize];
                frames[fi].1 += 1;
                if index[u as usize] == UNVISITED {
                    index[u as usize] = next_index;
                    lowlink[u as usize] = next_index;
                    next_index += 1;
                    stack.push(u);
                    on_stack[u as usize] = true;
                    frames.push((u, 0));
                    descended = true;
                    break;
                } else if on_stack[u as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[u as usize]);
                }
            }
            if descended {
                continue;
            }
            // v finished: close its SCC if v is a root.
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
            }
            if lowlink[v as usize] == index[v as usize] {
                num_sccs += 1;
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w as usize] = false;
                    labels[w as usize] = v;
                    if w == v {
                        break;
                    }
                }
            }
        }
    }
    (labels, num_sccs)
}

/// Checks that a labeling induces exactly the SCC partition computed by the
/// serial reference.
pub fn verify_sccs(g: &Csr, labels: &[u32]) -> bool {
    if labels.len() != g.num_vertices() {
        return false;
    }
    let (reference, _) = reference_sccs(g);
    crate::common::canonical_partition(labels) == crate::common::canonical_partition(&reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::CsrBuilder;

    #[test]
    fn cycle_is_one_scc() {
        let mut b = CsrBuilder::new(5);
        for v in 0..5u32 {
            b.add_edge(v, (v + 1) % 5);
        }
        let (labels, count) = reference_sccs(&b.build());
        assert_eq!(count, 1);
        assert!(labels.iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn dag_is_all_singletons() {
        let mut b = CsrBuilder::new(4);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 3);
        let (_, count) = reference_sccs(&b.build());
        assert_eq!(count, 4);
    }

    #[test]
    fn mixed_graph() {
        // 0->1->2->0 cycle plus a tail 2->3.
        let mut b = CsrBuilder::new(4);
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 0)
            .add_edge(2, 3);
        let (labels, count) = reference_sccs(&b.build());
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[3], labels[0]);
    }

    #[test]
    fn verify_matches_reference_only() {
        let mut b = CsrBuilder::new(4);
        b.add_edge(0, 1)
            .add_edge(1, 0)
            .add_edge(2, 3)
            .add_edge(3, 2);
        let g = b.build();
        assert!(verify_sccs(&g, &[9, 9, 4, 4]));
        assert!(!verify_sccs(&g, &[9, 9, 9, 9]));
        assert!(!verify_sccs(&g, &[1, 2, 3, 4]));
        assert!(!verify_sccs(&g, &[1, 1]));
    }

    #[test]
    fn deep_path_does_not_overflow() {
        // 20k-vertex path: recursive Tarjan would blow the stack.
        let n = 20_000;
        let mut b = CsrBuilder::new(n);
        for v in 0..(n as u32 - 1) {
            b.add_edge(v, v + 1);
        }
        let (_, count) = reference_sccs(&b.build());
        assert_eq!(count, n);
    }
}
