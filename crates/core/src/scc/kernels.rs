//! The ECL-SCC kernels: pair init, edge-centric max-ID propagation, and
//! settlement.

use crate::common::DeviceGraph;
use crate::primitives::AccessPolicy;
use ecl_graph::Csr;
use ecl_simt::{
    DeviceBuffer, ForEach, FullHooks, Gpu, Hooks, LaunchConfig, NoHooks, StoreVisibility,
};

/// Launches the outer settle loop; returns the per-vertex SCC pivot ids.
///
/// Dispatches to the monomorphized fast path when no hooks are armed.
pub(super) fn run_on<P: AccessPolicy>(
    gpu: &mut Gpu,
    dg: &DeviceGraph,
    g: &Csr,
    visibility: StoreVisibility,
) -> DeviceBuffer<u32> {
    if gpu.fast_path_eligible() {
        run_on_hooks::<P, NoHooks>(gpu, dg, g, visibility)
    } else {
        run_on_hooks::<P, FullHooks>(gpu, dg, g, visibility)
    }
}

fn run_on_hooks<P: AccessPolicy, H: Hooks>(
    gpu: &mut Gpu,
    dg: &DeviceGraph,
    g: &Csr,
    visibility: StoreVisibility,
) -> DeviceBuffer<u32> {
    let n = dg.n;
    let m = dg.m;
    // pairs[v]: (forward max-ID, backward max-ID) as the two int halves of a
    // long long — the paper's int2 conversion target. IDs are v+1 so 0 means
    // "none".
    let pairs = gpu.alloc_named::<u64>(n as usize, "max_id_pair");
    // scc_ids[v]: 0 = unsettled, otherwise pivot id + 1.
    let scc_ids = gpu.alloc_named::<u32>(n as usize, "scc_id");
    // The global "repeat" flag: a plain bool in the baseline, an int with
    // atomic accesses in the race-free code (paper §IV-C).
    let repeat = gpu.alloc_named::<u32>(1, "repeat_flag");
    let settled_count = gpu.alloc_named::<u32>(1, "settled_count");

    let edge_src_host: Vec<u32> = g.edges().map(|(s, _)| s).collect();
    let edge_src = gpu.alloc_named::<u32>((m as usize).max(1), "edge_src");
    gpu.upload(&edge_src, &edge_src_host);
    let graph = *dg;

    let mut unsettled = n;
    while unsettled > 0 {
        // Re-seed every unsettled vertex's pair with its own id.
        gpu.launch_with::<H, _>(
            LaunchConfig::for_items(n).with_visibility(visibility),
            ForEach::with_hooks::<H>("scc_init", n, move |ctx, v| {
                if ctx.load(scc_ids.at(v as usize)) == 0 {
                    let id = (v + 1) as u64;
                    ctx.store(pairs.at(v as usize), (id << 32) | id);
                }
            }),
        );

        // Propagate max IDs forward and backward until a fixed point. The
        // monotone max updates are exactly where the baseline races.
        loop {
            gpu.write_scalar(&repeat, 0, 0u32);
            gpu.launch_with::<H, _>(
                LaunchConfig::for_items(m).with_visibility(visibility),
                ForEach::with_hooks::<H>("scc_propagate", m, move |ctx, e| {
                    let u = ctx.load(edge_src.at(e as usize));
                    let v = ctx.load(graph.col_indices.at(e as usize));
                    if ctx.load(scc_ids.at(u as usize)) != 0
                        || ctx.load(scc_ids.at(v as usize)) != 0
                    {
                        return;
                    }
                    // Forward: the max ID reaching u also reaches v.
                    let fw = P::read_pair_first(ctx, pairs.at(u as usize));
                    if P::max_pair_first(ctx, pairs.at(v as usize), fw) {
                        P::raise_flag(ctx, repeat.at(0));
                    }
                    // Backward: whatever v reaches, u reaches too.
                    let bw = P::read_pair_second(ctx, pairs.at(v as usize));
                    if P::max_pair_second(ctx, pairs.at(u as usize), bw) {
                        P::raise_flag(ctx, repeat.at(0));
                    }
                })
                .with_chunk(16),
            );
            if gpu.read_scalar(&repeat, 0) == 0 {
                break;
            }
        }

        // Settle: a vertex whose forward and backward maxima agree belongs
        // to the SCC pivoted by that ID.
        gpu.write_scalar(&settled_count, 0, 0u32);
        gpu.launch_with::<H, _>(
            LaunchConfig::for_items(n).with_visibility(visibility),
            ForEach::with_hooks::<H>("scc_settle", n, move |ctx, v| {
                if ctx.load(scc_ids.at(v as usize)) != 0 {
                    return;
                }
                let fw = P::read_pair_first(ctx, pairs.at(v as usize));
                let bw = P::read_pair_second(ctx, pairs.at(v as usize));
                if fw == bw {
                    ctx.store(scc_ids.at(v as usize), fw);
                    ctx.atomic_add_u32(settled_count.at(0), 1);
                }
            }),
        );
        let settled = gpu.read_scalar(&settled_count, 0);
        assert!(settled > 0, "SCC made no progress (algorithm bug)");
        unsettled -= settled;
    }

    scc_ids
}
