//! ECL-SCC: strongly connected components via data-driven, edge-centric
//! max-ID propagation (paper §II-B-6).
//!
//! Every vertex simultaneously acts as a pivot: each vertex tracks the
//! maximum ID on its incoming paths and on its outgoing paths, stored as an
//! `int2` pair packed in a `long long`. When the two maxima agree, the
//! vertex belongs to the SCC pivoted by that ID. Settled vertices drop out
//! and the remainder iterates. Monotonicity of the max propagation is what
//! makes the baseline's lost updates "benign" (they are re-propagated).
//!
//! Baseline races: plain reads/writes of the pair halves and of the global
//! "repeat" boolean. The race-free version uses the paper's Fig. 5 helpers
//! (atomic operations on each `int` half) and converts the flag to an `int`.

mod kernels;
pub mod native;
mod verify;
mod worklist;

pub use verify::{reference_sccs, verify_sccs};

use crate::common::{partition_digest, DeviceGraph, SimOptions};
use crate::primitives::AccessPolicy;
use ecl_graph::Csr;
use ecl_simt::{catch_sim, Gpu, GpuConfig, SimError, StoreVisibility};

/// Outcome of an SCC run.
#[derive(Debug, Clone)]
pub struct SccResult {
    /// SCC pivot id per vertex (vertices sharing a value share an SCC).
    pub scc_ids: Vec<u32>,
    /// Number of strongly connected components.
    pub num_sccs: usize,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Per-launch profile.
    pub stats: ecl_simt::metrics::RunStats,
    /// Canonical partition digest (identical across variants).
    pub digest: u64,
}

/// Runs ECL-SCC with the given access policy on a fresh simulated GPU.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn run<P: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
) -> SccResult {
    run_with::<P>(g, cfg, seed, visibility, &SimOptions::default())
}

/// [`run`] with simulator options (watchdog budget, fault injection).
pub fn run_with<P: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
    opts: &SimOptions,
) -> SccResult {
    assert!(g.num_vertices() > 0, "empty graph");
    let mut gpu = opts.make_gpu(cfg, seed);
    let dg = DeviceGraph::upload(&mut gpu, g);
    let ids = kernels::run_on::<P>(&mut gpu, &dg, g, visibility);
    let scc_ids = gpu.download(&ids);
    let mut distinct = scc_ids.clone();
    distinct.sort_unstable();
    distinct.dedup();
    SccResult {
        digest: partition_digest(&scc_ids),
        num_sccs: distinct.len(),
        cycles: gpu.elapsed_cycles(),
        stats: gpu.run_stats().clone(),
        scc_ids,
    }
}

/// [`run_with`], catching launch failures (watchdog timeout, out-of-bounds
/// access, livelock, barrier divergence, fault budget) as typed errors
/// instead of panicking.
pub fn run_checked<P: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
    opts: &SimOptions,
) -> Result<SccResult, SimError> {
    catch_sim(|| run_with::<P>(g, cfg, seed, visibility, opts))
}

/// Runs ECL-SCC with the *data-driven* worklist propagation engine — the
/// ECL-SCC paper's actual design, which only revisits edges whose source
/// changed. Computes the same partition as [`run`] with far fewer memory
/// accesses on high-diameter meshes.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn run_data_driven<P: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
) -> SccResult {
    assert!(g.num_vertices() > 0, "empty graph");
    let mut gpu = Gpu::new(cfg.clone());
    gpu.set_seed(seed);
    let dg = DeviceGraph::upload(&mut gpu, g);
    let ids = worklist::run_on::<P>(&mut gpu, &dg, g, visibility);
    let scc_ids = gpu.download(&ids);
    let mut distinct = scc_ids.clone();
    distinct.sort_unstable();
    distinct.dedup();
    SccResult {
        digest: partition_digest(&scc_ids),
        num_sccs: distinct.len(),
        cycles: gpu.elapsed_cycles(),
        stats: gpu.run_stats().clone(),
        scc_ids,
    }
}

/// Runs the ECL-SCC kernels on a caller-provided GPU (e.g. with tracing
/// enabled for the race detector). Returns the per-vertex SCC pivot ids.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn run_traced<P: AccessPolicy>(
    gpu: &mut Gpu,
    g: &Csr,
    visibility: StoreVisibility,
) -> Vec<u32> {
    assert!(g.num_vertices() > 0, "empty graph");
    let dg = DeviceGraph::upload(gpu, g);
    let ids = kernels::run_on::<P>(gpu, &dg, g, visibility);
    gpu.download(&ids)
}

/// Access-level IR of the ECL-SCC kernels under the canonical policy for
/// the variant. The packed-pair `max_id_pair` traffic and the `repeat_flag`
/// raise are policy-mediated; the owned `scc_id` bookkeeping, the ticketed
/// worklist slots, and the cursor RMWs are hard-coded.
pub fn ir(race_free: bool) -> Vec<ecl_simt::KernelIr> {
    use crate::contracts::*;
    use crate::primitives::{Atomic, Plain};
    use ecl_simt::BenignClass::MonotonicUpdate;
    use ecl_simt::{AccessOp, KernelIr, OpWidth};

    fn build<P: AccessPolicy>() -> Vec<KernelIr> {
        let pair_traffic = || -> Vec<AccessOp> {
            vec![
                ir_pair_read::<P>("max_id_pair", Arbitrary).benign(MonotonicUpdate),
                ir_pair_max::<P>("max_id_pair"),
            ]
        };
        let settle = |name: &'static str| {
            KernelIr::new(name)
                .op(AccessOp::load("scc_id", OpWidth::B4, AccessMode::Plain, own4()).fixed())
                .op(AccessOp::store("scc_id", OpWidth::B4, AccessMode::Plain, own4()).fixed())
                .op(ir_pair_read::<P>("max_id_pair", own8()))
                .op(ir_atomic_rmw("settled_count"))
        };
        // A worklist push: ticket from the cursor, store into the fresh
        // slot. The same kernel runs against either buffer (a/b roles swap
        // each round), so both names are declared.
        let wl_push = |ops: &mut Vec<AccessOp>| {
            for wl in ["worklist_a", "worklist_b"] {
                ops.push(
                    AccessOp::store(wl, OpWidth::B4, AccessMode::Plain, claim4())
                        .region("frontier-write")
                        .fixed(),
                );
            }
            for count in ["worklist_count_a", "worklist_count_b"] {
                ops.push(ir_atomic_rmw(count));
            }
        };
        let mut wl_propagate_ops = ir_csr_loads(&["row_offsets", "col_indices"]);
        wl_propagate_ops.extend([
            AccessOp::load("worklist_a", OpWidth::B4, AccessMode::Plain, Arbitrary)
                .region("frontier-read")
                .fixed(),
            AccessOp::load("worklist_b", OpWidth::B4, AccessMode::Plain, Arbitrary)
                .region("frontier-read")
                .fixed(),
            AccessOp::load("scc_id", OpWidth::B4, AccessMode::Plain, Arbitrary).fixed(),
        ]);
        wl_propagate_ops.extend(pair_traffic());
        wl_push(&mut wl_propagate_ops);

        let mut wl_init_ops = vec![
            AccessOp::load("scc_id", OpWidth::B4, AccessMode::Plain, own4()).fixed(),
            AccessOp::store("max_id_pair", OpWidth::B8, AccessMode::Plain, own8()).fixed(),
        ];
        wl_push(&mut wl_init_ops);

        let mut wl_reseed_ops =
            vec![AccessOp::load("scc_id", OpWidth::B4, AccessMode::Plain, own4()).fixed()];
        wl_push(&mut wl_reseed_ops);

        vec![
            KernelIr::new("scc_init")
                .op(AccessOp::load("scc_id", OpWidth::B4, AccessMode::Plain, own4()).fixed())
                .op(AccessOp::store("max_id_pair", OpWidth::B8, AccessMode::Plain, own8()).fixed()),
            KernelIr::new("scc_propagate")
                .ops(ir_csr_loads(&["edge_src", "col_indices"]))
                .op(AccessOp::load("scc_id", OpWidth::B4, AccessMode::Plain, Arbitrary).fixed())
                .ops(pair_traffic())
                .op(ir_flag_raise::<P>("repeat_flag")),
            settle("scc_settle"),
            KernelIr::new("scc_wl_init").ops(wl_init_ops),
            KernelIr::new("scc_wl_propagate").ops(wl_propagate_ops),
            KernelIr::new("scc_wl_reseed").ops(wl_reseed_ops),
            settle("scc_wl_settle"),
        ]
    }
    if race_free {
        build::<Atomic>()
    } else {
        build::<Plain>()
    }
}

/// Access contracts for the ECL-SCC kernels — both the full-scan engine and
/// the data-driven worklist engine — under the canonical policy for the
/// variant ([`crate::primitives::Plain`] baseline,
/// [`crate::primitives::Atomic`] race-free).
pub fn contracts(race_free: bool) -> Vec<ecl_simt::KernelContract> {
    use crate::contracts::*;
    use crate::primitives::{Atomic, Plain};
    use ecl_simt::BenignClass::MonotonicUpdate;

    fn build<P: AccessPolicy>() -> Vec<ecl_simt::KernelContract> {
        use ecl_simt::KernelContract;
        // The pair halves: arbitrary-index reads plus the monotone max
        // updates (racy load+store in the baseline, atomicMax race-free).
        let pair_traffic = || -> Vec<FootprintEntry> {
            let mut es = vec![pair_read::<P>("max_id_pair", Arbitrary).benign(MonotonicUpdate)];
            es.extend(pair_max_entries::<P>("max_id_pair"));
            es
        };
        let settle = |name: &str| {
            KernelContract::new(name)
                .entry(FootprintEntry::global(
                    "scc_id",
                    AccessMode::Plain,
                    Load,
                    own4(),
                ))
                .entry(FootprintEntry::global(
                    "scc_id",
                    AccessMode::Plain,
                    Store,
                    own4(),
                ))
                .entry(pair_read::<P>("max_id_pair", own8()))
                .entry(atomic_rmw("settled_count"))
        };
        // A worklist push: ticket from the cursor, store into the fresh
        // slot. The same kernel runs against either buffer (a/b roles swap
        // each round), so both names are declared.
        let wl_push = |es: &mut Vec<FootprintEntry>| {
            for wl in ["worklist_a", "worklist_b"] {
                es.push(
                    FootprintEntry::global(wl, AccessMode::Plain, Store, claim4())
                        .region("frontier-write"),
                );
            }
            for count in ["worklist_count_a", "worklist_count_b"] {
                es.push(atomic_rmw(count));
            }
        };
        let mut wl_propagate_entries = csr_loads(&["row_offsets", "col_indices"]);
        wl_propagate_entries.extend([
            FootprintEntry::global("worklist_a", AccessMode::Plain, Load, Arbitrary)
                .region("frontier-read"),
            FootprintEntry::global("worklist_b", AccessMode::Plain, Load, Arbitrary)
                .region("frontier-read"),
            FootprintEntry::global("scc_id", AccessMode::Plain, Load, Arbitrary),
        ]);
        wl_propagate_entries.extend(pair_traffic());
        wl_push(&mut wl_propagate_entries);

        let mut wl_init_entries = vec![
            FootprintEntry::global("scc_id", AccessMode::Plain, Load, own4()),
            FootprintEntry::global("max_id_pair", AccessMode::Plain, Store, own8()),
        ];
        wl_push(&mut wl_init_entries);

        let mut wl_reseed_entries = vec![FootprintEntry::global(
            "scc_id",
            AccessMode::Plain,
            Load,
            own4(),
        )];
        wl_push(&mut wl_reseed_entries);

        vec![
            KernelContract::new("scc_init")
                .entry(FootprintEntry::global(
                    "scc_id",
                    AccessMode::Plain,
                    Load,
                    own4(),
                ))
                .entry(FootprintEntry::global(
                    "max_id_pair",
                    AccessMode::Plain,
                    Store,
                    own8(),
                )),
            KernelContract::new("scc_propagate")
                .entries(csr_loads(&["edge_src", "col_indices"]))
                .entry(FootprintEntry::global(
                    "scc_id",
                    AccessMode::Plain,
                    Load,
                    Arbitrary,
                ))
                .entries(pair_traffic())
                .entry(flag_raise::<P>("repeat_flag")),
            settle("scc_settle"),
            KernelContract::new("scc_wl_init").entries(wl_init_entries),
            KernelContract::new("scc_wl_propagate").entries(wl_propagate_entries),
            KernelContract::new("scc_wl_reseed").entries(wl_reseed_entries),
            settle("scc_wl_settle"),
        ]
    }
    if race_free {
        build::<Atomic>()
    } else {
        build::<Plain>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::{Atomic, Plain};
    use ecl_graph::gen;

    fn check_graph(g: &Csr) {
        let cfg = GpuConfig::test_tiny();
        let base = run::<Plain>(g, &cfg, 1, StoreVisibility::DeferUntilYield);
        let free = run::<Atomic>(g, &cfg, 1, StoreVisibility::Immediate);
        assert!(verify_sccs(g, &base.scc_ids), "baseline SCCs invalid");
        assert!(verify_sccs(g, &free.scc_ids), "race-free SCCs invalid");
        assert_eq!(base.digest, free.digest, "variants disagree");
        assert_eq!(base.num_sccs, reference_sccs(g).1);
    }

    #[test]
    fn single_cycle_is_one_scc() {
        let g = gen::star_polygon(64, 7);
        let r = run::<Atomic>(&g, &GpuConfig::test_tiny(), 1, StoreVisibility::Immediate);
        assert_eq!(r.num_sccs, 1);
        assert!(verify_sccs(&g, &r.scc_ids));
    }

    #[test]
    fn dag_has_singleton_sccs() {
        // A directed path: every vertex its own SCC.
        let mut b = ecl_graph::CsrBuilder::new(8);
        for v in 0..7u32 {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        let r = run::<Plain>(
            &g,
            &GpuConfig::test_tiny(),
            1,
            StoreVisibility::DeferUntilYield,
        );
        assert_eq!(r.num_sccs, 8);
        assert!(verify_sccs(&g, &r.scc_ids));
    }

    #[test]
    fn variants_agree_on_directed_prefattach() {
        check_graph(&gen::pref_attach_directed(300, 4, 0.05, 3));
    }

    #[test]
    fn variants_agree_on_mesh() {
        check_graph(&gen::toroid_hex(12, 12));
    }

    #[test]
    fn variants_agree_on_two_cycles_and_bridge() {
        // Two 4-cycles joined by one directed bridge: 2 SCCs.
        let mut b = ecl_graph::CsrBuilder::new(8);
        for v in 0..4u32 {
            b.add_edge(v, (v + 1) % 4);
            b.add_edge(4 + v, 4 + (v + 1) % 4);
        }
        b.add_edge(0, 4);
        let g = b.build();
        check_graph(&g);
        let r = run::<Atomic>(&g, &GpuConfig::test_tiny(), 1, StoreVisibility::Immediate);
        assert_eq!(r.num_sccs, 2);
    }

    #[test]
    fn seeds_do_not_change_the_partition() {
        let g = gen::klein_bottle(12, 12, 4);
        let a = run::<Plain>(
            &g,
            &GpuConfig::test_tiny(),
            1,
            StoreVisibility::DeferUntilYield,
        );
        let b = run::<Plain>(
            &g,
            &GpuConfig::test_tiny(),
            50,
            StoreVisibility::DeferUntilYield,
        );
        assert_eq!(a.digest, b.digest);
    }
}
