//! Unified entry point: run any of the six codes in either variant and get
//! a verified, profiled result.

use crate::primitives::{Atomic, Plain, Volatile, VolatileReadPlainWrite};
use crate::{apsp, cc, gc, mis, mst, scc};
use ecl_graph::Csr;
use ecl_simt::{GpuConfig, StoreVisibility};
use std::fmt;

/// The six studied graph analytics codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// All-pairs shortest paths (regular; race-free as published).
    Apsp,
    /// Connected components.
    Cc,
    /// Graph coloring.
    Gc,
    /// Maximal independent set.
    Mis,
    /// Minimum spanning tree.
    Mst,
    /// Strongly connected components.
    Scc,
}

impl Algorithm {
    /// The four undirected-input algorithms of Tables IV–VII, in order.
    pub const UNDIRECTED: [Algorithm; 4] =
        [Algorithm::Cc, Algorithm::Gc, Algorithm::Mis, Algorithm::Mst];

    /// Short lowercase name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Apsp => "APSP",
            Algorithm::Cc => "CC",
            Algorithm::Gc => "GC",
            Algorithm::Mis => "MIS",
            Algorithm::Mst => "MST",
            Algorithm::Scc => "SCC",
        }
    }

    /// `true` if the algorithm consumes directed graphs (only SCC).
    pub fn directed(self) -> bool {
        matches!(self, Algorithm::Scc)
    }

    /// `true` if the algorithm needs edge weights.
    pub fn weighted(self) -> bool {
        matches!(self, Algorithm::Apsp | Algorithm::Mst)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which flavor of the code to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The published code, containing "benign" data races (except APSP).
    Baseline,
    /// The converted code: all shared accesses through relaxed atomics.
    RaceFree,
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Variant::Baseline => "baseline",
            Variant::RaceFree => "race-free",
        })
    }
}

/// Verified, profiled outcome of one algorithm run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which code ran.
    pub algorithm: Algorithm,
    /// Which flavor ran.
    pub variant: Variant,
    /// Total simulated cycles (the paper's runtime metric).
    pub cycles: u64,
    /// Whether the solution passed its serial-reference validation.
    pub valid: bool,
    /// Digest of the deterministic part of the solution.
    pub solution_digest: u64,
    /// Quality metric (MIS size, color count, MST weight, component counts,
    /// or the sum of finite distances for APSP).
    pub quality: f64,
    /// Per-launch profile (cache hit rates, access mixes, launch counts).
    pub stats: ecl_simt::metrics::RunStats,
}

/// Runs `algorithm`/`variant` on `graph` with the given GPU model and
/// scheduler seed, verifying the solution against a serial reference.
///
/// Missing edge weights are synthesized deterministically for the weighted
/// algorithms, so any catalog graph can be passed directly.
///
/// # Panics
///
/// Panics on empty graphs, or for APSP on graphs with more than 2048
/// vertices (dense matrix).
pub fn run_algorithm(
    algorithm: Algorithm,
    variant: Variant,
    graph: &Csr,
    cfg: &GpuConfig,
    seed: u64,
) -> RunResult {
    let owned;
    let graph = if algorithm.weighted() && graph.weights().is_none() {
        owned = graph.clone().with_random_weights(1_000, 0xec1);
        &owned
    } else {
        graph
    };

    // The compiler model: the racy plain-access baselines are built with an
    // optimizing compiler that defers plain stores; converted codes (and the
    // volatile baselines, whose stores are uncacheable anyway) use immediate
    // visibility.
    let deferred = StoreVisibility::DeferUntilYield;
    let immediate = StoreVisibility::Immediate;

    match (algorithm, variant) {
        (Algorithm::Apsp, _) => {
            // No races to remove: both variants are the same code (§IV-A).
            let r = apsp::run(graph, cfg, seed);
            let valid = apsp::verify_apsp(graph, &r.dist);
            let quality = r
                .dist
                .iter()
                .filter(|&&d| d != apsp::INF)
                .map(|&d| d as f64)
                .sum();
            pack(algorithm, variant, r.cycles, valid, r.digest, quality, r.stats)
        }
        (Algorithm::Cc, Variant::Baseline) => {
            let r = cc::run::<Plain>(graph, cfg, seed, deferred);
            let valid = cc::verify_components(graph, &r.labels);
            pack(algorithm, variant, r.cycles, valid, r.digest, r.num_components as f64, r.stats)
        }
        (Algorithm::Cc, Variant::RaceFree) => {
            let r = cc::run::<Atomic>(graph, cfg, seed, immediate);
            let valid = cc::verify_components(graph, &r.labels);
            pack(algorithm, variant, r.cycles, valid, r.digest, r.num_components as f64, r.stats)
        }
        (Algorithm::Gc, Variant::Baseline) => {
            let r = gc::run::<Volatile, Plain>(graph, cfg, seed, deferred);
            let valid = gc::verify_coloring(graph, &r.colors);
            pack(algorithm, variant, r.cycles, valid, r.digest, r.num_colors as f64, r.stats)
        }
        (Algorithm::Gc, Variant::RaceFree) => {
            let r = gc::run::<Atomic, Atomic>(graph, cfg, seed, immediate);
            let valid = gc::verify_coloring(graph, &r.colors);
            pack(algorithm, variant, r.cycles, valid, r.digest, r.num_colors as f64, r.stats)
        }
        (Algorithm::Mis, Variant::Baseline) => {
            // Bounded multi-round deferral: the paper's compiler-delayed
            // status publication (MIS changed the most under conversion).
            let r = mis::run::<VolatileReadPlainWrite>(
                graph,
                cfg,
                seed,
                StoreVisibility::DeferBounded { every: 2, eighths: 4 },
            );
            let valid = mis::verify_mis(graph, &r.in_set);
            pack(algorithm, variant, r.cycles, valid, r.digest, r.set_size as f64, r.stats)
        }
        (Algorithm::Mis, Variant::RaceFree) => {
            let r = mis::run::<Atomic>(graph, cfg, seed, immediate);
            let valid = mis::verify_mis(graph, &r.in_set);
            pack(algorithm, variant, r.cycles, valid, r.digest, r.set_size as f64, r.stats)
        }
        (Algorithm::Mst, Variant::Baseline) => {
            let r = mst::run::<Volatile>(graph, cfg, seed, immediate);
            let valid = mst::verify_mst(graph, &r.in_mst);
            pack(algorithm, variant, r.cycles, valid, r.digest, r.total_weight as f64, r.stats)
        }
        (Algorithm::Mst, Variant::RaceFree) => {
            let r = mst::run::<Atomic>(graph, cfg, seed, immediate);
            let valid = mst::verify_mst(graph, &r.in_mst);
            pack(algorithm, variant, r.cycles, valid, r.digest, r.total_weight as f64, r.stats)
        }
        (Algorithm::Scc, Variant::Baseline) => {
            let r = scc::run::<Plain>(graph, cfg, seed, deferred);
            let valid = scc::verify_sccs(graph, &r.scc_ids);
            pack(algorithm, variant, r.cycles, valid, r.digest, r.num_sccs as f64, r.stats)
        }
        (Algorithm::Scc, Variant::RaceFree) => {
            let r = scc::run::<Atomic>(graph, cfg, seed, immediate);
            let valid = scc::verify_sccs(graph, &r.scc_ids);
            pack(algorithm, variant, r.cycles, valid, r.digest, r.num_sccs as f64, r.stats)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn pack(
    algorithm: Algorithm,
    variant: Variant,
    cycles: u64,
    valid: bool,
    solution_digest: u64,
    quality: f64,
    stats: ecl_simt::metrics::RunStats,
) -> RunResult {
    RunResult {
        algorithm,
        variant,
        cycles,
        valid,
        solution_digest,
        quality,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::gen;

    #[test]
    fn all_undirected_algorithms_run_and_verify() {
        let g = gen::rmat(256, 1024, 0.57, 0.19, 0.19, true, 6);
        let cfg = GpuConfig::test_tiny();
        for alg in Algorithm::UNDIRECTED {
            for variant in [Variant::Baseline, Variant::RaceFree] {
                let r = run_algorithm(alg, variant, &g, &cfg, 1);
                assert!(r.valid, "{alg} {variant} failed validation");
                assert!(r.cycles > 0);
            }
        }
    }

    #[test]
    fn scc_runs_on_directed_graph() {
        let g = gen::star_polygon(128, 5);
        let cfg = GpuConfig::test_tiny();
        let b = run_algorithm(Algorithm::Scc, Variant::Baseline, &g, &cfg, 1);
        let f = run_algorithm(Algorithm::Scc, Variant::RaceFree, &g, &cfg, 1);
        assert!(b.valid && f.valid);
        assert_eq!(b.solution_digest, f.solution_digest);
    }

    #[test]
    fn apsp_both_variants_identical() {
        let g = gen::grid2d_torus(4, 4);
        let cfg = GpuConfig::test_tiny();
        let b = run_algorithm(Algorithm::Apsp, Variant::Baseline, &g, &cfg, 1);
        let f = run_algorithm(Algorithm::Apsp, Variant::RaceFree, &g, &cfg, 1);
        assert!(b.valid && f.valid);
        assert_eq!(b.solution_digest, f.solution_digest);
        assert_eq!(b.cycles, f.cycles, "APSP has no conversion: same code");
    }

    #[test]
    fn weights_are_synthesized_when_missing() {
        let g = gen::grid2d_torus(6, 6); // unweighted
        let r = run_algorithm(
            Algorithm::Mst,
            Variant::RaceFree,
            &g,
            &GpuConfig::test_tiny(),
            1,
        );
        assert!(r.valid);
        assert!(r.quality > 0.0);
    }

    #[test]
    fn algorithm_metadata() {
        assert!(Algorithm::Scc.directed());
        assert!(!Algorithm::Cc.directed());
        assert!(Algorithm::Mst.weighted());
        assert!(!Algorithm::Mis.weighted());
        assert_eq!(Algorithm::Gc.to_string(), "GC");
        assert_eq!(Variant::RaceFree.to_string(), "race-free");
    }
}
