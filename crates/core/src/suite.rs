//! Unified entry point: run any of the six codes in either variant and get
//! a verified, profiled result — plus a resilient runner that retries runs
//! whose results were corrupted (or whose launches were killed) by injected
//! faults.

use crate::common::SimOptions;
use crate::primitives::{Atomic, Plain, Volatile, VolatileReadPlainWrite};
use crate::{apsp, cc, gc, mis, mst, scc};
use ecl_graph::Csr;
use ecl_native::{Baseline as NativeBaseline, NativePolicy, RaceFree as NativeRaceFree};
use ecl_simt::{GpuConfig, SimError, StoreVisibility};
use std::fmt;

/// The six studied graph analytics codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// All-pairs shortest paths (regular; race-free as published).
    Apsp,
    /// Connected components.
    Cc,
    /// Graph coloring.
    Gc,
    /// Maximal independent set.
    Mis,
    /// Minimum spanning tree.
    Mst,
    /// Strongly connected components.
    Scc,
}

impl Algorithm {
    /// All six codes, in the paper's table order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Apsp,
        Algorithm::Cc,
        Algorithm::Gc,
        Algorithm::Mis,
        Algorithm::Mst,
        Algorithm::Scc,
    ];

    /// The four undirected-input algorithms of Tables IV–VII, in order.
    pub const UNDIRECTED: [Algorithm; 4] =
        [Algorithm::Cc, Algorithm::Gc, Algorithm::Mis, Algorithm::Mst];

    /// Short lowercase name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Apsp => "APSP",
            Algorithm::Cc => "CC",
            Algorithm::Gc => "GC",
            Algorithm::Mis => "MIS",
            Algorithm::Mst => "MST",
            Algorithm::Scc => "SCC",
        }
    }

    /// `true` if the algorithm consumes directed graphs (only SCC).
    pub fn directed(self) -> bool {
        matches!(self, Algorithm::Scc)
    }

    /// `true` if the algorithm needs edge weights.
    pub fn weighted(self) -> bool {
        matches!(self, Algorithm::Apsp | Algorithm::Mst)
    }

    /// Parses a table-style name (`"CC"`, `"mis"`, …), case-insensitively —
    /// the inverse of [`Algorithm::name`], used by journal records, repro
    /// bundles, and worker-cell CLI keys.
    pub fn parse(name: &str) -> Option<Algorithm> {
        Algorithm::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which flavor of the code to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The published code, containing "benign" data races (except APSP).
    Baseline,
    /// The converted code: all shared accesses through relaxed atomics.
    RaceFree,
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Variant::Baseline => "baseline",
            Variant::RaceFree => "race-free",
        })
    }
}

/// Verified, profiled outcome of one algorithm run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which code ran.
    pub algorithm: Algorithm,
    /// Which flavor ran.
    pub variant: Variant,
    /// Total simulated cycles (the paper's runtime metric).
    pub cycles: u64,
    /// Whether the solution passed its serial-reference validation.
    pub valid: bool,
    /// Digest of the deterministic part of the solution.
    pub solution_digest: u64,
    /// Quality metric (MIS size, color count, MST weight, component counts,
    /// or the sum of finite distances for APSP).
    pub quality: f64,
    /// Per-launch profile (cache hit rates, access mixes, launch counts).
    pub stats: ecl_simt::metrics::RunStats,
}

/// Runs `algorithm`/`variant` on `graph` with the given GPU model and
/// scheduler seed, verifying the solution against a serial reference.
///
/// Missing edge weights are synthesized deterministically for the weighted
/// algorithms, so any catalog graph can be passed directly.
///
/// # Panics
///
/// Panics on empty graphs, or for APSP on graphs with more than 2048
/// vertices (dense matrix).
pub fn run_algorithm(
    algorithm: Algorithm,
    variant: Variant,
    graph: &Csr,
    cfg: &GpuConfig,
    seed: u64,
) -> RunResult {
    run_algorithm_checked(algorithm, variant, graph, cfg, seed, &SimOptions::default())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_algorithm`] with simulator options (watchdog budget, fault
/// injection), catching launch failures as typed errors instead of
/// panicking. An `Ok` result may still be invalid (`valid == false`) when an
/// injected fault silently corrupted the solution — that is the SDC case
/// [`run_resilient`] retries on.
pub fn run_algorithm_checked(
    algorithm: Algorithm,
    variant: Variant,
    graph: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    opts: &SimOptions,
) -> Result<RunResult, SimError> {
    let owned;
    let graph = if algorithm.weighted() && graph.weights().is_none() {
        owned = graph.clone().with_random_weights(1_000, 0xec1);
        &owned
    } else {
        graph
    };

    // The compiler model: the racy plain-access baselines are built with an
    // optimizing compiler that defers plain stores; converted codes (and the
    // volatile baselines, whose stores are uncacheable anyway) use immediate
    // visibility.
    let deferred = StoreVisibility::DeferUntilYield;
    let immediate = StoreVisibility::Immediate;

    Ok(match (algorithm, variant) {
        (Algorithm::Apsp, _) => {
            // No races to remove: both variants are the same code (§IV-A).
            let r = apsp::run_checked(graph, cfg, seed, opts)?;
            let valid = apsp::verify_apsp(graph, &r.dist);
            let quality = r
                .dist
                .iter()
                .filter(|&&d| d != apsp::INF)
                .map(|&d| d as f64)
                .sum();
            pack(
                algorithm, variant, r.cycles, valid, r.digest, quality, r.stats,
            )
        }
        (Algorithm::Cc, Variant::Baseline) => {
            let r = cc::run_checked::<Plain>(graph, cfg, seed, deferred, opts)?;
            let valid = cc::verify_components(graph, &r.labels);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.num_components as f64,
                r.stats,
            )
        }
        (Algorithm::Cc, Variant::RaceFree) => {
            let r = cc::run_checked::<Atomic>(graph, cfg, seed, immediate, opts)?;
            let valid = cc::verify_components(graph, &r.labels);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.num_components as f64,
                r.stats,
            )
        }
        (Algorithm::Gc, Variant::Baseline) => {
            let r = gc::run_checked::<Volatile, Plain>(graph, cfg, seed, deferred, opts)?;
            let valid = gc::verify_coloring(graph, &r.colors);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.num_colors as f64,
                r.stats,
            )
        }
        (Algorithm::Gc, Variant::RaceFree) => {
            let r = gc::run_checked::<Atomic, Atomic>(graph, cfg, seed, immediate, opts)?;
            let valid = gc::verify_coloring(graph, &r.colors);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.num_colors as f64,
                r.stats,
            )
        }
        (Algorithm::Mis, Variant::Baseline) => {
            // Bounded multi-round deferral: the paper's compiler-delayed
            // status publication (MIS changed the most under conversion).
            let r = mis::run_checked::<VolatileReadPlainWrite>(
                graph,
                cfg,
                seed,
                StoreVisibility::DeferBounded {
                    every: 2,
                    eighths: 4,
                },
                opts,
            )?;
            let valid = mis::verify_mis(graph, &r.in_set);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.set_size as f64,
                r.stats,
            )
        }
        (Algorithm::Mis, Variant::RaceFree) => {
            let r = mis::run_checked::<Atomic>(graph, cfg, seed, immediate, opts)?;
            let valid = mis::verify_mis(graph, &r.in_set);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.set_size as f64,
                r.stats,
            )
        }
        (Algorithm::Mst, Variant::Baseline) => {
            let r = mst::run_checked::<Volatile>(graph, cfg, seed, immediate, opts)?;
            let valid = mst::verify_mst(graph, &r.in_mst);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.total_weight as f64,
                r.stats,
            )
        }
        (Algorithm::Mst, Variant::RaceFree) => {
            let r = mst::run_checked::<Atomic>(graph, cfg, seed, immediate, opts)?;
            let valid = mst::verify_mst(graph, &r.in_mst);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.total_weight as f64,
                r.stats,
            )
        }
        (Algorithm::Scc, Variant::Baseline) => {
            let r = scc::run_checked::<Plain>(graph, cfg, seed, deferred, opts)?;
            let valid = scc::verify_sccs(graph, &r.scc_ids);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.num_sccs as f64,
                r.stats,
            )
        }
        (Algorithm::Scc, Variant::RaceFree) => {
            let r = scc::run_checked::<Atomic>(graph, cfg, seed, immediate, opts)?;
            let valid = scc::verify_sccs(graph, &r.scc_ids);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.num_sccs as f64,
                r.stats,
            )
        }
    })
}

/// Runs a *synthesized* variant of `algorithm`: the kernels execute under
/// the [`crate::primitives::IrDriven`] policy, which resolves every
/// policy-mediated access's mode from `table` — typically
/// [`ecl_simt::ModeTable::from_ir`] over the repaired IR the `ecl-analyze`
/// repair pass produced. Store visibility is `Immediate`, matching the
/// converted codes (an access-by-access repaired kernel is compiled like the
/// hand-converted one: its shared stores are not deferrable).
///
/// The returned [`RunResult`] is tagged [`Variant::RaceFree`]: a verified
/// synthesized variant *is* a race-free flavor of the code, just machine-
/// derived rather than hand-written, and downstream consumers (verification,
/// digests, perf tables) treat it as such.
///
/// APSP has no policy-mediated sites (both variants are the same code), so
/// its synthesized run is the ordinary run; the installed table is never
/// consulted.
pub fn run_synthesized(
    algorithm: Algorithm,
    table: &ecl_simt::ModeTable,
    graph: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    opts: &SimOptions,
) -> Result<RunResult, SimError> {
    use crate::primitives::IrDriven;

    let owned;
    let graph = if algorithm.weighted() && graph.weights().is_none() {
        owned = graph.clone().with_random_weights(1_000, 0xec1);
        &owned
    } else {
        graph
    };
    let mut opts = opts.clone();
    opts.mode_table = Some(table.clone());
    let opts = &opts;
    let immediate = StoreVisibility::Immediate;
    let variant = Variant::RaceFree;

    Ok(match algorithm {
        Algorithm::Apsp => {
            let r = apsp::run_checked(graph, cfg, seed, opts)?;
            let valid = apsp::verify_apsp(graph, &r.dist);
            let quality = r
                .dist
                .iter()
                .filter(|&&d| d != apsp::INF)
                .map(|&d| d as f64)
                .sum();
            pack(
                algorithm, variant, r.cycles, valid, r.digest, quality, r.stats,
            )
        }
        Algorithm::Cc => {
            let r = cc::run_checked::<IrDriven>(graph, cfg, seed, immediate, opts)?;
            let valid = cc::verify_components(graph, &r.labels);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.num_components as f64,
                r.stats,
            )
        }
        Algorithm::Gc => {
            let r = gc::run_checked::<IrDriven, IrDriven>(graph, cfg, seed, immediate, opts)?;
            let valid = gc::verify_coloring(graph, &r.colors);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.num_colors as f64,
                r.stats,
            )
        }
        Algorithm::Mis => {
            let r = mis::run_checked::<IrDriven>(graph, cfg, seed, immediate, opts)?;
            let valid = mis::verify_mis(graph, &r.in_set);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.set_size as f64,
                r.stats,
            )
        }
        Algorithm::Mst => {
            let r = mst::run_checked::<IrDriven>(graph, cfg, seed, immediate, opts)?;
            let valid = mst::verify_mst(graph, &r.in_mst);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.total_weight as f64,
                r.stats,
            )
        }
        Algorithm::Scc => {
            let r = scc::run_checked::<IrDriven>(graph, cfg, seed, immediate, opts)?;
            let valid = scc::verify_sccs(graph, &r.scc_ids);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.num_sccs as f64,
                r.stats,
            )
        }
    })
}

/// Runs `algorithm`/`variant` directly on `threads` host threads via the
/// `ecl-native` access policies — the same codes, real `std::sync::atomic`
/// concurrency instead of the simulator. `seed` perturbs the schedule
/// (partition rotation), never the result; `cycles` in the returned
/// [`RunResult`] holds wall-clock nanoseconds and `stats` is empty (there is
/// no simulated memory hierarchy to profile).
///
/// Missing edge weights are synthesized with the same parameters as
/// [`run_algorithm`], so native and simulator runs of a catalog graph solve
/// the identical weighted instance.
///
/// # Panics
///
/// Panics on empty graphs, for APSP on graphs with more than 2048 vertices,
/// or for MST on graphs with 2^26 or more edges (packed-key overflow).
pub fn run_native(
    algorithm: Algorithm,
    variant: Variant,
    graph: &Csr,
    threads: usize,
    seed: u64,
) -> RunResult {
    match variant {
        Variant::Baseline => {
            run_native_policy::<NativeBaseline>(algorithm, variant, graph, threads, seed)
        }
        Variant::RaceFree => {
            run_native_policy::<NativeRaceFree>(algorithm, variant, graph, threads, seed)
        }
    }
}

fn run_native_policy<P: NativePolicy>(
    algorithm: Algorithm,
    variant: Variant,
    graph: &Csr,
    threads: usize,
    seed: u64,
) -> RunResult {
    let owned;
    let graph = if algorithm.weighted() && graph.weights().is_none() {
        owned = graph.clone().with_random_weights(1_000, 0xec1);
        &owned
    } else {
        graph
    };

    match algorithm {
        Algorithm::Apsp => {
            // No races to remove: both variants run the same code (§IV-A).
            let r = apsp::native::run::<P>(graph, threads, seed);
            let valid = apsp::verify_apsp(graph, &r.dist);
            let quality = r
                .dist
                .iter()
                .filter(|&&d| d != apsp::INF)
                .map(|&d| d as f64)
                .sum();
            pack(
                algorithm, variant, r.cycles, valid, r.digest, quality, r.stats,
            )
        }
        Algorithm::Cc => {
            let r = cc::native::run::<P>(graph, threads, seed);
            let valid = cc::verify_components(graph, &r.labels);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.num_components as f64,
                r.stats,
            )
        }
        Algorithm::Gc => {
            let r = gc::native::run::<P>(graph, threads, seed);
            let valid = gc::verify_coloring(graph, &r.colors);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.num_colors as f64,
                r.stats,
            )
        }
        Algorithm::Mis => {
            let r = mis::native::run::<P>(graph, threads, seed);
            let valid = mis::verify_mis(graph, &r.in_set);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.set_size as f64,
                r.stats,
            )
        }
        Algorithm::Mst => {
            let r = mst::native::run::<P>(graph, threads, seed);
            let valid = mst::verify_mst(graph, &r.in_mst);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.total_weight as f64,
                r.stats,
            )
        }
        Algorithm::Scc => {
            let r = scc::native::run::<P>(graph, threads, seed);
            let valid = scc::verify_sccs(graph, &r.scc_ids);
            pack(
                algorithm,
                variant,
                r.cycles,
                valid,
                r.digest,
                r.num_sccs as f64,
                r.stats,
            )
        }
    }
}

/// Where a suite run executes: the cycle-accounting GPU simulator or real
/// host threads. Both backends run the same published codes in the same two
/// variants and report through the same [`RunResult`]; everything downstream
/// (verification, digests, sweep plumbing) is backend-agnostic.
pub trait Backend {
    /// Short name for logs and JSON (`"sim"`, `"native"`).
    fn name(&self) -> &'static str;

    /// Runs one algorithm/variant cell on this backend.
    fn run(
        &self,
        algorithm: Algorithm,
        variant: Variant,
        graph: &Csr,
        cfg: &GpuConfig,
        seed: u64,
        opts: &SimOptions,
    ) -> Result<RunResult, SimError>;
}

/// The default backend: the `ecl-simt` GPU simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulatorBackend;

impl Backend for SimulatorBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(
        &self,
        algorithm: Algorithm,
        variant: Variant,
        graph: &Csr,
        cfg: &GpuConfig,
        seed: u64,
        opts: &SimOptions,
    ) -> Result<RunResult, SimError> {
        run_algorithm_checked(algorithm, variant, graph, cfg, seed, opts)
    }
}

/// The host-thread backend (`--backend native`). The GPU config and sim
/// options are ignored — there is no simulated machine; `threads == None`
/// defers to `ECL_THREADS` or the machine's parallelism
/// (see [`ecl_native::thread_count`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeBackend {
    /// Explicit thread count, or `None` for the environment default.
    pub threads: Option<usize>,
}

impl NativeBackend {
    /// A native backend with an explicit thread count (`None` = default).
    pub fn new(threads: Option<usize>) -> Self {
        NativeBackend { threads }
    }
}

impl Backend for NativeBackend {
    fn name(&self) -> &'static str {
        "native"
    }

    fn run(
        &self,
        algorithm: Algorithm,
        variant: Variant,
        graph: &Csr,
        _cfg: &GpuConfig,
        seed: u64,
        _opts: &SimOptions,
    ) -> Result<RunResult, SimError> {
        Ok(run_native(
            algorithm,
            variant,
            graph,
            ecl_native::thread_count(self.threads),
            seed,
        ))
    }
}

/// Why one sweep cell (a single `run_algorithm`-shaped run) produced no
/// usable measurement. Unlike a panic, a `RunError` lets a multi-hour sweep
/// record the failure and keep going.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The launch died with a typed simulator error (watchdog, OOB, fault
    /// budget, livelock, barrier divergence).
    Sim(SimError),
    /// The run completed but its solution failed the serial-reference
    /// verification (silent data corruption or a genuine algorithm bug).
    Invalid {
        /// Which code produced the bad solution.
        algorithm: Algorithm,
        /// Which flavor of it.
        variant: Variant,
    },
    /// Host-side code around the launch panicked (e.g. an index computed
    /// from corrupted device data); the message is the panic payload.
    Panicked(String),
    /// A typed failure reported by an isolated worker subprocess, carried as
    /// its rendered message. Displays verbatim, so a sweep run with cell
    /// isolation serializes the same failure text as an in-process run.
    Remote(String),
    /// An isolated worker subprocess died without reporting a result: it
    /// panicked/aborted, was killed by a signal, or overran its wall-clock
    /// deadline. This failure class has no in-process analogue — without
    /// isolation it would have taken the whole sweep down.
    Worker {
        /// The process exit code, if it exited normally.
        exit: Option<i32>,
        /// The signal that killed it, if any (Unix only).
        signal: Option<i32>,
        /// Whether the parent killed it for exceeding the cell deadline.
        timed_out: bool,
        /// The tail of the worker's captured stderr (panic messages live
        /// here).
        stderr_tail: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "{e}"),
            RunError::Invalid { algorithm, variant } => {
                write!(f, "{algorithm} {variant} solution failed verification")
            }
            RunError::Panicked(msg) => write!(f, "host panic: {msg}"),
            RunError::Remote(msg) => f.write_str(msg),
            RunError::Worker {
                exit,
                signal,
                timed_out,
                stderr_tail,
            } => {
                write!(f, "worker process died")?;
                if *timed_out {
                    write!(f, " (cell deadline exceeded, killed)")?;
                }
                if let Some(code) = exit {
                    write!(f, " (exit {code})")?;
                }
                if let Some(sig) = signal {
                    write!(f, " (signal {sig})")?;
                }
                if !stderr_tail.is_empty() {
                    write!(f, ": {}", stderr_tail.trim_end())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// Strict single-cell runner for sweeps: like [`run_algorithm_checked`] but
/// *never* panics and *never* returns an unverified result — launch
/// failures, verification failures, and host panics all arrive as typed
/// [`RunError`]s a sweep can record while it continues with the next cell.
pub fn run_cell(
    algorithm: Algorithm,
    variant: Variant,
    graph: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    opts: &SimOptions,
) -> Result<RunResult, RunError> {
    let result =
        ecl_simt::catch_any(|| run_algorithm_checked(algorithm, variant, graph, cfg, seed, opts))
            .map_err(RunError::Panicked)??;
    if !result.valid {
        return Err(RunError::Invalid { algorithm, variant });
    }
    Ok(result)
}

/// Bounded-retry policy for [`run_resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (must be at least 1).
    pub max_attempts: u32,
    /// Added to the scheduler seed on each retry so a rerun explores a
    /// different interleaving (and, under fault injection, keeps the fault
    /// stream aligned with the new schedule deterministically).
    pub seed_stride: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            seed_stride: 1,
        }
    }
}

/// What one attempt inside [`run_resilient`] did.
#[derive(Debug, Clone, PartialEq)]
pub enum Attempt {
    /// Ran to completion and passed verification.
    Valid,
    /// Ran to completion but failed verification: a silent data corruption
    /// the verifier caught.
    Sdc,
    /// The launch (or the host code around it) died — watchdog timeout,
    /// out-of-bounds access, fault budget, livelock, or an ordinary panic
    /// triggered by corrupted data.
    Crashed(String),
}

/// Final outcome of a [`run_resilient`] call.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// First attempt was valid.
    Ok(RunResult),
    /// One or more attempts were discarded before a valid run; `attempts`
    /// counts every attempt made, including the successful one.
    Recovered {
        /// Total attempts made.
        attempts: u32,
        /// The valid result.
        result: RunResult,
    },
    /// Every attempt crashed or produced a corrupt solution.
    Failed {
        /// Attempts made (`policy.max_attempts`).
        attempts: u32,
        /// What the last attempt did.
        reason: String,
    },
}

impl RunOutcome {
    /// The valid result, if any attempt produced one.
    pub fn result(&self) -> Option<&RunResult> {
        match self {
            RunOutcome::Ok(r) | RunOutcome::Recovered { result: r, .. } => Some(r),
            RunOutcome::Failed { .. } => None,
        }
    }
}

/// Runs `algorithm`/`variant` under a retry policy, treating each attempt's
/// verification failure (SDC) or crash as recoverable: the run is retried
/// with a fresh scheduler seed, up to `policy.max_attempts` attempts.
///
/// Never panics, whatever the fault plan in `opts` does to the run — kernel
/// launch failures arrive as typed [`SimError`]s and host-side panics on
/// corrupted data are contained by [`ecl_simt::catch_any`].
pub fn run_resilient(
    algorithm: Algorithm,
    variant: Variant,
    graph: &Csr,
    cfg: &GpuConfig,
    base_seed: u64,
    opts: &SimOptions,
    policy: &RetryPolicy,
) -> RunOutcome {
    run_resilient_observed(
        algorithm,
        variant,
        graph,
        cfg,
        base_seed,
        opts,
        policy,
        |_, _| {},
    )
}

/// [`run_resilient`] with a per-attempt observer (attempt index, what it
/// did) — the hook the fault-study harness uses to count SDCs and crashes
/// without changing the recovery semantics.
#[allow(clippy::too_many_arguments)]
pub fn run_resilient_observed(
    algorithm: Algorithm,
    variant: Variant,
    graph: &Csr,
    cfg: &GpuConfig,
    base_seed: u64,
    opts: &SimOptions,
    policy: &RetryPolicy,
    mut observe: impl FnMut(u32, &Attempt),
) -> RunOutcome {
    let max_attempts = policy.max_attempts.max(1);
    let mut last = String::new();
    for attempt in 0..max_attempts {
        let seed = base_seed.wrapping_add(attempt as u64 * policy.seed_stride);
        let outcome = ecl_simt::catch_any(|| {
            run_algorithm_checked(algorithm, variant, graph, cfg, seed, opts)
        });
        let what = match outcome {
            Ok(Ok(result)) if result.valid => {
                observe(attempt, &Attempt::Valid);
                return if attempt == 0 {
                    RunOutcome::Ok(result)
                } else {
                    RunOutcome::Recovered {
                        attempts: attempt + 1,
                        result,
                    }
                };
            }
            Ok(Ok(_)) => Attempt::Sdc,
            Ok(Err(e)) => Attempt::Crashed(e.to_string()),
            Err(msg) => Attempt::Crashed(msg),
        };
        last = match &what {
            Attempt::Sdc => "solution failed verification (silent data corruption)".to_string(),
            Attempt::Crashed(msg) => msg.clone(),
            Attempt::Valid => unreachable!(),
        };
        observe(attempt, &what);
    }
    RunOutcome::Failed {
        attempts: max_attempts,
        reason: last,
    }
}

#[allow(clippy::too_many_arguments)]
fn pack(
    algorithm: Algorithm,
    variant: Variant,
    cycles: u64,
    valid: bool,
    solution_digest: u64,
    quality: f64,
    stats: ecl_simt::metrics::RunStats,
) -> RunResult {
    RunResult {
        algorithm,
        variant,
        cycles,
        valid,
        solution_digest,
        quality,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::gen;

    #[test]
    fn all_undirected_algorithms_run_and_verify() {
        let g = gen::rmat(256, 1024, 0.57, 0.19, 0.19, true, 6);
        let cfg = GpuConfig::test_tiny();
        for alg in Algorithm::UNDIRECTED {
            for variant in [Variant::Baseline, Variant::RaceFree] {
                let r = run_algorithm(alg, variant, &g, &cfg, 1);
                assert!(r.valid, "{alg} {variant} failed validation");
                assert!(r.cycles > 0);
            }
        }
    }

    #[test]
    fn scc_runs_on_directed_graph() {
        let g = gen::star_polygon(128, 5);
        let cfg = GpuConfig::test_tiny();
        let b = run_algorithm(Algorithm::Scc, Variant::Baseline, &g, &cfg, 1);
        let f = run_algorithm(Algorithm::Scc, Variant::RaceFree, &g, &cfg, 1);
        assert!(b.valid && f.valid);
        assert_eq!(b.solution_digest, f.solution_digest);
    }

    #[test]
    fn apsp_both_variants_identical() {
        let g = gen::grid2d_torus(4, 4);
        let cfg = GpuConfig::test_tiny();
        let b = run_algorithm(Algorithm::Apsp, Variant::Baseline, &g, &cfg, 1);
        let f = run_algorithm(Algorithm::Apsp, Variant::RaceFree, &g, &cfg, 1);
        assert!(b.valid && f.valid);
        assert_eq!(b.solution_digest, f.solution_digest);
        assert_eq!(b.cycles, f.cycles, "APSP has no conversion: same code");
    }

    #[test]
    fn weights_are_synthesized_when_missing() {
        let g = gen::grid2d_torus(6, 6); // unweighted
        let r = run_algorithm(
            Algorithm::Mst,
            Variant::RaceFree,
            &g,
            &GpuConfig::test_tiny(),
            1,
        );
        assert!(r.valid);
        assert!(r.quality > 0.0);
    }

    #[test]
    fn resilient_runner_is_a_plain_run_without_faults() {
        let g = gen::grid2d_torus(8, 8);
        let outcome = run_resilient(
            Algorithm::Cc,
            Variant::RaceFree,
            &g,
            &GpuConfig::test_tiny(),
            1,
            &SimOptions::default(),
            &RetryPolicy::default(),
        );
        assert!(matches!(outcome, RunOutcome::Ok(_)));
        assert!(outcome.result().unwrap().valid);
    }

    #[test]
    fn resilient_runner_survives_a_hostile_fault_plan() {
        // A fault rate this high corrupts essentially every load; whatever
        // each attempt does (SDC, crash on a corrupted index, watchdog), the
        // runner must return a RunOutcome rather than panic.
        let g = gen::grid2d_torus(6, 6);
        let opts = SimOptions {
            watchdog: Some(2_000_000),
            fault: Some(ecl_simt::FaultPlan::new(7).with_bitflips(0.05, ecl_simt::MemLevel::Dram)),
            deadline: None,
            mode_table: None,
        };
        let mut attempts = Vec::new();
        let outcome = run_resilient_observed(
            Algorithm::Cc,
            Variant::Baseline,
            &g,
            &GpuConfig::test_tiny(),
            1,
            &opts,
            &RetryPolicy {
                max_attempts: 2,
                seed_stride: 1,
            },
            |i, what| attempts.push((i, what.clone())),
        );
        match outcome {
            RunOutcome::Ok(_) => assert!(attempts.is_empty() || attempts.len() == 1),
            RunOutcome::Recovered { attempts: n, .. } => assert!(n >= 2),
            RunOutcome::Failed {
                attempts: n,
                reason,
            } => {
                assert_eq!(n, 2);
                assert!(!reason.is_empty());
            }
        }
    }

    #[test]
    fn watchdog_failure_is_reported_not_panicked() {
        // A 1-cycle budget kills the very first launch on every attempt.
        let g = gen::grid2d_torus(6, 6);
        let opts = SimOptions {
            watchdog: Some(1),
            fault: None,
            deadline: None,
            mode_table: None,
        };
        let outcome = run_resilient(
            Algorithm::Mis,
            Variant::RaceFree,
            &g,
            &GpuConfig::test_tiny(),
            1,
            &opts,
            &RetryPolicy::default(),
        );
        match outcome {
            RunOutcome::Failed { attempts, reason } => {
                assert_eq!(attempts, 3);
                assert!(reason.contains("watchdog"), "got: {reason}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn checked_runner_returns_typed_watchdog_error() {
        let g = gen::grid2d_torus(6, 6);
        let opts = SimOptions {
            watchdog: Some(1),
            fault: None,
            deadline: None,
            mode_table: None,
        };
        let r = run_algorithm_checked(
            Algorithm::Gc,
            Variant::RaceFree,
            &g,
            &GpuConfig::test_tiny(),
            1,
            &opts,
        );
        assert!(matches!(r, Err(SimError::WatchdogTimeout { .. })));
    }

    #[test]
    fn run_cell_ok_on_clean_run() {
        let g = gen::grid2d_torus(8, 8);
        let r = run_cell(
            Algorithm::Cc,
            Variant::RaceFree,
            &g,
            &GpuConfig::test_tiny(),
            1,
            &SimOptions::default(),
        );
        assert!(r.is_ok());
        assert!(r.unwrap().valid);
    }

    #[test]
    fn run_cell_turns_watchdog_into_typed_error() {
        let g = gen::grid2d_torus(6, 6);
        let opts = SimOptions {
            watchdog: Some(1),
            fault: None,
            deadline: None,
            mode_table: None,
        };
        let r = run_cell(
            Algorithm::Gc,
            Variant::Baseline,
            &g,
            &GpuConfig::test_tiny(),
            1,
            &opts,
        );
        match r {
            Err(RunError::Sim(SimError::WatchdogTimeout { .. })) => {}
            other => panic!("expected watchdog RunError, got {other:?}"),
        }
    }

    #[test]
    fn run_results_and_errors_are_send() {
        // The parallel sweep pool moves these across threads; see also the
        // simt-level audit in `crates/simt/tests/send_audit.rs`.
        fn assert_send<T: Send>() {}
        assert_send::<RunResult>();
        assert_send::<RunError>();
        assert_send::<RunOutcome>();
        assert_send::<Attempt>();
    }

    #[test]
    fn retries_observe_iid_fault_streams() {
        // The doc on `SimOptions::make_gpu` promises that the run seed is
        // mixed into the fault-plan seed, so a retry (same plan, bumped
        // scheduler seed) sees a fresh, independent fault schedule rather
        // than a replay of the one that just corrupted it. Pin exactly that:
        // distinct run seeds must arm distinct effective plan seeds, and
        // never the raw plan seed itself.
        let opts = SimOptions {
            watchdog: None,
            fault: Some(
                ecl_simt::FaultPlan::new(0xFA17).with_bitflips(0.01, ecl_simt::MemLevel::Dram),
            ),
            deadline: None,
            mode_table: None,
        };
        let cfg = GpuConfig::test_tiny();
        let armed = |run_seed: u64| {
            opts.make_gpu(&cfg, run_seed)
                .fault_plan()
                .expect("plan armed")
                .seed
        };
        let raw = opts.fault.as_ref().unwrap().seed;
        let mut seen = std::collections::HashSet::new();
        // Run seed 0 is the XOR identity; sweeps never pass it (scheduler
        // seeds are themselves stream-mixed), so assert over 1..=8.
        for run_seed in 1..=8 {
            let s = armed(run_seed);
            assert_ne!(s, raw, "run seed {run_seed} armed the raw plan seed");
            assert!(seen.insert(s), "run seeds collide on plan seed {s:#x}");
        }
        // Deterministic for a fixed (plan seed, run seed) pair.
        assert_eq!(armed(3), armed(3));
    }

    #[test]
    fn recovered_outcome_reports_attempt_count() {
        // Hunt a small space of base seeds for a configuration where the
        // first attempt fails and a retry succeeds — the simulator is
        // deterministic, so once found the recovery replays forever. Then
        // assert `RunOutcome::Recovered` counts every attempt the observer
        // saw, including the successful one.
        let g = gen::rmat(128, 512, 0.57, 0.19, 0.19, true, 2);
        let cfg = GpuConfig::test_tiny();
        let policy = RetryPolicy {
            max_attempts: 4,
            seed_stride: 1,
        };
        let mut recovered_somewhere = false;
        for base_seed in 0..24u64 {
            let opts = SimOptions {
                watchdog: Some(20_000_000),
                fault: Some(
                    ecl_simt::FaultPlan::new(base_seed)
                        .with_bitflips(0.002, ecl_simt::MemLevel::L2),
                ),
                deadline: None,
                mode_table: None,
            };
            let mut observed = Vec::new();
            let outcome = run_resilient_observed(
                Algorithm::Mis,
                Variant::Baseline,
                &g,
                &cfg,
                base_seed,
                &opts,
                &policy,
                |i, what| observed.push((i, what.clone())),
            );
            match outcome {
                RunOutcome::Ok(_) => {
                    assert_eq!(observed.len(), 1);
                    assert!(matches!(observed[0], (0, Attempt::Valid)));
                }
                RunOutcome::Recovered { attempts, .. } => {
                    recovered_somewhere = true;
                    assert!(attempts >= 2, "Recovered implies a discarded attempt");
                    assert_eq!(
                        attempts as usize,
                        observed.len(),
                        "attempt count must include every attempt made"
                    );
                    assert!(matches!(observed.last(), Some((_, Attempt::Valid))));
                    assert!(observed[..observed.len() - 1]
                        .iter()
                        .all(|(_, what)| !matches!(what, Attempt::Valid)));
                }
                RunOutcome::Failed { attempts, .. } => {
                    assert_eq!(attempts, policy.max_attempts);
                    assert_eq!(observed.len(), policy.max_attempts as usize);
                }
            }
        }
        assert!(
            recovered_somewhere,
            "no base seed in the hunt space recovered; the fault rate no longer \
             exercises the retry path — tune the rate or the seed range"
        );
    }

    #[test]
    fn native_backend_matches_simulator_digests() {
        let g = gen::rmat(256, 1024, 0.57, 0.19, 0.19, true, 6);
        let cfg = GpuConfig::test_tiny();
        let sim = SimulatorBackend;
        let native = NativeBackend::new(Some(4));
        let opts = SimOptions::default();
        for alg in Algorithm::UNDIRECTED {
            for variant in [Variant::Baseline, Variant::RaceFree] {
                let s = sim.run(alg, variant, &g, &cfg, 1, &opts).unwrap();
                let n = native.run(alg, variant, &g, &cfg, 1, &opts).unwrap();
                assert!(n.valid, "{alg} {variant} native run invalid");
                assert_eq!(
                    s.solution_digest, n.solution_digest,
                    "{alg} {variant}: native and simulator fixpoints differ"
                );
            }
        }
    }

    #[test]
    fn native_backend_runs_directed_and_dense_codes() {
        let cfg = GpuConfig::test_tiny();
        let native = NativeBackend::new(Some(3));
        let opts = SimOptions::default();
        let sim = SimulatorBackend;

        let dg = gen::pref_attach_directed(200, 3, 0.05, 4);
        let s = sim
            .run(Algorithm::Scc, Variant::RaceFree, &dg, &cfg, 1, &opts)
            .unwrap();
        let n = native
            .run(Algorithm::Scc, Variant::RaceFree, &dg, &cfg, 1, &opts)
            .unwrap();
        assert!(n.valid);
        assert_eq!(s.solution_digest, n.solution_digest);

        let wg = gen::grid2d_torus(6, 6);
        let s = sim
            .run(Algorithm::Apsp, Variant::Baseline, &wg, &cfg, 1, &opts)
            .unwrap();
        let n = native
            .run(Algorithm::Apsp, Variant::Baseline, &wg, &cfg, 1, &opts)
            .unwrap();
        assert!(n.valid);
        assert_eq!(
            s.solution_digest, n.solution_digest,
            "weight synthesis must match across backends"
        );
    }

    #[test]
    fn algorithm_parse_is_the_inverse_of_name() {
        for alg in [
            Algorithm::Apsp,
            Algorithm::Cc,
            Algorithm::Gc,
            Algorithm::Mis,
            Algorithm::Mst,
            Algorithm::Scc,
        ] {
            assert_eq!(Algorithm::parse(alg.name()), Some(alg));
            assert_eq!(Algorithm::parse(&alg.name().to_lowercase()), Some(alg));
        }
        assert_eq!(Algorithm::parse("BFS"), None);
    }

    #[test]
    fn algorithm_metadata() {
        assert!(Algorithm::Scc.directed());
        assert!(!Algorithm::Cc.directed());
        assert!(Algorithm::Mst.weighted());
        assert!(!Algorithm::Mis.weighted());
        assert_eq!(Algorithm::Gc.to_string(), "GC");
        assert_eq!(Variant::RaceFree.to_string(), "race-free");
    }
}
