//! Validation for graph colorings.

use super::NO_COLOR;
use ecl_graph::Csr;

/// Checks that every vertex is colored and no edge connects equal colors.
pub fn verify_coloring(g: &Csr, colors: &[u32]) -> bool {
    if colors.len() != g.num_vertices() {
        return false;
    }
    if colors.contains(&NO_COLOR) {
        return false;
    }
    g.edges()
        .all(|(v, u)| colors[v as usize] != colors[u as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::CsrBuilder;

    fn triangle() -> Csr {
        let mut b = CsrBuilder::new(3).symmetric(true);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        b.build()
    }

    #[test]
    fn accepts_proper_coloring() {
        assert!(verify_coloring(&triangle(), &[0, 1, 2]));
    }

    #[test]
    fn rejects_conflicting_colors() {
        assert!(!verify_coloring(&triangle(), &[0, 0, 1]));
    }

    #[test]
    fn rejects_uncolored_vertex() {
        assert!(!verify_coloring(&triangle(), &[0, 1, NO_COLOR]));
    }

    #[test]
    fn rejects_wrong_length() {
        assert!(!verify_coloring(&triangle(), &[0, 1]));
    }
}
