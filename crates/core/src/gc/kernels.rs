//! The ECL-GC kernels: init and the shortcut-enabled coloring rounds.

use super::NO_COLOR;
use crate::common::DeviceGraph;
use crate::primitives::AccessPolicy;
use ecl_simt::{
    Ctx, DeviceBuffer, ForEach, FullHooks, Gpu, Hooks, LaunchConfig, NoHooks, StoreVisibility,
};

/// Priority order: largest degree first, vertex id breaking ties.
#[inline]
fn higher_priority(deg_u: u32, u: u32, deg_v: u32, v: u32) -> bool {
    (deg_u, u) > (deg_v, v)
}

/// Launches init + coloring rounds until every vertex is colored; returns
/// the device color array.
///
/// `P` is the policy for the polled color array, `Q` the policy for the
/// shortcut bookkeeping (`minposs`): the baseline reads colors through
/// `volatile` pointers but keeps the shortcut state in plain accesses,
/// which is exactly the split the race-free conversion removes.
pub(super) fn run_on<P: AccessPolicy, Q: AccessPolicy>(
    gpu: &mut Gpu,
    dg: &DeviceGraph,
    visibility: StoreVisibility,
) -> DeviceBuffer<u32> {
    run_on_with::<P, Q>(gpu, dg, visibility, true)
}

/// Like [`run_on`], with the ECL-GC shortcuts optionally disabled — the
/// ablation that isolates what the shortcutting optimization buys (the
/// ECL-GC paper's 2.9x parallelism claim).
pub(super) fn run_on_with<P: AccessPolicy, Q: AccessPolicy>(
    gpu: &mut Gpu,
    dg: &DeviceGraph,
    visibility: StoreVisibility,
    shortcuts: bool,
) -> DeviceBuffer<u32> {
    if gpu.fast_path_eligible() {
        run_on_hooks::<P, Q, NoHooks>(gpu, dg, visibility, shortcuts)
    } else {
        run_on_hooks::<P, Q, FullHooks>(gpu, dg, visibility, shortcuts)
    }
}

fn run_on_hooks<P: AccessPolicy, Q: AccessPolicy, H: Hooks>(
    gpu: &mut Gpu,
    dg: &DeviceGraph,
    visibility: StoreVisibility,
    shortcuts: bool,
) -> DeviceBuffer<u32> {
    let n = dg.n;
    let colors = gpu.alloc_named::<u32>(n as usize, "color");
    let minposs = gpu.alloc_named::<u32>(n as usize, "minposs");
    let remaining = gpu.alloc_named::<u32>(1, "remaining");
    let g = *dg;

    gpu.launch_with::<H, _>(
        LaunchConfig::for_items(n).with_visibility(visibility),
        ForEach::with_hooks::<H>("gc_init", n, move |ctx, v| {
            P::write_u32(ctx, colors.at(v as usize), NO_COLOR);
            Q::write_u32(ctx, minposs.at(v as usize), 0);
        }),
    );

    loop {
        gpu.write_scalar(&remaining, 0, 0u32);
        gpu.launch_with::<H, _>(
            LaunchConfig::for_items(n).with_visibility(visibility),
            ForEach::with_hooks::<H>("gc_round", n, move |ctx, v| {
                round_body::<P, Q, H>(ctx, &g, colors, minposs, remaining, v, shortcuts);
            })
            .with_chunk(4),
        );
        if gpu.read_scalar(&remaining, 0) == 0 {
            break;
        }
    }

    colors
}

/// One vertex's work in a coloring round.
#[allow(clippy::too_many_arguments)]
fn round_body<P: AccessPolicy, Q: AccessPolicy, H: Hooks>(
    ctx: &mut Ctx<'_, H>,
    g: &DeviceGraph,
    colors: DeviceBuffer<u32>,
    minposs: DeviceBuffer<u32>,
    remaining: DeviceBuffer<u32>,
    v: u32,
    shortcuts: bool,
) {
    if P::read_u32(ctx, colors.at(v as usize)) != NO_COLOR {
        return;
    }
    let begin = ctx.load(g.row_offsets.at(v as usize));
    let end = ctx.load(g.row_offsets.at(v as usize + 1));
    let deg_v = end - begin;

    // Candidate color: the smallest one no already-colored neighbor uses.
    // A 128-bit mask covers almost every vertex; the rare overflow falls
    // back to per-candidate probing.
    let mut used: u128 = 0;
    let mut overflow = false;
    for e in begin..end {
        let u = ctx.load(g.col_indices.at(e as usize));
        let cu = P::read_u32(ctx, colors.at(u as usize));
        if cu != NO_COLOR {
            if cu < 128 {
                used |= 1u128 << cu;
            } else {
                overflow = true;
            }
        }
    }
    ctx.compute(deg_v.max(1));
    let mut candidate = (!used).trailing_zeros();
    if candidate == 128 || overflow {
        candidate = probe_candidate::<P, H>(ctx, g, colors, v, begin, end, candidate);
    }

    // Shortcut check: a higher-priority uncolored neighbor blocks `candidate`
    // only while its own minimum possible color does not already exceed it
    // (minposs is monotone, so a stale read is a safe lower bound).
    let mut blocked = false;
    for e in begin..end {
        let u = ctx.load(g.col_indices.at(e as usize));
        let cu = P::read_u32(ctx, colors.at(u as usize));
        if cu != NO_COLOR {
            if cu == candidate {
                // A neighbor took our candidate between the mask pass and
                // this read: the candidate is stale, recompute next round.
                // Together with the minposs bound this closes the only
                // conflicting-write window — a neighbor that has not yet
                // published `candidate` still has minposs <= candidate, so
                // the uncolored branch below blocks us instead.
                blocked = true;
                break;
            }
            continue;
        }
        let deg_u =
            ctx.load(g.row_offsets.at(u as usize + 1)) - ctx.load(g.row_offsets.at(u as usize));
        if higher_priority(deg_u, u, deg_v, v)
            && (!shortcuts || Q::read_u32(ctx, minposs.at(u as usize)) <= candidate)
        {
            // Without shortcuts this is pure Jones-Plassmann: any uncolored
            // higher-priority neighbor blocks, regardless of its minposs.
            blocked = true;
            break;
        }
    }

    if blocked {
        if shortcuts {
            // Publish our lower bound so lower-priority neighbors can shortcut.
            Q::write_u32(ctx, minposs.at(v as usize), candidate);
        }
        ctx.atomic_add_u32(remaining.at(0), 1);
    } else {
        P::write_u32(ctx, colors.at(v as usize), candidate);
    }
}

/// Fallback candidate search for vertices whose neighborhood uses more than
/// 128 colors: probes candidates one by one (O(d²), vanishingly rare).
fn probe_candidate<P: AccessPolicy, H: Hooks>(
    ctx: &mut Ctx<'_, H>,
    g: &DeviceGraph,
    colors: DeviceBuffer<u32>,
    _v: u32,
    begin: u32,
    end: u32,
    start: u32,
) -> u32 {
    let mut candidate = start;
    'outer: loop {
        for e in begin..end {
            let u = ctx.load(g.col_indices.at(e as usize));
            if P::read_u32(ctx, colors.at(u as usize)) == candidate {
                candidate += 1;
                continue 'outer;
            }
        }
        return candidate;
    }
}
