//! ECL-GC: graph coloring via Jones-Plassmann with the largest-degree-first
//! heuristic and the two ECL-GC shortcut optimizations (paper §II-B-3).
//!
//! Shared state: each vertex's chosen color and its current *minimum
//! possible color* (`minposs`). A vertex may color itself early — before
//! all higher-priority neighbors are colored — when every such neighbor's
//! `minposs` already excludes the candidate color (shortcut 1); publishing
//! `minposs` each round is shortcut 2's bookkeeping that increases
//! parallelism.
//!
//! The baseline accesses both shared arrays with `volatile` loads/stores;
//! the race-free version uses relaxed atomics. Because `volatile` already
//! bypasses the L1 on GPUs, the conversion costs little — the paper's
//! geomean speedups stay within 0.96–1.00.

mod kernels;
pub mod native;
mod verify;

pub use verify::verify_coloring;

use crate::common::{DeviceGraph, Digest, SimOptions};
use crate::primitives::AccessPolicy;
use ecl_graph::Csr;
use ecl_simt::{catch_sim, Gpu, GpuConfig, SimError, StoreVisibility};

/// Sentinel for "not yet colored".
pub const NO_COLOR: u32 = u32::MAX;

/// Outcome of a GC run.
#[derive(Debug, Clone)]
pub struct GcResult {
    /// Color per vertex.
    pub colors: Vec<u32>,
    /// Number of distinct colors used.
    pub num_colors: usize,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Per-launch profile.
    pub stats: ecl_simt::metrics::RunStats,
    /// Digest: hashes validity only (the shortcuts make the exact coloring
    /// timing-dependent, as in the real ECL-GC).
    pub digest: u64,
}

/// Runs ECL-GC with the given access policies on a fresh simulated GPU:
/// `P` covers the polled color array, `Q` the shortcut `minposs` array (the
/// baseline uses `volatile` colors but plain shortcut state; the race-free
/// conversion makes both atomic).
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn run<P: AccessPolicy, Q: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
) -> GcResult {
    run_with::<P, Q>(g, cfg, seed, visibility, &SimOptions::default())
}

/// [`run`] with simulator options (watchdog budget, fault injection).
pub fn run_with<P: AccessPolicy, Q: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
    opts: &SimOptions,
) -> GcResult {
    assert!(g.num_vertices() > 0, "empty graph");
    let mut gpu = opts.make_gpu(cfg, seed);
    let dg = DeviceGraph::upload(&mut gpu, g);
    let colors_buf = kernels::run_on::<P, Q>(&mut gpu, &dg, visibility);
    let colors = gpu.download(&colors_buf);
    let mut distinct = colors.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let valid = verify_coloring(g, &colors);
    let mut digest = Digest::new();
    digest.push(valid as u64);
    GcResult {
        num_colors: distinct.len(),
        cycles: gpu.elapsed_cycles(),
        stats: gpu.run_stats().clone(),
        digest: digest.finish(),
        colors,
    }
}

/// [`run_with`], catching launch failures (watchdog timeout, out-of-bounds
/// access, livelock, barrier divergence, fault budget) as typed errors
/// instead of panicking.
pub fn run_checked<P: AccessPolicy, Q: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
    opts: &SimOptions,
) -> Result<GcResult, SimError> {
    catch_sim(|| run_with::<P, Q>(g, cfg, seed, visibility, opts))
}

/// Runs pure Jones-Plassmann largest-degree-first coloring *without* the
/// two ECL-GC shortcuts — the ablation baseline isolating what shortcutting
/// buys. A vertex only colors once every higher-priority neighbor has.
///
/// Unlike the shortcut version, pure JP is deterministic: the coloring is
/// the sequential greedy in priority order regardless of timing.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn run_without_shortcuts<P: AccessPolicy, Q: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
) -> GcResult {
    assert!(g.num_vertices() > 0, "empty graph");
    let mut gpu = Gpu::new(cfg.clone());
    gpu.set_seed(seed);
    let dg = DeviceGraph::upload(&mut gpu, g);
    let colors_buf = kernels::run_on_with::<P, Q>(&mut gpu, &dg, visibility, false);
    let colors = gpu.download(&colors_buf);
    let mut distinct = colors.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let valid = verify_coloring(g, &colors);
    let mut digest = Digest::new();
    digest.push(valid as u64);
    GcResult {
        num_colors: distinct.len(),
        cycles: gpu.elapsed_cycles(),
        stats: gpu.run_stats().clone(),
        digest: digest.finish(),
        colors,
    }
}

/// Runs the ECL-GC kernels on a caller-provided GPU (e.g. with tracing
/// enabled for the race detector). Returns the host colors.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn run_traced<P: AccessPolicy, Q: AccessPolicy>(
    gpu: &mut Gpu,
    g: &Csr,
    visibility: StoreVisibility,
) -> Vec<u32> {
    assert!(g.num_vertices() > 0, "empty graph");
    let dg = DeviceGraph::upload(gpu, g);
    let colors = kernels::run_on::<P, Q>(gpu, &dg, visibility);
    gpu.download(&colors)
}

/// Access-level IR of the ECL-GC kernels under the canonical policy pair
/// for the variant. Both the `color` and `minposs` traffic are
/// policy-mediated (P and Q respectively), so every non-RMW op is
/// repairable.
pub fn ir(race_free: bool) -> Vec<ecl_simt::KernelIr> {
    use crate::contracts::*;
    use crate::primitives::{Atomic, Plain, Volatile};
    use ecl_simt::BenignClass::{MonotonicUpdate, RePropagatedLostUpdate};
    use ecl_simt::KernelIr;

    fn build<P: AccessPolicy, Q: AccessPolicy>() -> Vec<KernelIr> {
        vec![
            KernelIr::new("gc_init")
                .op(ir_word_write::<P>("color", own4()))
                .op(ir_word_write::<Q>("minposs", own4())),
            // `gc_round` is chunked, so the own-vertex writes are first-touch
            // owned rather than grid-stride owned.
            KernelIr::new("gc_round")
                .ops(ir_csr_loads(&["row_offsets", "col_indices"]))
                .op(ir_word_read::<P>("color", Arbitrary).benign(RePropagatedLostUpdate))
                .op(ir_word_write::<P>("color", claim4()).benign(RePropagatedLostUpdate))
                .op(ir_word_read::<Q>("minposs", Arbitrary).benign(MonotonicUpdate))
                .op(ir_word_write::<Q>("minposs", claim4()).benign(MonotonicUpdate))
                .op(ir_atomic_rmw("remaining")),
        ]
    }
    if race_free {
        build::<Atomic, Atomic>()
    } else {
        build::<Volatile, Plain>()
    }
}

/// Access contracts for the ECL-GC kernels under the canonical policy pair
/// for the variant (`<Volatile, Plain>` baseline — volatile color polling,
/// plain shortcut bookkeeping — `<Atomic, Atomic>` race-free).
pub fn contracts(race_free: bool) -> Vec<ecl_simt::KernelContract> {
    use crate::contracts::*;
    use crate::primitives::{Atomic, Plain, Volatile};
    use ecl_simt::BenignClass::{MonotonicUpdate, RePropagatedLostUpdate};

    fn build<P: AccessPolicy, Q: AccessPolicy>() -> Vec<ecl_simt::KernelContract> {
        use ecl_simt::KernelContract;
        vec![
            KernelContract::new("gc_init")
                .entry(word_write::<P>("color", own4()))
                .entry(word_write::<Q>("minposs", own4())),
            // `gc_round` is chunked, so the own-vertex writes are first-touch
            // owned rather than grid-stride owned.
            KernelContract::new("gc_round")
                .entries(csr_loads(&["row_offsets", "col_indices"]))
                .entry(word_read::<P>("color", Arbitrary).benign(RePropagatedLostUpdate))
                .entry(word_write::<P>("color", claim4()).benign(RePropagatedLostUpdate))
                .entry(word_read::<Q>("minposs", Arbitrary).benign(MonotonicUpdate))
                .entry(word_write::<Q>("minposs", claim4()).benign(MonotonicUpdate))
                .entry(atomic_rmw("remaining")),
        ]
    }
    if race_free {
        build::<Atomic, Atomic>()
    } else {
        build::<Volatile, Plain>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::{Atomic, Plain, Volatile};
    use ecl_graph::gen;

    fn check_graph(g: &Csr) {
        let cfg = GpuConfig::test_tiny();
        let base = run::<Volatile, Plain>(g, &cfg, 1, StoreVisibility::DeferUntilYield);
        let free = run::<Atomic, Atomic>(g, &cfg, 1, StoreVisibility::Immediate);
        assert!(
            verify_coloring(g, &base.colors),
            "baseline coloring invalid"
        );
        assert!(
            verify_coloring(g, &free.colors),
            "race-free coloring invalid"
        );
        // Both must be proper colorings; the exact colors may differ (the
        // shortcuts make coloring order timing-dependent), but quality
        // should be in the same ballpark.
        assert!(free.num_colors <= 2 * base.num_colors + 2);
        assert!(base.num_colors <= 2 * free.num_colors + 2);
    }

    #[test]
    fn colors_rmat() {
        check_graph(&gen::rmat(512, 2048, 0.57, 0.19, 0.19, true, 3));
    }

    #[test]
    fn colors_torus_with_few_colors() {
        let g = gen::grid2d_torus(16, 16);
        let r = run::<Atomic, Atomic>(&g, &GpuConfig::test_tiny(), 1, StoreVisibility::Immediate);
        assert!(verify_coloring(&g, &r.colors));
        // A 4-regular toroidal grid colors with very few colors.
        assert!(r.num_colors <= 5, "used {} colors", r.num_colors);
    }

    #[test]
    fn colors_clique_exactly() {
        // A k-clique needs exactly k colors; greedy JP achieves it.
        let mut b = ecl_graph::CsrBuilder::new(6).symmetric(true);
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                b.add_edge(i, j);
            }
        }
        let g = b.build();
        let r = run::<Volatile, Plain>(
            &g,
            &GpuConfig::test_tiny(),
            1,
            StoreVisibility::DeferUntilYield,
        );
        assert!(verify_coloring(&g, &r.colors));
        assert_eq!(r.num_colors, 6);
    }

    #[test]
    fn colors_prefattach() {
        check_graph(&gen::pref_attach(400, 4, 0.05, 2));
    }

    #[test]
    fn edgeless_graph_uses_one_color() {
        let g = ecl_graph::CsrBuilder::new(8).build();
        let r = run::<Atomic, Atomic>(&g, &GpuConfig::test_tiny(), 1, StoreVisibility::Immediate);
        assert_eq!(r.num_colors, 1);
    }

    #[test]
    fn no_shortcut_variant_is_pure_jp() {
        // Pure JP is deterministic and valid; the shortcuts must not use
        // more colors than it by more than a whisker (ECL-GC: "as few or
        // fewer colors").
        let g = gen::rmat(384, 1536, 0.5, 0.2, 0.2, true, 9);
        let cfg = GpuConfig::test_tiny();
        let plain_jp =
            run_without_shortcuts::<Atomic, Atomic>(&g, &cfg, 1, StoreVisibility::Immediate);
        let plain_jp2 =
            run_without_shortcuts::<Atomic, Atomic>(&g, &cfg, 55, StoreVisibility::Immediate);
        assert!(verify_coloring(&g, &plain_jp.colors));
        // Determinism across seeds (the shortcut version does not have this).
        assert_eq!(plain_jp.colors, plain_jp2.colors);
        let shortcut = run::<Atomic, Atomic>(&g, &cfg, 1, StoreVisibility::Immediate);
        assert!(shortcut.num_colors <= plain_jp.num_colors + 2);
    }

    #[test]
    fn shortcuts_reduce_coloring_rounds() {
        // The whole point of the ECL-GC shortcuts: more parallelism, fewer
        // rounds. Compare kernel-launch counts on a priority-chain-rich graph.
        let g = gen::pref_attach(600, 5, 0.05, 4);
        let cfg = GpuConfig::test_tiny();
        let with = run::<Atomic, Atomic>(&g, &cfg, 1, StoreVisibility::Immediate);
        let without =
            run_without_shortcuts::<Atomic, Atomic>(&g, &cfg, 1, StoreVisibility::Immediate);
        assert!(
            with.stats.num_launches() <= without.stats.num_launches(),
            "shortcuts should never need more rounds ({} vs {})",
            with.stats.num_launches(),
            without.stats.num_launches()
        );
    }
}
