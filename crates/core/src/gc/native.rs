//! ECL-GC on host threads: Jones-Plassmann largest-degree-first with both
//! ECL-GC shortcuts, rounds driven over a double-buffered uncolored
//! worklist instead of host-relaunched full sweeps.
//!
//! The shortcuts make the exact coloring timing-dependent (as in real
//! ECL-GC), so the cross-backend digest hashes only validity; the
//! differential harness additionally checks color-count quality bounds.

use crate::common::Digest;
use ecl_graph::Csr;
use ecl_native::{run_team, NativePolicy, WordArr, Worklist};

use super::{verify_coloring, GcResult, NO_COLOR};

/// Priority order: largest degree first, vertex id breaking ties.
#[inline]
fn higher_priority(deg_u: u32, u: u32, deg_v: u32, v: u32) -> bool {
    (deg_u, u) > (deg_v, v)
}

/// One vertex's work in a coloring round: the host twin of the simulator's
/// `round_body`. Returns `true` once `v` is colored.
fn try_color<P: NativePolicy>(
    row: &[u32],
    col: &[u32],
    colors: &WordArr,
    minposs: &WordArr,
    v: u32,
) -> bool {
    let (begin, end) = (row[v as usize] as usize, row[v as usize + 1] as usize);
    let deg_v = (end - begin) as u32;

    // Candidate color: the smallest one no already-colored neighbor uses.
    let mut used: u128 = 0;
    let mut overflow = false;
    for &u in &col[begin..end] {
        let cu = P::load_u32(colors.at(u as usize));
        if cu != NO_COLOR {
            if cu < 128 {
                used |= 1u128 << cu;
            } else {
                overflow = true;
            }
        }
    }
    let mut candidate = (!used).trailing_zeros();
    if candidate == 128 || overflow {
        candidate = probe_candidate::<P>(col, colors, begin, end, candidate);
    }

    // Shortcut check: an uncolored higher-priority neighbor blocks only
    // while its published minposs does not already exceed the candidate
    // (minposs is monotone, so a stale read is a safe lower bound).
    let mut blocked = false;
    for &u in &col[begin..end] {
        let cu = P::load_u32(colors.at(u as usize));
        if cu != NO_COLOR {
            if cu == candidate {
                // A neighbor took our candidate after the mask was built:
                // the candidate is stale, recompute next round. Together
                // with the minposs bound this makes the round race-proof —
                // a neighbor about to take `candidate` still has
                // minposs <= candidate, so the uncolored branch blocks us.
                blocked = true;
                break;
            }
            continue;
        }
        let deg_u = row[u as usize + 1] - row[u as usize];
        if higher_priority(deg_u, u, deg_v, v) && P::load_u32(minposs.at(u as usize)) <= candidate {
            blocked = true;
            break;
        }
    }

    if blocked {
        P::store_u32(minposs.at(v as usize), candidate);
        false
    } else {
        P::publish_u32(colors.at(v as usize), candidate);
        true
    }
}

/// Fallback candidate search for >128-color neighborhoods (O(d²), rare).
fn probe_candidate<P: NativePolicy>(
    col: &[u32],
    colors: &WordArr,
    begin: usize,
    end: usize,
    start: u32,
) -> u32 {
    let mut candidate = start;
    'outer: loop {
        for &u in &col[begin..end] {
            if P::load_u32(colors.at(u as usize)) == candidate {
                candidate += 1;
                continue 'outer;
            }
        }
        return candidate;
    }
}

/// Runs native ECL-GC on `threads` host threads; `seed` perturbs only the
/// schedule.
pub fn run<P: NativePolicy>(g: &Csr, threads: usize, seed: u64) -> GcResult {
    assert!(g.num_vertices() > 0, "empty graph");
    let start = std::time::Instant::now();
    let n = g.num_vertices();
    let row = g.row_offsets();
    let col = g.col_indices();

    let colors = WordArr::new(n, 0);
    let minposs = WordArr::new(n, 0);
    let a = Worklist::new(threads);
    let b = Worklist::new(threads);

    run_team(threads, seed, |ctx| {
        {
            let mut h = a.handle(ctx.tid);
            for v in ctx.my_block(n) {
                P::store_u32(colors.at(v), NO_COLOR);
                P::store_u32(minposs.at(v), 0);
                h.push(v as u64);
            }
            h.flush();
        }
        ctx.barrier();

        let (mut cur, mut next) = (&a, &b);
        loop {
            {
                let mut hc = cur.handle(ctx.tid);
                let mut hn = next.handle(ctx.tid);
                while let Some(chunk) = hc.pop_chunk() {
                    for item in chunk {
                        let v = item as u32;
                        if P::load_u32(colors.at(v as usize)) == NO_COLOR
                            && !try_color::<P>(row, col, &colors, &minposs, v)
                        {
                            hn.push(item);
                        }
                    }
                }
                hn.flush();
            }
            ctx.barrier();
            if next.is_empty() {
                break;
            }
            std::mem::swap(&mut cur, &mut next);
            ctx.barrier();
        }
    });

    let host_colors = colors.snapshot();
    let mut distinct = host_colors.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let valid = verify_coloring(g, &host_colors);
    let mut digest = Digest::new();
    digest.push(valid as u64);
    GcResult {
        num_colors: distinct.len(),
        cycles: start.elapsed().as_nanos() as u64,
        stats: Default::default(),
        digest: digest.finish(),
        colors: host_colors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::gen;
    use ecl_native::{Baseline, RaceFree};

    #[test]
    fn both_policies_color_properly() {
        let g = gen::rmat(512, 2048, 0.57, 0.19, 0.19, true, 3);
        let b = run::<Baseline>(&g, 4, 1);
        let f = run::<RaceFree>(&g, 4, 2);
        assert!(verify_coloring(&g, &b.colors));
        assert!(verify_coloring(&g, &f.colors));
        assert!(f.num_colors <= 2 * b.num_colors + 2);
        assert!(b.num_colors <= 2 * f.num_colors + 2);
    }

    #[test]
    fn clique_needs_exactly_k_colors() {
        let mut bld = ecl_graph::CsrBuilder::new(6).symmetric(true);
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                bld.add_edge(i, j);
            }
        }
        let g = bld.build();
        let r = run::<RaceFree>(&g, 4, 0);
        assert!(verify_coloring(&g, &r.colors));
        assert_eq!(r.num_colors, 6);
    }
}
