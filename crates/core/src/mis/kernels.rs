//! The ECL-MIS kernels: priority init and the asynchronous compute kernel.

use super::{priority, IN, OUT};
use crate::common::DeviceGraph;
use crate::primitives::AccessPolicy;
use ecl_simt::{
    Ctx, DeviceBuffer, ForEach, FullHooks, Gpu, Hooks, Kernel, LaunchConfig, NoHooks, Step,
    StoreVisibility, ThreadInfo,
};
use std::marker::PhantomData;

/// Launches init + compute; returns the device status array.
///
/// Dispatches to the monomorphized fast path when no hooks are armed.
pub(super) fn run_on<P: AccessPolicy>(
    gpu: &mut Gpu,
    dg: &DeviceGraph,
    visibility: StoreVisibility,
) -> DeviceBuffer<u8> {
    if gpu.fast_path_eligible() {
        run_on_hooks::<P, NoHooks>(gpu, dg, visibility)
    } else {
        run_on_hooks::<P, FullHooks>(gpu, dg, visibility)
    }
}

fn run_on_hooks<P: AccessPolicy, H: Hooks>(
    gpu: &mut Gpu,
    dg: &DeviceGraph,
    visibility: StoreVisibility,
) -> DeviceBuffer<u8> {
    let n = dg.n;
    // Pad to a multiple of 4 so the race-free variant's int-wide accesses
    // (Fig. 3) stay in bounds.
    let statuses = gpu.alloc_named::<u8>(((n as usize) + 3) & !3, "node_stat");
    let g = *dg;

    gpu.launch_with::<H, _>(
        LaunchConfig::for_items(n).with_visibility(visibility),
        ForEach::with_hooks::<H>("mis_init", n, move |ctx, v| {
            let begin = ctx.load(g.row_offsets.at(v as usize));
            let end = ctx.load(g.row_offsets.at(v as usize + 1));
            ctx.compute(4);
            P::write_byte(ctx, statuses.as_ptr(), v, priority(v, end - begin));
        }),
    );

    // ECL-MIS runs persistent threads: each owns a grid-stride slice of
    // vertices and keeps polling until all of them are decided. Sizing the
    // grid well below one-thread-per-vertex keeps threads alive across
    // rounds, which is where the compiler's deferred status writes delay
    // the baseline.
    let compute_launch = LaunchConfig {
        grid_blocks: n.div_ceil(256 * 4).clamp(1, 96),
        block_threads: 256,
        store_visibility: visibility,
        shared_bytes: 0,
        exact_geometry: false,
    };
    gpu.launch_with::<H, _>(
        compute_launch,
        MisComputeKernel::<P> {
            g,
            statuses,
            n,
            _policy: PhantomData,
        },
    );

    statuses
}

/// The synchronous (round-based) alternative: the host relaunches a sweep
/// kernel until every vertex is decided — the textbook Luby structure that
/// ECL-MIS's asynchronous single-kernel design improves on. Used by the
/// ablation study; produces the identical set.
pub(super) fn run_synchronous_on<P: AccessPolicy>(
    gpu: &mut Gpu,
    dg: &DeviceGraph,
    visibility: StoreVisibility,
) -> DeviceBuffer<u8> {
    if gpu.fast_path_eligible() {
        run_synchronous_hooks::<P, NoHooks>(gpu, dg, visibility)
    } else {
        run_synchronous_hooks::<P, FullHooks>(gpu, dg, visibility)
    }
}

fn run_synchronous_hooks<P: AccessPolicy, H: Hooks>(
    gpu: &mut Gpu,
    dg: &DeviceGraph,
    visibility: StoreVisibility,
) -> DeviceBuffer<u8> {
    let n = dg.n;
    let statuses = gpu.alloc_named::<u8>(((n as usize) + 3) & !3, "node_stat");
    let undecided = gpu.alloc_named::<u32>(1, "undecided");
    let g = *dg;

    gpu.launch_with::<H, _>(
        LaunchConfig::for_items(n).with_visibility(visibility),
        ForEach::with_hooks::<H>("mis_sync_init", n, move |ctx, v| {
            let begin = ctx.load(g.row_offsets.at(v as usize));
            let end = ctx.load(g.row_offsets.at(v as usize + 1));
            ctx.compute(4);
            P::write_byte(ctx, statuses.as_ptr(), v, priority(v, end - begin));
        }),
    );

    loop {
        gpu.write_scalar(&undecided, 0, 0u32);
        gpu.launch_with::<H, _>(
            LaunchConfig::for_items(n).with_visibility(visibility),
            ForEach::with_hooks::<H>("mis_sync_round", n, move |ctx, v| {
                let sv = P::read_byte(ctx, statuses.as_ptr(), v);
                if sv < 2 {
                    return;
                }
                let kernel = MisComputeKernel::<P> {
                    g,
                    statuses,
                    n: g.n,
                    _policy: PhantomData,
                };
                if !kernel.try_decide(ctx, v, sv) {
                    ctx.atomic_add_u32(undecided.at(0), 1);
                }
            })
            .with_chunk(8),
        );
        if gpu.read_scalar(&undecided, 0) == 0 {
            break;
        }
    }

    statuses
}

/// The asynchronous compute kernel: each thread owns a grid-stride slice of
/// vertices and keeps polling until every owned vertex is decided — the
/// paper's "threads repeatedly poll neighbors and eventually update a
/// vertex" structure.
struct MisComputeKernel<P> {
    g: DeviceGraph,
    statuses: DeviceBuffer<u8>,
    n: u32,
    _policy: PhantomData<P>,
}

impl<P: AccessPolicy, H: Hooks> Kernel<H> for MisComputeKernel<P> {
    /// The thread's starting vertex (its grid-stride identity).
    type State = u32;

    fn name(&self) -> &str {
        "mis_compute"
    }

    fn init(&self, info: ThreadInfo) -> u32 {
        info.global_id
    }

    fn step(&self, first: &mut u32, ctx: &mut Ctx<'_, H>) -> Step {
        let stride = ctx.num_threads();
        let mut undecided_left = false;
        let mut v = *first;
        while v < self.n {
            let s = P::read_byte(ctx, self.statuses.as_ptr(), v);
            if s >= 2 && !self.try_decide(ctx, v, s) {
                undecided_left = true;
            }
            v += stride;
        }
        if undecided_left {
            // Spin: poll again after the other threads have run.
            Step::Yield
        } else {
            Step::Done
        }
    }
}

impl<P: AccessPolicy> MisComputeKernel<P> {
    /// Tries to decide vertex `v` (current priority byte `sv`). Returns
    /// `true` if the vertex is now decided.
    fn try_decide<H: Hooks>(&self, ctx: &mut Ctx<'_, H>, v: u32, sv: u8) -> bool {
        let begin = ctx.load(self.g.row_offsets.at(v as usize));
        let end = ctx.load(self.g.row_offsets.at(v as usize + 1));
        let mut highest = true;
        for e in begin..end {
            let u = ctx.load(self.g.col_indices.at(e as usize));
            let su = P::read_byte(ctx, self.statuses.as_ptr(), u);
            if su == IN {
                // An IN neighbor excludes v immediately.
                P::write_byte(ctx, self.statuses.as_ptr(), v, OUT);
                return true;
            }
            if su >= 2 && (su, u) > (sv, v) {
                highest = false;
            }
        }
        if !highest {
            return false;
        }
        // v beats all undecided neighbors: it joins the set and excludes its
        // neighbors — the shared byte writes at the heart of the races.
        P::write_byte(ctx, self.statuses.as_ptr(), v, IN);
        for e in begin..end {
            let u = ctx.load(self.g.col_indices.at(e as usize));
            let su = P::read_byte(ctx, self.statuses.as_ptr(), u);
            if su >= 2 {
                P::write_byte(ctx, self.statuses.as_ptr(), u, OUT);
            }
        }
        true
    }
}
