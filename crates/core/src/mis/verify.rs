//! Validation for maximal independent sets.

use ecl_graph::Csr;

/// Checks independence (no two set members are adjacent) and maximality
/// (every non-member has a member neighbor).
pub fn verify_mis(g: &Csr, in_set: &[bool]) -> bool {
    if in_set.len() != g.num_vertices() {
        return false;
    }
    for v in 0..g.num_vertices() {
        if in_set[v] {
            // Independence.
            if g.neighbors(v).iter().any(|&u| in_set[u as usize]) {
                return false;
            }
        } else {
            // Maximality: v must be excluded for a reason.
            if !g.neighbors(v).iter().any(|&u| in_set[u as usize]) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::CsrBuilder;

    fn path4() -> Csr {
        let mut b = CsrBuilder::new(4).symmetric(true);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3);
        b.build()
    }

    #[test]
    fn accepts_valid_mis() {
        assert!(verify_mis(&path4(), &[true, false, true, false]));
        assert!(verify_mis(&path4(), &[false, true, false, true]));
    }

    #[test]
    fn rejects_adjacent_members() {
        assert!(!verify_mis(&path4(), &[true, true, false, true]));
    }

    #[test]
    fn rejects_non_maximal_set() {
        // Vertex 3 could be added: not maximal.
        assert!(!verify_mis(&path4(), &[true, false, false, false]));
    }

    #[test]
    fn rejects_wrong_length() {
        assert!(!verify_mis(&path4(), &[true, false]));
    }

    #[test]
    fn isolated_vertices_must_be_in() {
        let g = CsrBuilder::new(3).build(); // no edges
        assert!(verify_mis(&g, &[true, true, true]));
        assert!(!verify_mis(&g, &[true, false, true]));
    }
}
