//! ECL-MIS on host threads: the identical priority-ordered decision rule,
//! driven round-by-round over a double-buffered undecided worklist instead
//! of the persistent-thread polling kernel.
//!
//! The `(priority, id)` total order makes the found set unique (see the
//! module docs on [`super::priority`]), so any schedule — racy baseline or
//! race-free — converges to the same digest as the simulator.

use crate::common::Digest;
use ecl_graph::Csr;
use ecl_native::{run_team, ByteArr, NativePolicy, Worklist};

use super::{priority, MisResult, IN, OUT};

/// Tries to decide vertex `v` (current priority byte `sv`); the host-thread
/// twin of the simulator kernel's `try_decide`. Returns `true` once `v` is
/// decided.
fn try_decide<P: NativePolicy>(
    row: &[u32],
    col: &[u32],
    statuses: &ByteArr,
    v: u32,
    sv: u8,
) -> bool {
    let (begin, end) = (row[v as usize] as usize, row[v as usize + 1] as usize);
    let mut highest = true;
    for &u in &col[begin..end] {
        let su = P::load_u8(statuses.at(u as usize));
        if su == IN {
            P::publish_u8(statuses.at(v as usize), OUT);
            return true;
        }
        if su >= 2 && (su, u) > (sv, v) {
            highest = false;
        }
    }
    if !highest {
        return false;
    }
    P::publish_u8(statuses.at(v as usize), IN);
    for &u in &col[begin..end] {
        let su = P::load_u8(statuses.at(u as usize));
        if su >= 2 {
            P::publish_u8(statuses.at(u as usize), OUT);
        }
    }
    true
}

/// Runs native ECL-MIS on `threads` host threads; `seed` perturbs only the
/// schedule.
pub fn run<P: NativePolicy>(g: &Csr, threads: usize, seed: u64) -> MisResult {
    assert!(g.num_vertices() > 0, "empty graph");
    let start = std::time::Instant::now();
    let n = g.num_vertices();
    let row = g.row_offsets();
    let col = g.col_indices();

    let statuses = ByteArr::new(n, 0);
    let a = Worklist::new(threads);
    let b = Worklist::new(threads);

    run_team(threads, seed, |ctx| {
        // Init: every vertex gets its priority byte and enters round 0.
        {
            let mut h = a.handle(ctx.tid);
            for v in ctx.my_block(n) {
                let deg = row[v + 1] - row[v];
                P::store_u8(statuses.at(v), priority(v as u32, deg));
                h.push(v as u64);
            }
            h.flush();
        }
        ctx.barrier();

        // Rounds: drain the current undecided list, push survivors to the
        // next one; stop when a round decides everything left.
        let (mut cur, mut next) = (&a, &b);
        loop {
            {
                let mut hc = cur.handle(ctx.tid);
                let mut hn = next.handle(ctx.tid);
                while let Some(chunk) = hc.pop_chunk() {
                    for item in chunk {
                        let v = item as u32;
                        let sv = P::load_u8(statuses.at(v as usize));
                        if sv >= 2 && !try_decide::<P>(row, col, &statuses, v, sv) {
                            hn.push(item);
                        }
                    }
                }
                hn.flush();
            }
            ctx.barrier();
            if next.is_empty() {
                break;
            }
            std::mem::swap(&mut cur, &mut next);
            ctx.barrier();
        }
    });

    let host = statuses.snapshot();
    let in_set: Vec<bool> = host.iter().map(|&s| s == IN).collect();
    let mut digest = Digest::new();
    let mut set_size = 0;
    for (v, &inside) in in_set.iter().enumerate() {
        if inside {
            digest.push(v as u64);
            set_size += 1;
        }
    }
    MisResult {
        set_size,
        cycles: start.elapsed().as_nanos() as u64,
        stats: Default::default(),
        digest: digest.finish(),
        in_set,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::verify_mis;
    use ecl_graph::gen;
    use ecl_native::{Baseline, RaceFree};

    #[test]
    fn both_policies_find_the_priority_mis() {
        let g = gen::rmat(512, 2048, 0.57, 0.19, 0.19, true, 4);
        let b = run::<Baseline>(&g, 4, 1);
        let f = run::<RaceFree>(&g, 4, 2);
        assert!(verify_mis(&g, &b.in_set));
        assert!(verify_mis(&g, &f.in_set));
        assert_eq!(b.digest, f.digest);
    }

    #[test]
    fn edgeless_graph_selects_everything() {
        let g = ecl_graph::CsrBuilder::new(10).build();
        let r = run::<RaceFree>(&g, 3, 0);
        assert_eq!(r.set_size, 10);
    }
}
