//! ECL-MIS: maximal independent set via an asynchronous, priority-ordered
//! variant of Luby's algorithm (paper §II-B-4).
//!
//! Each vertex's status and priority share a single byte (`0` = OUT, `1` =
//! IN, `2..=255` = still-undecided priority). Priorities are partially
//! random and inversely proportional to degree, which makes the found sets
//! large. Threads repeatedly poll their vertices' neighbors and decide a
//! vertex once every higher-priority neighbor has been decided.
//!
//! This is the code the paper found to get *faster* when made race-free: the
//! baseline's plain byte accesses let the compiler defer status writes, so
//! other threads keep polling stale bytes for extra rounds, while the
//! race-free version's atomic accesses (via the Fig. 3/4 typecast-and-mask
//! helpers) publish decisions immediately.

mod kernels;
pub mod native;
mod verify;

pub use verify::verify_mis;

use crate::common::{DeviceGraph, Digest, SimOptions};
use crate::primitives::AccessPolicy;
use ecl_graph::Csr;
use ecl_simt::{catch_sim, Gpu, GpuConfig, SimError, StoreVisibility};

/// Status byte value for vertices excluded from the set.
pub const OUT: u8 = 0;
/// Status byte value for vertices in the set.
pub const IN: u8 = 1;

/// Outcome of an MIS run.
#[derive(Debug, Clone)]
pub struct MisResult {
    /// `true` for vertices in the independent set.
    pub in_set: Vec<bool>,
    /// Number of vertices in the set.
    pub set_size: usize,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Per-launch profile.
    pub stats: ecl_simt::metrics::RunStats,
    /// Digest of the set (deterministic: the priority order fixes the MIS).
    pub digest: u64,
}

/// Runs ECL-MIS with the given access policy on a fresh simulated GPU.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn run<P: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
) -> MisResult {
    run_with::<P>(g, cfg, seed, visibility, &SimOptions::default())
}

/// [`run`] with simulator options (watchdog budget, fault injection).
pub fn run_with<P: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
    opts: &SimOptions,
) -> MisResult {
    assert!(g.num_vertices() > 0, "empty graph");
    let mut gpu = opts.make_gpu(cfg, seed);
    let dg = DeviceGraph::upload(&mut gpu, g);
    let statuses = kernels::run_on::<P>(&mut gpu, &dg, visibility);
    let mut host: Vec<u8> = gpu.download(&statuses);
    host.truncate(g.num_vertices());
    let in_set: Vec<bool> = host.iter().map(|&s| s == IN).collect();
    let mut digest = Digest::new();
    let mut set_size = 0;
    for (v, &inside) in in_set.iter().enumerate() {
        if inside {
            digest.push(v as u64);
            set_size += 1;
        }
    }
    MisResult {
        set_size,
        cycles: gpu.elapsed_cycles(),
        stats: gpu.run_stats().clone(),
        digest: digest.finish(),
        in_set,
    }
}

/// [`run_with`], catching launch failures (watchdog timeout, out-of-bounds
/// access, livelock, barrier divergence, fault budget) as typed errors
/// instead of panicking.
pub fn run_checked<P: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
    opts: &SimOptions,
) -> Result<MisResult, SimError> {
    catch_sim(|| run_with::<P>(g, cfg, seed, visibility, opts))
}

/// Runs MIS with the *synchronous* round-based (textbook Luby) structure
/// instead of ECL-MIS's asynchronous persistent-thread kernel — the design
/// ablation isolating what asynchrony buys. Produces the identical set.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn run_synchronous<P: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
) -> MisResult {
    assert!(g.num_vertices() > 0, "empty graph");
    let mut gpu = Gpu::new(cfg.clone());
    gpu.set_seed(seed);
    let dg = DeviceGraph::upload(&mut gpu, g);
    let statuses = kernels::run_synchronous_on::<P>(&mut gpu, &dg, visibility);
    let mut host: Vec<u8> = gpu.download(&statuses);
    host.truncate(g.num_vertices());
    let in_set: Vec<bool> = host.iter().map(|&s| s == IN).collect();
    let mut digest = Digest::new();
    let mut set_size = 0;
    for (v, &inside) in in_set.iter().enumerate() {
        if inside {
            digest.push(v as u64);
            set_size += 1;
        }
    }
    MisResult {
        set_size,
        cycles: gpu.elapsed_cycles(),
        stats: gpu.run_stats().clone(),
        digest: digest.finish(),
        in_set,
    }
}

/// Runs the ECL-MIS kernels on a caller-provided GPU (e.g. with tracing
/// enabled for the race detector). Returns the membership flags.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn run_traced<P: AccessPolicy>(
    gpu: &mut Gpu,
    g: &Csr,
    visibility: StoreVisibility,
) -> Vec<bool> {
    assert!(g.num_vertices() > 0, "empty graph");
    let dg = DeviceGraph::upload(gpu, g);
    let statuses = kernels::run_on::<P>(gpu, &dg, visibility);
    let mut host: Vec<u8> = gpu.download(&statuses);
    host.truncate(g.num_vertices());
    host.iter().map(|&s| s == IN).collect()
}

/// Access-level IR of the ECL-MIS kernels under the canonical policy for
/// the variant. All `node_stat` traffic is byte-wide and policy-mediated:
/// the atomic mode lowers through the paper's Fig. 3–4 typecast-and-mask
/// transform (word-wide atomic load; `atomicAnd`/CAS-loop store).
pub fn ir(race_free: bool) -> Vec<ecl_simt::KernelIr> {
    use crate::contracts::*;
    use crate::primitives::{Atomic, VolatileReadPlainWrite};
    use ecl_simt::BenignClass::{IdempotentWrite, RePropagatedLostUpdate};
    use ecl_simt::{AccessOp, KernelIr};

    fn build<P: AccessPolicy>() -> Vec<KernelIr> {
        let statuses_poll = || -> Vec<AccessOp> {
            vec![
                ir_byte_read::<P>("node_stat", Arbitrary).benign(RePropagatedLostUpdate),
                ir_byte_write::<P>("node_stat", Arbitrary).benign(IdempotentWrite),
            ]
        };
        let init = |name: &'static str| {
            KernelIr::new(name)
                .ops(ir_csr_loads(&["row_offsets"]))
                .op(ir_byte_write::<P>("node_stat", own1()))
        };
        vec![
            init("mis_init"),
            init("mis_sync_init"),
            KernelIr::new("mis_compute")
                .ops(ir_csr_loads(&["row_offsets", "col_indices"]))
                .ops(statuses_poll()),
            KernelIr::new("mis_sync_round")
                .ops(ir_csr_loads(&["row_offsets", "col_indices"]))
                .ops(statuses_poll())
                .op(ir_atomic_rmw("undecided")),
        ]
    }
    if race_free {
        build::<Atomic>()
    } else {
        build::<VolatileReadPlainWrite>()
    }
}

/// Access contracts for the ECL-MIS kernels (both the asynchronous
/// persistent-thread engine and the synchronous round-based ablation) under
/// the canonical policy for the variant
/// ([`crate::primitives::VolatileReadPlainWrite`] baseline — the split the
/// paper blames for delayed status publication — [`crate::primitives::Atomic`]
/// race-free).
pub fn contracts(race_free: bool) -> Vec<ecl_simt::KernelContract> {
    use crate::contracts::*;
    use crate::primitives::{Atomic, VolatileReadPlainWrite};
    use ecl_simt::BenignClass::{IdempotentWrite, RePropagatedLostUpdate};

    fn build<P: AccessPolicy>() -> Vec<ecl_simt::KernelContract> {
        use ecl_simt::KernelContract;
        let statuses_poll = || -> Vec<FootprintEntry> {
            byte_read_entries::<P>("node_stat", Arbitrary)
                .into_iter()
                .map(|e| e.benign(RePropagatedLostUpdate))
                .chain(
                    byte_write_entries::<P>("node_stat", Arbitrary)
                        .into_iter()
                        .map(|e| e.benign(IdempotentWrite)),
                )
                .collect()
        };
        let init = |name: &str| {
            KernelContract::new(name)
                .entries(csr_loads(&["row_offsets"]))
                .entries(byte_write_entries::<P>("node_stat", own1()))
        };
        vec![
            init("mis_init"),
            init("mis_sync_init"),
            KernelContract::new("mis_compute")
                .entries(csr_loads(&["row_offsets", "col_indices"]))
                .entries(statuses_poll()),
            KernelContract::new("mis_sync_round")
                .entries(csr_loads(&["row_offsets", "col_indices"]))
                .entries(statuses_poll())
                .entry(atomic_rmw("undecided")),
        ]
    }
    if race_free {
        build::<Atomic>()
    } else {
        build::<VolatileReadPlainWrite>()
    }
}

/// The ECL-MIS priority of a vertex: partially random, inversely
/// proportional to degree, always in `2..=255` so it can share the status
/// byte with the OUT/IN markers.
pub fn priority(v: u32, degree: u32) -> u8 {
    // Degree term: low-degree vertices get high base priority (bigger sets).
    let base = 192 / (2 + degree.min(250));
    // Hash jitter breaks ties between equal-degree vertices.
    let mut h = v.wrapping_mul(0x9e37_79b9);
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    let jitter = h % 60;
    (2 + base + jitter).min(255) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::{Atomic, VolatileReadPlainWrite};
    use ecl_graph::gen;

    fn check_graph(g: &Csr) {
        let cfg = GpuConfig::test_tiny();
        let base = run::<VolatileReadPlainWrite>(g, &cfg, 1, StoreVisibility::DeferUntilYield);
        let free = run::<Atomic>(g, &cfg, 1, StoreVisibility::Immediate);
        assert!(verify_mis(g, &base.in_set), "baseline MIS invalid");
        assert!(verify_mis(g, &free.in_set), "race-free MIS invalid");
        // The priority order fixes a unique MIS: both variants and all
        // interleavings must find it.
        assert_eq!(base.digest, free.digest);
        assert_eq!(base.set_size, free.set_size);
    }

    #[test]
    fn variants_agree_on_rmat() {
        check_graph(&gen::rmat(512, 2048, 0.57, 0.19, 0.19, true, 4));
    }

    #[test]
    fn variants_agree_on_torus() {
        check_graph(&gen::grid2d_torus(16, 16));
    }

    #[test]
    fn variants_agree_on_prefattach() {
        check_graph(&gen::pref_attach(400, 4, 0.1, 9));
    }

    #[test]
    fn edgeless_graph_selects_everything() {
        let g = ecl_graph::CsrBuilder::new(10).build();
        let r = run::<Atomic>(&g, &GpuConfig::test_tiny(), 1, StoreVisibility::Immediate);
        assert_eq!(r.set_size, 10);
    }

    #[test]
    fn seeds_do_not_change_the_set() {
        let g = gen::random_uniform(300, 900, true, 6);
        let a = run::<VolatileReadPlainWrite>(
            &g,
            &GpuConfig::test_tiny(),
            1,
            StoreVisibility::DeferUntilYield,
        );
        let b = run::<VolatileReadPlainWrite>(
            &g,
            &GpuConfig::test_tiny(),
            77,
            StoreVisibility::DeferUntilYield,
        );
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn synchronous_variant_finds_the_same_set() {
        let g = gen::rmat(384, 1536, 0.5, 0.2, 0.2, true, 7);
        let cfg = GpuConfig::test_tiny();
        let asynchronous = run::<Atomic>(&g, &cfg, 1, StoreVisibility::Immediate);
        let synchronous = run_synchronous::<Atomic>(&g, &cfg, 1, StoreVisibility::Immediate);
        assert!(verify_mis(&g, &synchronous.in_set));
        assert_eq!(asynchronous.digest, synchronous.digest);
        // The synchronous structure pays a launch per round; the async
        // persistent-thread kernel launches exactly twice (init + compute).
        assert!(synchronous.stats.num_launches() >= asynchronous.stats.num_launches());
    }

    #[test]
    fn priorities_fit_the_status_byte() {
        for v in 0..1000u32 {
            for d in [0u32, 1, 5, 100, 100_000] {
                let p = priority(v, d);
                assert!(p >= 2, "priority {p} collides with OUT/IN markers");
            }
        }
    }

    #[test]
    fn low_degree_gets_higher_base_priority() {
        let avg_low: f64 = (0..500).map(|v| priority(v, 2) as f64).sum::<f64>() / 500.0;
        let avg_high: f64 = (0..500).map(|v| priority(v, 200) as f64).sum::<f64>() / 500.0;
        assert!(avg_low > avg_high + 10.0);
    }
}
