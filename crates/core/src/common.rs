//! Shared host-side plumbing: uploading CSR graphs to the device and hashing
//! solutions for cross-variant comparison.

use crate::primitives::AccessPolicy;
use ecl_graph::Csr;
use ecl_simt::{Ctx, DeviceBuffer, FaultPlan, Gpu, GpuConfig, Hooks};

/// Simulator-level options threaded through an algorithm run: the watchdog
/// budget and an optional fault-injection plan. `Default` is a plain run —
/// no watchdog override, no faults — so existing call sites are unaffected.
#[derive(Debug, Clone, Default)]
pub struct SimOptions {
    /// Per-launch watchdog budget in cycles; `None` keeps the GPU
    /// configuration's default.
    pub watchdog: Option<u64>,
    /// Seeded fault plan to arm before the first launch.
    pub fault: Option<FaultPlan>,
    /// Host wall-clock deadline for the whole run: any launch still running
    /// when it passes fails with [`ecl_simt::SimError::DeadlineExceeded`].
    /// Isolated sweep workers derive this from their cell's wall-clock
    /// budget; it never perturbs runs that finish in time.
    pub deadline: Option<std::time::Instant>,
    /// Per-(kernel, buffer) access-mode table for runs under the
    /// [`crate::primitives::IrDriven`] policy: installed on the device before
    /// any launch so every policy-mediated access resolves its mode from the
    /// synthesized kernel IR instead of a compile-time policy.
    pub mode_table: Option<ecl_simt::ModeTable>,
}

impl SimOptions {
    /// Builds the device every algorithm run starts from: configured,
    /// seeded, and with these options applied.
    pub fn make_gpu(&self, cfg: &GpuConfig, seed: u64) -> Gpu {
        let mut gpu = Gpu::new(cfg.clone());
        gpu.set_seed(seed);
        if let Some(budget) = self.watchdog {
            gpu.set_watchdog(Some(budget));
        }
        if let Some(deadline) = self.deadline {
            gpu.set_deadline(Some(deadline));
        }
        if let Some(plan) = &self.fault {
            let mut plan = plan.clone();
            // Transient faults are i.i.d. across reruns: mixing the run seed
            // into the plan seed gives a retry a fresh fault schedule, not a
            // replay of the one that just corrupted it. Still deterministic
            // for a fixed (plan seed, run seed) pair.
            plan.seed ^= seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            gpu.set_fault_plan(plan);
        }
        if let Some(table) = &self.mode_table {
            gpu.install_mode_table(table.clone());
        }
        gpu
    }
}

/// A CSR graph resident in simulated device memory.
#[derive(Debug, Clone, Copy)]
pub struct DeviceGraph {
    /// Number of vertices.
    pub n: u32,
    /// Number of stored (directed) edges.
    pub m: u32,
    /// Row offsets (`n + 1` entries).
    pub row_offsets: DeviceBuffer<u32>,
    /// Column indices (`m` entries).
    pub col_indices: DeviceBuffer<u32>,
    /// Edge weights (`m` entries), when the graph is weighted.
    pub weights: Option<DeviceBuffer<u32>>,
}

impl DeviceGraph {
    /// Copies a graph into device memory.
    pub fn upload(gpu: &mut Gpu, g: &Csr) -> DeviceGraph {
        let row_offsets = gpu.alloc_named::<u32>(g.num_vertices() + 1, "row_offsets");
        gpu.upload(&row_offsets, g.row_offsets());
        let col_indices = gpu.alloc_named::<u32>(g.num_edges().max(1), "col_indices");
        gpu.upload(&col_indices, g.col_indices());
        let weights = g.weights().map(|w| {
            let buf = gpu.alloc_named::<u32>(w.len().max(1), "weights");
            gpu.upload(&buf, w);
            buf
        });
        DeviceGraph {
            n: g.num_vertices() as u32,
            m: g.num_edges() as u32,
            row_offsets,
            col_indices,
            weights,
        }
    }
}

/// Follows parent pointers to the set representative with *intermediate
/// pointer jumping*: every hop shortens the path behind it by one link, the
/// technique ECL-CC and ECL-MST share (and the §VI-A hot spot whose racy
/// plain accesses dominate the baseline CC's performance).
///
/// Parent links always point to vertices with smaller ids, so concurrent
/// (even lost) shortening writes keep the structure acyclic.
#[inline]
pub fn union_find_rep<P: AccessPolicy, H: Hooks>(
    ctx: &mut Ctx<'_, H>,
    parent: DeviceBuffer<u32>,
    v: u32,
) -> u32 {
    let mut cur = P::read_u32(ctx, parent.at(v as usize));
    if cur == v {
        return v;
    }
    let mut prev = v;
    loop {
        let next = P::read_u32(ctx, parent.at(cur as usize));
        if next == cur {
            return cur;
        }
        // Path shortening: racy plain write in the baseline, atomic in the
        // race-free conversion.
        P::write_u32(ctx, parent.at(prev as usize), next);
        prev = cur;
        cur = next;
    }
}

/// Hooks the tree rooted at the larger of the two representatives under the
/// smaller via `atomicCAS`, retrying until the two inputs are connected.
/// Returns `true` if this call performed the union, `false` if the two
/// vertices were already connected.
///
/// Both the baseline and race-free ECL codes perform the hook itself with
/// `atomicCAS` — the races are in the reads around it.
#[inline]
pub fn union_find_hook<P: AccessPolicy, H: Hooks>(
    ctx: &mut Ctx<'_, H>,
    parent: DeviceBuffer<u32>,
    a: u32,
    b: u32,
) -> bool {
    let mut ra = union_find_rep::<P, H>(ctx, parent, a);
    let mut rb = union_find_rep::<P, H>(ctx, parent, b);
    loop {
        if ra == rb {
            return false;
        }
        let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
        if ctx.atomic_cas_u32(parent.at(hi as usize), hi, lo) == hi {
            return true;
        }
        // The root moved under us; chase the new representatives.
        ra = union_find_rep::<P, H>(ctx, parent, hi);
        rb = union_find_rep::<P, H>(ctx, parent, lo);
    }
}

/// FNV-1a over a `u64` stream — solution digests that are stable across
/// variants and platforms.
#[derive(Debug, Clone, Copy)]
pub struct Digest(u64);

impl Digest {
    /// Creates a fresh digest.
    pub fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes one value into the digest.
    pub fn push(&mut self, v: u64) {
        let mut h = self.0;
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

/// Canonicalizes a partition (component labels) so two labelings that induce
/// the same partition hash identically: each vertex's label is replaced by
/// the smallest vertex id in its group.
pub fn canonical_partition(labels: &[u32]) -> Vec<u32> {
    let mut representative: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for (v, &l) in labels.iter().enumerate() {
        let entry = representative.entry(l).or_insert(v as u32);
        if *entry > v as u32 {
            *entry = v as u32;
        }
    }
    labels.iter().map(|l| representative[l]).collect()
}

/// Digest of a canonical partition.
pub fn partition_digest(labels: &[u32]) -> u64 {
    let canon = canonical_partition(labels);
    let mut d = Digest::new();
    for v in canon {
        d.push(v as u64);
    }
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_simt::GpuConfig;

    #[test]
    fn upload_roundtrips_structure() {
        let g = ecl_graph::gen::grid2d_torus(4, 4).with_random_weights(100, 1);
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        assert_eq!(dg.n, 16);
        assert_eq!(dg.m as usize, g.num_edges());
        assert_eq!(gpu.download(&dg.row_offsets), g.row_offsets());
        assert_eq!(gpu.download(&dg.col_indices), g.col_indices());
        assert_eq!(
            gpu.download(&dg.weights.unwrap()),
            g.weights().unwrap().to_vec()
        );
    }

    #[test]
    fn partitions_hash_by_structure_not_labels() {
        // Same partition, different label values.
        let a = [7, 7, 9, 9, 7];
        let b = [1, 1, 2, 2, 1];
        let c = [1, 1, 2, 1, 1];
        assert_eq!(partition_digest(&a), partition_digest(&b));
        assert_ne!(partition_digest(&a), partition_digest(&c));
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = Digest::new();
        a.push(1);
        a.push(2);
        let mut b = Digest::new();
        b.push(2);
        b.push(1);
        assert_ne!(a.finish(), b.finish());
    }
}
