//! The race-free access layer — the paper's Figs. 2–5 — and the
//! [`AccessPolicy`] abstraction that swaps it in and out of the kernels.
//!
//! The paper converts each baseline code by replacing every load/store of
//! shared mutable data with `atomicRead`/`atomicWrite` (relaxed `libcu++`
//! atomics, Fig. 2), working around CUDA's missing sub-word atomics with
//! typecasting and masking for `char` data (Figs. 3–4) and with half-word
//! helpers for `int2` pairs stored in a `long long` (Fig. 5). This module
//! expresses that conversion as a trait with three implementations:
//!
//! - [`Plain`] — ordinary accesses, as in the baseline CC/MIS/SCC codes;
//! - [`Volatile`] — `volatile` accesses, as in the baseline GC/MST codes;
//! - [`Atomic`] — the race-free conversion.

use ecl_simt::{Ctx, DevicePtr, Hooks};

/// How a kernel accesses *shared mutable* data.
///
/// Kernels in this crate are generic over an `AccessPolicy`; read-only data
/// (the CSR structure) is always read with plain loads, exactly as in the
/// paper's conversions, which only touch shared mutable arrays.
///
/// # Example
///
/// The same kernel body becomes the racy baseline or the race-free
/// conversion by swapping the policy:
///
/// ```
/// use ecl_core::primitives::{AccessPolicy, Atomic, Plain};
/// use ecl_simt::{Ctx, DeviceBuffer, ForEach, Gpu, GpuConfig, LaunchConfig};
///
/// fn bump<P: AccessPolicy>(gpu: &mut Gpu, data: DeviceBuffer<u32>) {
///     gpu.launch(
///         LaunchConfig::for_items(64),
///         ForEach::new("bump", 64, move |ctx, i| {
///             let v = P::read_u32(ctx, data.at(i as usize));
///             P::write_u32(ctx, data.at(i as usize), v + 1);
///         }),
///     );
/// }
///
/// let mut gpu = Gpu::new(GpuConfig::test_tiny());
/// let data = gpu.alloc::<u32>(64);
/// bump::<Plain>(&mut gpu, data);   // the published baseline
/// bump::<Atomic>(&mut gpu, data);  // the race-free conversion
/// assert_eq!(gpu.download(&data)[5], 2);
/// ```
pub trait AccessPolicy: Copy + Default + Send + Sync + 'static {
    /// Human-readable policy name ("plain", "volatile", "atomic").
    const NAME: &'static str;
    /// `true` only for the race-free conversion.
    const IS_RACE_FREE: bool;
    /// The [`ecl_simt::AccessMode`] this policy's reads issue — what the
    /// access-contract constructors declare for read entries.
    const READ_MODE: ecl_simt::AccessMode;
    /// The [`ecl_simt::AccessMode`] this policy's writes issue.
    const WRITE_MODE: ecl_simt::AccessMode;

    /// Reads a shared `u32`.
    fn read_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>) -> u32;
    /// Writes a shared `u32`.
    fn write_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>, v: u32);
    /// Reads a shared `u64`.
    fn read_u64<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u64;
    /// Writes a shared `u64`.
    fn write_u64<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u64);

    /// Monotonic max-update of a shared `u32`: the baseline codes read, test,
    /// and write back non-atomically (losing updates is "benign" because the
    /// value is re-propagated); the race-free code uses `atomicMax`.
    fn max_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>, v: u32) -> bool;

    /// Reads element `i` of a shared byte array (MIS statuses).
    fn read_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32) -> u8;
    /// Writes element `i` of a shared byte array.
    fn write_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32, v: u8);

    /// Reads the first `u32` of a pair packed in a `u64` (SCC's `int2`).
    fn read_pair_first<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u32;
    /// Reads the second `u32` of a packed pair.
    fn read_pair_second<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u32;
    /// Monotonic max-update of the first half of a packed pair.
    fn max_pair_first<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u32) -> bool;
    /// Monotonic max-update of the second half of a packed pair.
    fn max_pair_second<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u32) -> bool;

    /// Raises a shared flag to 1 (SCC's "repeat" boolean).
    fn raise_flag<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>);
}

/// Pointer to half of a packed pair, as in the paper's Fig. 5.
#[inline]
fn half_ptr(p: DevicePtr<u64>, second: bool) -> DevicePtr<u32> {
    let base: DevicePtr<u32> = p.cast();
    if second {
        base.offset(1)
    } else {
        base
    }
}

/// Ordinary (plain) accesses: the baseline CC, MIS, and SCC codes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Plain;

impl AccessPolicy for Plain {
    const NAME: &'static str = "plain";
    const IS_RACE_FREE: bool = false;
    const READ_MODE: ecl_simt::AccessMode = ecl_simt::AccessMode::Plain;
    const WRITE_MODE: ecl_simt::AccessMode = ecl_simt::AccessMode::Plain;

    #[inline]
    fn read_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>) -> u32 {
        ctx.load(p)
    }
    #[inline]
    fn write_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>, v: u32) {
        ctx.store(p, v);
    }
    #[inline]
    fn read_u64<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u64 {
        ctx.load(p)
    }
    #[inline]
    fn write_u64<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u64) {
        ctx.store(p, v);
    }
    #[inline]
    fn max_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>, v: u32) -> bool {
        // Racy read-test-write: concurrent larger writes can be lost; the
        // algorithms re-propagate, so this is the paper's "benign" race.
        if ctx.load(p) < v {
            ctx.store(p, v);
            true
        } else {
            false
        }
    }
    #[inline]
    fn read_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32) -> u8 {
        ctx.load(base.offset(i as usize))
    }
    #[inline]
    fn write_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32, v: u8) {
        ctx.store(base.offset(i as usize), v);
    }
    #[inline]
    fn read_pair_first<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u32 {
        ctx.load(half_ptr(p, false))
    }
    #[inline]
    fn read_pair_second<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u32 {
        ctx.load(half_ptr(p, true))
    }
    #[inline]
    fn max_pair_first<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u32) -> bool {
        Self::max_u32(ctx, half_ptr(p, false), v)
    }
    #[inline]
    fn max_pair_second<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u32) -> bool {
        Self::max_u32(ctx, half_ptr(p, true), v)
    }
    #[inline]
    fn raise_flag<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>) {
        ctx.store(p, 1);
    }
}

/// `volatile` accesses: the baseline GC and MST codes. Immediately visible
/// and never optimized away, but still data races per the CUDA memory model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Volatile;

impl AccessPolicy for Volatile {
    const NAME: &'static str = "volatile";
    const IS_RACE_FREE: bool = false;
    const READ_MODE: ecl_simt::AccessMode = ecl_simt::AccessMode::Volatile;
    const WRITE_MODE: ecl_simt::AccessMode = ecl_simt::AccessMode::Volatile;

    #[inline]
    fn read_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>) -> u32 {
        ctx.load_volatile(p)
    }
    #[inline]
    fn write_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>, v: u32) {
        ctx.store_volatile(p, v);
    }
    #[inline]
    fn read_u64<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u64 {
        ctx.load_volatile(p)
    }
    #[inline]
    fn write_u64<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u64) {
        ctx.store_volatile(p, v);
    }
    #[inline]
    fn max_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>, v: u32) -> bool {
        if ctx.load_volatile(p) < v {
            ctx.store_volatile(p, v);
            true
        } else {
            false
        }
    }
    #[inline]
    fn read_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32) -> u8 {
        ctx.load_volatile(base.offset(i as usize))
    }
    #[inline]
    fn write_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32, v: u8) {
        ctx.store_volatile(base.offset(i as usize), v);
    }
    #[inline]
    fn read_pair_first<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u32 {
        ctx.load_volatile(half_ptr(p, false))
    }
    #[inline]
    fn read_pair_second<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u32 {
        ctx.load_volatile(half_ptr(p, true))
    }
    #[inline]
    fn max_pair_first<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u32) -> bool {
        Self::max_u32(ctx, half_ptr(p, false), v)
    }
    #[inline]
    fn max_pair_second<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u32) -> bool {
        Self::max_u32(ctx, half_ptr(p, true), v)
    }
    #[inline]
    fn raise_flag<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>) {
        ctx.store_volatile(p, 1);
    }
}

/// The baseline ECL-MIS access mix: `volatile` *reads* of the shared status
/// array (the polling loops must see other threads' updates eventually), but
/// plain *writes* — which the compiler is free to keep in registers and
/// write back late. This split is exactly the behavior the paper blames for
/// the baseline MIS's extra polling rounds ("the compiler may 'optimize'
/// some of these accesses, thus delaying when updates become visible to
/// other threads", §VI-A).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VolatileReadPlainWrite;

impl AccessPolicy for VolatileReadPlainWrite {
    const NAME: &'static str = "volatile-read/plain-write";
    const IS_RACE_FREE: bool = false;
    const READ_MODE: ecl_simt::AccessMode = ecl_simt::AccessMode::Volatile;
    const WRITE_MODE: ecl_simt::AccessMode = ecl_simt::AccessMode::Plain;

    #[inline]
    fn read_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>) -> u32 {
        Volatile::read_u32(ctx, p)
    }
    #[inline]
    fn write_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>, v: u32) {
        Plain::write_u32(ctx, p, v);
    }
    #[inline]
    fn read_u64<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u64 {
        Volatile::read_u64(ctx, p)
    }
    #[inline]
    fn write_u64<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u64) {
        Plain::write_u64(ctx, p, v);
    }
    #[inline]
    fn max_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>, v: u32) -> bool {
        if Volatile::read_u32(ctx, p) < v {
            Plain::write_u32(ctx, p, v);
            true
        } else {
            false
        }
    }
    #[inline]
    fn read_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32) -> u8 {
        Volatile::read_byte(ctx, base, i)
    }
    #[inline]
    fn write_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32, v: u8) {
        Plain::write_byte(ctx, base, i, v);
    }
    #[inline]
    fn read_pair_first<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u32 {
        Volatile::read_pair_first(ctx, p)
    }
    #[inline]
    fn read_pair_second<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u32 {
        Volatile::read_pair_second(ctx, p)
    }
    #[inline]
    fn max_pair_first<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u32) -> bool {
        Self::max_u32(ctx, p.cast(), v)
    }
    #[inline]
    fn max_pair_second<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u32) -> bool {
        Self::max_u32(ctx, p.cast::<u32>().offset(1), v)
    }
    #[inline]
    fn raise_flag<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>) {
        Plain::raise_flag(ctx, p);
    }
}

/// The race-free conversion: every access is a relaxed atomic (Fig. 2), with
/// typecast-and-mask for bytes (Figs. 3–4) and half-word helpers for packed
/// pairs (Fig. 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Atomic;

impl AccessPolicy for Atomic {
    const NAME: &'static str = "atomic";
    const IS_RACE_FREE: bool = true;
    const READ_MODE: ecl_simt::AccessMode = ecl_simt::AccessMode::Atomic;
    const WRITE_MODE: ecl_simt::AccessMode = ecl_simt::AccessMode::Atomic;

    #[inline]
    fn read_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>) -> u32 {
        ctx.atomic_load(p)
    }
    #[inline]
    fn write_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>, v: u32) {
        ctx.atomic_store(p, v);
    }
    #[inline]
    fn read_u64<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u64 {
        ctx.atomic_load(p)
    }
    #[inline]
    fn write_u64<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u64) {
        ctx.atomic_store(p, v);
    }
    #[inline]
    fn max_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>, v: u32) -> bool {
        ctx.atomic_max_u32(p, v) < v
    }
    #[inline]
    fn read_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32) -> u8 {
        atomic_read_byte(ctx, base, i)
    }
    #[inline]
    fn write_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32, v: u8) {
        atomic_write_byte(ctx, base, i, v);
    }
    #[inline]
    fn read_pair_first<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u32 {
        // Fig. 5 `readFirst`: reinterpret the long long as two ints.
        ctx.atomic_load(half_ptr(p, false))
    }
    #[inline]
    fn read_pair_second<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u32 {
        ctx.atomic_load(half_ptr(p, true))
    }
    #[inline]
    fn max_pair_first<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u32) -> bool {
        ctx.atomic_max_u32(half_ptr(p, false), v) < v
    }
    #[inline]
    fn max_pair_second<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u32) -> bool {
        ctx.atomic_max_u32(half_ptr(p, true), v) < v
    }
    #[inline]
    fn raise_flag<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>) {
        ctx.atomic_store(p, 1);
    }
}

/// IR-driven access dispatch: each policy-mediated access looks up its
/// [`ecl_simt::AccessMode`] in the [`ecl_simt::ModeTable`] installed on the
/// device ([`ecl_simt::Gpu::install_mode_table`]), keyed by the running
/// kernel and the accessed buffer. This is how a *synthesized* kernel IR —
/// e.g. the output of the `ecl-analyze` repair pass — executes on the
/// existing closure backend without any new kernel code: the closures stay
/// fixed, the table tells every site which of the three concrete policies'
/// behavior to exhibit.
///
/// A policy-mediated access with no table entry is a bug — the installed IR
/// does not describe the kernel actually running — and panics with the
/// kernel/buffer pair rather than silently guessing a mode.
///
/// `IS_RACE_FREE` is `false` because race-freedom is a property of the
/// *installed table*, not of this policy; the repair pipeline's oracles
/// (static check, dynamic racecheck, differential fixpoint) are what certify
/// a given table. `READ_MODE`/`WRITE_MODE` are likewise not meaningful here
/// (contracts for IR-driven runs are lowered from the IR itself, never
/// built from these constants); they are pinned to `Atomic` arbitrarily.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IrDriven;

impl IrDriven {
    #[inline]
    fn modes<H: Hooks>(ctx: &Ctx<'_, H>, addr: u32) -> ecl_simt::ModePair {
        ctx.dispatch_modes(addr).unwrap_or_else(|| {
            panic!(
                "ir-driven access in kernel '{}' at {addr:#x} has no mode-table entry: \
                 the installed IR is out of sync with the kernel body",
                ctx.kernel_name()
            )
        })
    }
}

impl AccessPolicy for IrDriven {
    const NAME: &'static str = "ir-driven";
    const IS_RACE_FREE: bool = false;
    const READ_MODE: ecl_simt::AccessMode = ecl_simt::AccessMode::Atomic;
    const WRITE_MODE: ecl_simt::AccessMode = ecl_simt::AccessMode::Atomic;

    #[inline]
    fn read_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>) -> u32 {
        match Self::modes(ctx, p.addr()).read {
            ecl_simt::AccessMode::Plain => Plain::read_u32(ctx, p),
            ecl_simt::AccessMode::Volatile => Volatile::read_u32(ctx, p),
            ecl_simt::AccessMode::Atomic => Atomic::read_u32(ctx, p),
        }
    }
    #[inline]
    fn write_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>, v: u32) {
        match Self::modes(ctx, p.addr()).write {
            ecl_simt::AccessMode::Plain => Plain::write_u32(ctx, p, v),
            ecl_simt::AccessMode::Volatile => Volatile::write_u32(ctx, p, v),
            ecl_simt::AccessMode::Atomic => Atomic::write_u32(ctx, p, v),
        }
    }
    #[inline]
    fn read_u64<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u64 {
        match Self::modes(ctx, p.addr()).read {
            ecl_simt::AccessMode::Plain => Plain::read_u64(ctx, p),
            ecl_simt::AccessMode::Volatile => Volatile::read_u64(ctx, p),
            ecl_simt::AccessMode::Atomic => Atomic::read_u64(ctx, p),
        }
    }
    #[inline]
    fn write_u64<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u64) {
        match Self::modes(ctx, p.addr()).write {
            ecl_simt::AccessMode::Plain => Plain::write_u64(ctx, p, v),
            ecl_simt::AccessMode::Volatile => Volatile::write_u64(ctx, p, v),
            ecl_simt::AccessMode::Atomic => Atomic::write_u64(ctx, p, v),
        }
    }
    #[inline]
    fn max_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>, v: u32) -> bool {
        let modes = Self::modes(ctx, p.addr());
        if modes.write == ecl_simt::AccessMode::Atomic {
            // The repaired form: one atomicMax, as in the paper's conversion.
            return Atomic::max_u32(ctx, p, v);
        }
        // The racy baseline form: mode-dispatched load, test, store.
        let cur = match modes.read {
            ecl_simt::AccessMode::Plain => Plain::read_u32(ctx, p),
            ecl_simt::AccessMode::Volatile => Volatile::read_u32(ctx, p),
            ecl_simt::AccessMode::Atomic => Atomic::read_u32(ctx, p),
        };
        if cur < v {
            Self::write_u32(ctx, p, v);
            true
        } else {
            false
        }
    }
    #[inline]
    fn read_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32) -> u8 {
        match Self::modes(ctx, base.offset(i as usize).addr()).read {
            ecl_simt::AccessMode::Plain => Plain::read_byte(ctx, base, i),
            ecl_simt::AccessMode::Volatile => Volatile::read_byte(ctx, base, i),
            // Fig. 3b typecast-and-mask on the containing word.
            ecl_simt::AccessMode::Atomic => Atomic::read_byte(ctx, base, i),
        }
    }
    #[inline]
    fn write_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32, v: u8) {
        match Self::modes(ctx, base.offset(i as usize).addr()).write {
            ecl_simt::AccessMode::Plain => Plain::write_byte(ctx, base, i, v),
            ecl_simt::AccessMode::Volatile => Volatile::write_byte(ctx, base, i, v),
            // Fig. 4b: atomicAnd for zero, CAS loop otherwise.
            ecl_simt::AccessMode::Atomic => Atomic::write_byte(ctx, base, i, v),
        }
    }
    #[inline]
    fn read_pair_first<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u32 {
        match Self::modes(ctx, p.addr()).read {
            ecl_simt::AccessMode::Plain => Plain::read_pair_first(ctx, p),
            ecl_simt::AccessMode::Volatile => Volatile::read_pair_first(ctx, p),
            ecl_simt::AccessMode::Atomic => Atomic::read_pair_first(ctx, p),
        }
    }
    #[inline]
    fn read_pair_second<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u32 {
        match Self::modes(ctx, p.addr()).read {
            ecl_simt::AccessMode::Plain => Plain::read_pair_second(ctx, p),
            ecl_simt::AccessMode::Volatile => Volatile::read_pair_second(ctx, p),
            ecl_simt::AccessMode::Atomic => Atomic::read_pair_second(ctx, p),
        }
    }
    #[inline]
    fn max_pair_first<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u32) -> bool {
        if Self::modes(ctx, p.addr()).write == ecl_simt::AccessMode::Atomic {
            Atomic::max_pair_first(ctx, p, v)
        } else {
            Self::max_u32(ctx, half_ptr(p, false), v)
        }
    }
    #[inline]
    fn max_pair_second<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u32) -> bool {
        if Self::modes(ctx, p.addr()).write == ecl_simt::AccessMode::Atomic {
            Atomic::max_pair_second(ctx, p, v)
        } else {
            Self::max_u32(ctx, half_ptr(p, true), v)
        }
    }
    #[inline]
    fn raise_flag<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>) {
        match Self::modes(ctx, p.addr()).write {
            ecl_simt::AccessMode::Plain => Plain::raise_flag(ctx, p),
            ecl_simt::AccessMode::Volatile => Volatile::raise_flag(ctx, p),
            ecl_simt::AccessMode::Atomic => Atomic::raise_flag(ctx, p),
        }
    }
}

/// Atomically reads byte `i` of a byte array by loading the containing `int`
/// and shifting/masking — the paper's Fig. 3b.
///
/// # Panics
///
/// Panics (in the simulator's bounds checks) if the array base is not
/// 4-byte aligned; device allocations always are.
#[inline]
pub fn atomic_read_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32) -> u8 {
    let words: DevicePtr<u32> = base.cast();
    let word = ctx.atomic_load(words.offset((i / 4) as usize));
    ((word >> ((i % 4) * 8)) & 0xff) as u8
}

/// Atomically writes byte `i` of a byte array.
///
/// Writing zero uses a single `atomicAnd` with a mask, as in the paper's
/// Fig. 4b; other values use an atomic compare-and-swap loop on the
/// containing `int` (CUDA has no byte-wide atomics).
#[inline]
pub fn atomic_write_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32, v: u8) {
    let words: DevicePtr<u32> = base.cast();
    let word_ptr = words.offset((i / 4) as usize);
    let shift = (i % 4) * 8;
    if v == 0 {
        // Fig. 4b: zero the byte with one atomic AND.
        ctx.atomic_and_u32(word_ptr, !(0xffu32 << shift));
        return;
    }
    loop {
        let old = ctx.atomic_load(word_ptr);
        let new = (old & !(0xffu32 << shift)) | ((v as u32) << shift);
        if ctx.atomic_cas_u32(word_ptr, old, new) == old {
            return;
        }
    }
}

/// The paper's Fig. 2 `atomicRead`: a relaxed atomic load.
#[inline]
pub fn atomic_read<H: Hooks, T: ecl_simt::DeviceValue>(ctx: &mut Ctx<'_, H>, p: DevicePtr<T>) -> T {
    ctx.atomic_load(p)
}

/// The paper's Fig. 2 `atomicWrite`: a relaxed atomic store.
#[inline]
pub fn atomic_write<H: Hooks, T: ecl_simt::DeviceValue>(
    ctx: &mut Ctx<'_, H>,
    p: DevicePtr<T>,
    v: T,
) {
    ctx.atomic_store(p, v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_simt::{ForEach, Gpu, GpuConfig, LaunchConfig};

    fn one_thread_kernel(gpu: &mut Gpu, f: impl Fn(&mut Ctx<'_>, u32) + 'static) {
        gpu.launch(LaunchConfig::for_items(1), ForEach::new("test", 1, f));
    }

    #[test]
    fn byte_view_reads_correct_lane() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let bytes = gpu.alloc::<u8>(8);
        gpu.upload(&bytes, &[0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88]);
        let out = gpu.alloc::<u8>(8);
        one_thread_kernel(&mut gpu, move |ctx, _| {
            for i in 0..8 {
                let v = atomic_read_byte(ctx, bytes.as_ptr(), i);
                ctx.store(out.at(i as usize), v);
            }
        });
        assert_eq!(
            gpu.download(&out),
            vec![0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88]
        );
    }

    #[test]
    fn byte_write_zero_uses_mask_and_preserves_siblings() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let bytes = gpu.alloc::<u8>(4);
        gpu.upload(&bytes, &[0xaa, 0xbb, 0xcc, 0xdd]);
        one_thread_kernel(&mut gpu, move |ctx, _| {
            atomic_write_byte(ctx, bytes.as_ptr(), 2, 0x00);
        });
        assert_eq!(gpu.download(&bytes), vec![0xaa, 0xbb, 0x00, 0xdd]);
    }

    #[test]
    fn byte_write_nonzero_cas_loop() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let bytes = gpu.alloc::<u8>(4);
        one_thread_kernel(&mut gpu, move |ctx, _| {
            atomic_write_byte(ctx, bytes.as_ptr(), 1, 0x5a);
            atomic_write_byte(ctx, bytes.as_ptr(), 3, 0x7f);
        });
        assert_eq!(gpu.download(&bytes), vec![0, 0x5a, 0, 0x7f]);
    }

    #[test]
    fn pair_halves_are_independent() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let pairs = gpu.alloc::<u64>(2);
        let out = gpu.alloc::<u32>(2);
        one_thread_kernel(&mut gpu, move |ctx, _| {
            let p = pairs.at(1);
            Atomic::max_pair_first(ctx, p, 41);
            Atomic::max_pair_second(ctx, p, 99);
            let first = Atomic::read_pair_first(ctx, p);
            ctx.store(out.at(0), first);
            let second = Atomic::read_pair_second(ctx, p);
            ctx.store(out.at(1), second);
        });
        assert_eq!(gpu.download(&out), vec![41, 99]);
        assert_eq!(gpu.download(&pairs)[1], (99u64 << 32) | 41);
    }

    #[test]
    fn policies_agree_functionally() {
        // All three policies must produce identical values on a single
        // thread; they differ only in cost and visibility.
        fn run<P: AccessPolicy>() -> Vec<u32> {
            let mut gpu = Gpu::new(GpuConfig::test_tiny());
            let data = gpu.alloc::<u32>(4);
            one_thread_kernel(&mut gpu, move |ctx, _| {
                P::write_u32(ctx, data.at(0), 5);
                P::max_u32(ctx, data.at(0), 9);
                P::max_u32(ctx, data.at(0), 3);
                let v = P::read_u32(ctx, data.at(0));
                P::write_u32(ctx, data.at(1), v + 1);
            });
            gpu.download(&data)
        }
        let plain = run::<Plain>();
        let volat = run::<Volatile>();
        let atomic = run::<Atomic>();
        let mixed = run::<VolatileReadPlainWrite>();
        assert_eq!(plain, vec![9, 10, 0, 0]);
        assert_eq!(plain, volat);
        assert_eq!(plain, atomic);
        assert_eq!(plain, mixed);
    }

    #[test]
    fn byte_policies_agree_functionally() {
        fn run<P: AccessPolicy>() -> Vec<u8> {
            let mut gpu = Gpu::new(GpuConfig::test_tiny());
            let bytes = gpu.alloc::<u8>(8);
            one_thread_kernel(&mut gpu, move |ctx, _| {
                for i in 0..8 {
                    P::write_byte(ctx, bytes.as_ptr(), i, (i as u8) * 3);
                }
                let v = P::read_byte(ctx, bytes.as_ptr(), 5);
                P::write_byte(ctx, bytes.as_ptr(), 0, v);
                P::write_byte(ctx, bytes.as_ptr(), 7, 0);
            });
            gpu.download(&bytes)
        }
        let expected = vec![15u8, 3, 6, 9, 12, 15, 18, 0];
        assert_eq!(run::<Plain>(), expected);
        assert_eq!(run::<Volatile>(), expected);
        assert_eq!(run::<Atomic>(), expected);
        assert_eq!(run::<VolatileReadPlainWrite>(), expected);
    }

    #[test]
    fn pair_policies_agree_functionally() {
        fn run<P: AccessPolicy>() -> (u32, u32) {
            let mut gpu = Gpu::new(GpuConfig::test_tiny());
            let pairs = gpu.alloc::<u64>(1);
            let out = gpu.alloc::<u32>(2);
            one_thread_kernel(&mut gpu, move |ctx, _| {
                P::max_pair_first(ctx, pairs.at(0), 31);
                P::max_pair_first(ctx, pairs.at(0), 11); // no effect
                P::max_pair_second(ctx, pairs.at(0), 77);
                let first = P::read_pair_first(ctx, pairs.at(0));
                ctx.store(out.at(0), first);
                let second = P::read_pair_second(ctx, pairs.at(0));
                ctx.store(out.at(1), second);
            });
            let host = gpu.download(&out);
            (host[0], host[1])
        }
        assert_eq!(run::<Plain>(), (31, 77));
        assert_eq!(run::<Volatile>(), (31, 77));
        assert_eq!(run::<Atomic>(), (31, 77));
        assert_eq!(run::<VolatileReadPlainWrite>(), (31, 77));
    }

    #[test]
    fn max_u32_reports_improvement() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let data = gpu.alloc::<u32>(1);
        let out = gpu.alloc::<u32>(2);
        one_thread_kernel(&mut gpu, move |ctx, _| {
            let first = Atomic::max_u32(ctx, data.at(0), 7);
            let second = Atomic::max_u32(ctx, data.at(0), 7);
            ctx.store(out.at(0), first as u32);
            ctx.store(out.at(1), second as u32);
        });
        assert_eq!(gpu.download(&out), vec![1, 0]);
    }

    #[test]
    fn atomic_policy_is_marked_race_free() {
        fn race_free<P: AccessPolicy>() -> bool {
            P::IS_RACE_FREE
        }
        assert!(race_free::<Atomic>());
        assert!(!race_free::<Plain>());
        assert!(!race_free::<Volatile>());
        assert!(!race_free::<VolatileReadPlainWrite>());
        assert_eq!(Plain::NAME, "plain");
    }
}
