//! The ECL-Suite graph analytics codes on the `ecl-simt` simulator.
//!
//! This crate is the reproduction of the paper's primary contribution: six
//! high-performance GPU graph analytics codes, each available in its
//! published **baseline** form (containing "benign" data races) and in the
//! converted **race-free** form (all shared-data accesses through relaxed
//! atomics, with the typecast-and-mask tricks of the paper's Figs. 3–5 for
//! types CUDA atomics do not support).
//!
//! The conversion is expressed once, as the [`primitives::AccessPolicy`]
//! trait: every kernel is generic over how it touches *shared mutable* data,
//! and instantiating it with [`primitives::Plain`], [`primitives::Volatile`],
//! or [`primitives::Atomic`] yields the baseline or race-free executable —
//! exactly how the authors produced their race-free codes by swapping access
//! macros.
//!
//! | Algorithm | Module | Baseline access | Notes |
//! |---|---|---|---|
//! | All-pairs shortest paths | [`apsp`] | — | regular; no races (paper §IV-A) |
//! | Connected components | [`cc`] | plain | racy pointer jumping |
//! | Graph coloring | [`gc`] | volatile | Jones-Plassmann + shortcuts |
//! | Maximal independent set | [`mis`] | plain | status+priority packed in a byte |
//! | Minimum spanning tree | [`mst`] | volatile | 64-bit packed best-edge array |
//! | Strongly connected comp. | [`scc`] | plain | `int2` pairs + global flag |
//!
//! # Example
//!
//! ```
//! use ecl_core::suite::{run_algorithm, Algorithm, Variant};
//! use ecl_simt::GpuConfig;
//!
//! let g = ecl_graph::gen::rmat(512, 2048, 0.57, 0.19, 0.19, true, 7);
//! let base = run_algorithm(Algorithm::Mis, Variant::Baseline, &g, &GpuConfig::titan_v(), 1);
//! let free = run_algorithm(Algorithm::Mis, Variant::RaceFree, &g, &GpuConfig::titan_v(), 1);
//! assert!(base.valid && free.valid);
//! // The MIS fixed point is unique: both variants find the same set.
//! assert_eq!(base.solution_digest, free.solution_digest);
//! ```

pub use common::SimOptions;

pub mod apsp;
pub mod cc;
pub mod common;
pub mod contracts;
pub mod gc;
pub mod mis;
pub mod mst;
pub mod primitives;
pub mod scc;
pub mod suite;
