//! Access contracts for every kernel in the suite.
//!
//! Each algorithm module declares, per kernel, the complete footprint its
//! threads may touch (see [`ecl_simt::KernelContract`]): which buffers, in
//! which [`ecl_simt::AccessMode`] and [`ecl_simt::AccessKind`], under which
//! index discipline. The helpers here capture the access *shapes* the
//! [`crate::primitives::AccessPolicy`] layer issues — a policy's `write_byte`
//! is a byte-wide store in the baselines but a word-wide CAS loop in the
//! race-free conversion (paper Figs. 3–4), and the contracts must match what
//! the simulator actually records.
//!
//! The contracts are consumed by two tools:
//!
//! - `ecl-analyze` checks them statically (race-freedom proof for the
//!   race-free variants, benign-race census for the baselines);
//! - [`ecl_simt::Gpu::install_contracts`] enforces them dynamically,
//!   failing any launch that touches memory outside its declaration.

use crate::primitives::AccessPolicy;
use crate::suite::{Algorithm, Variant};
use ecl_simt::BenignClass::{MonotonicUpdate, RePropagatedLostUpdate};
use ecl_simt::IndexDiscipline::{self, OwnedByGlobalId, OwnedRange};

pub use ecl_simt::AccessKind::{Load, Rmw, Store};
pub use ecl_simt::AccessMode;
pub use ecl_simt::IndexDiscipline::Arbitrary;
pub use ecl_simt::{AccessOp, BenignClass, FootprintEntry, KernelContract, KernelIr, OpWidth};

/// Plain read-only loads of CSR structure arrays (row offsets, column
/// indices, weights, edge sources): never written after upload, so any
/// thread may read any element.
pub fn csr_loads(buffers: &[&'static str]) -> Vec<FootprintEntry> {
    buffers
        .iter()
        .map(|b| FootprintEntry::global(b, AccessMode::Plain, Load, Arbitrary))
        .collect()
}

/// The `u32` load shape `P::read_u32` issues.
pub fn word_read<P: AccessPolicy>(
    buffer: &'static str,
    discipline: IndexDiscipline,
) -> FootprintEntry {
    FootprintEntry::global(buffer, P::READ_MODE, Load, discipline)
}

/// The `u32` store shape `P::write_u32` issues.
pub fn word_write<P: AccessPolicy>(
    buffer: &'static str,
    discipline: IndexDiscipline,
) -> FootprintEntry {
    FootprintEntry::global(buffer, P::WRITE_MODE, Store, discipline)
}

/// The `u64` load shape `P::read_u64` issues. On devices without native
/// 64-bit accesses the simulator splits plain/volatile loads into two word
/// halves; an 8-byte element discipline maps both halves to the same element.
pub fn word64_read<P: AccessPolicy>(
    buffer: &'static str,
    discipline: IndexDiscipline,
) -> FootprintEntry {
    FootprintEntry::global(buffer, P::READ_MODE, Load, discipline)
}

/// A device-scope atomic read-modify-write (counters, tickets, CAS hooks).
pub fn atomic_rmw(buffer: &'static str) -> FootprintEntry {
    FootprintEntry::global(buffer, AccessMode::Atomic, Rmw, Arbitrary)
}

/// The footprint of [`crate::common::union_find_rep`] over `buffer`: racy
/// arbitrary-index reads plus path-shortening writes. Lost shortening
/// updates are re-propagated by later hops (the paper's §VI-A benign race).
pub fn union_find_rep_entries<P: AccessPolicy>(buffer: &'static str) -> Vec<FootprintEntry> {
    vec![
        word_read::<P>(buffer, Arbitrary).benign(RePropagatedLostUpdate),
        word_write::<P>(buffer, Arbitrary).benign(RePropagatedLostUpdate),
    ]
}

/// The footprint of [`crate::common::union_find_hook`] over `buffer`:
/// representative chasing plus the `atomicCAS` hook itself (atomic in both
/// the baseline and the conversion, as in the ECL codes).
pub fn union_find_hook_entries<P: AccessPolicy>(buffer: &'static str) -> Vec<FootprintEntry> {
    let mut entries = union_find_rep_entries::<P>(buffer);
    entries.push(atomic_rmw(buffer));
    entries
}

/// The byte-array load shape `P::read_byte` issues: a byte load in the
/// baselines, a word-wide atomic load (Fig. 3b) in the conversion — which is
/// why the race-free entries drop to `Arbitrary` (the word spans four
/// threads' bytes).
pub fn byte_read_entries<P: AccessPolicy>(
    buffer: &'static str,
    discipline: IndexDiscipline,
) -> Vec<FootprintEntry> {
    if P::IS_RACE_FREE {
        vec![FootprintEntry::global(
            buffer,
            AccessMode::Atomic,
            Load,
            Arbitrary,
        )]
    } else {
        vec![FootprintEntry::global(
            buffer,
            P::READ_MODE,
            Load,
            discipline,
        )]
    }
}

/// The byte-array store shape `P::write_byte` issues: a byte store in the
/// baselines; in the conversion either one `atomicAnd` (zero bytes, Fig. 4b)
/// or an atomic-load + CAS loop on the containing word.
pub fn byte_write_entries<P: AccessPolicy>(
    buffer: &'static str,
    discipline: IndexDiscipline,
) -> Vec<FootprintEntry> {
    if P::IS_RACE_FREE {
        vec![
            FootprintEntry::global(buffer, AccessMode::Atomic, Load, Arbitrary),
            FootprintEntry::global(buffer, AccessMode::Atomic, Rmw, Arbitrary),
        ]
    } else {
        vec![FootprintEntry::global(
            buffer,
            P::WRITE_MODE,
            Store,
            discipline,
        )]
    }
}

/// The pair-half load shape `P::read_pair_first/second` issues (Fig. 5):
/// a `u32` load of either half of the packed `u64`.
pub fn pair_read<P: AccessPolicy>(
    buffer: &'static str,
    discipline: IndexDiscipline,
) -> FootprintEntry {
    FootprintEntry::global(buffer, P::READ_MODE, Load, discipline)
}

/// The pair-half monotonic max shape `P::max_pair_first/second` issues:
/// a racy load + conditional store of one half in the baselines (lost maxima
/// are re-propagated — monotone convergence), one `atomicMax` per half in
/// the conversion.
pub fn pair_max_entries<P: AccessPolicy>(buffer: &'static str) -> Vec<FootprintEntry> {
    if P::IS_RACE_FREE {
        vec![
            FootprintEntry::global(buffer, AccessMode::Atomic, Load, Arbitrary),
            atomic_rmw(buffer),
        ]
    } else {
        vec![
            FootprintEntry::global(buffer, P::READ_MODE, Load, Arbitrary).benign(MonotonicUpdate),
            FootprintEntry::global(buffer, P::WRITE_MODE, Store, Arbitrary).benign(MonotonicUpdate),
        ]
    }
}

/// The flag-raise shape `P::raise_flag` issues: a store of the constant 1 —
/// idempotent however the racing writers interleave.
pub fn flag_raise<P: AccessPolicy>(buffer: &'static str) -> FootprintEntry {
    FootprintEntry::global(buffer, P::WRITE_MODE, Store, Arbitrary)
        .benign(ecl_simt::BenignClass::IdempotentWrite)
}

/// Grid-stride ownership of 4-byte elements (non-chunked `ForEach`: item
/// index equals element index, so `element % num_threads == global_id`).
pub fn own4() -> IndexDiscipline {
    OwnedByGlobalId { elem_bytes: 4 }
}

/// Grid-stride ownership of 8-byte elements.
pub fn own8() -> IndexDiscipline {
    OwnedByGlobalId { elem_bytes: 8 }
}

/// Grid-stride ownership of single bytes.
pub fn own1() -> IndexDiscipline {
    OwnedByGlobalId { elem_bytes: 1 }
}

/// First-touch ownership of 4-byte elements (chunked or data-dependent
/// per-thread partitions).
pub fn claim4() -> IndexDiscipline {
    OwnedRange { elem_bytes: 4 }
}

/// First-touch ownership of 8-byte elements.
pub fn claim8() -> IndexDiscipline {
    OwnedRange { elem_bytes: 8 }
}

/// First-touch ownership of single bytes.
pub fn claim1() -> IndexDiscipline {
    OwnedRange { elem_bytes: 1 }
}

// ---------------------------------------------------------------------------
// IR op builders: the same access shapes as the entry helpers above, but as
// `ecl_simt::AccessOp`s. Each algorithm module's `ir()` assembles its kernels
// from these; `contracts()` is the lowering of that IR, and the repair pass
// in `ecl-analyze` rewrites the IR's repairable ops. The entry helpers above
// stay as the ground truth the lowering is pinned against (see the
// `ir_lowering_matches_hand_written_contracts` test).

/// IR ops for plain read-only loads of CSR structure arrays. Hard-coded
/// plain in the kernel bodies (never policy-mediated), hence fixed.
pub fn ir_csr_loads(buffers: &[&'static str]) -> Vec<AccessOp> {
    buffers
        .iter()
        .map(|b| AccessOp::load(b, OpWidth::B4, AccessMode::Plain, Arbitrary).fixed())
        .collect()
}

/// The IR op for `P::read_u32`.
pub fn ir_word_read<P: AccessPolicy>(
    buffer: &'static str,
    discipline: IndexDiscipline,
) -> AccessOp {
    AccessOp::load(buffer, OpWidth::B4, P::READ_MODE, discipline)
}

/// The IR op for `P::write_u32`.
pub fn ir_word_write<P: AccessPolicy>(
    buffer: &'static str,
    discipline: IndexDiscipline,
) -> AccessOp {
    AccessOp::store(buffer, OpWidth::B4, P::WRITE_MODE, discipline)
}

/// The IR op for `P::read_u64`.
pub fn ir_word64_read<P: AccessPolicy>(
    buffer: &'static str,
    discipline: IndexDiscipline,
) -> AccessOp {
    AccessOp::load(buffer, OpWidth::B8, P::READ_MODE, discipline)
}

/// The IR op for a device-scope atomic read-modify-write.
pub fn ir_atomic_rmw(buffer: &'static str) -> AccessOp {
    AccessOp::rmw(buffer)
}

/// The IR ops for [`crate::common::union_find_rep`] over `buffer`.
pub fn ir_union_find_rep<P: AccessPolicy>(buffer: &'static str) -> Vec<AccessOp> {
    vec![
        ir_word_read::<P>(buffer, Arbitrary).benign(RePropagatedLostUpdate),
        ir_word_write::<P>(buffer, Arbitrary).benign(RePropagatedLostUpdate),
    ]
}

/// The IR ops for [`crate::common::union_find_hook`] over `buffer`.
pub fn ir_union_find_hook<P: AccessPolicy>(buffer: &'static str) -> Vec<AccessOp> {
    let mut ops = ir_union_find_rep::<P>(buffer);
    ops.push(ir_atomic_rmw(buffer));
    ops
}

/// The IR op for `P::read_byte`: lowering widens an atomic-mode byte load
/// to the containing word (Fig. 3b), which is why the race-free contract
/// entries are `Arbitrary`.
pub fn ir_byte_read<P: AccessPolicy>(
    buffer: &'static str,
    discipline: IndexDiscipline,
) -> AccessOp {
    AccessOp::load(buffer, OpWidth::B1, P::READ_MODE, discipline)
}

/// The IR op for `P::write_byte`: lowering expands an atomic-mode byte
/// store to the word-wide `atomicAnd`/CAS-loop pair (Fig. 4b).
pub fn ir_byte_write<P: AccessPolicy>(
    buffer: &'static str,
    discipline: IndexDiscipline,
) -> AccessOp {
    AccessOp::store(buffer, OpWidth::B1, P::WRITE_MODE, discipline)
}

/// The IR op for `P::read_pair_first/second` (Fig. 5).
pub fn ir_pair_read<P: AccessPolicy>(
    buffer: &'static str,
    discipline: IndexDiscipline,
) -> AccessOp {
    AccessOp::load(buffer, OpWidth::Pair, P::READ_MODE, discipline)
}

/// The IR op for `P::max_pair_first/second`: the monotone half-word max.
pub fn ir_pair_max<P: AccessPolicy>(buffer: &'static str) -> AccessOp {
    AccessOp::update(buffer, OpWidth::Pair, P::WRITE_MODE).benign(MonotonicUpdate)
}

/// The IR op for `P::raise_flag`.
pub fn ir_flag_raise<P: AccessPolicy>(buffer: &'static str) -> AccessOp {
    AccessOp::flag(buffer, P::WRITE_MODE)
}

/// The full contract set for one algorithm × variant, keyed on the canonical
/// policy/visibility mapping the suite and the race-detection tools use.
/// Bit-identical to the lowering of [`ir_for_algorithm`] — pinned by the
/// `ir_lowering_matches_hand_written_contracts` test, so the IR and the
/// hand-written declarations can never drift apart silently.
pub fn for_algorithm(algorithm: Algorithm, variant: Variant) -> Vec<KernelContract> {
    let race_free = variant == Variant::RaceFree;
    match algorithm {
        Algorithm::Apsp => crate::apsp::contracts(),
        Algorithm::Cc => crate::cc::contracts(race_free),
        Algorithm::Gc => crate::gc::contracts(race_free),
        Algorithm::Mis => crate::mis::contracts(race_free),
        Algorithm::Mst => crate::mst::contracts(race_free),
        Algorithm::Scc => crate::scc::contracts(race_free),
    }
}

/// The access-level kernel IR for one algorithm × variant under the same
/// canonical policy mapping as [`for_algorithm`].
pub fn ir_for_algorithm(algorithm: Algorithm, variant: Variant) -> Vec<KernelIr> {
    let race_free = variant == Variant::RaceFree;
    match algorithm {
        Algorithm::Apsp => crate::apsp::ir(),
        Algorithm::Cc => crate::cc::ir(race_free),
        Algorithm::Gc => crate::gc::ir(race_free),
        Algorithm::Mis => crate::mis::ir(race_free),
        Algorithm::Mst => crate::mst::ir(race_free),
        Algorithm::Scc => crate::scc::ir(race_free),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::{Atomic, Plain};

    #[test]
    fn race_free_byte_writes_are_word_wide_atomics() {
        let entries = byte_write_entries::<Atomic>("s", own1());
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|e| e.mode == AccessMode::Atomic));
        let plain = byte_write_entries::<Plain>("s", own1());
        assert_eq!(plain.len(), 1);
        assert_eq!(plain[0].kind, Store);
        assert_eq!(plain[0].discipline, own1());
    }

    #[test]
    fn ir_lowering_matches_hand_written_contracts() {
        // The bit-identity pin: for every algorithm × variant, lowering the
        // access-level IR must reproduce the hand-written contract set
        // exactly — same kernels, same entries, same order. This is what
        // lets the repair pass emit trustworthy contracts for synthesized
        // variants by lowering the repaired IR.
        for alg in Algorithm::ALL {
            for variant in [Variant::Baseline, Variant::RaceFree] {
                let hand = for_algorithm(alg, variant);
                let lowered = ecl_simt::lower_all(&ir_for_algorithm(alg, variant));
                assert_eq!(
                    hand, lowered,
                    "{alg:?} {variant:?}: IR lowering diverged from the hand-written contracts"
                );
            }
        }
    }

    #[test]
    fn repairable_ops_are_exactly_the_policy_mediated_sites() {
        // An op is repairable iff its mode changes between the baseline and
        // race-free IRs (policy-mediated), or stays atomic (RMW). Fixed ops
        // must be mode-identical across variants.
        for alg in Algorithm::ALL {
            let base = ir_for_algorithm(alg, Variant::Baseline);
            let free = ir_for_algorithm(alg, Variant::RaceFree);
            assert_eq!(base.len(), free.len());
            for (b, f) in base.iter().zip(&free) {
                assert_eq!(b.kernel, f.kernel);
                assert_eq!(b.ops.len(), f.ops.len(), "{alg:?} {}", b.kernel);
                for (ob, of) in b.ops.iter().zip(&f.ops) {
                    assert_eq!(ob.buffer, of.buffer);
                    assert_eq!(ob.repairable, of.repairable);
                    if !ob.repairable {
                        assert_eq!(
                            ob.mode, of.mode,
                            "{alg:?} {}: fixed op on '{}' changes mode across variants",
                            b.kernel, ob.buffer
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_algorithm_variant_has_contracts() {
        for alg in Algorithm::ALL {
            for variant in [Variant::Baseline, Variant::RaceFree] {
                let contracts = for_algorithm(alg, variant);
                assert!(
                    !contracts.is_empty(),
                    "{alg:?} {variant:?} has no contracts"
                );
                for c in &contracts {
                    assert!(!c.entries.is_empty(), "{} has an empty contract", c.kernel);
                }
            }
        }
    }
}
