//! ECL-CC on host threads: the same union-find pipeline (init shortcut,
//! degree-dispatched hooking, flatten) with the heavy vertices load-balanced
//! through the native chunked worklist instead of the device ticket array.
//!
//! The connected-components partition of a graph is unique, so the native
//! result's canonical [`partition_digest`] matches the simulator's for any
//! thread count and interleaving — that is what `tests/native_differential.rs`
//! pins.

use crate::common::partition_digest;
use ecl_graph::Csr;
use ecl_native::{run_team, NativePolicy, Tickets, WordArr, Worklist};

use super::CcResult;

/// Degree above which a vertex's edges go through the worklist in
/// edge-range chunks (mirrors the simulator kernels' `HEAVY_DEGREE`).
const HEAVY_DEGREE: u32 = 32;
/// Edges per heavy worklist item.
const HEAVY_CHUNK: u32 = 128;

/// Follows parent links to the representative with intermediate pointer
/// jumping — the §VI-A hot spot, on host memory.
#[inline]
fn rep<P: NativePolicy>(parent: &WordArr, v: u32) -> u32 {
    let mut cur = P::load_u32(parent.at(v as usize));
    if cur == v {
        return v;
    }
    let mut prev = v;
    loop {
        let next = P::load_u32(parent.at(cur as usize));
        if next == cur {
            return cur;
        }
        // Path shortening: racy plain write in the baseline, relaxed atomic
        // in the conversion (monotone toward smaller ids either way).
        P::store_u32(parent.at(prev as usize), next);
        prev = cur;
        cur = next;
    }
}

/// Hooks the larger representative under the smaller with a CAS, exactly
/// once per union. Returns `true` if this call merged two sets.
#[inline]
pub(crate) fn hook<P: NativePolicy>(parent: &WordArr, a: u32, b: u32) -> bool {
    let mut ra = rep::<P>(parent, a);
    let mut rb = rep::<P>(parent, b);
    loop {
        if ra == rb {
            return false;
        }
        let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
        if P::cas_u32(parent.at(hi as usize), hi, lo) == hi {
            return true;
        }
        ra = rep::<P>(parent, hi);
        rb = rep::<P>(parent, lo);
    }
}

/// Runs native ECL-CC on `threads` host threads. `seed` only perturbs the
/// schedule (block rotation), never the result.
pub fn run<P: NativePolicy>(g: &Csr, threads: usize, seed: u64) -> CcResult {
    assert!(g.num_vertices() > 0, "empty graph");
    let start = std::time::Instant::now();
    let n = g.num_vertices();
    let row = g.row_offsets();
    let col = g.col_indices();

    let labels = WordArr::new(n, 0);
    let heavy = Worklist::new(threads);
    let flatten = Tickets::new(n, 1024);

    run_team(threads, seed, |ctx| {
        // Init: label[v] = first neighbor smaller than v, else v.
        for v in ctx.my_block(n) {
            let (begin, end) = (row[v] as usize, row[v + 1] as usize);
            let mut label = v as u32;
            for &u in &col[begin..end] {
                if u < v as u32 {
                    label = u;
                    break;
                }
            }
            P::store_u32(labels.at(v), label);
        }
        ctx.barrier();

        // Light vertices hook directly; heavy ones publish edge-range
        // chunks for the edge-parallel drain below.
        {
            let mut h = heavy.handle(ctx.tid);
            for v in ctx.my_block(n) {
                let (begin, end) = (row[v], row[v + 1]);
                let deg = end - begin;
                if deg > HEAVY_DEGREE {
                    let mut lo = begin;
                    while lo < end {
                        let hi = (lo + HEAVY_CHUNK).min(end);
                        h.push(((v as u64) << 32) | (lo - begin) as u64);
                        lo = hi;
                    }
                    continue;
                }
                for &u in &col[begin as usize..end as usize] {
                    if u < v as u32 {
                        hook::<P>(&labels, v as u32, u);
                    }
                }
            }
            h.flush();
        }
        ctx.barrier();

        // Edge-parallel heavy drain: items are (vertex, edge-chunk offset).
        {
            let mut h = heavy.handle(ctx.tid);
            while let Some(chunk) = h.pop_chunk() {
                for item in chunk {
                    let v = (item >> 32) as u32;
                    let off = item as u32;
                    let begin = row[v as usize] + off;
                    let end = (begin + HEAVY_CHUNK).min(row[v as usize + 1]);
                    for &u in &col[begin as usize..end as usize] {
                        if u < v {
                            hook::<P>(&labels, v, u);
                        }
                    }
                }
            }
        }
        ctx.barrier();

        // Flatten: every vertex records its final representative.
        while let Some(range) = flatten.grab() {
            for v in range {
                let r = rep::<P>(&labels, v as u32);
                P::store_u32(labels.at(v), r);
            }
        }
    });

    let host_labels = labels.snapshot();
    let mut roots = host_labels.clone();
    roots.sort_unstable();
    roots.dedup();
    CcResult {
        digest: partition_digest(&host_labels),
        num_components: roots.len(),
        cycles: start.elapsed().as_nanos() as u64,
        stats: Default::default(),
        labels: host_labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{reference_components, verify_components};
    use ecl_graph::gen;
    use ecl_native::{Baseline, RaceFree};

    #[test]
    fn both_policies_find_the_partition() {
        let g = gen::rmat(512, 2048, 0.57, 0.19, 0.19, true, 3);
        let reference = reference_components(&g);
        for threads in [1, 4] {
            let b = run::<Baseline>(&g, threads, 1);
            let f = run::<RaceFree>(&g, threads, 2);
            assert!(verify_components(&g, &b.labels));
            assert!(verify_components(&g, &f.labels));
            assert_eq!(b.num_components, reference);
            assert_eq!(b.digest, f.digest);
        }
    }

    #[test]
    fn hub_graph_exercises_heavy_path() {
        let n = 5_000;
        let mut b = ecl_graph::CsrBuilder::new(n).symmetric(true);
        for v in 1..n as u32 {
            b.add_edge(0, v);
        }
        let g = b.build();
        let r = run::<RaceFree>(&g, 8, 0);
        assert_eq!(r.num_components, 1);
        assert!(verify_components(&g, &r.labels));
    }
}
