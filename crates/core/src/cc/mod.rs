//! ECL-CC: connected components via label propagation over a lock-free,
//! asynchronous union-find with intermediate pointer jumping (paper §II-B-2).
//!
//! The baseline's races: the `representative()` loop reads and shortens
//! parent links with plain accesses (the paper's §VI-A profiling hot spot);
//! the race-free version performs the same traversal through relaxed
//! atomics, which bypass the L1 and cause the large slowdowns of Tables
//! IV–VII.

mod kernels;
pub mod native;
mod verify;

pub use verify::{reference_components, verify_components};

use crate::common::{partition_digest, DeviceGraph, SimOptions};
use crate::primitives::AccessPolicy;
use ecl_graph::Csr;
use ecl_simt::{catch_sim, GpuConfig, SimError, StoreVisibility};

/// Outcome of a CC run.
#[derive(Debug, Clone)]
pub struct CcResult {
    /// Final component label per vertex.
    pub labels: Vec<u32>,
    /// Number of connected components.
    pub num_components: usize,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Per-launch profile.
    pub stats: ecl_simt::metrics::RunStats,
    /// Canonical partition digest (identical across variants).
    pub digest: u64,
}

/// Runs ECL-CC with the given access policy on a fresh simulated GPU.
///
/// `visibility` is the compiler model for plain stores: the racy baseline is
/// run with [`StoreVisibility::DeferUntilYield`], the race-free version with
/// [`StoreVisibility::Immediate`] (its shared accesses are atomic anyway).
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn run<P: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
) -> CcResult {
    run_with::<P>(g, cfg, seed, visibility, &SimOptions::default())
}

/// [`run`] with simulator options (watchdog budget, fault injection).
pub fn run_with<P: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
    opts: &SimOptions,
) -> CcResult {
    assert!(g.num_vertices() > 0, "empty graph");
    let mut gpu = opts.make_gpu(cfg, seed);
    let dg = DeviceGraph::upload(&mut gpu, g);
    let labels = kernels::run_on::<P>(&mut gpu, &dg, visibility);
    let host_labels = gpu.download(&labels);
    let mut roots: Vec<u32> = host_labels.clone();
    roots.sort_unstable();
    roots.dedup();
    CcResult {
        digest: partition_digest(&host_labels),
        num_components: roots.len(),
        cycles: gpu.elapsed_cycles(),
        stats: gpu.run_stats().clone(),
        labels: host_labels,
    }
}

/// [`run_with`], catching launch failures (watchdog timeout, out-of-bounds
/// access, livelock, barrier divergence, fault budget) as typed errors
/// instead of panicking.
pub fn run_checked<P: AccessPolicy>(
    g: &Csr,
    cfg: &GpuConfig,
    seed: u64,
    visibility: StoreVisibility,
    opts: &SimOptions,
) -> Result<CcResult, SimError> {
    catch_sim(|| run_with::<P>(g, cfg, seed, visibility, opts))
}

/// Runs the ECL-CC kernels on a caller-provided GPU — use this instead of
/// [`run`] when you need device-level control such as tracing for the race
/// detector. Returns the final host labels.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn run_traced<P: AccessPolicy>(
    gpu: &mut ecl_simt::Gpu,
    g: &Csr,
    visibility: StoreVisibility,
) -> Vec<u32> {
    assert!(g.num_vertices() > 0, "empty graph");
    let dg = DeviceGraph::upload(gpu, g);
    let labels = kernels::run_on::<P>(gpu, &dg, visibility);
    gpu.download(&labels)
}

/// Access-level IR of the ECL-CC kernels under the canonical policy for the
/// variant. The `label` union-find traffic is policy-mediated (repairable);
/// the CSR loads, the ticketed `heavy` slot stores, and the hook CAS are
/// hard-coded in the kernel bodies.
pub fn ir(race_free: bool) -> Vec<ecl_simt::KernelIr> {
    use crate::contracts::*;
    use crate::primitives::{Atomic, Plain};
    use ecl_simt::{AccessOp, KernelIr, OpWidth};

    fn build<P: AccessPolicy>() -> Vec<KernelIr> {
        let csr = || ir_csr_loads(&["row_offsets", "col_indices"]);
        vec![
            KernelIr::new("cc_init")
                .ops(csr())
                .op(ir_word_write::<P>("label", own4())),
            KernelIr::new("cc_compute_light")
                .ops(csr())
                .ops(ir_union_find_hook::<P>("label"))
                .op(ir_atomic_rmw("heavy_count"))
                // Each heavy vertex goes to a freshly-ticketed slot.
                .op(AccessOp::store("heavy", OpWidth::B4, AccessMode::Plain, claim4()).fixed()),
            KernelIr::new("cc_compute_heavy")
                .ops(csr())
                .ops(ir_csr_loads(&["heavy", "heavy_offsets"]))
                .ops(ir_union_find_hook::<P>("label")),
            KernelIr::new("cc_flatten")
                .ops(ir_union_find_rep::<P>("label"))
                .op(ir_word_write::<P>("label", own4())),
        ]
    }
    if race_free {
        build::<Atomic>()
    } else {
        build::<Plain>()
    }
}

/// Access contracts for the ECL-CC kernels under the canonical policy for
/// the variant ([`crate::primitives::Plain`] baseline,
/// [`crate::primitives::Atomic`] race-free).
pub fn contracts(race_free: bool) -> Vec<ecl_simt::KernelContract> {
    use crate::contracts::*;
    use crate::primitives::{Atomic, Plain};

    fn build<P: AccessPolicy>() -> Vec<ecl_simt::KernelContract> {
        use ecl_simt::KernelContract;
        let csr = || csr_loads(&["row_offsets", "col_indices"]);
        vec![
            KernelContract::new("cc_init")
                .entries(csr())
                .entry(word_write::<P>("label", own4())),
            KernelContract::new("cc_compute_light")
                .entries(csr())
                .entries(union_find_hook_entries::<P>("label"))
                .entry(atomic_rmw("heavy_count"))
                // Each heavy vertex goes to a freshly-ticketed slot.
                .entry(ecl_simt::FootprintEntry::global(
                    "heavy",
                    ecl_simt::AccessMode::Plain,
                    ecl_simt::AccessKind::Store,
                    claim4(),
                )),
            KernelContract::new("cc_compute_heavy")
                .entries(csr())
                .entries(csr_loads(&["heavy", "heavy_offsets"]))
                .entries(union_find_hook_entries::<P>("label")),
            KernelContract::new("cc_flatten")
                .entries(union_find_rep_entries::<P>("label"))
                .entry(word_write::<P>("label", own4())),
        ]
    }
    if race_free {
        build::<Atomic>()
    } else {
        build::<Plain>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::{Atomic, Plain};
    use ecl_graph::gen;

    fn check_graph(g: &Csr) {
        let cfg = GpuConfig::test_tiny();
        let base = run::<Plain>(g, &cfg, 1, StoreVisibility::DeferUntilYield);
        let free = run::<Atomic>(g, &cfg, 1, StoreVisibility::Immediate);
        assert!(
            verify_components(g, &base.labels),
            "baseline labels invalid"
        );
        assert!(
            verify_components(g, &free.labels),
            "race-free labels invalid"
        );
        assert_eq!(base.digest, free.digest, "variants disagree");
        let reference = reference_components(g);
        assert_eq!(base.num_components, reference, "wrong component count");
    }

    #[test]
    fn torus_is_one_component() {
        let g = gen::grid2d_torus(8, 8);
        let r = run::<Atomic>(&g, &GpuConfig::test_tiny(), 3, StoreVisibility::Immediate);
        assert_eq!(r.num_components, 1);
        assert!(verify_components(&g, &r.labels));
    }

    #[test]
    fn variants_agree_on_rmat() {
        check_graph(&gen::rmat(512, 1024, 0.57, 0.19, 0.19, true, 2));
    }

    #[test]
    fn variants_agree_on_road() {
        check_graph(&gen::road_network(400, 0.05, 3));
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        // A graph with only two connected vertices out of 10.
        let mut b = ecl_graph::CsrBuilder::new(10).symmetric(true);
        b.add_edge(3, 7);
        let g = b.build();
        let r = run::<Atomic>(&g, &GpuConfig::test_tiny(), 1, StoreVisibility::Immediate);
        assert_eq!(r.num_components, 9);
        assert_eq!(r.labels[3], r.labels[7]);
    }

    #[test]
    fn seeds_do_not_change_the_partition() {
        let g = gen::pref_attach(300, 3, 0.0, 5);
        let a = run::<Plain>(
            &g,
            &GpuConfig::test_tiny(),
            1,
            StoreVisibility::DeferUntilYield,
        );
        let b = run::<Plain>(
            &g,
            &GpuConfig::test_tiny(),
            99,
            StoreVisibility::DeferUntilYield,
        );
        assert_eq!(a.digest, b.digest);
    }
}
