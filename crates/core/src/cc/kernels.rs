//! The ECL-CC kernels: init, degree-dispatched compute (hooking), and
//! flatten.
//!
//! ECL-CC processes vertices at thread, warp, or block granularity
//! depending on their degree to keep the load balanced (paper §II-B-2). The
//! simulator reproduces this with a two-level dispatch: light vertices are
//! hooked directly by their owning thread, heavy vertices are pushed to a
//! device worklist whose *edges* are then processed edge-parallel by a
//! second kernel.

use crate::common::{union_find_hook, union_find_rep, DeviceGraph};
use crate::primitives::AccessPolicy;
use ecl_simt::{
    DeviceBuffer, ForEach, FullHooks, Gpu, Hooks, LaunchConfig, NoHooks, StoreVisibility,
};

/// Degree above which a vertex's edges are processed edge-parallel rather
/// than by a single thread (ECL-CC's granularity switch).
const HEAVY_DEGREE: u32 = 32;

/// Launches the full ECL-CC pipeline; returns the device label array.
///
/// Dispatches to the monomorphized fast path when no hooks are armed (see
/// `Gpu::fast_path_eligible`), otherwise to the fully-hooked interpreter.
pub(super) fn run_on<P: AccessPolicy>(
    gpu: &mut Gpu,
    dg: &DeviceGraph,
    visibility: StoreVisibility,
) -> DeviceBuffer<u32> {
    if gpu.fast_path_eligible() {
        run_on_hooks::<P, NoHooks>(gpu, dg, visibility)
    } else {
        run_on_hooks::<P, FullHooks>(gpu, dg, visibility)
    }
}

fn run_on_hooks<P: AccessPolicy, H: Hooks>(
    gpu: &mut Gpu,
    dg: &DeviceGraph,
    visibility: StoreVisibility,
) -> DeviceBuffer<u32> {
    let n = dg.n;
    let labels = gpu.alloc_named::<u32>(n as usize, "label");
    // Worklist of heavy vertices plus its append cursor.
    let heavy = gpu.alloc_named::<u32>(n as usize, "heavy");
    let heavy_count = gpu.alloc_named::<u32>(1, "heavy_count");
    let g = *dg;

    // Init: label[v] = the first neighbor smaller than v, else v. This
    // "hooking shortcut" seeds the union-find with cheap initial merges.
    gpu.launch_with::<H, _>(
        LaunchConfig::for_items(n).with_visibility(visibility),
        ForEach::with_hooks::<H>("cc_init", n, move |ctx, v| {
            let begin = ctx.load(g.row_offsets.at(v as usize));
            let end = ctx.load(g.row_offsets.at(v as usize + 1));
            let mut label = v;
            for e in begin..end {
                let u = ctx.load(g.col_indices.at(e as usize));
                if u < v {
                    label = u;
                    break;
                }
            }
            P::write_u32(ctx, labels.at(v as usize), label);
        }),
    );

    // Compute, level 1: light vertices hook their own edges; heavy vertices
    // are deferred to the edge-parallel pass (ECL-CC's load balancing).
    // Processing each undirected edge once (u < v) halves the work.
    gpu.launch_with::<H, _>(
        LaunchConfig::for_items(n).with_visibility(visibility),
        ForEach::with_hooks::<H>("cc_compute_light", n, move |ctx, v| {
            let begin = ctx.load(g.row_offsets.at(v as usize));
            let end = ctx.load(g.row_offsets.at(v as usize + 1));
            if end - begin > HEAVY_DEGREE {
                let slot = ctx.atomic_add_u32(heavy_count.at(0), 1);
                ctx.store(heavy.at(slot as usize), v);
                return;
            }
            for e in begin..end {
                let u = ctx.load(g.col_indices.at(e as usize));
                if u < v {
                    union_find_hook::<P, _>(ctx, labels, v, u);
                }
            }
        })
        .with_chunk(4),
    );

    // Compute, level 2: the heavy vertices' adjacency lists, edge-parallel.
    let num_heavy = gpu.read_scalar(&heavy_count, 0);
    if num_heavy > 0 {
        // An upper bound on the work: iterate (heavy index, edge slot) pairs
        // with a grid-stride kernel over the concatenated heavy edge count.
        let heavy_ids: Vec<u32> = gpu.download(&heavy)[..num_heavy as usize].to_vec();
        let offsets: Vec<u32> = {
            let host_offsets = gpu.download(&dg.row_offsets);
            let mut acc = 0u32;
            let mut out = Vec::with_capacity(heavy_ids.len() + 1);
            out.push(0);
            for &v in &heavy_ids {
                acc += host_offsets[v as usize + 1] - host_offsets[v as usize];
                out.push(acc);
            }
            out
        };
        let total_heavy_edges = *offsets.last().unwrap();
        let heavy_offsets = gpu.alloc_named::<u32>(offsets.len(), "heavy_offsets");
        gpu.upload(&heavy_offsets, &offsets);
        let heavy_list = heavy;
        gpu.launch_with::<H, _>(
            LaunchConfig::for_items(total_heavy_edges).with_visibility(visibility),
            ForEach::with_hooks::<H>("cc_compute_heavy", total_heavy_edges, move |ctx, i| {
                // Binary-search the heavy vertex owning edge slot i.
                let mut lo = 0u32;
                let mut hi = num_heavy;
                while lo + 1 < hi {
                    let mid = (lo + hi) / 2;
                    ctx.compute(1);
                    if ctx.load(heavy_offsets.at(mid as usize)) <= i {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                let v = ctx.load(heavy_list.at(lo as usize));
                let local = i - ctx.load(heavy_offsets.at(lo as usize));
                let begin = ctx.load(g.row_offsets.at(v as usize));
                let u = ctx.load(g.col_indices.at((begin + local) as usize));
                if u < v {
                    union_find_hook::<P, _>(ctx, labels, v, u);
                }
            })
            .with_chunk(8),
        );
    }

    // Flatten: every vertex records its final representative.
    gpu.launch_with::<H, _>(
        LaunchConfig::for_items(n).with_visibility(visibility),
        ForEach::with_hooks::<H>("cc_flatten", n, move |ctx, v| {
            let r = union_find_rep::<P, _>(ctx, labels, v);
            P::write_u32(ctx, labels.at(v as usize), r);
        }),
    );

    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::verify_components;
    use crate::primitives::{Atomic, Plain};
    use ecl_simt::GpuConfig;

    /// A hub graph exercises the heavy path: the center's degree far
    /// exceeds `HEAVY_DEGREE`.
    #[test]
    fn heavy_dispatch_handles_hubs() {
        let n = 300;
        let mut b = ecl_graph::CsrBuilder::new(n).symmetric(true);
        for v in 1..n as u32 {
            b.add_edge(0, v);
        }
        let g = b.build();
        for visibility in [StoreVisibility::Immediate, StoreVisibility::DeferUntilYield] {
            let mut gpu = Gpu::new(GpuConfig::test_tiny());
            let dg = DeviceGraph::upload(&mut gpu, &g);
            let labels = run_on::<Plain>(&mut gpu, &dg, visibility);
            let host = gpu.download(&labels);
            assert!(verify_components(&g, &host));
            // All of the star is one component.
            assert!(host.iter().all(|&l| l == host[0]));
        }
    }

    #[test]
    fn mixed_light_and_heavy_vertices() {
        // A hub plus a long path: exercises both dispatch levels at once.
        let n = 200;
        let mut b = ecl_graph::CsrBuilder::new(n).symmetric(true);
        for v in 1..100u32 {
            b.add_edge(0, v);
        }
        for v in 100..n as u32 - 1 {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let labels = run_on::<Atomic>(&mut gpu, &dg, StoreVisibility::Immediate);
        let host = gpu.download(&labels);
        assert!(verify_components(&g, &host));
    }
}
