//! Serial reference and validation for connected components.

use ecl_graph::Csr;

/// Computes the number of connected components with a serial BFS — the
/// ground truth the GPU labelings are checked against.
pub fn reference_components(g: &Csr) -> usize {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut count = 0;
    let mut queue = Vec::new();
    for s in 0..n {
        if seen[s] {
            continue;
        }
        count += 1;
        seen[s] = true;
        queue.push(s);
        while let Some(v) = queue.pop() {
            for &u in g.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push(u as usize);
                }
            }
        }
    }
    count
}

/// Checks that a labeling is a correct connected-components answer:
/// endpoints of every edge share a label, and vertices in different BFS
/// components have different labels.
pub fn verify_components(g: &Csr, labels: &[u32]) -> bool {
    if labels.len() != g.num_vertices() {
        return false;
    }
    // Same component -> same label.
    for (v, u) in g.edges() {
        if labels[v as usize] != labels[u as usize] {
            return false;
        }
    }
    // Different components -> different labels: the number of distinct
    // labels must equal the true component count.
    let mut distinct: Vec<u32> = labels.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    distinct.len() == reference_components(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::CsrBuilder;

    fn two_triangles() -> Csr {
        let mut b = CsrBuilder::new(6).symmetric(true);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        b.add_edge(3, 4).add_edge(4, 5).add_edge(5, 3);
        b.build()
    }

    #[test]
    fn reference_counts_components() {
        assert_eq!(reference_components(&two_triangles()), 2);
    }

    #[test]
    fn verify_accepts_correct_labeling() {
        let g = two_triangles();
        assert!(verify_components(&g, &[0, 0, 0, 3, 3, 3]));
    }

    #[test]
    fn verify_rejects_split_component() {
        let g = two_triangles();
        assert!(!verify_components(&g, &[0, 0, 1, 3, 3, 3]));
    }

    #[test]
    fn verify_rejects_merged_components() {
        let g = two_triangles();
        assert!(!verify_components(&g, &[0, 0, 0, 0, 0, 0]));
    }

    #[test]
    fn verify_rejects_wrong_length() {
        assert!(!verify_components(&two_triangles(), &[0, 0, 0]));
    }
}
