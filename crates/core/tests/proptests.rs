//! Property-based tests for the algorithm suite: on arbitrary random
//! graphs, both variants produce valid, reference-matching solutions, and
//! the deterministic invariants hold under arbitrary scheduler seeds.

use ecl_core::suite::{run_algorithm, Algorithm, Variant};
use ecl_core::{cc, gc, mis, mst, scc};
use ecl_graph::{Csr, CsrBuilder};
use ecl_simt::GpuConfig;
use proptest::prelude::*;

/// Strategy: a random undirected graph with 4..80 vertices.
fn undirected_graphs() -> impl Strategy<Value = Csr> {
    (4u32..80).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 0..250).prop_map(move |edges| {
            let mut b = CsrBuilder::new(n as usize).symmetric(true);
            b.extend_edges(edges);
            b.build()
        })
    })
}

/// Strategy: a random directed graph with 4..60 vertices.
fn directed_graphs() -> impl Strategy<Value = Csr> {
    (4u32..60).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 0..200).prop_map(move |edges| {
            let mut b = CsrBuilder::new(n as usize);
            b.extend_edges(edges);
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cc_matches_reference_on_arbitrary_graphs(g in undirected_graphs(), seed in any::<u64>()) {
        for variant in [Variant::Baseline, Variant::RaceFree] {
            let r = run_algorithm(Algorithm::Cc, variant, &g, &GpuConfig::test_tiny(), seed);
            prop_assert!(r.valid);
            prop_assert_eq!(r.quality as usize, cc::reference_components(&g));
        }
    }

    #[test]
    fn mis_is_always_valid_and_unique(g in undirected_graphs(), seed in any::<u64>()) {
        let b = run_algorithm(Algorithm::Mis, Variant::Baseline, &g, &GpuConfig::test_tiny(), seed);
        let f = run_algorithm(Algorithm::Mis, Variant::RaceFree, &g, &GpuConfig::test_tiny(), seed);
        prop_assert!(b.valid && f.valid);
        prop_assert_eq!(b.solution_digest, f.solution_digest);
    }

    #[test]
    fn gc_always_colors_properly(g in undirected_graphs(), seed in any::<u64>()) {
        for variant in [Variant::Baseline, Variant::RaceFree] {
            let r = run_algorithm(Algorithm::Gc, variant, &g, &GpuConfig::test_tiny(), seed);
            prop_assert!(r.valid);
        }
    }

    #[test]
    fn mst_weight_matches_kruskal(g in undirected_graphs(), seed in any::<u64>()) {
        let g = g.with_random_weights(100, 5);
        let expected = mst::reference_mst_weight(&g);
        for variant in [Variant::Baseline, Variant::RaceFree] {
            let r = run_algorithm(Algorithm::Mst, variant, &g, &GpuConfig::test_tiny(), seed);
            prop_assert!(r.valid);
            prop_assert_eq!(r.quality as u64, expected);
        }
    }

    #[test]
    fn scc_matches_tarjan(g in directed_graphs(), seed in any::<u64>()) {
        let (_, expected) = scc::reference_sccs(&g);
        for variant in [Variant::Baseline, Variant::RaceFree] {
            let r = run_algorithm(Algorithm::Scc, variant, &g, &GpuConfig::test_tiny(), seed);
            prop_assert!(r.valid);
            prop_assert_eq!(r.quality as usize, expected);
        }
    }

    #[test]
    fn verifiers_reject_corrupted_solutions(g in undirected_graphs()) {
        prop_assume!(g.num_edges() > 0);
        // A correct run, then flip one element of each solution kind.
        let labels = {
            let r = run_algorithm(Algorithm::Cc, Variant::RaceFree, &g, &GpuConfig::test_tiny(), 1);
            prop_assert!(r.valid);
            r
        };
        let _ = labels;
        // CC: merging everything into one label must be rejected unless the
        // graph is connected.
        let merged = vec![0u32; g.num_vertices()];
        if cc::reference_components(&g) > 1 {
            prop_assert!(!cc::verify_components(&g, &merged));
        }
        // MIS: the full vertex set is independent only in edgeless graphs.
        let all_in = vec![true; g.num_vertices()];
        prop_assert!(!mis::verify_mis(&g, &all_in));
        // GC: the all-zero coloring conflicts on any edge.
        let all_zero = vec![0u32; g.num_vertices()];
        prop_assert!(!gc::verify_coloring(&g, &all_zero));
    }
}
