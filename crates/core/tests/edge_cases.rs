//! Edge-case coverage across the suite: degenerate graphs, extreme shapes,
//! every GPU preset, and the documented panics.

use ecl_core::suite::{run_algorithm, Algorithm, Variant};
use ecl_graph::{Csr, CsrBuilder};
use ecl_simt::GpuConfig;

fn single_vertex() -> Csr {
    CsrBuilder::new(1).build()
}

fn two_disconnected() -> Csr {
    CsrBuilder::new(2).build()
}

fn self_paired() -> Csr {
    let mut b = CsrBuilder::new(2).symmetric(true);
    b.add_edge(0, 1);
    b.build()
}

#[test]
fn degenerate_graphs_run_everywhere() {
    let gpu = GpuConfig::test_tiny();
    for g in [single_vertex(), two_disconnected(), self_paired()] {
        for alg in [
            Algorithm::Cc,
            Algorithm::Gc,
            Algorithm::Mis,
            Algorithm::Mst,
            Algorithm::Apsp,
        ] {
            for variant in [Variant::Baseline, Variant::RaceFree] {
                let r = run_algorithm(alg, variant, &g, &gpu, 1);
                assert!(r.valid, "{alg} {variant} on degenerate graph");
            }
        }
        let r = run_algorithm(Algorithm::Scc, Variant::RaceFree, &g, &gpu, 1);
        assert!(r.valid);
    }
}

#[test]
fn long_path_stresses_pointer_jumping() {
    // A 3000-vertex path produces the deepest union-find chains.
    let n = 3000;
    let mut b = CsrBuilder::new(n).symmetric(true);
    for v in 0..(n as u32 - 1) {
        b.add_edge(v, v + 1);
    }
    let g = b.build();
    for variant in [Variant::Baseline, Variant::RaceFree] {
        let r = run_algorithm(Algorithm::Cc, variant, &g, &GpuConfig::test_tiny(), 3);
        assert!(r.valid);
        assert_eq!(r.quality, 1.0);
    }
}

#[test]
fn star_hub_stresses_contention() {
    // Every edge shares vertex 0: maximal atomic contention on one label.
    let n = 2000;
    let mut b = CsrBuilder::new(n).symmetric(true);
    for v in 1..n as u32 {
        b.add_edge(0, v);
    }
    let g = b.build();
    for alg in [Algorithm::Cc, Algorithm::Gc, Algorithm::Mis, Algorithm::Mst] {
        for variant in [Variant::Baseline, Variant::RaceFree] {
            let r = run_algorithm(alg, variant, &g, &GpuConfig::test_tiny(), 1);
            assert!(r.valid, "{alg} {variant} on star");
        }
    }
    // The star's MIS is either the hub alone or all the leaves; the
    // degree-inverse priorities must pick the leaves (much larger set).
    let r = run_algorithm(
        Algorithm::Mis,
        Variant::RaceFree,
        &g,
        &GpuConfig::test_tiny(),
        1,
    );
    assert_eq!(
        r.quality as usize,
        n - 1,
        "MIS should take the {} leaves",
        n - 1
    );
}

#[test]
fn two_cliques_bridge() {
    // Two dense cliques joined by one edge: GC needs exactly clique-size
    // colors, MST must include the bridge.
    let k = 12;
    let mut b = CsrBuilder::new(2 * k).symmetric(true);
    for i in 0..k as u32 {
        for j in (i + 1)..k as u32 {
            b.add_edge(i, j);
            b.add_edge(k as u32 + i, k as u32 + j);
        }
    }
    b.add_edge(0, k as u32);
    let g = b.build();
    let gc = run_algorithm(
        Algorithm::Gc,
        Variant::RaceFree,
        &g,
        &GpuConfig::test_tiny(),
        1,
    );
    assert!(gc.valid);
    assert!(gc.quality >= k as f64, "clique needs at least {k} colors");
    let cc = run_algorithm(
        Algorithm::Cc,
        Variant::Baseline,
        &g,
        &GpuConfig::test_tiny(),
        1,
    );
    assert_eq!(cc.quality, 1.0);
}

#[test]
fn every_gpu_preset_runs_every_algorithm() {
    let und = ecl_graph::gen::rmat(256, 1024, 0.5, 0.2, 0.2, true, 4);
    let dir = ecl_graph::gen::star_polygon(128, 5);
    for gpu in GpuConfig::paper_gpus() {
        for alg in Algorithm::UNDIRECTED {
            let r = run_algorithm(alg, Variant::RaceFree, &und, &gpu, 1);
            assert!(r.valid, "{alg} on {}", gpu.name);
        }
        let r = run_algorithm(Algorithm::Scc, Variant::Baseline, &dir, &gpu, 1);
        assert!(r.valid, "SCC on {}", gpu.name);
    }
}

#[test]
#[should_panic(expected = "APSP is dense")]
fn apsp_rejects_oversized_graphs() {
    let g = ecl_graph::gen::random_uniform(3000, 6000, true, 1);
    let _ = run_algorithm(
        Algorithm::Apsp,
        Variant::Baseline,
        &g,
        &GpuConfig::test_tiny(),
        1,
    );
}

#[test]
#[should_panic(expected = "empty graph")]
fn empty_graph_rejected() {
    let g = CsrBuilder::new(0).build();
    let _ = ecl_core::cc::run::<ecl_core::primitives::Atomic>(
        &g,
        &GpuConfig::test_tiny(),
        1,
        ecl_simt::StoreVisibility::Immediate,
    );
}

#[test]
fn cycles_scale_with_input_size() {
    // The cost model must be monotone in problem size for every algorithm.
    let small = ecl_graph::gen::grid2d_torus(8, 8);
    let large = ecl_graph::gen::grid2d_torus(32, 32);
    let gpu = GpuConfig::test_tiny();
    for alg in [Algorithm::Cc, Algorithm::Gc, Algorithm::Mis, Algorithm::Mst] {
        let s = run_algorithm(alg, Variant::RaceFree, &small, &gpu, 1).cycles;
        let l = run_algorithm(alg, Variant::RaceFree, &large, &gpu, 1).cycles;
        assert!(l > s, "{alg}: {l} cycles on large vs {s} on small");
    }
}
