//! TSan-lane targets: one test per native policy, exercising every native
//! kernel on a small-but-contended graph with more threads than cores.
//!
//! Run normally these are ordinary correctness checks. Under the CI
//! ThreadSanitizer lane (`-Zsanitizer=thread`) the race-free test must come
//! back clean — its only shared accesses are real `std::sync::atomic`
//! operations — while the baseline test is *expected* to light up: its
//! volatile raw-pointer loads and stores are deliberate data races, the very
//! thing the paper's conversion removes. The lane logs baseline reports
//! without failing the build.

use ecl_core::suite::{run_native, Algorithm, Variant};
use ecl_graph::gen;

fn run_all(variant: Variant) {
    let g = gen::rmat(512, 2_048, 0.57, 0.19, 0.19, true, 7);
    for alg in Algorithm::UNDIRECTED {
        for (threads, seed) in [(4, 1), (8, 5)] {
            let r = run_native(alg, variant, &g, threads, seed);
            assert!(r.valid, "{alg} {variant} invalid");
        }
    }
    let r = run_native(Algorithm::Scc, variant, &g, 8, 3);
    assert!(r.valid, "SCC {variant} invalid");
    let apsp = gen::grid2d_torus(8, 8).with_random_weights(20, 4);
    let r = run_native(Algorithm::Apsp, variant, &apsp, 4, 2);
    assert!(r.valid, "APSP {variant} invalid");
}

#[test]
fn race_free_native_kernels_are_tsan_clean() {
    run_all(Variant::RaceFree);
}

#[test]
fn baseline_native_kernels_race_under_tsan() {
    run_all(Variant::Baseline);
}
