//! End-to-end crash-safety tests driving the real `all_tests` binary:
//! journal/resume byte-identity after a mid-sweep kill, isolated-worker
//! death capture, and repro-bundle replay.
//!
//! Everything runs the tiny directed set (10 cells) on the TestTiny GPU at
//! scale 0.05 so the whole file stays in CI-smoke territory.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn exe() -> &'static str {
    env!("CARGO_BIN_EXE_all_tests")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecl-crash-safety-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Common flags: deterministic tiny sweep, stable worker count (the worker
/// count is recorded in the report, so both runs of a diff must pin it).
fn base_args(out: &Path) -> Vec<String> {
    [
        "--scale",
        "0.05",
        "--runs",
        "1",
        "--seed",
        "1",
        "--gpu",
        "test-tiny",
        "--jobs",
        "2",
        "--sets",
        "directed",
        "--omit-timing",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain(["--out".to_string(), out.display().to_string()])
    .collect()
}

fn run(args: &[String], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(exe());
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn all_tests")
}

fn results(out: &Path) -> String {
    std::fs::read_to_string(out.join("BENCH_RESULTS.json")).expect("read BENCH_RESULTS.json")
}

#[test]
fn killed_sweep_resumes_to_a_byte_identical_report() {
    let dir = scratch("resume");
    let (full_out, part_out) = (dir.join("full"), dir.join("part"));
    let journal = dir.join("journal.jsonl");

    // Reference: one uninterrupted journaled sweep.
    let mut args = base_args(&full_out);
    args.extend(["--journal".into(), journal.display().to_string()]);
    let out = run(&args, &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reference = results(&full_out);

    // Simulate a SIGKILL mid-sweep: keep the header, four complete cell
    // records, and a torn fifth line with no trailing newline — exactly
    // what a kill between write and fsync leaves behind.
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 6, "sweep journaled too few cells to truncate");
    let mut torn = lines[..5].join("\n");
    torn.push('\n');
    torn.push_str(&lines[5][..lines[5].len() / 2]);
    let torn_journal = dir.join("torn.jsonl");
    std::fs::write(&torn_journal, torn).unwrap();

    // Resume must skip the four journaled cells, re-verify one of them by
    // digest, re-run the rest, and emit a byte-identical report.
    let mut args = base_args(&part_out);
    args.extend(["--resume".into(), torn_journal.display().to_string()]);
    let out = run(&args, &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("resuming from"),
        "resume path not taken"
    );
    assert_eq!(
        results(&part_out),
        reference,
        "resumed report differs from the uninterrupted one"
    );

    // The repaired journal is complete: resuming again re-runs nothing
    // fatal and reproduces the same bytes once more.
    let mut args = base_args(&part_out);
    args.extend(["--resume".into(), torn_journal.display().to_string()]);
    let out = run(&args, &[]);
    assert!(out.status.success());
    assert_eq!(results(&part_out), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_a_different_config_is_refused() {
    let dir = scratch("identity");
    let out_dir = dir.join("out");
    let journal = dir.join("journal.jsonl");
    let mut args = base_args(&out_dir);
    args.extend(["--journal".into(), journal.display().to_string()]);
    assert!(run(&args, &[]).status.success());

    // Same journal, different seed: the identity check must refuse (exit 2)
    // rather than splice two incompatible runs into one report.
    let mut args = base_args(&out_dir);
    let pos = args.iter().position(|a| a == "--seed").unwrap();
    args[pos + 1] = "99".into();
    args.extend(["--resume".into(), journal.display().to_string()]);
    let out = run(&args, &[]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("identity mismatch"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn isolated_worker_death_is_one_typed_failure_with_a_replayable_bundle() {
    let dir = scratch("isolate");
    let out_dir = dir.join("out");
    let mut args = base_args(&out_dir);
    args.push("--isolate".into());

    // ECL_WORKER_PANIC kills the worker whose cell key contains "cage14"
    // *before* in-process panic containment can see it — a process-level
    // death, the failure mode --isolate exists to survive.
    let out = run(&args, &[("ECL_WORKER_PANIC", "cage14")]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "sweep must finish and report the failure"
    );
    let report = results(&out_dir);
    assert!(
        report.contains("worker process died"),
        "typed Worker failure missing from report: {report}"
    );
    // The other nine cells all measured: the death did not spread.
    assert_eq!(report.matches("\"baseline_cycles\"").count(), 9);

    // The failed cell left a replayable bundle; replayed without the env
    // hook it measures cleanly.
    let bundle = out_dir
        .join("repro")
        .join("directed-cage14-SCC-TestTiny.json");
    assert!(bundle.exists(), "repro bundle not written");
    let replay = run(&["--replay".to_string(), bundle.display().to_string()], &[]);
    assert!(replay.status.success());
    let stdout = String::from_utf8_lossy(&replay.stdout);
    assert!(
        stdout.contains("\"ok\":") && stdout.contains("cage14"),
        "replay did not measure the cell: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn isolated_and_in_process_sweeps_are_byte_identical() {
    let dir = scratch("iso-identity");
    let (a, b) = (dir.join("a"), dir.join("b"));
    assert!(run(&base_args(&a), &[]).status.success());
    let mut args = base_args(&b);
    args.push("--isolate".into());
    let out = run(&args, &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(results(&a), results(&b));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_cell_failing_twice_keeps_both_repro_bundles() {
    // Regression: a cell that failed on the original run and again on a
    // later run into the same output directory used to overwrite its
    // bundle — destroying the evidence of the first failure.
    let dir = scratch("repro-collide");
    let out_dir = dir.join("out");
    let mut args = base_args(&out_dir);
    args.push("--isolate".into());

    let first = run(&args, &[("ECL_WORKER_PANIC", "cage14")]);
    assert_eq!(first.status.code(), Some(1));
    let second = run(&args, &[("ECL_WORKER_PANIC", "cage14")]);
    assert_eq!(second.status.code(), Some(1));

    let repro = out_dir.join("repro");
    assert!(
        repro.join("directed-cage14-SCC-TestTiny.json").exists(),
        "first bundle missing"
    );
    assert!(
        repro
            .join("directed-cage14-SCC-TestTiny.attempt2.json")
            .exists(),
        "second failure must get its own bundle, not overwrite the first"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_interrupt_during_drain_force_quits_with_130() {
    // First SIGINT: cooperative drain (finish the in-flight cell, flush the
    // journal, exit 130 with an "interrupted" note). Second SIGINT while
    // draining: immediate force-quit, after one final journal note line.
    // Driving a mid-cell double-signal deterministically needs a slow cell,
    // so this exercises the farm-grade path through the same binary: start
    // a sweep, signal twice back-to-back, and demand both the fast exit and
    // an intact (loadable, resumable) journal.
    let dir = scratch("double-sigint");
    let out_dir = dir.join("out");
    let journal = dir.join("sweep.jsonl");
    let mut args = base_args(&out_dir);
    args.push("--journal".into());
    args.push(journal.display().to_string());

    let mut cmd = Command::new(exe());
    cmd.args(&args)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    let mut child = cmd.spawn().expect("spawn sweep");
    // Wait for the journal header so the handler is installed, then double-
    // signal. (Signal delivery needs the process alive; if the sweep ends
    // first the test still passes on the exit-code check below.)
    let start = std::time::Instant::now();
    while !journal.exists() && start.elapsed().as_secs() < 60 {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let pid = child.id();
    for _ in 0..2 {
        let _ = Command::new("sh")
            .arg("-c")
            .arg(format!("kill -INT {pid}"))
            .status();
    }
    let status = child.wait().expect("wait sweep");
    // Either the double-signal landed mid-sweep (exit 130) or the tiny
    // sweep won the race and finished (exit 0/1) — both leave a journal
    // that must load cleanly and resume to completion.
    assert!(
        matches!(status.code(), Some(0) | Some(1) | Some(130)),
        "unexpected exit: {status:?}"
    );
    let text = std::fs::read_to_string(&journal).expect("journal exists");
    assert!(text.contains("\"type\":\"header\""));
    let mut resume_args = base_args(&out_dir);
    resume_args.push("--resume".into());
    resume_args.push(journal.display().to_string());
    let resumed = run(&resume_args, &[]);
    assert!(
        resumed.status.success(),
        "journal left by an interrupted run must resume: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
