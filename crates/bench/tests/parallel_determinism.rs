//! PR 2 acceptance suite: the parallel sweep engine must be invisible in the
//! results. For every worker count, the [`MeasuredTable`] — and the
//! `BENCH_RESULTS.json` rendered from it — must be bit-identical to the
//! serial run's. Floats are compared via `to_bits`, not `==`, so a
//! reassociated reduction or a cell measured with a perturbed seed cannot
//! hide behind floating-point tolerance.

use ecl_bench::{BenchReport, Json, Matrix, MeasuredTable};
use ecl_simt::GpuConfig;

fn tiny_matrix(jobs: usize) -> Matrix {
    Matrix::quick()
        .runs(2)
        .scale(0.05)
        .gpus(vec![GpuConfig::test_tiny()])
        .jobs(jobs)
}

/// Field-by-field bit equality, including the derived stats and profiles.
fn assert_tables_identical(serial: &MeasuredTable, parallel: &MeasuredTable, what: &str) {
    assert_eq!(
        serial.cells.len(),
        parallel.cells.len(),
        "{what}: cell count"
    );
    assert_eq!(
        serial.failures.len(),
        parallel.failures.len(),
        "{what}: failure count"
    );
    for (s, p) in serial.cells.iter().zip(&parallel.cells) {
        let ctx = format!("{what}: {} / {} on {}", s.input, s.algorithm, s.gpu);
        assert_eq!(s.input, p.input, "{ctx}: order");
        assert_eq!(s.algorithm, p.algorithm, "{ctx}: order");
        assert_eq!(s.gpu, p.gpu, "{ctx}: order");
        assert_eq!(
            s.baseline_cycles.to_bits(),
            p.baseline_cycles.to_bits(),
            "{ctx}: baseline cycles"
        );
        assert_eq!(
            s.racefree_cycles.to_bits(),
            p.racefree_cycles.to_bits(),
            "{ctx}: race-free cycles"
        );
        assert_eq!(s.speedup.to_bits(), p.speedup.to_bits(), "{ctx}: speedup");
        assert_eq!(s.props.num_vertices, p.props.num_vertices, "{ctx}: |V|");
        assert_eq!(s.props.num_edges, p.props.num_edges, "{ctx}: |E|");
        assert_eq!(s.baseline_profile, p.baseline_profile, "{ctx}: profile");
        assert_eq!(s.racefree_profile, p.racefree_profile, "{ctx}: profile");
    }
}

#[test]
fn directed_sweep_is_identical_at_every_worker_count() {
    let serial = tiny_matrix(1).run_directed();
    assert!(!serial.cells.is_empty());
    assert!(serial.failures.is_empty());
    for jobs in [2, 4] {
        let parallel = tiny_matrix(jobs).run_directed();
        assert_tables_identical(&serial, &parallel, &format!("directed, {jobs} workers"));
    }
}

#[test]
fn undirected_sweep_is_identical_at_every_worker_count() {
    let serial = tiny_matrix(1).run_undirected();
    assert!(!serial.cells.is_empty());
    assert!(serial.failures.is_empty());
    for jobs in [2, 4] {
        let parallel = tiny_matrix(jobs).run_undirected();
        assert_tables_identical(&serial, &parallel, &format!("undirected, {jobs} workers"));
    }
}

#[test]
fn bench_results_json_is_byte_identical_and_round_trips() {
    let render = |jobs: usize| {
        let matrix = tiny_matrix(jobs);
        let undirected = matrix.run_undirected();
        let directed = matrix.run_directed();
        BenchReport {
            experiment: matrix.experiment(),
            undirected: &undirected,
            directed: &directed,
            timing: None, // the one legitimately nondeterministic block
        }
        .render()
    };
    let serial = render(1);
    let parallel = render(3);
    // `jobs` is part of the experiment metadata, so it is the only line that
    // may differ between the two documents.
    let differing: Vec<(&str, &str)> = serial
        .lines()
        .zip(parallel.lines())
        .filter(|(a, b)| a != b)
        .collect();
    assert_eq!(
        differing,
        vec![("    \"jobs\": 1,", "    \"jobs\": 3,")],
        "only the jobs metadata line may differ"
    );

    // Round-trip and shape: the document must parse back to the same tree
    // and expose the advertised schema.
    let doc = Json::parse(&serial).expect("BENCH_RESULTS.json parses");
    assert_eq!(doc.render() + "\n", serial, "parse → render is lossless");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("ecl-bench/BENCH_RESULTS/v1")
    );
    let experiment = doc.get("experiment").expect("experiment block");
    assert_eq!(experiment.get("runs").and_then(Json::as_num), Some(2.0));
    assert_eq!(
        experiment
            .get("gpus")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(1)
    );
    assert!(doc.get("timing").is_none(), "timing omitted when None");

    let tables = doc.get("tables").expect("tables block");
    for (name, cell_count) in [("undirected", 17 * 4), ("directed", 10)] {
        let table = tables.get(name).expect(name);
        let cells = table.get("cells").and_then(Json::as_arr).expect("cells");
        assert_eq!(cells.len(), cell_count, "{name} cell count");
        for cell in cells {
            assert!(cell.get("speedup").and_then(Json::as_num).unwrap() > 0.0);
            assert!(cell.get("baseline_profile").is_some());
        }
        let failures = table
            .get("failures")
            .and_then(Json::as_arr)
            .expect("failures");
        assert!(failures.is_empty(), "{name} should have no failures");
        let summary = table
            .get("summary")
            .and_then(Json::as_arr)
            .expect("summary");
        assert!(!summary.is_empty(), "{name} summary rows");
        for row in summary {
            let min = row.get("min").and_then(Json::as_num).unwrap();
            let geo = row.get("geomean").and_then(Json::as_num).unwrap();
            let max = row.get("max").and_then(Json::as_num).unwrap();
            assert!(
                min <= geo && geo <= max,
                "summary ordering: {min} {geo} {max}"
            );
        }
    }
}

#[test]
fn failures_survive_the_pool_in_order() {
    // A 1-cycle watchdog fails every cell; the parallel sweep must record
    // the same failures in the same order as the serial one.
    use ecl_core::SimOptions;
    let fail_matrix = |jobs: usize| {
        tiny_matrix(jobs)
            .sim_options(SimOptions {
                watchdog: Some(1),
                fault: None,
                deadline: None,
                mode_table: None,
            })
            .run_directed()
    };
    let serial = fail_matrix(1);
    let parallel = fail_matrix(4);
    assert_eq!(serial.failures.len(), 10);
    assert_eq!(serial.failures.len(), parallel.failures.len());
    for (s, p) in serial.failures.iter().zip(&parallel.failures) {
        assert_eq!(s.to_string(), p.to_string());
    }
}
