//! Criterion benchmarks of the hot/slow-path split: the same kernels run
//! through the monomorphized `NoHooks` fast path and through the fully
//! hooked interpreter (with and without tracing armed), so the per-access
//! cost of the hook sites is directly visible. `perf_bench` is the
//! headline-number harness (Maccesses/sec, JSON output, CI regression
//! check); these benches are the fine-grained side-by-side.

use criterion::{criterion_group, criterion_main, Criterion};
use ecl_simt::{ForEach, FullHooks, Gpu, GpuConfig, LaunchConfig, NoHooks};
use std::hint::black_box;

const N: u32 = 1 << 14;

/// One streaming read-modify-write pass over `N` words; ~2 device accesses
/// per item. Returns elapsed simulated cycles so the work cannot be elided.
fn stream_pass_fast(gpu: &mut Gpu) -> u64 {
    let buf = gpu.alloc::<u32>(N as usize);
    gpu.launch_with::<NoHooks, _>(
        LaunchConfig::for_items(N),
        ForEach::with_hooks::<NoHooks>("stream", N, move |ctx, i| {
            let p = buf.at(i as usize);
            let v = ctx.load(p);
            ctx.store(p, v.wrapping_add(1));
        }),
    );
    gpu.elapsed_cycles()
}

fn stream_pass_hooked(gpu: &mut Gpu) -> u64 {
    let buf = gpu.alloc::<u32>(N as usize);
    gpu.launch_with::<FullHooks, _>(
        LaunchConfig::for_items(N),
        ForEach::with_hooks::<FullHooks>("stream", N, move |ctx, i| {
            let p = buf.at(i as usize);
            let v = ctx.load(p);
            ctx.store(p, v.wrapping_add(1));
        }),
    );
    gpu.elapsed_cycles()
}

fn bench_stream_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("fastpath_stream");
    group.sample_size(10);
    group.bench_function("nohooks", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            black_box(stream_pass_fast(&mut gpu))
        });
    });
    group.bench_function("fullhooks_untraced", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            black_box(stream_pass_hooked(&mut gpu))
        });
    });
    group.bench_function("fullhooks_traced", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            gpu.enable_tracing();
            black_box(stream_pass_hooked(&mut gpu))
        });
    });
    group.finish();
}

/// The public `launch` entry point dispatches by `fast_path_eligible()`;
/// this measures what algorithm callers actually get by default.
fn bench_auto_dispatch(c: &mut Criterion) {
    let graph = ecl_graph::gen::rmat(2048, 12288, 0.45, 0.22, 0.22, true, 1);
    let cfg = GpuConfig::rtx2070_super();
    let mut group = c.benchmark_group("fastpath_cc_dispatch");
    group.sample_size(10);
    group.bench_function("auto_fast", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(cfg.clone());
            black_box(ecl_core::cc::run_traced::<ecl_core::primitives::Atomic>(
                &mut gpu,
                &graph,
                ecl_simt::StoreVisibility::Immediate,
            ))
        });
    });
    group.bench_function("forced_hooked_by_tracing", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(cfg.clone());
            gpu.enable_tracing();
            black_box(ecl_core::cc::run_traced::<ecl_core::primitives::Atomic>(
                &mut gpu,
                &graph,
                ecl_simt::StoreVisibility::Immediate,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_stream_paths, bench_auto_dispatch);
criterion_main!(benches);
