//! Criterion microbenchmarks of the simulator itself: per-access costs of
//! the three access classes, cache-model throughput, and wall-clock cost of
//! each algorithm kernel at small scale. These measure *host* wall time (how
//! fast the simulator simulates), complementing the simulated-cycle results
//! of the `paper_tables` bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecl_core::suite::{run_algorithm, Algorithm, Variant};
use ecl_simt::{ForEach, Gpu, GpuConfig, LaunchConfig};
use std::hint::black_box;

fn bench_access_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("access_modes");
    for mode in ["plain", "volatile", "atomic"] {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, &mode| {
            b.iter(|| {
                let mut gpu = Gpu::new(GpuConfig::titan_v());
                let buf = gpu.alloc::<u32>(4096);
                gpu.launch(
                    LaunchConfig::for_items(4096),
                    ForEach::new("sweep", 4096, move |ctx, i| {
                        let p = buf.at(i as usize);
                        match mode {
                            "plain" => {
                                let v = ctx.load(p);
                                ctx.store(p, v + 1);
                            }
                            "volatile" => {
                                let v = ctx.load_volatile(p);
                                ctx.store_volatile(p, v + 1);
                            }
                            _ => {
                                let v = ctx.atomic_load(p);
                                ctx.atomic_store(p, v + 1);
                            }
                        }
                    }),
                );
                black_box(gpu.elapsed_cycles())
            });
        });
    }
    group.finish();
}

fn bench_byte_tricks(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_fig4_byte_access");
    group.bench_function("typecast_mask_read", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            let bytes = gpu.alloc::<u8>(4096);
            let sum = gpu.alloc::<u32>(1);
            gpu.launch(
                LaunchConfig::for_items(4096),
                ForEach::new("bytes", 4096, move |ctx, i| {
                    let v = ecl_core::primitives::atomic_read_byte(ctx, bytes.as_ptr(), i);
                    if v > 0 {
                        ctx.atomic_add_u32(sum.at(0), v as u32);
                    }
                }),
            );
            black_box(gpu.elapsed_cycles())
        });
    });
    group.finish();
}

fn bench_algorithms(c: &mut Criterion) {
    let graph = ecl_graph::gen::rmat(2048, 12288, 0.45, 0.22, 0.22, true, 1);
    let directed = ecl_graph::gen::toroid_hex(32, 32);
    let gpu = GpuConfig::rtx2070_super();
    let mut group = c.benchmark_group("algorithms_small");
    group.sample_size(10);
    for alg in [Algorithm::Cc, Algorithm::Gc, Algorithm::Mis, Algorithm::Mst] {
        for variant in [Variant::Baseline, Variant::RaceFree] {
            group.bench_function(format!("{alg}/{variant}"), |b| {
                b.iter(|| black_box(run_algorithm(alg, variant, &graph, &gpu, 1).cycles));
            });
        }
    }
    for variant in [Variant::Baseline, Variant::RaceFree] {
        group.bench_function(format!("SCC/{variant}"), |b| {
            b.iter(|| black_box(run_algorithm(Algorithm::Scc, variant, &directed, &gpu, 1).cycles));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_access_modes,
    bench_byte_tricks,
    bench_algorithms
);
criterion_main!(benches);
