//! `cargo bench -p ecl-bench --bench paper_tables` — regenerates every table
//! and figure of the paper's evaluation section:
//!
//! - Tables IV–VII: speedups of the race-free CC/GC/MIS/MST on the 17
//!   undirected inputs, one table per GPU;
//! - Table VIII: speedups of the race-free SCC on the 10 directed inputs;
//! - Table IX: Pearson correlations between input properties and speedups;
//! - Fig. 6: geometric-mean speedup per algorithm per GPU.
//!
//! This is a custom (`harness = false`) bench target because the measurement
//! unit is *simulated GPU cycles*, not wall time; Criterion-based wall-time
//! microbenchmarks live in the sibling `micro` bench.
//!
//! Environment knobs: `ECL_SCALE` (default 0.5), `ECL_RUNS` (default 3;
//! the paper used 9).

use ecl_bench::{format_fig6, format_table9, Matrix};
use ecl_simt::GpuConfig;
use std::time::Instant;

fn main() {
    // `cargo bench` passes --bench; ignore any harness flags.
    let scale: f64 = std::env::var("ECL_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let runs: usize = std::env::var("ECL_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let gpus = GpuConfig::paper_gpus();
    let matrix = Matrix::quick().scale(scale).runs(runs);

    eprintln!("paper_tables: scale {scale}, {runs} run(s)/config, 4 GPUs");
    let t0 = Instant::now();
    let undirected = matrix.run_undirected();
    let directed = matrix.run_directed();
    eprintln!("matrix complete in {:.1}s\n", t0.elapsed().as_secs_f64());

    for gpu in &gpus {
        // Tables IV, V, VI, VII (one per GPU) and the per-GPU slice of VIII.
        println!("{}", undirected.table(gpu));
        println!("{}", directed.table(gpu));
    }
    let names: Vec<&str> = gpus.iter().map(|g| g.name).collect();
    println!("{}", format_table9(&undirected, &directed, &names));
    println!();
    println!("{}", format_fig6(&undirected, &directed, &names));
}
