//! Ablation studies (`cargo bench -p ecl-bench --bench ablation`) for the
//! design choices DESIGN.md calls out:
//!
//! 1. **Memory order** — the paper (§II-A) warns that `libcu++` defaults
//!    (`seq_cst`) "can lead to poor performance": rerun a race-free code
//!    with every ordering and compare.
//! 2. **Thread scope** — block vs device vs system scope costs.
//! 3. **Compiler deferral** — how the baseline MIS's visibility delay
//!    (`DeferBounded { every, eighths }`) creates the race-free speedup.
//! 4. **Atomic RMW surcharge** — the hardware lever behind the Fig. 6
//!    newer-GPUs-lose-more trend.
//! 5. **MIS priority heuristic** — degree-inverse priorities buy larger
//!    sets than plain random ones (the ECL-MIS quality claim, §II-B-4).
//! 6. **ECL-GC shortcuts** — rounds/colors with and without the
//!    shortcutting optimizations (§II-B-3).
//! 7. **SCC propagation engine** — full-scan vs data-driven worklist
//!    (the ECL-SCC design, §II-B-6).
//! 8. **MIS kernel structure** — asynchronous persistent threads vs
//!    synchronous host-relaunched Luby rounds.

use ecl_core::mis;
use ecl_core::primitives::{AccessPolicy, Atomic, VolatileReadPlainWrite};
use ecl_core::suite::{run_algorithm, Algorithm, Variant};
use ecl_graph::inputs::GraphInput;
use ecl_simt::{Ctx, DevicePtr, GpuConfig, Hooks, MemOrder, Scope, StoreVisibility};

/// A race-free conversion that uses the expensive `libcu++` *defaults*
/// (`seq_cst`, device scope) instead of relaxed ordering — what a developer
/// gets without reading §II-A.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SeqCstAtomic;

impl AccessPolicy for SeqCstAtomic {
    const NAME: &'static str = "seq_cst-atomic";
    const IS_RACE_FREE: bool = true;
    const READ_MODE: ecl_simt::AccessMode = ecl_simt::AccessMode::Atomic;
    const WRITE_MODE: ecl_simt::AccessMode = ecl_simt::AccessMode::Atomic;

    fn read_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>) -> u32 {
        ctx.atomic_load_explicit(p, MemOrder::SeqCst, Scope::Device)
    }
    fn write_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>, v: u32) {
        ctx.atomic_store_explicit(p, v, MemOrder::SeqCst, Scope::Device);
    }
    fn read_u64<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u64 {
        ctx.atomic_load_explicit(p, MemOrder::SeqCst, Scope::Device)
    }
    fn write_u64<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u64) {
        ctx.atomic_store_explicit(p, v, MemOrder::SeqCst, Scope::Device);
    }
    fn max_u32<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>, v: u32) -> bool {
        ctx.atomic_rmw_explicit(p, MemOrder::SeqCst, Scope::Device, |old| old.max(v)) < v
    }
    fn read_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32) -> u8 {
        let words: DevicePtr<u32> = base.cast();
        let w = ctx.atomic_load_explicit(
            words.offset((i / 4) as usize),
            MemOrder::SeqCst,
            Scope::Device,
        );
        ((w >> ((i % 4) * 8)) & 0xff) as u8
    }
    fn write_byte<H: Hooks>(ctx: &mut Ctx<'_, H>, base: DevicePtr<u8>, i: u32, v: u8) {
        let words: DevicePtr<u32> = base.cast();
        let ptr = words.offset((i / 4) as usize);
        let shift = (i % 4) * 8;
        ctx.atomic_rmw_explicit(ptr, MemOrder::SeqCst, Scope::Device, |old| {
            (old & !(0xffu32 << shift)) | ((v as u32) << shift)
        });
    }
    fn read_pair_first<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u32 {
        ctx.atomic_load_explicit(p.cast::<u32>(), MemOrder::SeqCst, Scope::Device)
    }
    fn read_pair_second<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>) -> u32 {
        ctx.atomic_load_explicit(p.cast::<u32>().offset(1), MemOrder::SeqCst, Scope::Device)
    }
    fn max_pair_first<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u32) -> bool {
        Self::max_u32(ctx, p.cast(), v)
    }
    fn max_pair_second<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u64>, v: u32) -> bool {
        Self::max_u32(ctx, p.cast::<u32>().offset(1), v)
    }
    fn raise_flag<H: Hooks>(ctx: &mut Ctx<'_, H>, p: DevicePtr<u32>) {
        ctx.atomic_store_explicit(p, 1, MemOrder::SeqCst, Scope::Device);
    }
}

fn main() {
    let gpu = GpuConfig::a100();
    let graph = GraphInput::by_name("rmat16.sym").unwrap().build(0.5, 1);

    println!("=== Ablation 1: memory-ordering cost (race-free MIS, A100-class) ===");
    let relaxed = mis::run::<Atomic>(&graph, &gpu, 1, StoreVisibility::Immediate);
    let seq_cst = mis::run::<SeqCstAtomic>(&graph, &gpu, 1, StoreVisibility::Immediate);
    assert!(mis::verify_mis(&graph, &relaxed.in_set));
    assert!(mis::verify_mis(&graph, &seq_cst.in_set));
    println!(
        "relaxed {:>10} cycles | seq_cst (libcu++ default) {:>10} cycles | default is {:.2}x slower",
        relaxed.cycles,
        seq_cst.cycles,
        seq_cst.cycles as f64 / relaxed.cycles as f64
    );

    println!("\n=== Ablation 2: compiler store deferral -> MIS race-free speedup ===");
    println!("{:>8} {:>8} {:>10}", "every", "eighths", "speedup");
    for (every, eighths) in [(1, 0), (2, 2), (2, 4), (2, 8), (4, 4), (4, 8)] {
        let base = mis::run::<VolatileReadPlainWrite>(
            &graph,
            &gpu,
            1,
            StoreVisibility::DeferBounded { every, eighths },
        );
        let free = mis::run::<Atomic>(&graph, &gpu, 1, StoreVisibility::Immediate);
        println!(
            "{every:>8} {eighths:>8} {:>10.3}",
            base.cycles as f64 / free.cycles as f64
        );
    }

    println!("\n=== Ablation 3: atomic RMW surcharge -> CC/SCC slowdown ===");
    let scc_graph = GraphInput::by_name("toroid-hex").unwrap().build(0.5, 1);
    println!("{:>8} {:>8} {:>8}", "extra", "CC", "SCC");
    for extra in [0u32, 8, 16, 32] {
        let mut custom = gpu.clone();
        custom.atomic_extra_cycles = extra;
        let cc = speedup(Algorithm::Cc, &graph, &custom);
        let scc = speedup(Algorithm::Scc, &scc_graph, &custom);
        println!("{extra:>8} {cc:>8.2} {scc:>8.2}");
    }

    println!("\n=== Ablation 4: MIS priority heuristic -> set size ===");
    let sizes = mis_priority_study(&graph, &gpu);
    println!(
        "degree-inverse priorities: {} vertices | flat random: {} vertices | gain {:+.1}%",
        sizes.0,
        sizes.1,
        100.0 * (sizes.0 as f64 - sizes.1 as f64) / sizes.1 as f64
    );

    println!("\n=== Ablation 5: ECL-GC shortcuts -> rounds and colors ===");
    let with = ecl_core::gc::run::<Atomic, Atomic>(&graph, &gpu, 1, StoreVisibility::Immediate);
    let without = ecl_core::gc::run_without_shortcuts::<Atomic, Atomic>(
        &graph,
        &gpu,
        1,
        StoreVisibility::Immediate,
    );
    println!(
        "with shortcuts: {} rounds, {} colors, {} cycles | pure JP: {} rounds, {} colors, {} cycles",
        with.stats.num_launches() - 1,
        with.num_colors,
        with.cycles,
        without.stats.num_launches() - 1,
        without.num_colors,
        without.cycles,
    );

    println!("\n=== Ablation 6: SCC propagation engine (full-scan vs data-driven) ===");
    let scan = ecl_core::scc::run::<Atomic>(&scc_graph, &gpu, 1, StoreVisibility::Immediate);
    let wl =
        ecl_core::scc::run_data_driven::<Atomic>(&scc_graph, &gpu, 1, StoreVisibility::Immediate);
    assert_eq!(scan.digest, wl.digest);
    let accesses = |r: &ecl_core::scc::SccResult| -> u64 {
        r.stats.launches.iter().map(|l| l.total_accesses()).sum()
    };
    println!(
        "full-scan: {} accesses | data-driven worklist: {} accesses ({:.1}x less work)",
        accesses(&scan),
        accesses(&wl),
        accesses(&scan) as f64 / accesses(&wl) as f64
    );

    println!("\n=== Ablation 7: MIS kernel structure (async persistent vs synchronous rounds) ===");
    let asynchronous = mis::run::<Atomic>(&graph, &gpu, 1, StoreVisibility::Immediate);
    let synchronous = mis::run_synchronous::<Atomic>(&graph, &gpu, 1, StoreVisibility::Immediate);
    assert_eq!(asynchronous.digest, synchronous.digest);
    println!(
        "async: {} cycles, {} launches | synchronous Luby: {} cycles, {} launches ({:.2}x)",
        asynchronous.cycles,
        asynchronous.stats.num_launches(),
        synchronous.cycles,
        synchronous.stats.num_launches(),
        synchronous.cycles as f64 / asynchronous.cycles as f64
    );
    println!(
        "note: on real GPUs the async design wins through launch-overhead\n\
         elimination and latency hiding, which this simulator deliberately\n\
         underprices; both MIS variants in the paper tables use the async\n\
         structure, so the reproduction is unaffected."
    );
}

fn speedup(alg: Algorithm, graph: &ecl_graph::Csr, gpu: &GpuConfig) -> f64 {
    let base = run_algorithm(alg, Variant::Baseline, graph, gpu, 1);
    let free = run_algorithm(alg, Variant::RaceFree, graph, gpu, 1);
    assert!(base.valid && free.valid);
    base.cycles as f64 / free.cycles as f64
}

/// Compares the ECL-MIS degree-inverse priority against a flat random one
/// by running a serial greedy in both orders (isolates the heuristic from
/// the parallel machinery).
fn mis_priority_study(graph: &ecl_graph::Csr, _gpu: &GpuConfig) -> (usize, usize) {
    let n = graph.num_vertices();
    let greedy = |key: &dyn Fn(u32) -> (u8, u32)| -> usize {
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(key(v)));
        let mut state = vec![0u8; n]; // 0 undecided, 1 in, 2 out
        let mut count = 0;
        for &v in &order {
            if state[v as usize] == 0 {
                state[v as usize] = 1;
                count += 1;
                for &u in graph.neighbors(v as usize) {
                    if state[u as usize] == 0 {
                        state[u as usize] = 2;
                    }
                }
            }
        }
        count
    };
    let with_degree = greedy(&|v| (mis::priority(v, graph.degree(v as usize) as u32), v));
    let flat_random = greedy(&|v| {
        let mut h = v.wrapping_mul(0x9e37_79b9);
        h ^= h >> 16;
        ((h % 254) as u8 + 2, v)
    });
    (with_degree, flat_random)
}
