//! Text rendering of the paper's tables and figure.

use crate::matrix::MeasuredTable;
use crate::stats::{geomean, pearson};
use ecl_core::suite::Algorithm;

/// Renders a per-GPU speedup table in the layout of Tables IV–VIII: one row
/// per input, one column per algorithm, with Min/Geomean/Max summary rows.
pub fn format_speedup_table(table: &MeasuredTable, gpu: &str) -> String {
    let cells = table.for_gpu(gpu);
    if cells.is_empty() {
        return format!("(no measurements for {gpu})\n");
    }
    let mut algorithms: Vec<Algorithm> = Vec::new();
    let mut inputs: Vec<&'static str> = Vec::new();
    for c in &cells {
        if !algorithms.contains(&c.algorithm) {
            algorithms.push(c.algorithm);
        }
        if !inputs.contains(&c.input) {
            inputs.push(c.input);
        }
    }
    let lookup = |input: &str, alg: Algorithm| -> Option<f64> {
        cells
            .iter()
            .find(|c| c.input == input && c.algorithm == alg)
            .map(|c| c.speedup)
    };

    let mut out = String::new();
    out.push_str(&format!("Speedups of race-free codes on {gpu}\n"));
    out.push_str(&format!("{:<18}", "Input"));
    for alg in &algorithms {
        out.push_str(&format!("{:>8}", alg.name()));
    }
    out.push('\n');
    for input in &inputs {
        out.push_str(&format!("{input:<18}"));
        for alg in &algorithms {
            match lookup(input, *alg) {
                Some(s) => out.push_str(&format!("{s:>8.2}")),
                None => out.push_str(&format!("{:>8}", "-")),
            }
        }
        out.push('\n');
    }
    for label in ["Min Speedup", "Geomean Speedup", "Max Speedup"] {
        out.push_str(&format!("{label:<18}"));
        for alg in &algorithms {
            let col = table.column(gpu, *alg);
            let v = match label {
                "Min Speedup" => col.iter().copied().fold(f64::INFINITY, f64::min),
                "Max Speedup" => col.iter().copied().fold(0.0, f64::max),
                _ => geomean(&col),
            };
            out.push_str(&format!("{v:>8.2}"));
        }
        out.push('\n');
    }
    out
}

/// Renders Fig. 6: geometric-mean speedup per algorithm per GPU as a text
/// bar chart.
pub fn format_fig6(undirected: &MeasuredTable, directed: &MeasuredTable, gpus: &[&str]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 6: geometric-mean speedup of race-free codes (1.00 = baseline)\n\n");
    for alg in [
        Algorithm::Cc,
        Algorithm::Gc,
        Algorithm::Mis,
        Algorithm::Mst,
        Algorithm::Scc,
    ] {
        out.push_str(&format!("{}\n", alg.name()));
        for gpu in gpus {
            let source = if alg == Algorithm::Scc {
                directed
            } else {
                undirected
            };
            let col = source.column(gpu, alg);
            if col.is_empty() {
                continue;
            }
            let g = geomean(&col);
            let bar_len = (g * 40.0).round() as usize;
            out.push_str(&format!(
                "  {gpu:<12} {g:>5.2} |{}{}\n",
                "#".repeat(bar_len.min(60)),
                if g > 1.0 { " (race-free faster)" } else { "" },
            ));
        }
        out.push('\n');
    }
    out
}

/// Renders Table IX: Pearson correlations between graph properties (edge
/// count, vertex count, average degree) and the observed speedups, per GPU
/// and algorithm.
pub fn format_table9(
    undirected: &MeasuredTable,
    directed: &MeasuredTable,
    gpus: &[&str],
) -> String {
    let algorithms = [
        Algorithm::Cc,
        Algorithm::Gc,
        Algorithm::Mis,
        Algorithm::Mst,
        Algorithm::Scc,
    ];
    let mut out = String::new();
    out.push_str("Table IX: correlation of input properties with race-free speedup\n");
    for gpu in gpus {
        out.push_str(&format!("\n{gpu}\n{:<16}", "Correlated with"));
        for alg in &algorithms {
            out.push_str(&format!("{:>8}", alg.name()));
        }
        out.push('\n');
        for (label, extract) in [
            ("Edge Count", 0usize),
            ("Vertex Count", 1),
            ("Average Degree", 2),
        ] {
            out.push_str(&format!("{label:<16}"));
            for alg in &algorithms {
                let source = if *alg == Algorithm::Scc {
                    directed
                } else {
                    undirected
                };
                let cells: Vec<_> = source
                    .cells
                    .iter()
                    .filter(|c| c.gpu == *gpu && c.algorithm == *alg)
                    .collect();
                if cells.len() < 2 {
                    out.push_str(&format!("{:>8}", "-"));
                    continue;
                }
                let xs: Vec<f64> = cells
                    .iter()
                    .map(|c| match extract {
                        0 => c.props.num_edges as f64,
                        1 => c.props.num_vertices as f64,
                        _ => c.props.avg_degree,
                    })
                    .collect();
                let ys: Vec<f64> = cells.iter().map(|c| c.speedup).collect();
                out.push_str(&format!("{:>8.2}", pearson(&xs, &ys)));
            }
            out.push('\n');
        }
    }
    out
}

/// Writes a CSV of per-input speedups, matching the artifact's
/// `undirected_speedups.csv` / `directed_speedups.csv` outputs.
pub fn to_csv(table: &MeasuredTable) -> String {
    let mut out = String::from("gpu,input,algorithm,baseline_cycles,racefree_cycles,speedup\n");
    for c in &table.cells {
        out.push_str(&format!(
            "{},{},{},{:.0},{:.0},{:.4}\n",
            c.gpu, c.input, c.algorithm, c.baseline_cycles, c.racefree_cycles, c.speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{MeasuredCell, VariantProfile};
    use ecl_graph::props::GraphProperties;

    fn fake_table() -> MeasuredTable {
        let props = GraphProperties {
            num_vertices: 10,
            num_edges: 20,
            avg_degree: 2.0,
            max_degree: 4,
            min_degree: 1,
        };
        MeasuredTable {
            cells: vec![
                MeasuredCell {
                    input: "a",
                    algorithm: Algorithm::Cc,
                    gpu: "A100",
                    baseline_cycles: 100.0,
                    racefree_cycles: 200.0,
                    speedup: 0.5,
                    props,
                    baseline_profile: VariantProfile::default(),
                    racefree_profile: VariantProfile::default(),
                },
                MeasuredCell {
                    input: "b",
                    algorithm: Algorithm::Cc,
                    gpu: "A100",
                    baseline_cycles: 300.0,
                    racefree_cycles: 150.0,
                    speedup: 2.0,
                    props,
                    baseline_profile: VariantProfile::default(),
                    racefree_profile: VariantProfile::default(),
                },
            ],
            failures: vec![],
        }
    }

    #[test]
    fn table_includes_summary_rows() {
        let s = format_speedup_table(&fake_table(), "A100");
        assert!(s.contains("Min Speedup"));
        assert!(s.contains("Geomean Speedup"));
        assert!(s.contains("0.50"));
        assert!(s.contains("2.00"));
        // geomean(0.5, 2.0) = 1.0
        assert!(s.contains("1.00"));
    }

    #[test]
    fn empty_gpu_renders_placeholder() {
        let s = format_speedup_table(&fake_table(), "Titan V");
        assert!(s.contains("no measurements"));
    }

    #[test]
    fn fig6_renders_bars_and_winner_note() {
        let t = fake_table();
        let s = format_fig6(&t, &MeasuredTable::default(), &["A100"]);
        assert!(s.contains("CC"));
        assert!(s.contains("A100"));
        // geomean(0.5, 2.0) = 1.00, no winner note at exactly 1.0.
        assert!(s.contains("1.00 |"));
    }

    #[test]
    fn table9_renders_correlations() {
        let props_small = GraphProperties {
            num_vertices: 10,
            num_edges: 20,
            avg_degree: 2.0,
            max_degree: 4,
            min_degree: 1,
        };
        let props_large = GraphProperties {
            num_vertices: 100,
            num_edges: 400,
            avg_degree: 4.0,
            max_degree: 9,
            min_degree: 1,
        };
        let t = MeasuredTable {
            cells: vec![
                MeasuredCell {
                    input: "a",
                    algorithm: Algorithm::Cc,
                    gpu: "A100",
                    baseline_cycles: 100.0,
                    racefree_cycles: 200.0,
                    speedup: 0.5,
                    props: props_small,
                    baseline_profile: VariantProfile::default(),
                    racefree_profile: VariantProfile::default(),
                },
                MeasuredCell {
                    input: "b",
                    algorithm: Algorithm::Cc,
                    gpu: "A100",
                    baseline_cycles: 300.0,
                    racefree_cycles: 150.0,
                    speedup: 2.0,
                    props: props_large,
                    baseline_profile: VariantProfile::default(),
                    racefree_profile: VariantProfile::default(),
                },
            ],
            failures: vec![],
        };
        let s = format_table9(&t, &MeasuredTable::default(), &["A100"]);
        // Speedup grows with size: perfect positive correlation on all
        // three properties for CC; SCC column has no data.
        assert!(s.contains("Edge Count"));
        assert!(s.contains("1.00"));
        assert!(s.contains('-'));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&fake_table());
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("gpu,input,"));
        assert!(csv.contains("A100,a,CC,100,200,0.5000"));
    }
}
