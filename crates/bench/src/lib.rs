//! The experiment harness: reproduces the paper's Tables IV–IX and Fig. 6.
//!
//! The paper's methodology (§V): run every baseline and race-free code on
//! every appropriate input on each of four GPUs, nine times each, and report
//! the speedup `baseline_time / racefree_time` from the median runtimes.
//! This crate drives the same matrix on the simulator (default 3 seeds,
//! `runs(9)` restores the paper's count), computes the per-input speedups,
//! the min/geomean/max summary rows, the Fig. 6 geomean chart, and the
//! Table IX Pearson correlations against graph properties.
//!
//! # Example
//!
//! ```no_run
//! use ecl_bench::{Experiment, Matrix};
//!
//! let matrix = Matrix::quick().scale(0.25);
//! let undirected = matrix.run_undirected();
//! println!("{}", undirected.table(&ecl_simt::GpuConfig::a100()));
//! ```

pub mod export;
pub mod interrupt;
pub mod isolate;
pub mod journal;
mod matrix;
pub mod pool;
pub mod repro;
mod stats;
pub mod storage;
mod tables;

pub use export::{
    cell_json, failure_json, parse_cell, parse_failure, resolve_input_name, run_stats_json,
    table_from_records, table_json, BenchReport, Json, SweepTiming,
};
pub use interrupt::{
    force_quit_requested, install_interrupt_handler, interrupted, spawn_force_quit_watcher,
};
pub use isolate::{cap_tail, IsolateSpec, STDERR_TAIL_BUDGET};
pub use journal::{Journal, JournalWriter, LoadError};
pub use matrix::{
    cell_key, graph_seed, relative_deviation, sched_seed, set_cell_keys, set_plan, CellFailure,
    Experiment, Matrix, MeasuredCell, MeasuredTable, SweepControl, VariantArg, VariantProfile,
};
pub use stats::{geomean, median, pearson};
pub use storage::{
    splitmix64, DurableFile, FaultPlan, MemFs, Storage, StorageBackend, StorageError,
    StorageErrorKind,
};
pub use tables::{format_fig6, format_speedup_table, format_table9, to_csv};
