//! Graceful SIGINT/SIGTERM handling for long sweeps and the farm daemon.
//!
//! The handler only bumps an `AtomicU32` (the one operation that is
//! unconditionally async-signal-safe). What the count means:
//!
//! - **1 signal** — cooperative drain: the sweep polls [`interrupted`]
//!   between cells, finishes the cells already in flight, flushes the
//!   journal, and exits 130 — so a Ctrl-C'd sweep is always resumable.
//! - **2+ signals** — force-quit: the operator pressed Ctrl-C again because
//!   the drain is taking too long (a wedged in-flight cell, a huge one).
//!   A watcher thread ([`spawn_force_quit_watcher`]) notices within ~25 ms,
//!   runs the registered cleanup (append the journal note — every finished
//!   cell is already fsync'd, so nothing else needs saving), and exits 130
//!   immediately instead of waiting on the in-flight cells.
//!
//! The registration goes through the raw libc `signal(2)` symbol directly
//! (declared here) because the repo vendors no `libc` crate.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

static SIGNALS: AtomicU32 = AtomicU32::new(0);
// Mirror of `SIGNALS >= 1` that the sweep pool polls directly; the handler
// maintains both (a store and a fetch_add are each async-signal-safe).
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALS.fetch_add(1, Ordering::SeqCst);
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Installs the counting handler for SIGINT and SIGTERM. Idempotent.
pub fn install_interrupt_handler() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
    #[cfg(not(unix))]
    {
        let _ = on_signal; // no handler on non-unix; sweeps die uncheckpointed
    }
}

/// True once at least one SIGINT/SIGTERM has been received: stop claiming
/// new work, drain what is in flight.
pub fn interrupted() -> bool {
    SIGNALS.load(Ordering::SeqCst) >= 1
}

/// True once a *second* signal has arrived during the drain: stop waiting
/// on in-flight work and exit now.
pub fn force_quit_requested() -> bool {
    SIGNALS.load(Ordering::SeqCst) >= 2
}

/// The flag the sweep pool polls, for wiring into `SweepControl::interrupt`.
/// The handler holds it `true` from the first signal on.
pub fn interrupt_flag() -> &'static AtomicBool {
    &INTERRUPTED
}

/// Spawns the force-quit watcher: a detached thread that polls the signal
/// count and, once [`force_quit_requested`], runs `cleanup` and exits the
/// process with status 130. Call it once per process, after the journal
/// writer (if any) exists so the cleanup can flush the note line.
pub fn spawn_force_quit_watcher<F>(cleanup: F)
where
    F: FnOnce() + Send + 'static,
{
    std::thread::spawn(move || loop {
        if force_quit_requested() {
            cleanup();
            eprintln!("second interrupt: force-quitting without waiting on in-flight cells");
            std::process::exit(130);
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    });
}

/// Test hook: set the signal count directly without a real signal.
pub fn set_signal_count(n: u32) {
    SIGNALS.store(n, Ordering::SeqCst);
    INTERRUPTED.store(n >= 1, Ordering::SeqCst);
}

/// Test/compat hook: raise or clear the first-signal state.
pub fn set_interrupted(v: bool) {
    set_signal_count(if v { 1 } else { 0 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_signal_drains_two_signals_force_quit() {
        install_interrupt_handler();
        set_signal_count(0);
        assert!(!interrupted());
        assert!(!force_quit_requested());
        assert!(!interrupt_flag().load(Ordering::SeqCst));

        set_signal_count(1);
        assert!(interrupted(), "first signal starts the drain");
        assert!(!force_quit_requested(), "one signal never force-quits");
        assert!(interrupt_flag().load(Ordering::SeqCst));

        set_signal_count(2);
        assert!(interrupted());
        assert!(force_quit_requested(), "second signal forces the exit");
        set_signal_count(0);
    }

    #[test]
    fn compat_hook_round_trips() {
        set_interrupted(false);
        assert!(!interrupted());
        set_interrupted(true);
        assert!(interrupted());
        assert!(!force_quit_requested());
        set_interrupted(false);
    }
}
