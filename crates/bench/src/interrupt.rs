//! Graceful SIGINT/SIGTERM handling for long sweeps.
//!
//! The handler only sets an `AtomicBool` (the one operation that is
//! unconditionally async-signal-safe); the sweep polls [`interrupted`]
//! between cells, finishes the cells already in flight, flushes the
//! journal, and exits 130 — so a Ctrl-C'd sweep is always resumable.
//!
//! The registration goes through the raw libc `signal(2)` symbol directly
//! (declared here) because the repo vendors no `libc` crate.

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Installs the flag-setting handler for SIGINT and SIGTERM. Idempotent.
pub fn install_interrupt_handler() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
    #[cfg(not(unix))]
    {
        let _ = on_signal; // no handler on non-unix; sweeps die uncheckpointed
    }
}

/// True once SIGINT/SIGTERM has been received.
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// The flag itself, for wiring into `SweepControl::interrupt`.
pub fn interrupt_flag() -> &'static AtomicBool {
    &INTERRUPTED
}

/// Test hook: raise or clear the flag without a real signal.
pub fn set_interrupted(v: bool) {
    INTERRUPTED.store(v, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        install_interrupt_handler();
        set_interrupted(false);
        assert!(!interrupted());
        set_interrupted(true);
        assert!(interrupted());
        set_interrupted(false);
    }
}
