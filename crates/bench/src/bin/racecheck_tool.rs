//! A Compute-Sanitizer-style command-line race checker for the suite: runs
//! one algorithm/variant/input combination under tracing and prints every
//! detected data race.
//!
//! ```text
//! cargo run --release -p ecl-bench --bin racecheck_tool -- \
//!     --alg cc --variant baseline --input rmat16.sym [--scale 0.25] \
//!     [--mtx path/to/graph.mtx] \
//!     [--mode precise|shared-only|no-launch-barrier|happens-before] \
//!     [--max-pairs N] [--profile] [--json]
//! ```
//!
//! `--json` replaces the human-readable summary with one JSON document
//! (schema `ecl-bench/RACECHECK/v1`) carrying every deduplicated finding —
//! the machine-readable form CI jobs and the differential harness diff
//! against.
//!
//! `--max-pairs N` runs the detector in bounded-memory mode: at most N
//! distinct conflicting access pairs are retained as evidence per finding,
//! with the overflow counted rather than stored. Findings whose evidence was
//! cut off appear in a typed `truncated` list in the JSON output (and are
//! marked in the human summary), so a capped run is never mistaken for a
//! complete one. The finding set itself is identical to an unbounded run —
//! only the retained evidence is bounded.
//!
//! Exit codes (for CI gating): 0 = no races, 1 = races detected, 2 = usage
//! or I/O error (unknown algorithm/input/mode, unreadable `--mtx` file).

use ecl_bench::export::Json;
use ecl_core::primitives::{Atomic, Plain, Volatile, VolatileReadPlainWrite};
use ecl_core::{cc, gc, mis, mst, scc};
use ecl_racecheck::{
    access_profile, check_races_bounded, check_races_hb, check_races_with_mode, format_profile,
    format_summary, BoundedDetection, BoundedFinding, ConflictPair, DetectorMode, RaceReport,
    RaceSite,
};
use ecl_simt::{Gpu, GpuConfig, StoreVisibility};
use std::process::ExitCode;

fn site_json(s: &RaceSite) -> Json {
    Json::obj(vec![
        ("thread", Json::Num(s.thread as f64)),
        ("mode", Json::Str(format!("{:?}", s.mode))),
        ("kind", Json::Str(format!("{:?}", s.kind))),
    ])
}

fn pair_json(p: &ConflictPair) -> Json {
    Json::obj(vec![
        ("addr", Json::Num(p.addr as f64)),
        ("first", site_json(&p.first)),
        ("second", site_json(&p.second)),
    ])
}

fn truncated_json(f: &BoundedFinding) -> Json {
    Json::obj(vec![
        ("kernel", Json::Str(f.report.kernel.clone())),
        (
            "buffer",
            match &f.report.allocation_name {
                Some(n) => Json::Str(n.clone()),
                None => Json::Null,
            },
        ),
        ("allocation", Json::Num(f.report.allocation as f64)),
        ("class", Json::Str(format!("{:?}", f.report.class))),
        ("retained", Json::Num(f.pairs.len() as f64)),
        ("dropped", Json::Num(f.dropped as f64)),
    ])
}

fn report_json(r: &RaceReport) -> Json {
    Json::obj(vec![
        ("kernel", Json::Str(r.kernel.clone())),
        ("space", Json::Str(format!("{:?}", r.space))),
        ("allocation", Json::Num(r.allocation as f64)),
        (
            "allocation_name",
            match &r.allocation_name {
                Some(n) => Json::Str(n.clone()),
                None => Json::Null,
            },
        ),
        ("example_addr", Json::Num(r.example_addr as f64)),
        ("class", Json::Str(format!("{:?}", r.class))),
        ("first", site_json(&r.first)),
        ("second", site_json(&r.second)),
        ("occurrences", Json::Num(r.occurrences as f64)),
    ])
}

/// Prints a diagnostic to stderr and exits with the usage/I/O error code.
fn usage_error(message: String) -> ExitCode {
    eprintln!("racecheck_tool: {message}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };

    let alg = get("--alg", "cc").to_lowercase();
    let variant = get("--variant", "baseline").to_lowercase();
    let input_name = get("--input", "rmat16.sym");
    let scale: f64 = match get("--scale", "0.25").parse() {
        Ok(s) => s,
        Err(_) => return usage_error(format!("bad --scale '{}'", get("--scale", "0.25"))),
    };
    let mode = get("--mode", "precise");
    let mtx_path = get("--mtx", "");
    let max_pairs: Option<usize> = match args.iter().position(|a| a == "--max-pairs") {
        Some(i) => match args.get(i + 1).map(|s| s.parse::<usize>()) {
            Some(Ok(n)) if n > 0 => Some(n),
            _ => return usage_error("--max-pairs needs a positive integer".into()),
        },
        None => None,
    };

    // Input: a real .mtx file when given, else a catalog stand-in.
    let (mut graph, input_label) = if mtx_path.is_empty() {
        let input = match ecl_graph::inputs::GraphInput::by_name(&input_name) {
            Some(i) => i,
            None => {
                return usage_error(format!(
                    "unknown input '{input_name}' (see all_tests --list-inputs)"
                ))
            }
        };
        match input.try_build(scale, 1) {
            Ok(g) => (g, format!("{input_name} (scale {scale})")),
            Err(e) => return usage_error(e.to_string()),
        }
    } else {
        match ecl_graph::mtx::load_mtx(&mtx_path) {
            Ok(g) => (g, mtx_path.clone()),
            Err(e) => return usage_error(e.to_string()),
        }
    };
    if matches!(alg.as_str(), "mst") && graph.weights().is_none() {
        graph = graph.with_random_weights(1000, 0xec1);
    }

    let mut gpu = Gpu::new(GpuConfig::rtx2070_super());
    gpu.enable_tracing();
    let racefree = variant == "race-free" || variant == "racefree";
    let deferred = StoreVisibility::DeferUntilYield;
    let immediate = StoreVisibility::Immediate;
    match (alg.as_str(), racefree) {
        ("cc", false) => drop(cc::run_traced::<Plain>(&mut gpu, &graph, deferred)),
        ("cc", true) => drop(cc::run_traced::<Atomic>(&mut gpu, &graph, immediate)),
        ("gc", false) => drop(gc::run_traced::<Volatile, Plain>(
            &mut gpu, &graph, deferred,
        )),
        ("gc", true) => drop(gc::run_traced::<Atomic, Atomic>(
            &mut gpu, &graph, immediate,
        )),
        ("mis", false) => drop(mis::run_traced::<VolatileReadPlainWrite>(
            &mut gpu,
            &graph,
            StoreVisibility::DeferBounded {
                every: 2,
                eighths: 4,
            },
        )),
        ("mis", true) => drop(mis::run_traced::<Atomic>(&mut gpu, &graph, immediate)),
        ("mst", false) => drop(mst::run_traced::<Volatile>(&mut gpu, &graph, deferred)),
        ("mst", true) => drop(mst::run_traced::<Atomic>(&mut gpu, &graph, immediate)),
        ("scc", false) => drop(scc::run_traced::<Plain>(&mut gpu, &graph, deferred)),
        ("scc", true) => drop(scc::run_traced::<Atomic>(&mut gpu, &graph, immediate)),
        _ => return usage_error(format!("unknown algorithm '{alg}' (cc|gc|mis|mst|scc)")),
    }

    let trace_len = gpu.trace().map(|t| t.len()).unwrap_or(0);
    let detector_mode = match mode.as_str() {
        "precise" => Some(DetectorMode::Precise),
        "shared-only" => Some(DetectorMode::SharedOnly),
        "no-launch-barrier" => Some(DetectorMode::NoLaunchBarrier),
        "happens-before" | "hb" => None,
        other => return usage_error(format!("unknown detector mode '{other}'")),
    };
    let (reports, bounded): (Vec<RaceReport>, Option<BoundedDetection>) =
        match (detector_mode, max_pairs) {
            (Some(m), Some(cap)) => {
                let detection = check_races_bounded(&gpu, m, cap);
                (detection.reports(), Some(detection))
            }
            (Some(m), None) => (check_races_with_mode(&gpu, m), None),
            (None, Some(_)) => {
                return usage_error(
                    "--max-pairs requires a trace-replay mode (precise|shared-only|\
                     no-launch-barrier), not happens-before"
                        .into(),
                )
            }
            (None, None) => (check_races_hb(&gpu), None),
        };
    if args.iter().any(|a| a == "--json") {
        // In bounded mode each report carries its retained pair evidence,
        // and findings whose evidence was cut off are listed under a typed
        // `truncated` marker so a capped run reads as capped.
        let report_docs: Vec<Json> = match &bounded {
            Some(detection) => detection
                .findings
                .iter()
                .map(|f| {
                    let Json::Obj(mut fields) = report_json(&f.report) else {
                        unreachable!("report_json always builds an object");
                    };
                    fields.push((
                        "pairs".into(),
                        Json::Arr(f.pairs.iter().map(pair_json).collect()),
                    ));
                    fields.push(("dropped_pairs".into(), Json::Num(f.dropped as f64)));
                    Json::Obj(fields)
                })
                .collect(),
            None => reports.iter().map(report_json).collect(),
        };
        let mut doc_fields = vec![
            ("schema", Json::Str("ecl-bench/RACECHECK/v1".into())),
            ("alg", Json::Str(alg.clone())),
            ("variant", Json::Str(variant.clone())),
            ("input", Json::Str(input_label.clone())),
            ("mode", Json::Str(mode.clone())),
            ("trace_len", Json::Num(trace_len as f64)),
            ("findings", Json::Num(reports.len() as f64)),
            (
                "occurrences",
                Json::Num(reports.iter().map(|r| r.occurrences).sum::<u64>() as f64),
            ),
            ("reports", Json::Arr(report_docs)),
        ];
        if let Some(detection) = &bounded {
            doc_fields.push(("max_pairs", Json::Num(max_pairs.unwrap_or_default() as f64)));
            doc_fields.push((
                "truncated",
                Json::Arr(
                    detection
                        .truncated()
                        .iter()
                        .map(|f| truncated_json(f))
                        .collect(),
                ),
            ));
        }
        doc_fields.push(("pass", Json::Bool(reports.is_empty())));
        let doc = Json::obj(doc_fields);
        println!("{}", doc.render());
        return if reports.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    println!("{alg} {variant} on {input_label}: {trace_len} traced accesses\n");
    print!("{}", format_summary(&reports));
    if let Some(detection) = &bounded {
        let cut = detection.truncated();
        if cut.is_empty() {
            println!(
                "\nbounded mode (--max-pairs {}): no finding exceeded the cap",
                max_pairs.unwrap_or_default()
            );
        } else {
            println!(
                "\nbounded mode (--max-pairs {}): {} finding(s) truncated:",
                max_pairs.unwrap_or_default(),
                cut.len()
            );
            for f in cut {
                println!(
                    "  {} / {}: retained {} pair(s), dropped {}",
                    f.report.kernel,
                    f.report.allocation_name.as_deref().unwrap_or("<unnamed>"),
                    f.pairs.len(),
                    f.dropped
                );
            }
        }
    }
    if args.iter().any(|a| a == "--profile") {
        // §VI-C: which shared arrays carry the traffic (and how racy it is).
        println!("\naccess profile:");
        print!("{}", format_profile(&access_profile(&gpu)));
    }
    if reports.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
