//! A Compute-Sanitizer-style command-line race checker for the suite: runs
//! one algorithm/variant/input combination under tracing and prints every
//! detected data race.
//!
//! ```text
//! cargo run --release -p ecl-bench --bin racecheck_tool -- \
//!     --alg cc --variant baseline --input rmat16.sym [--scale 0.25] \
//!     [--mtx path/to/graph.mtx] \
//!     [--mode precise|shared-only|no-launch-barrier|happens-before] \
//!     [--profile] [--json]
//! ```
//!
//! `--json` replaces the human-readable summary with one JSON document
//! (schema `ecl-bench/RACECHECK/v1`) carrying every deduplicated finding —
//! the machine-readable form CI jobs and the differential harness diff
//! against.
//!
//! Exit codes (for CI gating): 0 = no races, 1 = races detected, 2 = usage
//! or I/O error (unknown algorithm/input/mode, unreadable `--mtx` file).

use ecl_bench::export::Json;
use ecl_core::primitives::{Atomic, Plain, Volatile, VolatileReadPlainWrite};
use ecl_core::{cc, gc, mis, mst, scc};
use ecl_racecheck::{
    access_profile, check_races_hb, check_races_with_mode, format_profile, format_summary,
    DetectorMode, RaceReport, RaceSite,
};
use ecl_simt::{Gpu, GpuConfig, StoreVisibility};
use std::process::ExitCode;

fn site_json(s: &RaceSite) -> Json {
    Json::obj(vec![
        ("thread", Json::Num(s.thread as f64)),
        ("mode", Json::Str(format!("{:?}", s.mode))),
        ("kind", Json::Str(format!("{:?}", s.kind))),
    ])
}

fn report_json(r: &RaceReport) -> Json {
    Json::obj(vec![
        ("kernel", Json::Str(r.kernel.clone())),
        ("space", Json::Str(format!("{:?}", r.space))),
        ("allocation", Json::Num(r.allocation as f64)),
        (
            "allocation_name",
            match &r.allocation_name {
                Some(n) => Json::Str(n.clone()),
                None => Json::Null,
            },
        ),
        ("example_addr", Json::Num(r.example_addr as f64)),
        ("class", Json::Str(format!("{:?}", r.class))),
        ("first", site_json(&r.first)),
        ("second", site_json(&r.second)),
        ("occurrences", Json::Num(r.occurrences as f64)),
    ])
}

/// Prints a diagnostic to stderr and exits with the usage/I/O error code.
fn usage_error(message: String) -> ExitCode {
    eprintln!("racecheck_tool: {message}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };

    let alg = get("--alg", "cc").to_lowercase();
    let variant = get("--variant", "baseline").to_lowercase();
    let input_name = get("--input", "rmat16.sym");
    let scale: f64 = match get("--scale", "0.25").parse() {
        Ok(s) => s,
        Err(_) => return usage_error(format!("bad --scale '{}'", get("--scale", "0.25"))),
    };
    let mode = get("--mode", "precise");
    let mtx_path = get("--mtx", "");

    // Input: a real .mtx file when given, else a catalog stand-in.
    let (mut graph, input_label) = if mtx_path.is_empty() {
        let input = match ecl_graph::inputs::GraphInput::by_name(&input_name) {
            Some(i) => i,
            None => {
                return usage_error(format!(
                    "unknown input '{input_name}' (see all_tests --list-inputs)"
                ))
            }
        };
        match input.try_build(scale, 1) {
            Ok(g) => (g, format!("{input_name} (scale {scale})")),
            Err(e) => return usage_error(e.to_string()),
        }
    } else {
        match ecl_graph::mtx::load_mtx(&mtx_path) {
            Ok(g) => (g, mtx_path.clone()),
            Err(e) => return usage_error(e.to_string()),
        }
    };
    if matches!(alg.as_str(), "mst") && graph.weights().is_none() {
        graph = graph.with_random_weights(1000, 0xec1);
    }

    let mut gpu = Gpu::new(GpuConfig::rtx2070_super());
    gpu.enable_tracing();
    let racefree = variant == "race-free" || variant == "racefree";
    let deferred = StoreVisibility::DeferUntilYield;
    let immediate = StoreVisibility::Immediate;
    match (alg.as_str(), racefree) {
        ("cc", false) => drop(cc::run_traced::<Plain>(&mut gpu, &graph, deferred)),
        ("cc", true) => drop(cc::run_traced::<Atomic>(&mut gpu, &graph, immediate)),
        ("gc", false) => drop(gc::run_traced::<Volatile, Plain>(
            &mut gpu, &graph, deferred,
        )),
        ("gc", true) => drop(gc::run_traced::<Atomic, Atomic>(
            &mut gpu, &graph, immediate,
        )),
        ("mis", false) => drop(mis::run_traced::<VolatileReadPlainWrite>(
            &mut gpu,
            &graph,
            StoreVisibility::DeferBounded {
                every: 2,
                eighths: 4,
            },
        )),
        ("mis", true) => drop(mis::run_traced::<Atomic>(&mut gpu, &graph, immediate)),
        ("mst", false) => drop(mst::run_traced::<Volatile>(&mut gpu, &graph, deferred)),
        ("mst", true) => drop(mst::run_traced::<Atomic>(&mut gpu, &graph, immediate)),
        ("scc", false) => drop(scc::run_traced::<Plain>(&mut gpu, &graph, deferred)),
        ("scc", true) => drop(scc::run_traced::<Atomic>(&mut gpu, &graph, immediate)),
        _ => return usage_error(format!("unknown algorithm '{alg}' (cc|gc|mis|mst|scc)")),
    }

    let trace_len = gpu.trace().map(|t| t.len()).unwrap_or(0);
    let reports = match mode.as_str() {
        "precise" => check_races_with_mode(&gpu, DetectorMode::Precise),
        "shared-only" => check_races_with_mode(&gpu, DetectorMode::SharedOnly),
        "no-launch-barrier" => check_races_with_mode(&gpu, DetectorMode::NoLaunchBarrier),
        "happens-before" | "hb" => check_races_hb(&gpu),
        other => return usage_error(format!("unknown detector mode '{other}'")),
    };
    if args.iter().any(|a| a == "--json") {
        let doc = Json::obj(vec![
            ("schema", Json::Str("ecl-bench/RACECHECK/v1".into())),
            ("alg", Json::Str(alg.clone())),
            ("variant", Json::Str(variant.clone())),
            ("input", Json::Str(input_label.clone())),
            ("mode", Json::Str(mode.clone())),
            ("trace_len", Json::Num(trace_len as f64)),
            ("findings", Json::Num(reports.len() as f64)),
            (
                "occurrences",
                Json::Num(reports.iter().map(|r| r.occurrences).sum::<u64>() as f64),
            ),
            (
                "reports",
                Json::Arr(reports.iter().map(report_json).collect()),
            ),
            ("pass", Json::Bool(reports.is_empty())),
        ]);
        println!("{}", doc.render());
        return if reports.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    println!("{alg} {variant} on {input_label}: {trace_len} traced accesses\n");
    print!("{}", format_summary(&reports));
    if args.iter().any(|a| a == "--profile") {
        // §VI-C: which shared arrays carry the traffic (and how racy it is).
        println!("\naccess profile:");
        print!("{}", format_profile(&access_profile(&gpu)));
    }
    if reports.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
