//! Host-thread benchmark: baseline-vs-race-free wall-clock deltas for all
//! six algorithms on the native (`ecl-native`) backend at 10M+ edges.
//!
//! The simulator measures the paper's *cycle* deltas under a modeled memory
//! hierarchy; this bin measures what the same two variants cost on real
//! silicon — actual `std::sync::atomic` orderings against actual racy
//! volatile accesses, on host threads. It writes `output/BENCH_NATIVE.json`
//! (schema `ecl-bench/BENCH_NATIVE/v1`) with per-algorithm deltas.
//!
//! ```text
//! cargo run --release -p ecl-bench --bin native_bench
//!     [-- --backend native|sim]     # default native
//!     [--threads N]                 # native worker count (default: machine)
//!     [--quick]                     # small inputs (CI / sim backend)
//!     [--reps N]                    # timed repetitions per cell (default 2)
//!     [--out output/BENCH_NATIVE.json]
//! ```
//!
//! Full mode builds ~12M-stored-edge R-MAT inputs (the 10M+ floor the
//! native harness targets; MST's packed keys cap stored edges at 2^26, so
//! this is comfortably inside range) plus a dense APSP instance at the
//! n<=2048 matrix cap. `--backend sim` replays the identical cells through
//! the simulator — only sensible with `--quick`; full-scale simulation of a
//! 12M-edge graph would take days, so the bin refuses the combination.

use ecl_bench::export::Json;
use ecl_bench::geomean;
use ecl_core::suite::{Algorithm, Backend, NativeBackend, SimulatorBackend, Variant};
use ecl_core::SimOptions;
use ecl_graph::gen::rmat;
use ecl_graph::Csr;
use ecl_simt::GpuConfig;

/// One benchmark cell: an algorithm on its input, both variants timed.
struct Cell {
    algorithm: Algorithm,
    input: &'static str,
    baseline: Timed,
    racefree: Timed,
}

/// Best-of-`reps` measurement of one variant.
struct Timed {
    /// Best per-run time: wall-clock nanoseconds on the native backend,
    /// simulated cycles on the simulator (the unit is recorded in the JSON).
    best: u64,
    quality: f64,
    digest: u64,
}

impl Cell {
    /// Baseline time over race-free time: > 1 means removing the races made
    /// the code faster, the paper's headline direction.
    fn speedup(&self) -> f64 {
        self.baseline.best as f64 / self.racefree.best.max(1) as f64
    }
}

/// Runs one variant `reps + 1` times (first run warms the allocator and
/// checks validity), keeping the fastest. Interference only ever adds time,
/// so best-of is the statistic of choice on a shared box (same argument as
/// `perf_bench`). The solution digest must be identical across repetitions:
/// every native kernel is designed to converge to a schedule-invariant
/// fixpoint, and this is the bench-side enforcement of that claim.
fn measure(backend: &dyn Backend, alg: Algorithm, variant: Variant, g: &Csr, reps: u32) -> Timed {
    let cfg = GpuConfig::test_tiny();
    let opts = SimOptions::default();
    let run = || {
        let r = backend
            .run(alg, variant, g, &cfg, 1, &opts)
            .unwrap_or_else(|e| panic!("{alg} {variant}: {e}"));
        assert!(r.valid, "{alg} {variant} produced an invalid solution");
        r
    };
    let first = run();
    let mut best = first.cycles;
    for _ in 0..reps {
        let r = run();
        assert_eq!(
            r.solution_digest, first.solution_digest,
            "{alg} {variant} fixpoint changed across repetitions"
        );
        best = best.min(r.cycles);
    }
    Timed {
        best,
        quality: first.quality,
        digest: first.solution_digest,
    }
}

fn input_json(role: &str, name: &str, g: &Csr) -> Json {
    Json::obj(vec![
        ("role", Json::Str(role.into())),
        ("generator", Json::Str(name.into())),
        ("vertices", Json::Num(g.num_vertices() as f64)),
        ("edges", Json::Num(g.num_edges() as f64)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let quick = args.iter().any(|a| a == "--quick");
    let backend_name = flag_value("--backend").unwrap_or_else(|| "native".into());
    let threads = flag_value("--threads").map(|t| t.parse::<usize>().expect("--threads N"));
    let reps: u32 = flag_value("--reps").map_or(2, |r| r.parse().expect("--reps N"));
    let out_path = flag_value("--out").unwrap_or_else(|| "output/BENCH_NATIVE.json".into());

    let native = NativeBackend::new(threads);
    let sim = SimulatorBackend;
    let backend: &dyn Backend = match backend_name.as_str() {
        "native" => &native,
        "sim" => {
            assert!(
                quick,
                "--backend sim requires --quick: full-scale inputs are sized \
                 for host threads, not the cycle-level simulator"
            );
            &sim
        }
        other => panic!("unknown backend '{other}' (expected 'native' or 'sim')"),
    };
    let resolved_threads = ecl_native::thread_count(threads);

    // Undirected input for CC/GC/MIS/MST, reused as the (symmetric) directed
    // input for SCC — small-diameter so label propagation converges in a
    // handful of passes even at 12M edges. Weights are pre-synthesized with
    // the suite's canonical parameters so the weighted runs skip the
    // per-call clone and match the simulator's digests.
    let (n, m_requested, apsp_n, apsp_m) = if quick {
        (1usize << 12, 16_384usize, 192usize, 800usize)
    } else {
        (1usize << 21, 7_500_000usize, 1_024usize, 8_192usize)
    };
    eprintln!("native_bench: generating rmat n={n} (~{m_requested} edges pre-mirror)...");
    let g = rmat(n, m_requested, 0.57, 0.19, 0.19, true, 0x5eed).with_random_weights(1_000, 0xec1);
    if !quick {
        assert!(
            g.num_edges() >= 10_000_000,
            "full-mode input has only {} stored edges (need >= 10M)",
            g.num_edges()
        );
        assert!(
            g.num_edges() < 1 << 26,
            "MST packed keys need < 2^26 stored edges"
        );
    }
    let apsp_g =
        rmat(apsp_n, apsp_m, 0.57, 0.19, 0.19, true, 0x5eed).with_random_weights(1_000, 0xec1);

    println!(
        "native_bench: backend={} threads={} mode={} reps={}",
        backend.name(),
        resolved_threads,
        if quick { "quick" } else { "full" },
        reps,
    );
    println!(
        "  graph: |V|={} |E|={}   apsp: |V|={} |E|={}",
        g.num_vertices(),
        g.num_edges(),
        apsp_g.num_vertices(),
        apsp_g.num_edges(),
    );

    let mut cells = Vec::new();
    for alg in Algorithm::ALL {
        let (graph, input) = match alg {
            Algorithm::Apsp => (&apsp_g, "rmat.sym (dense cap)"),
            _ => (&g, "rmat.sym"),
        };
        eprintln!("  {} ...", alg.name());
        let baseline = measure(backend, alg, Variant::Baseline, graph, reps);
        let racefree = measure(backend, alg, Variant::RaceFree, graph, reps);
        cells.push(Cell {
            algorithm: alg,
            input,
            baseline,
            racefree,
        });
    }

    let unit = if backend.name() == "native" {
        "wall_ns"
    } else {
        "sim_cycles"
    };
    println!();
    println!(
        "{:<6} {:>16} {:>16} {:>9}",
        "alg",
        format!("baseline_{unit}"),
        format!("racefree_{unit}"),
        "speedup"
    );
    for c in &cells {
        println!(
            "{:<6} {:>16} {:>16} {:>9.3}",
            c.algorithm.name(),
            c.baseline.best,
            c.racefree.best,
            c.speedup()
        );
    }
    let speedups: Vec<f64> = cells.iter().map(Cell::speedup).collect();
    let overall = geomean(&speedups);
    println!("\ngeomean speedup (baseline/race-free): {overall:.3}x");

    let report = Json::obj(vec![
        ("schema", Json::Str("ecl-bench/BENCH_NATIVE/v1".into())),
        ("backend", Json::Str(backend.name().into())),
        ("threads", Json::Num(resolved_threads as f64)),
        (
            "mode",
            Json::Str(if quick { "quick" } else { "full" }.into()),
        ),
        ("time_unit", Json::Str(unit.into())),
        ("reps", Json::Num(reps as f64)),
        ("geomean_speedup", Json::Num(overall)),
        (
            "inputs",
            Json::Arr(vec![
                input_json("graph", "rmat.sym", &g),
                input_json("apsp-dense", "rmat.sym (dense cap)", &apsp_g),
            ]),
        ),
        (
            "algorithms",
            Json::Arr(
                cells
                    .iter()
                    .map(|c| {
                        let variant = |t: &Timed| {
                            Json::obj(vec![
                                ("best", Json::Num(t.best as f64)),
                                ("quality", Json::Num(t.quality)),
                                ("digest", Json::Str(format!("{:016x}", t.digest))),
                            ])
                        };
                        Json::obj(vec![
                            ("name", Json::Str(c.algorithm.name().into())),
                            ("input", Json::Str(c.input.into())),
                            ("baseline", variant(&c.baseline)),
                            ("racefree", variant(&c.racefree)),
                            ("speedup", Json::Num(c.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&out_path, report.render() + "\n").expect("write BENCH_NATIVE.json");
    println!("wrote {out_path}");
}
