//! Inspect MIS round/step/access counts for baseline vs race-free.

use ecl_core::mis;
use ecl_core::primitives::{Atomic, VolatileReadPlainWrite};
use ecl_simt::{GpuConfig, StoreVisibility};

fn main() {
    let g = ecl_graph::gen::rmat(4096, 28672, 0.45, 0.22, 0.22, true, 1);
    let gpu = GpuConfig::titan_v();
    let base = mis::run::<VolatileReadPlainWrite>(
        &g,
        &gpu,
        1,
        StoreVisibility::DeferBounded {
            every: 2,
            eighths: 3,
        },
    );
    let free = mis::run::<Atomic>(&g, &gpu, 1, StoreVisibility::Immediate);
    for (name, r) in [("base", &base), ("free", &free)] {
        let compute = &r.stats.launches[1];
        println!(
            "{name}: cycles={} steps={} plain={} volatile={} atomic={} coalesced={} l1hit={:.2} l2hit={:.2}",
            r.cycles,
            compute.steps,
            compute.plain_accesses,
            compute.volatile_accesses,
            compute.atomic_accesses,
            compute.coalesced_stores,
            compute.l1.hit_rate(),
            compute.l2.hit_rate(),
        );
    }
    println!("speedup {:.3}", base.cycles as f64 / free.cycles as f64);
}
