//! Calibration helper: prints per-algorithm geomean speedups per GPU on a
//! few representative inputs, plus wall-clock cost per simulated run —
//! used to tune the GPU timing parameters against the paper's Fig. 6.

use ecl_bench::{geomean, Matrix};
use ecl_core::suite::Algorithm;
use ecl_graph::inputs::GraphInput;
use ecl_graph::props::properties;
use ecl_simt::GpuConfig;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let names: Vec<&str> = vec![
        "2d-2e20.sym",
        "rmat16.sym",
        "soc-LiveJournal1",
        "USA-road-d.NY",
        "coPapersDBLP",
    ];
    let directed: Vec<&str> = vec!["star", "toroid-hex", "web-Google", "wikipedia"];
    let matrix = Matrix::quick().runs(1);

    for gpu in GpuConfig::paper_gpus() {
        println!("== {} ==", gpu.name);
        for alg in [Algorithm::Cc, Algorithm::Gc, Algorithm::Mis, Algorithm::Mst] {
            let mut speedups = Vec::new();
            let t0 = Instant::now();
            for name in &names {
                let input = GraphInput::by_name(name).unwrap();
                let g = input.build(scale, 1);
                let props = properties(&g);
                let cell = matrix.measure(input.name(), alg, &g, &gpu, props);
                speedups.push(cell.speedup);
                print!("{:>6.2}", cell.speedup);
            }
            println!(
                "  | {} geomean {:.3} ({:.1}s wall)",
                alg.name(),
                geomean(&speedups),
                t0.elapsed().as_secs_f64()
            );
        }
        let mut speedups = Vec::new();
        let t0 = Instant::now();
        for name in &directed {
            let input = GraphInput::by_name(name).unwrap();
            let g = input.build(scale, 1);
            let props = properties(&g);
            let cell = matrix.measure(input.name(), Algorithm::Scc, &g, &gpu, props);
            speedups.push(cell.speedup);
            print!("{:>6.2}", cell.speedup);
        }
        println!(
            "                    | SCC geomean {:.3} ({:.1}s wall)",
            geomean(&speedups),
            t0.elapsed().as_secs_f64()
        );
    }
}
