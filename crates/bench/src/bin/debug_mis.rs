//! Temporary debugging aid for MIS baseline failures.

use ecl_core::mis;
use ecl_core::primitives::VolatileReadPlainWrite;
use ecl_simt::{GpuConfig, StoreVisibility};

fn main() {
    for n in [60, 120, 250, 550] {
        let g = ecl_graph::gen::clique_overlay(n, n / 2, 10, 1);
        for gpu in GpuConfig::paper_gpus() {
            let r =
                mis::run::<VolatileReadPlainWrite>(&g, &gpu, 1, StoreVisibility::DeferUntilYield);
            let ok = mis::verify_mis(&g, &r.in_set);
            if !ok {
                println!("n={n} gpu={} INVALID", gpu.name);
                // Find the violation.
                for v in 0..g.num_vertices() {
                    if r.in_set[v] {
                        for &u in g.neighbors(v) {
                            if r.in_set[u as usize] && (u as usize) > v {
                                println!("  adjacent IN pair: {v} and {u}");
                            }
                        }
                    } else if !g.neighbors(v).iter().any(|&u| r.in_set[u as usize]) {
                        println!("  not maximal at {v} (deg {})", g.degree(v));
                    }
                }
                return;
            }
        }
    }
    println!("all valid");
}
