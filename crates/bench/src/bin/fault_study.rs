//! Fault-injection study: how often do seeded transient faults corrupt each
//! algorithm's solution (SDC), how often does the run crash outright, and
//! how often does the bounded-retry runner recover?
//!
//! Sweeps a range of per-load bit-flip rates across all six codes in both
//! variants, running each configuration under [`ecl_core::suite::run_resilient`]
//! with each algorithm's own verifier as the SDC detector. Deterministic for
//! a fixed `--seed`: the fault schedule is derived from the seed, not from
//! wall-clock or OS entropy.
//!
//! ```text
//! cargo run --release -p ecl-bench --bin fault_study [-- --seed 1 --attempts 3]
//! ```

use ecl_core::suite::{
    run_resilient_observed, Algorithm, Attempt, RetryPolicy, RunOutcome, Variant,
};
use ecl_core::SimOptions;
use ecl_graph::{gen, Csr};
use ecl_simt::{FaultPlan, GpuConfig, MemLevel};

/// The sweep: (memory level, per-load bit-flip probability). The zero-rate
/// row is the control proving the harness itself injects nothing. DRAM
/// flips are rare (caches absorb most traffic); L2 flips hit every volatile
/// load and L1 miss — but never atomics, which go through the
/// ECC-protected coherence point, so the race-free variants' shared
/// accesses are immune where the baselines' volatile reads are not.
const SWEEP: [(MemLevel, f64); 8] = [
    (MemLevel::Dram, 0.0),
    (MemLevel::Dram, 1e-6),
    (MemLevel::Dram, 1e-5),
    (MemLevel::Dram, 1e-4),
    (MemLevel::Dram, 1e-3),
    (MemLevel::L2, 1e-5),
    (MemLevel::L2, 1e-4),
    (MemLevel::L2, 1e-3),
];

/// Watchdog budget per launch: generous for the clean runs on these small
/// inputs, but finite so a fault-corrupted loop bound becomes a typed
/// timeout instead of a hang.
const WATCHDOG: u64 = 50_000_000;

fn input_for(alg: Algorithm) -> Csr {
    // Small fixed inputs: the study sweeps 48 configurations with up to
    // `--attempts` runs each, and determinism matters more than scale here.
    if alg.directed() {
        gen::pref_attach_directed(200, 4, 0.05, 3)
    } else {
        gen::rmat(256, 1024, 0.57, 0.19, 0.19, true, 6)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let parsed = |name: &str, default| match flag(name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("fault_study: bad {name} '{v}' (need a non-negative integer)");
            std::process::exit(2);
        }),
    };
    let seed: u64 = parsed("--seed", 1);
    let attempts: u32 = parsed("--attempts", 3) as u32;

    let cfg = GpuConfig::test_tiny();
    let policy = RetryPolicy {
        max_attempts: attempts,
        seed_stride: 1,
    };
    let algorithms = [
        Algorithm::Apsp,
        Algorithm::Cc,
        Algorithm::Gc,
        Algorithm::Mis,
        Algorithm::Mst,
        Algorithm::Scc,
    ];

    println!(
        "fault study: seeded single-bit load flips, seed {seed}, \
         up to {attempts} attempts per run ({})\n",
        cfg.name
    );
    println!(
        "{:<5} {:<8} {:>5} {:<10} {:>8} {:>5} {:>7} {:<10}",
        "level", "rate", "algo", "variant", "attempts", "sdc", "crashed", "outcome"
    );

    let mut totals = [(0u32, 0u32, 0u32); SWEEP.len()]; // (ok, recovered, failed)
    for (ri, &(level, rate)) in SWEEP.iter().enumerate() {
        for alg in algorithms {
            let graph = input_for(alg);
            for variant in [Variant::Baseline, Variant::RaceFree] {
                let opts = SimOptions {
                    watchdog: Some(WATCHDOG),
                    fault: (rate > 0.0).then(|| FaultPlan::new(seed).with_bitflips(rate, level)),
                };
                let mut sdc = 0u32;
                let mut crashed = 0u32;
                let outcome = run_resilient_observed(
                    alg,
                    variant,
                    &graph,
                    &cfg,
                    seed,
                    &opts,
                    &policy,
                    |_, what| match what {
                        Attempt::Sdc => sdc += 1,
                        Attempt::Crashed(_) => crashed += 1,
                        Attempt::Valid => {}
                    },
                );
                let (made, label) = match &outcome {
                    RunOutcome::Ok(_) => {
                        totals[ri].0 += 1;
                        (1, "ok".to_string())
                    }
                    RunOutcome::Recovered { attempts, .. } => {
                        totals[ri].1 += 1;
                        (*attempts, "recovered".to_string())
                    }
                    RunOutcome::Failed { attempts, reason } => {
                        totals[ri].2 += 1;
                        let short = reason.split(':').next().unwrap_or(reason);
                        (*attempts, format!("FAILED ({short})"))
                    }
                };
                println!(
                    "{:<5} {:<8} {:>5} {:<10} {:>8} {:>5} {:>7} {:<10}",
                    format!("{level:?}"),
                    format!("{rate:.0e}"),
                    alg.name(),
                    variant.to_string(),
                    made,
                    sdc,
                    crashed,
                    label
                );
            }
        }
    }

    println!("\nper-row summary (12 configurations each):");
    println!(
        "{:<5} {:<8} {:>4} {:>10} {:>7}",
        "level", "rate", "ok", "recovered", "failed"
    );
    for (ri, &(level, rate)) in SWEEP.iter().enumerate() {
        let (ok, rec, fail) = totals[ri];
        println!(
            "{:<5} {:<8} {:>4} {:>10} {:>7}",
            format!("{level:?}"),
            format!("{rate:.0e}"),
            ok,
            rec,
            fail
        );
    }
    let (ok0, rec0, fail0) = totals[0];
    assert_eq!(
        (ok0, rec0, fail0),
        (12, 0, 0),
        "control row (rate 0) must pass everything first try"
    );
}
