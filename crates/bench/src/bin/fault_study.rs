//! Fault-injection study: how often do seeded transient faults corrupt each
//! algorithm's solution (SDC), how often does the run crash outright, and
//! how often does the bounded-retry runner recover?
//!
//! Sweeps a range of per-load bit-flip rates across all six codes in both
//! variants, running each configuration under [`ecl_core::suite::run_resilient`]
//! with each algorithm's own verifier as the SDC detector. Deterministic for
//! a fixed `--seed` *at any worker count*: every configuration's seeds are
//! position-derived, the two study graphs are built once in a shared
//! [`GraphCache`], and the work pool reassembles rows in sweep order — never
//! from wall-clock or OS entropy.
//!
//! ```text
//! cargo run --release -p ecl-bench --bin fault_study \
//!     [-- --seed 1 --attempts 3 --jobs N]
//! ```

use ecl_bench::pool;
use ecl_core::suite::{
    run_resilient_observed, Algorithm, Attempt, RetryPolicy, RunOutcome, Variant,
};
use ecl_core::SimOptions;
use ecl_graph::cache::{CachedGraph, GraphCache};
use ecl_graph::gen;
use ecl_simt::{FaultPlan, GpuConfig, MemLevel};
use std::sync::Arc;

/// The sweep: (memory level, per-load bit-flip probability). The zero-rate
/// row is the control proving the harness itself injects nothing. DRAM
/// flips are rare (caches absorb most traffic); L2 flips hit every volatile
/// load and L1 miss — but never atomics, which go through the
/// ECC-protected coherence point, so the race-free variants' shared
/// accesses are immune where the baselines' volatile reads are not.
const SWEEP: [(MemLevel, f64); 8] = [
    (MemLevel::Dram, 0.0),
    (MemLevel::Dram, 1e-6),
    (MemLevel::Dram, 1e-5),
    (MemLevel::Dram, 1e-4),
    (MemLevel::Dram, 1e-3),
    (MemLevel::L2, 1e-5),
    (MemLevel::L2, 1e-4),
    (MemLevel::L2, 1e-3),
];

/// Watchdog budget per launch: generous for the clean runs on these small
/// inputs, but finite so a fault-corrupted loop bound becomes a typed
/// timeout instead of a hang.
const WATCHDOG: u64 = 50_000_000;

fn input_for(cache: &GraphCache, alg: Algorithm) -> Arc<CachedGraph> {
    // Small fixed inputs: the study sweeps 96 configurations with up to
    // `--attempts` runs each, and determinism matters more than scale here.
    // The cache means the two distinct graphs are built twice total, not
    // once per (row, algorithm, variant) cell.
    if alg.directed() {
        cache.get_or_insert_with("fault-study-directed", 1.0, 3, || {
            gen::pref_attach_directed(200, 4, 0.05, 3)
        })
    } else {
        cache.get_or_insert_with("fault-study-undirected", 1.0, 6, || {
            gen::rmat(256, 1024, 0.57, 0.19, 0.19, true, 6)
        })
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let parsed = |name: &str, default| match flag(name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("fault_study: bad {name} '{v}' (need a non-negative integer)");
            std::process::exit(2);
        }),
    };
    let seed: u64 = parsed("--seed", 1);
    let attempts: u32 = parsed("--attempts", 3) as u32;
    let jobs: usize = match flag("--jobs") {
        None => pool::default_workers(),
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("fault_study: bad --jobs '{v}' (need a positive integer)");
            std::process::exit(2);
        }),
    };

    let cfg = GpuConfig::test_tiny();
    let policy = RetryPolicy {
        max_attempts: attempts,
        seed_stride: 1,
    };
    let algorithms = [
        Algorithm::Apsp,
        Algorithm::Cc,
        Algorithm::Gc,
        Algorithm::Mis,
        Algorithm::Mst,
        Algorithm::Scc,
    ];

    println!(
        "fault study: seeded single-bit load flips, seed {seed}, \
         up to {attempts} attempts per run ({}, {jobs} worker(s))\n",
        cfg.name
    );
    println!(
        "{:<5} {:<8} {:>5} {:<10} {:>8} {:>5} {:>7} {:<10}",
        "level", "rate", "algo", "variant", "attempts", "sdc", "crashed", "outcome"
    );

    // Flat (sweep row, algorithm, variant) cell list in print order; every
    // cell's randomness derives from `seed` alone, so the pool can execute
    // them in any order and the reassembled report is identical.
    let cache = GraphCache::new();
    let mut cells = Vec::new();
    for (ri, &(level, rate)) in SWEEP.iter().enumerate() {
        for alg in algorithms {
            for variant in [Variant::Baseline, Variant::RaceFree] {
                cells.push((ri, level, rate, alg, variant));
            }
        }
    }

    struct CellReport {
        ri: usize,
        line: String,
        outcome_class: u8, // 0 = ok, 1 = recovered, 2 = failed
    }

    ecl_bench::install_interrupt_handler();
    let interrupt = ecl_bench::interrupt::interrupt_flag();
    let reports = pool::run_indexed_until(jobs, cells.len(), Some(interrupt), |i| {
        let (ri, level, rate, alg, variant) = cells[i];
        let graph = input_for(&cache, alg);
        let opts = SimOptions {
            watchdog: Some(WATCHDOG),
            fault: (rate > 0.0).then(|| FaultPlan::new(seed).with_bitflips(rate, level)),
            deadline: None,
            mode_table: None,
        };
        let mut sdc = 0u32;
        let mut crashed = 0u32;
        let outcome = run_resilient_observed(
            alg,
            variant,
            &graph.csr,
            &cfg,
            seed,
            &opts,
            &policy,
            |_, what| match what {
                Attempt::Sdc => sdc += 1,
                Attempt::Crashed(_) => crashed += 1,
                Attempt::Valid => {}
            },
        );
        let (outcome_class, made, label) = match &outcome {
            RunOutcome::Ok(_) => (0u8, 1, "ok".to_string()),
            RunOutcome::Recovered { attempts, .. } => (1, *attempts, "recovered".to_string()),
            RunOutcome::Failed { attempts, reason } => {
                let short = reason.split(':').next().unwrap_or(reason);
                (2, *attempts, format!("FAILED ({short})"))
            }
        };
        let line = format!(
            "{:<5} {:<8} {:>5} {:<10} {:>8} {:>5} {:>7} {:<10}",
            format!("{level:?}"),
            format!("{rate:.0e}"),
            alg.name(),
            variant.to_string(),
            made,
            sdc,
            crashed,
            label
        );
        CellReport {
            ri,
            line,
            outcome_class,
        }
    });

    if ecl_bench::interrupted() {
        let done = reports.iter().flatten().count();
        eprintln!(
            "fault_study: interrupted after {done}/{} cell(s)",
            cells.len()
        );
        std::process::exit(130);
    }
    let reports: Vec<CellReport> = reports.into_iter().flatten().collect();

    let mut totals = [(0u32, 0u32, 0u32); SWEEP.len()]; // (ok, recovered, failed)
    for report in &reports {
        println!("{}", report.line);
        match report.outcome_class {
            0 => totals[report.ri].0 += 1,
            1 => totals[report.ri].1 += 1,
            _ => totals[report.ri].2 += 1,
        }
    }

    println!("\nper-row summary (12 configurations each):");
    println!(
        "{:<5} {:<8} {:>4} {:>10} {:>7}",
        "level", "rate", "ok", "recovered", "failed"
    );
    for (ri, &(level, rate)) in SWEEP.iter().enumerate() {
        let (ok, rec, fail) = totals[ri];
        println!(
            "{:<5} {:<8} {:>4} {:>10} {:>7}",
            format!("{level:?}"),
            format!("{rate:.0e}"),
            ok,
            rec,
            fail
        );
    }
    let (ok0, rec0, fail0) = totals[0];
    assert_eq!(
        (ok0, rec0, fail0),
        (12, 0, 0),
        "control row (rate 0) must pass everything first try"
    );
}
