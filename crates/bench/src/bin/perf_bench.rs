//! Interpreter-throughput benchmark: how many simulated memory accesses per
//! wall-clock second the simulator sustains on the *untraced* path.
//!
//! ROADMAP item 1 names interpreter throughput the top blocker to running
//! the paper's mid-size graph families; this bin is the measurement side of
//! that work. It times a fixed set of workloads (pure-interpreter
//! microkernels plus end-to-end suite cells), reports Maccesses/sec per
//! workload, and writes `output/BENCH_PERF.json` (schema
//! `ecl-bench/BENCH_PERF/v1`) so CI can gate on regressions.
//!
//! ```text
//! cargo run --release -p ecl-bench --bin perf_bench [-- --quick]
//!     [--out output/BENCH_PERF.json]          # write the baseline artifact
//!     [--check output/BENCH_PERF.json]        # fail if >20% below baseline
//! ```
//!
//! `--check` compares the freshly measured geomean against the committed
//! baseline's geomean and exits non-zero on a >20% regression (the CI
//! `perf-smoke` gate). Absolute numbers vary by machine, so the gate is
//! deliberately loose; PERF.md records the history on the reference box.

use ecl_bench::export::Json;
use ecl_bench::geomean;
use ecl_core::suite::{run_algorithm_checked, Algorithm, Variant};
use ecl_core::SimOptions;
use ecl_graph::gen::rmat;
use ecl_graph::Csr;
use ecl_simt::{Gpu, GpuConfig, LaunchConfig, NoHooks};
use std::time::Instant;

/// One measured workload: name, simulated accesses per repetition, and the
/// best (fastest) repetition's wall-clock time.
struct Row {
    name: &'static str,
    accesses: u64,
    cycles: u64,
    best_s: f64,
    reps: u32,
}

impl Row {
    fn maccesses_per_sec(&self) -> f64 {
        self.accesses as f64 / self.best_s / 1e6
    }
}

/// Runs `body` once to warm up, then `reps` times, each timed individually;
/// keeps the fastest repetition. Best-of is the right statistic on a shared
/// noisy box: interference only ever adds time, so the minimum is the
/// closest observable to the interpreter's true cost. `body` returns
/// (accesses, cycles) for one repetition.
fn measure(name: &'static str, reps: u32, mut body: impl FnMut() -> (u64, u64)) -> Row {
    let (accesses, cycles) = body(); // warm-up, also pins the per-rep counts
    let mut best_s = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let (a, c) = body();
        best_s = best_s.min(start.elapsed().as_secs_f64().max(1e-9));
        assert_eq!(
            (a, c),
            (accesses, cycles),
            "workload {name} is not deterministic across repetitions"
        );
    }
    Row {
        name,
        accesses,
        cycles,
        best_s,
        reps,
    }
}

/// Pure-interpreter microkernel: grid-stride streaming reduction, ~5 plain
/// loads + 1 plain store per item. Exercises the L1 hit path.
fn micro_stream(cfg: &GpuConfig, n: u32) -> (u64, u64) {
    let mut gpu = Gpu::new(cfg.clone());
    let data = gpu.alloc::<u32>(n as usize);
    let out = gpu.alloc::<u32>(n as usize);
    gpu.upload(
        &data,
        &(0..n)
            .map(|i| i.wrapping_mul(2654435761))
            .collect::<Vec<_>>(),
    );
    gpu.launch_with::<NoHooks, _>(
        LaunchConfig::for_items(n),
        ecl_simt::ForEach::with_hooks::<NoHooks>("perf_stream", n, move |ctx, i| {
            let mut acc = 0u32;
            for k in 0..4 {
                // Branchy wrap instead of `%`: a hardware divide per index
                // would dominate the closure and hide interpreter cost.
                let mut j = i + k * 7;
                if j >= n {
                    j -= n;
                }
                acc = acc.wrapping_add(ctx.load(data.at(j as usize)));
            }
            acc = acc.wrapping_add(ctx.load(data.at(i as usize)));
            ctx.store(out.at(i as usize), acc);
        }),
    );
    let s = gpu.last_stats().expect("stats");
    (
        s.plain_accesses + s.volatile_accesses + s.atomic_accesses,
        s.cycles,
    )
}

/// Pure-interpreter microkernel: atomic histogram scatter. Exercises the
/// L2/atomic path and RMW accounting.
fn micro_atomic(cfg: &GpuConfig, n: u32) -> (u64, u64) {
    let mut gpu = Gpu::new(cfg.clone());
    let data = gpu.alloc::<u32>(n as usize);
    let hist = gpu.alloc::<u32>(256);
    gpu.upload(
        &data,
        &(0..n)
            .map(|i| i.wrapping_mul(0x9e3779b9))
            .collect::<Vec<_>>(),
    );
    gpu.launch_with::<NoHooks, _>(
        LaunchConfig::for_items(n),
        ecl_simt::ForEach::with_hooks::<NoHooks>("perf_atomic", n, move |ctx, i| {
            let v = ctx.load(data.at(i as usize));
            ctx.atomic_add_u32(hist.at((v & 255) as usize), 1);
        }),
    );
    let s = gpu.last_stats().expect("stats");
    (
        s.plain_accesses + s.volatile_accesses + s.atomic_accesses,
        s.cycles,
    )
}

/// End-to-end suite cell on a small R-MAT graph: the shape of work the
/// paper sweeps spend their time in.
fn suite_cell(alg: Algorithm, variant: Variant, graph: &Csr, cfg: &GpuConfig) -> (u64, u64) {
    let r = run_algorithm_checked(alg, variant, graph, cfg, 0xbe7c, &SimOptions::default())
        .expect("suite cell runs");
    assert!(
        r.valid,
        "{:?}/{:?} produced an invalid solution",
        alg, variant
    );
    let accesses: u64 = r.stats.launches.iter().map(|l| l.total_accesses()).sum();
    (accesses, r.cycles)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value("--out");
    let check_path = flag_value("--check");

    let gpu = GpuConfig::rtx2070_super();
    let (micro_n, suite_n, suite_deg, reps) = if quick {
        (1u32 << 12, 1 << 9, 4, 3u32)
    } else {
        (1u32 << 16, 1 << 12, 8, 5u32)
    };
    let graph = rmat(suite_n, suite_n * suite_deg, 0.57, 0.19, 0.19, true, 0x5eed);

    println!(
        "perf_bench: gpu={} mode={} micro_n={} suite |V|={} |E|={}",
        gpu.name,
        if quick { "quick" } else { "full" },
        micro_n,
        graph.num_vertices(),
        graph.num_edges(),
    );

    let rows = vec![
        measure("micro/stream", reps, || micro_stream(&gpu, micro_n)),
        measure("micro/atomic_hist", reps, || micro_atomic(&gpu, micro_n)),
        measure("suite/cc_baseline", reps, || {
            suite_cell(Algorithm::Cc, Variant::Baseline, &graph, &gpu)
        }),
        measure("suite/cc_racefree", reps, || {
            suite_cell(Algorithm::Cc, Variant::RaceFree, &graph, &gpu)
        }),
        measure("suite/mis_baseline", reps, || {
            suite_cell(Algorithm::Mis, Variant::Baseline, &graph, &gpu)
        }),
        measure("suite/mst_racefree", reps, || {
            suite_cell(Algorithm::Mst, Variant::RaceFree, &graph, &gpu)
        }),
    ];

    println!();
    println!(
        "{:<20} {:>12} {:>14} {:>12}",
        "workload", "accesses", "Maccesses/sec", "sim Mcycles"
    );
    for r in &rows {
        println!(
            "{:<20} {:>12} {:>14.2} {:>12.2}",
            r.name,
            r.accesses,
            r.maccesses_per_sec(),
            r.cycles as f64 / 1e6
        );
    }
    let rates: Vec<f64> = rows.iter().map(|r| r.maccesses_per_sec()).collect();
    let overall = geomean(&rates);
    println!("\ngeomean: {overall:.2} Maccesses/sec");

    let report = Json::obj(vec![
        ("schema", Json::Str("ecl-bench/BENCH_PERF/v1".into())),
        ("gpu", Json::Str(gpu.name.to_string())),
        (
            "mode",
            Json::Str(if quick { "quick" } else { "full" }.into()),
        ),
        ("geomean_maccesses_per_sec", Json::Num(overall)),
        (
            "workloads",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.into())),
                            ("accesses_per_rep", Json::Num(r.accesses as f64)),
                            ("sim_cycles_per_rep", Json::Num(r.cycles as f64)),
                            ("reps", Json::Num(r.reps as f64)),
                            ("maccesses_per_sec", Json::Num(r.maccesses_per_sec())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);

    if let Some(path) = out_path {
        std::fs::write(&path, report.render() + "\n").expect("write BENCH_PERF.json");
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let src =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let baseline = Json::parse(&src).expect("parse baseline JSON");
        assert_eq!(
            baseline.get("schema").and_then(Json::as_str),
            Some("ecl-bench/BENCH_PERF/v1"),
            "unexpected baseline schema"
        );
        let base = baseline
            .get("geomean_maccesses_per_sec")
            .and_then(Json::as_num)
            .expect("baseline geomean");
        let ratio = overall / base;
        println!("check: measured/baseline = {ratio:.2}x (baseline {base:.2})");
        if ratio < 0.8 {
            eprintln!(
                "perf_bench: REGRESSION: geomean {overall:.2} Maccesses/sec is more than \
                 20% below the committed baseline {base:.2}"
            );
            std::process::exit(1);
        }
    }
}
