//! Static access-contract analyzer for the suite: proves the race-free
//! variants free of data races, classifies the baselines' statically-possible
//! conflicts into the paper's benign categories, and (optionally) closes the
//! loop against the dynamic detector and the in-simulator contract sanitizer.
//!
//! ```text
//! cargo run --release -p ecl-bench --bin analyze_tool -- \
//!     [--differential] [--sanitize] [--census-md] [--json] [--seeds N]
//! ```
//!
//! With no flags, runs the static checker over all six codes × both
//! variants and prints the verdicts plus the Table-II-style race census.
//! `--differential` additionally requires every statically-predicted
//! conflict to be dynamically witnessed (and vice versa) on the canonical
//! small inputs; `--sanitize` runs every variant end to end with contract
//! enforcement armed; `--census-md` prints only the markdown census (the
//! form EXPERIMENTS.md embeds); `--json` switches all output to a single
//! JSON document (schema `ecl-bench/ANALYZE/v1`).
//!
//! Exit codes: 0 = all checks passed, 1 = a check failed (unclassified
//! conflict, unproven race-free variant, differential mismatch, or contract
//! violation), 2 = usage error.

use ecl_analyze::{check_suite, format_census, suite_passes, CheckReport};
use ecl_bench::export::Json;
use ecl_core::suite::{Algorithm, Variant};
use ecl_racecheck::RaceClass;
use ecl_simt::GpuConfig;
use std::process::ExitCode;

fn class_name(c: RaceClass) -> &'static str {
    match c {
        RaceClass::WriteWrite => "write-write",
        RaceClass::ReadWrite => "read-write",
        RaceClass::MixedAtomic => "mixed-atomic",
        RaceClass::ScopedAtomic => "scoped-atomic",
    }
}

fn report_json(r: &CheckReport) -> Json {
    Json::obj(vec![
        ("algorithm", Json::Str(r.algorithm.name().into())),
        ("variant", Json::Str(r.variant.to_string())),
        (
            "kernels",
            Json::Arr(r.kernels.iter().map(|k| Json::Str(k.clone())).collect()),
        ),
        ("race_free", Json::Bool(r.is_race_free())),
        ("fully_classified", Json::Bool(r.fully_classified())),
        ("passes", Json::Bool(r.passes())),
        (
            "conflicts",
            Json::Arr(
                r.conflicts
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("kernel", Json::Str(c.kernel.clone())),
                            ("buffer", Json::Str(c.buffer.into())),
                            ("space", Json::Str(format!("{:?}", c.space))),
                            ("class", Json::Str(class_name(c.class).into())),
                            (
                                "benign",
                                match c.benign {
                                    Some(b) => Json::Str(b.to_string()),
                                    None => Json::Null,
                                },
                            ),
                            ("pairs", Json::Num(c.pairs as f64)),
                            ("first", Json::Str(c.first.clone())),
                            ("second", Json::Str(c.second.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    for a in &args {
        if a.starts_with("--")
            && !matches!(
                a.as_str(),
                "--differential" | "--sanitize" | "--census-md" | "--json" | "--seeds"
            )
        {
            eprintln!("analyze_tool: unknown flag '{a}'");
            return ExitCode::from(2);
        }
    }
    let num_seeds: u64 = match args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
    {
        Some(s) => match s.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("analyze_tool: bad --seeds '{s}'");
                return ExitCode::from(2);
            }
        },
        None => 2,
    };
    let json_mode = has("--json");
    let cfg = GpuConfig::test_tiny();

    // Static pass: always runs.
    let reports = check_suite();
    let static_ok = suite_passes(&reports);

    if has("--census-md") {
        print!("{}", format_census(&reports));
        return if static_ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    let mut failed = !static_ok;
    let mut top = vec![
        ("schema", Json::Str("ecl-bench/ANALYZE/v1".into())),
        ("static_pass", Json::Bool(static_ok)),
        (
            "reports",
            Json::Arr(reports.iter().map(report_json).collect()),
        ),
    ];

    if !json_mode {
        println!("static access-contract check (6 codes x 2 variants):\n");
        for r in &reports {
            let verdict = match (r.variant, r.passes()) {
                (Variant::RaceFree, true) => "proven race-free".to_string(),
                (Variant::Baseline, true) if r.conflicts.is_empty() => {
                    "proven race-free (no conversion needed)".to_string()
                }
                (Variant::Baseline, true) => format!(
                    "{} conflict site(s), all classified benign",
                    r.conflicts.len()
                ),
                (_, false) => format!(
                    "FAILED: {} unclassified conflict(s)",
                    r.unclassified().len().max(usize::from(!r.is_race_free()))
                ),
            };
            println!("  {:<5} {:<10} {verdict}", r.algorithm.name(), r.variant);
            if !r.passes() {
                for c in &r.conflicts {
                    println!("        {c}");
                }
            }
        }
        println!("\nrace census:\n\n{}", format_census(&reports));
    }

    if has("--differential") {
        let seeds: Vec<u64> = (1..=num_seeds).collect();
        let outcomes = ecl_analyze::diff_suite(&cfg, &seeds);
        let mut mismatch_count = 0usize;
        let mut diff_json = Vec::new();
        for o in &outcomes {
            mismatch_count += o.mismatches.len();
            diff_json.push(Json::obj(vec![
                ("algorithm", Json::Str(o.algorithm.name().into())),
                ("variant", Json::Str(o.variant.to_string())),
                (
                    "static_conflicts",
                    Json::Arr(
                        o.static_conflicts
                            .iter()
                            .map(|(k, b)| Json::Str(format!("{k}/{b}")))
                            .collect(),
                    ),
                ),
                (
                    "dynamic_races",
                    Json::Arr(
                        o.dynamic_races
                            .iter()
                            .map(|(k, b)| Json::Str(format!("{k}/{b}")))
                            .collect(),
                    ),
                ),
                (
                    "mismatches",
                    Json::Arr(
                        o.mismatches
                            .iter()
                            .map(|m| Json::Str(m.to_string()))
                            .collect(),
                    ),
                ),
            ]));
            if !json_mode {
                let status = if o.mismatches.is_empty() {
                    format!(
                        "ok ({} predicted = {} witnessed)",
                        o.static_conflicts.len(),
                        o.dynamic_races.len()
                    )
                } else {
                    format!("{} mismatch(es)", o.mismatches.len())
                };
                println!(
                    "differential {:<5} {:<10} {status}",
                    o.algorithm.name(),
                    o.variant
                );
                for m in &o.mismatches {
                    println!("    {m}");
                }
            }
        }
        top.push(("differential", Json::Arr(diff_json)));
        top.push(("differential_mismatches", Json::Num(mismatch_count as f64)));
        failed |= mismatch_count > 0;
    }

    if has("--sanitize") {
        let mut san_json = Vec::new();
        for alg in Algorithm::ALL {
            let graph = &ecl_analyze::default_inputs(alg)[0];
            for variant in [Variant::Baseline, Variant::RaceFree] {
                let result = ecl_analyze::sanitize_run(alg, variant, graph, &cfg, 1);
                let error = result.as_ref().err().map(|e| e.to_string());
                if !json_mode {
                    println!(
                        "sanitize {:<5} {:<10} {}",
                        alg.name(),
                        variant,
                        match &error {
                            None => "ok (all accesses within contract)".to_string(),
                            Some(e) => format!("FAILED: {e}"),
                        }
                    );
                }
                san_json.push(Json::obj(vec![
                    ("algorithm", Json::Str(alg.name().into())),
                    ("variant", Json::Str(variant.to_string())),
                    ("ok", Json::Bool(error.is_none())),
                    (
                        "error",
                        match error {
                            Some(ref e) => Json::Str(e.clone()),
                            None => Json::Null,
                        },
                    ),
                ]));
                failed |= san_json
                    .last()
                    .and_then(|j| j.get("ok"))
                    .map(|v| *v == Json::Bool(false))
                    .unwrap_or(true);
            }
        }
        top.push(("sanitize", Json::Arr(san_json)));
    }

    top.push(("pass", Json::Bool(!failed)));
    if json_mode {
        println!("{}", Json::obj(top).render());
    } else if failed {
        println!("\nanalyze: FAILED");
    } else {
        println!("\nanalyze: all checks passed");
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
