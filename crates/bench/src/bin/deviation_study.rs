//! Reproduces the paper's §VI-A run-stability claim: "the nine repeated
//! runs of each configuration are very close in runtime to each other. The
//! median relative deviation is only 0.6%."
//!
//! Deterministic at any worker count: every (input, algorithm, variant)
//! cell's seeds are fixed, the four graphs are built once in a shared
//! [`GraphCache`], and the work pool reassembles rows in catalog order.
//!
//! ```text
//! cargo run --release -p ecl-bench --bin deviation_study [-- --runs 9 --jobs N]
//! ```

use ecl_bench::{median, pool, relative_deviation, VariantArg};
use ecl_core::suite::Algorithm;
use ecl_graph::cache::GraphCache;
use ecl_graph::inputs::GraphInput;
use ecl_simt::GpuConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let runs: usize = flag("--runs").and_then(|s| s.parse().ok()).unwrap_or(9);
    let jobs: usize = flag("--jobs")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(pool::default_workers);

    let inputs = ["rmat16.sym", "amazon0601", "USA-road-d.NY", "2d-2e20.sym"];
    let gpu = GpuConfig::rtx2070_super();
    println!(
        "median relative deviation across {runs} seeded runs ({}, {jobs} worker(s)):\n",
        gpu.name
    );
    println!(
        "{:<18} {:>6} {:>10} {:>10}",
        "input", "algo", "baseline", "race-free"
    );

    let algorithms = [Algorithm::Cc, Algorithm::Gc, Algorithm::Mis, Algorithm::Mst];
    let cache = GraphCache::new();
    let mut cells = Vec::new();
    for name in inputs {
        for alg in algorithms {
            cells.push((name, alg));
        }
    }

    ecl_bench::install_interrupt_handler();
    let interrupt = ecl_bench::interrupt::interrupt_flag();
    let rows = pool::run_indexed_until(jobs, cells.len(), Some(interrupt), |i| {
        let (name, alg) = cells[i];
        let input = GraphInput::by_name(name).expect("catalog entry");
        let graph = cache.get_or_build(&input, 0.5, 1);
        let base = relative_deviation(alg, VariantArg::Baseline, &graph.csr, &gpu, runs);
        let free = relative_deviation(alg, VariantArg::RaceFree, &graph.csr, &gpu, runs);
        (name, alg, base, free)
    });
    if ecl_bench::interrupted() {
        let done = rows.iter().flatten().count();
        eprintln!(
            "deviation_study: interrupted after {done}/{} cell(s)",
            cells.len()
        );
        std::process::exit(130);
    }

    let mut all = Vec::new();
    for (name, alg, base, free) in rows.into_iter().flatten() {
        all.push(base);
        all.push(free);
        println!(
            "{:<18} {:>6} {:>9.2}% {:>9.2}%",
            name,
            alg.name(),
            100.0 * base,
            100.0 * free
        );
    }
    println!(
        "\noverall median: {:.2}% (paper §VI-A: 0.6%)",
        100.0 * median(&all)
    );
}
