//! Reproduces the paper's §VI-A run-stability claim: "the nine repeated
//! runs of each configuration are very close in runtime to each other. The
//! median relative deviation is only 0.6%."
//!
//! ```text
//! cargo run --release -p ecl-bench --bin deviation_study [-- --runs 9]
//! ```

use ecl_bench::{median, relative_deviation, VariantArg};
use ecl_core::suite::Algorithm;
use ecl_graph::inputs::GraphInput;
use ecl_simt::GpuConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let runs: usize = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);

    let inputs = ["rmat16.sym", "amazon0601", "USA-road-d.NY", "2d-2e20.sym"];
    let gpu = GpuConfig::rtx2070_super();
    println!(
        "median relative deviation across {runs} seeded runs ({}):\n",
        gpu.name
    );
    println!(
        "{:<18} {:>6} {:>10} {:>10}",
        "input", "algo", "baseline", "race-free"
    );

    let mut all = Vec::new();
    for name in inputs {
        let input = GraphInput::by_name(name).expect("catalog entry");
        let graph = input.build(0.5, 1);
        for alg in [Algorithm::Cc, Algorithm::Gc, Algorithm::Mis, Algorithm::Mst] {
            let base = relative_deviation(alg, VariantArg::Baseline, &graph, &gpu, runs);
            let free = relative_deviation(alg, VariantArg::RaceFree, &graph, &gpu, runs);
            all.push(base);
            all.push(free);
            println!(
                "{:<18} {:>6} {:>9.2}% {:>9.2}%",
                name,
                alg.name(),
                100.0 * base,
                100.0 * free
            );
        }
    }
    println!(
        "\noverall median: {:.2}% (paper §VI-A: 0.6%)",
        100.0 * median(&all)
    );
}
