//! The analogue of the paper artifact's `all_tests.sh`: runs every baseline
//! and race-free code on every appropriate input on all four GPUs, then
//! writes the speedup tables, CSVs, correlation table, and the Fig. 6 chart.
//!
//! ```text
//! cargo run --release -p ecl-bench --bin all_tests -- [options]
//!
//! --scale <f64>   input scale multiplier        (default 1.0)
//! --runs <n>      runs per configuration        (default 3; paper used 9)
//! --gpu <name>    restrict to one GPU           (default: all four)
//! --jobs <n>      sweep worker threads          (default: $ECL_JOBS, else
//!                                                all cores; results are
//!                                                bit-identical at any count)
//! --out <dir>     output directory              (default ./output)
//! --omit-timing   leave wall-clock metadata out of BENCH_RESULTS.json
//!                 (for byte-exact diffs between runs)
//! --list-gpus     print Table I and exit
//! --list-inputs   print Tables II and III and exit
//! ```
//!
//! Besides the text tables and CSVs, writes `BENCH_RESULTS.json` — every
//! measured cell, every failed cell, and the per-(GPU, algorithm) summary
//! rows. Exits 1 if any cell failed (the failures are listed on stderr and
//! recorded in the JSON; the sweep itself always runs to completion).

use ecl_bench::{format_fig6, format_table9, pool, to_csv, BenchReport, Matrix, SweepTiming};
use ecl_graph::inputs::{directed_catalog, undirected_catalog};
use ecl_graph::props::properties;
use ecl_simt::GpuConfig;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    if args.iter().any(|a| a == "--list-gpus") {
        print_gpus();
        return;
    }
    if args.iter().any(|a| a == "--list-inputs") {
        print_inputs();
        return;
    }

    let scale: f64 = get("--scale").and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let runs: usize = get("--runs").and_then(|s| s.parse().ok()).unwrap_or(3);
    let jobs: usize = get("--jobs")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(pool::default_workers);
    let omit_timing = args.iter().any(|a| a == "--omit-timing");
    let out_dir = PathBuf::from(get("--out").unwrap_or_else(|| "output".into()));
    let gpus: Vec<GpuConfig> = match get("--gpu") {
        Some(name) => GpuConfig::paper_gpus()
            .into_iter()
            .filter(|g| g.name.eq_ignore_ascii_case(&name))
            .collect(),
        None => GpuConfig::paper_gpus(),
    };
    assert!(!gpus.is_empty(), "unknown GPU; try --list-gpus");

    let matrix = Matrix::quick()
        .scale(scale)
        .runs(runs)
        .gpus(gpus.clone())
        .jobs(jobs);
    eprintln!(
        "running the full matrix: scale {scale}, {runs} run(s) per config, {} GPU(s), {jobs} worker(s)…",
        gpus.len()
    );

    let t0 = Instant::now();
    let undirected = matrix.run_undirected();
    let undirected_seconds = t0.elapsed().as_secs_f64();
    eprintln!("undirected matrix done in {undirected_seconds:.1}s");
    let t1 = Instant::now();
    let directed = matrix.run_directed();
    let directed_seconds = t1.elapsed().as_secs_f64();
    eprintln!("directed matrix done in {directed_seconds:.1}s");

    // Tables IV-VII (undirected) and VIII (directed), per GPU.
    for gpu in &gpus {
        println!("{}", undirected.table(gpu));
        println!("{}", directed.table(gpu));
    }
    let gpu_names: Vec<&str> = gpus.iter().map(|g| g.name).collect();
    println!("{}", format_table9(&undirected, &directed, &gpu_names));
    println!();
    println!("{}", format_fig6(&undirected, &directed, &gpu_names));

    std::fs::create_dir_all(&out_dir).expect("create output dir");
    std::fs::write(out_dir.join("undirected_speedups.csv"), to_csv(&undirected))
        .expect("write undirected csv");
    std::fs::write(out_dir.join("directed_speedups.csv"), to_csv(&directed))
        .expect("write directed csv");
    let mut fig = String::new();
    fig.push_str(&format_fig6(&undirected, &directed, &gpu_names));
    std::fs::write(out_dir.join("geometric_means.txt"), fig).expect("write fig6");

    let report = BenchReport {
        experiment: matrix.experiment(),
        undirected: &undirected,
        directed: &directed,
        timing: (!omit_timing).then_some(SweepTiming {
            undirected_seconds,
            directed_seconds,
        }),
    };
    std::fs::write(out_dir.join("BENCH_RESULTS.json"), report.render())
        .expect("write BENCH_RESULTS.json");
    eprintln!(
        "CSV, chart, and BENCH_RESULTS.json written to {}",
        out_dir.display()
    );

    let failed = undirected.failures.len() + directed.failures.len();
    if failed > 0 {
        eprintln!("\n{failed} cell(s) failed:");
        for f in undirected.failures.iter().chain(&directed.failures) {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}

fn print_gpus() {
    println!(
        "{:<12} {:<14} {:>6} {:>6} {:>8} {:>8}",
        "GPU", "Architecture", "SMs", "Cores", "L1 KiB", "L2 KiB"
    );
    for g in GpuConfig::paper_gpus() {
        println!(
            "{:<12} {:<14} {:>6} {:>6} {:>8} {:>8}",
            g.name,
            g.architecture,
            g.num_sms,
            g.num_sms * g.cores_per_sm,
            g.l1_kib,
            g.l2_kib
        );
    }
}

fn print_inputs() {
    for (title, catalog) in [
        (
            "Table II: undirected inputs (scaled stand-ins at --scale 1.0)",
            undirected_catalog(),
        ),
        ("Table III: directed inputs", directed_catalog()),
    ] {
        println!("{title}");
        println!(
            "{:<18} {:>10} {:>10} {:>8} {:>8}   paper: V/E",
            "Name", "Vertices", "Edges", "d-avg", "d-max"
        );
        for input in catalog {
            let g = input.build(1.0, 1);
            let p = properties(&g);
            let meta = input.paper_meta();
            println!(
                "{:<18} {:>10} {:>10} {:>8.1} {:>8}   {}/{}",
                input.name(),
                p.num_vertices,
                p.num_edges,
                p.avg_degree,
                p.max_degree,
                meta.vertices,
                meta.edges
            );
        }
        println!();
    }
}
