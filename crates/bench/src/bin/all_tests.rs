//! The analogue of the paper artifact's `all_tests.sh`: runs every baseline
//! and race-free code on every appropriate input on all four GPUs, then
//! writes the speedup tables, CSVs, correlation table, and the Fig. 6 chart.
//!
//! ```text
//! cargo run --release -p ecl-bench --bin all_tests -- [options]
//!
//! --scale <f64>     input scale multiplier      (default 1.0)
//! --runs <n>        runs per configuration      (default 3; paper used 9)
//! --seed <n>        base experiment seed        (default 1)
//! --sets <which>    undirected|directed|both    (default both)
//! --gpu <name>      restrict to one GPU         (default: all four)
//! --jobs <n>        sweep worker threads        (default: $ECL_JOBS, else
//!                                                all cores; results are
//!                                                bit-identical at any count)
//! --retries <n>     attempts per measurement    (default 1 = no retries)
//! --watchdog <c>    per-launch watchdog budget in cycles
//! --fault-rate <p>  bitflip probability per eligible load (default: none)
//! --fault-level <l> dram | l2 | l1              (default dram)
//! --fault-seed <n>  fault-plan seed             (default 42)
//! --out <dir>       output directory            (default ./output)
//! --omit-timing     leave wall-clock metadata out of BENCH_RESULTS.json
//!                   (for byte-exact diffs between runs)
//! --list-gpus       print Table I and exit
//! --list-inputs     print Tables II and III and exit
//!
//! Crash safety:
//! --journal <path>  append each finished cell to a fsync'd JSONL journal
//! --resume <path>   skip cells already in <path>, verify the overlap by
//!                   digest, append the rest to the same journal
//! --isolate         run each cell in a worker subprocess: a panic, abort,
//!                   OOM kill, or hang in one cell becomes one typed
//!                   failure instead of taking the sweep down
//! --cell-timeout <s> wall-clock budget per isolated cell (default 300)
//! --replay <bundle> re-run exactly the failed cell a repro bundle under
//!                   output/repro/ describes, and exit
//! ```
//!
//! Besides the text tables and CSVs, writes `BENCH_RESULTS.json` — every
//! measured cell, every failed cell, and the per-(GPU, algorithm) summary
//! rows — plus one `output/repro/<cell>.json` bundle per failed cell with
//! the exact seeds and a one-command replay line. Exits 1 if any cell
//! failed, 2 on a resume-identity mismatch, 130 on SIGINT (after flushing
//! the journal, so the sweep is resumable).

use ecl_bench::{
    cell_key, format_fig6, format_table9, graph_seed, install_interrupt_handler, interrupted, pool,
    sched_seed, to_csv, BenchReport, CellFailure, IsolateSpec, Journal, JournalWriter, Json,
    Matrix, MeasuredTable, SweepControl, SweepTiming,
};
use ecl_core::suite::{Algorithm, RetryPolicy};
use ecl_core::SimOptions;
use ecl_graph::inputs::{directed_catalog, undirected_catalog, GraphInput};
use ecl_graph::props::properties;
use ecl_simt::{FaultPlan, GpuConfig, MemLevel};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Everything the CLI configures, shared by the sweep, worker, and replay
/// entry points so a forwarded flag means the same thing everywhere.
#[derive(Debug, Clone)]
struct Config {
    scale: f64,
    runs: usize,
    seed: u64,
    jobs: usize,
    gpus: Vec<GpuConfig>,
    retries: u32,
    watchdog: Option<u64>,
    fault_rate: f64,
    fault_level: MemLevel,
    fault_seed: u64,
    sets: SetSelection,
    out_dir: PathBuf,
    omit_timing: bool,
    isolate: bool,
    cell_timeout: u64,
    journal: Option<PathBuf>,
    resume: Option<PathBuf>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetSelection {
    Undirected,
    Directed,
    Both,
}

impl SetSelection {
    fn names(self) -> Vec<&'static str> {
        match self {
            SetSelection::Undirected => vec!["undirected"],
            SetSelection::Directed => vec!["directed"],
            SetSelection::Both => vec!["undirected", "directed"],
        }
    }
}

impl Config {
    fn from_args(args: &[String]) -> Config {
        let get = |flag: &str| -> Option<String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let sets = match get("--sets").as_deref() {
            None | Some("both") => SetSelection::Both,
            Some("undirected") => SetSelection::Undirected,
            Some("directed") => SetSelection::Directed,
            Some(other) => die(&format!(
                "unknown --sets '{other}' (want undirected, directed, or both)"
            )),
        };
        let gpus: Vec<GpuConfig> = match get("--gpu") {
            Some(name) => match GpuConfig::by_name(&name) {
                Some(g) => vec![g],
                None => die(&format!("unknown GPU '{name}'; try --list-gpus")),
            },
            None => GpuConfig::paper_gpus(),
        };
        let fault_level = match get("--fault-level").as_deref() {
            None | Some("dram") => MemLevel::Dram,
            Some("l2") => MemLevel::L2,
            Some("l1") => MemLevel::L1,
            Some(other) => die(&format!(
                "unknown --fault-level '{other}' (want dram, l2, or l1)"
            )),
        };
        Config {
            scale: get("--scale").and_then(|s| s.parse().ok()).unwrap_or(1.0),
            runs: get("--runs").and_then(|s| s.parse().ok()).unwrap_or(3),
            seed: get("--seed").and_then(|s| s.parse().ok()).unwrap_or(1),
            jobs: get("--jobs")
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(pool::default_workers),
            gpus,
            retries: get("--retries").and_then(|s| s.parse().ok()).unwrap_or(1),
            watchdog: get("--watchdog").and_then(|s| s.parse().ok()),
            fault_rate: get("--fault-rate")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.0),
            fault_level,
            fault_seed: get("--fault-seed")
                .and_then(|s| s.parse().ok())
                .unwrap_or(42),
            sets,
            out_dir: PathBuf::from(get("--out").unwrap_or_else(|| "output".into())),
            omit_timing: args.iter().any(|a| a == "--omit-timing"),
            isolate: args.iter().any(|a| a == "--isolate"),
            cell_timeout: get("--cell-timeout")
                .and_then(|s| s.parse().ok())
                .unwrap_or(300),
            journal: get("--journal").map(PathBuf::from),
            resume: get("--resume").map(PathBuf::from),
        }
    }

    fn sim_options(&self, deadline: Option<Instant>) -> SimOptions {
        SimOptions {
            watchdog: self.watchdog,
            fault: (self.fault_rate > 0.0).then(|| {
                FaultPlan::new(self.fault_seed).with_bitflips(self.fault_rate, self.fault_level)
            }),
            deadline,
            mode_table: None,
        }
    }

    fn retry(&self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: self.retries.max(1),
            seed_stride: 1,
        }
    }

    fn matrix(&self, deadline: Option<Instant>) -> Matrix {
        Matrix::quick()
            .scale(self.scale)
            .runs(self.runs)
            .seed(self.seed)
            .gpus(self.gpus.clone())
            .jobs(self.jobs)
            .sim_options(self.sim_options(deadline))
            .retry(self.retry())
    }

    /// The flags a per-cell worker needs to reproduce this configuration.
    /// The cell key (which carries the GPU) travels separately.
    fn worker_args(&self) -> Vec<String> {
        let mut a = vec![
            "--scale".into(),
            self.scale.to_string(),
            "--runs".into(),
            self.runs.to_string(),
            "--seed".into(),
            self.seed.to_string(),
            "--retries".into(),
            self.retries.to_string(),
            "--cell-timeout".into(),
            self.cell_timeout.to_string(),
        ];
        if let Some(w) = self.watchdog {
            a.push("--watchdog".into());
            a.push(w.to_string());
        }
        if self.fault_rate > 0.0 {
            a.push("--fault-rate".into());
            a.push(self.fault_rate.to_string());
            a.push("--fault-level".into());
            a.push(
                match self.fault_level {
                    MemLevel::Dram => "dram",
                    MemLevel::L2 => "l2",
                    MemLevel::L1 => "l1",
                }
                .into(),
            );
            a.push("--fault-seed".into());
            a.push(self.fault_seed.to_string());
        }
        a
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-gpus") {
        print_gpus();
        return;
    }
    if args.iter().any(|a| a == "--list-inputs") {
        print_inputs();
        return;
    }
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let cfg = Config::from_args(&args);
    if let Some(key) = get("--worker-cell") {
        worker_main(&cfg, &key);
        return;
    }
    if let Some(bundle) = get("--replay") {
        replay_main(&PathBuf::from(bundle));
        return;
    }
    sweep_main(&cfg);
}

/// Worker mode: measure exactly one cell and report on stdout. Exits 0
/// whether the cell measured or failed — the verdict travels in the JSON;
/// only a *dead* worker (abort, kill, timeout) exits otherwise.
fn worker_main(cfg: &Config, key: &str) {
    // Test hook: a worker whose key matches $ECL_WORKER_PANIC dies before
    // the panic-containment of `run_cell` can see it — the process-level
    // failure mode the isolation layer exists to catch.
    if let Ok(needle) = std::env::var("ECL_WORKER_PANIC") {
        if !needle.is_empty() && key.contains(&needle) {
            panic!("ECL_WORKER_PANIC: injected worker death for '{key}'");
        }
    }
    let mut parts = key.splitn(4, '/');
    let (set, input, alg, gpu) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(s), Some(i), Some(a), Some(g)) => (s, i, a, g),
        _ => die(&format!("malformed --worker-cell key '{key}'")),
    };
    let _ = set;
    let input = GraphInput::by_name(input)
        .unwrap_or_else(|| die(&format!("unknown input '{input}' in key '{key}'")));
    let algorithm = Algorithm::parse(alg)
        .unwrap_or_else(|| die(&format!("unknown algorithm '{alg}' in key '{key}'")));
    let gpu = GpuConfig::by_name(gpu)
        .unwrap_or_else(|| die(&format!("unknown gpu '{gpu}' in key '{key}'")));

    // The tentpole deadline plumbing: the worker arms a host wall-clock
    // deadline slightly inside the parent's kill budget, so a runaway
    // launch dies as a *typed* SimError (journalable, replayable) rather
    // than as an opaque SIGKILL.
    let deadline = Instant::now() + Duration::from_secs_f64(cfg.cell_timeout as f64 * 0.9);
    let matrix = cfg.matrix(Some(deadline)).gpus(vec![gpu.clone()]);
    let graph = input.build(cfg.scale, graph_seed(cfg.seed));
    let props = properties(&graph);
    let verdict = match matrix.try_measure(input.name(), algorithm, &graph, &gpu, props) {
        Ok(cell) => ecl_bench::isolate::WorkerVerdict::Ok(ecl_bench::cell_json(&cell)),
        Err(failure) => {
            ecl_bench::isolate::WorkerVerdict::Failed(ecl_bench::failure_json(&failure))
        }
    };
    println!(
        "{}",
        ecl_bench::isolate::worker_doc(&verdict).render_compact()
    );
}

/// Replay mode: re-run exactly the failed cell a repro bundle describes.
fn replay_main(bundle_path: &std::path::Path) {
    let text = std::fs::read_to_string(bundle_path).unwrap_or_else(|e| {
        die(&format!(
            "cannot read bundle {}: {e}",
            bundle_path.display()
        ))
    });
    let bundle = Json::parse(&text).unwrap_or_else(|e| {
        die(&format!(
            "bundle {} is not JSON: {e}",
            bundle_path.display()
        ))
    });
    if bundle.get("schema").and_then(Json::as_str) != Some(REPRO_SCHEMA) {
        die(&format!(
            "{} is not a {REPRO_SCHEMA} bundle",
            bundle_path.display()
        ));
    }
    let key = bundle
        .get("key")
        .and_then(Json::as_str)
        .unwrap_or_else(|| die("bundle has no 'key'"));
    let args: Vec<String> = bundle
        .get("replay")
        .and_then(|r| r.get("args"))
        .and_then(Json::as_arr)
        .unwrap_or_else(|| die("bundle has no replay.args"))
        .iter()
        .filter_map(|a| a.as_str().map(str::to_string))
        .collect();
    let cfg = Config::from_args(&args);
    eprintln!("replaying {key} with {}", args.join(" "));
    worker_main(&cfg, key);
}

/// Schema tag of a repro bundle.
const REPRO_SCHEMA: &str = ecl_bench::repro::SCHEMA;

/// The `experiment` block every repro bundle records.
fn repro_experiment_json(cfg: &Config) -> Json {
    Json::obj(vec![
        ("scale", Json::Num(cfg.scale)),
        ("runs", Json::Num(cfg.runs as f64)),
        ("seed", Json::Num(cfg.seed as f64)),
        (
            "graph_seed",
            Json::Str(format!("{:#x}", graph_seed(cfg.seed))),
        ),
        (
            "sched_seed0",
            Json::Str(format!("{:#x}", sched_seed(cfg.seed, 0))),
        ),
        ("retries", Json::Num(cfg.retries as f64)),
        (
            "watchdog",
            cfg.watchdog
                .map(|w| Json::Num(w as f64))
                .unwrap_or(Json::Null),
        ),
        ("fault_rate", Json::Num(cfg.fault_rate)),
        ("fault_seed", Json::Num(cfg.fault_seed as f64)),
    ])
}

/// Writes one repro bundle per failed cell and returns the bundle paths.
/// Paths are collision-free: a cell failing again on a resumed or retried
/// run gets an `.attemptN` suffix instead of overwriting the first bundle.
///
/// A bundle that cannot be written (ENOSPC, EIO, …) is *skipped*, not
/// fatal: the measurement already completed and the typed failure is in the
/// report; the skip is warned about and recorded as a journal note so the
/// operator learns a bundle is missing and why.
fn write_repro_bundles(
    cfg: &Config,
    set: &str,
    failures: &[CellFailure],
    journal: Option<&JournalWriter>,
) -> Vec<PathBuf> {
    let dir = cfg.out_dir.join("repro");
    let mut paths = Vec::new();
    for f in failures {
        let key = cell_key(set, f.input, f.algorithm, f.gpu);
        let mut replay_args = cfg.worker_args();
        replay_args.push("--gpu".into());
        replay_args.push(f.gpu.into());
        let bundle = ecl_bench::repro::Bundle {
            key: &key,
            error: f.error.to_string(),
            run: f.run,
            experiment: repro_experiment_json(cfg),
            replay_args,
        };
        match ecl_bench::repro::write_bundle(&dir, &bundle) {
            Ok(path) => paths.push(path),
            Err(e) => {
                eprintln!("warning: repro bundle skipped for '{key}': {e}");
                if let Some(w) = journal {
                    let _ = w.append_note(
                        &format!("repro bundle skipped for '{key}': {e}"),
                        w.cells_recorded(),
                    );
                }
            }
        }
    }
    paths
}

fn sweep_main(cfg: &Config) {
    install_interrupt_handler();
    let matrix = cfg.matrix(None);
    let set_names = cfg.sets.names();
    let identity = ecl_bench::journal::identity_json(matrix.experiment(), &set_names);

    // Checkpointing: a fresh journal, or append to the one being resumed.
    if cfg.journal.is_some() && cfg.resume.is_some() {
        die(
            "--journal and --resume are mutually exclusive (resume appends to the resumed journal)",
        );
    }
    let resumed: Option<Journal> = cfg.resume.as_deref().map(|path| {
        let j = Journal::load(path).unwrap_or_else(|e| die(&e.to_string()));
        if let Err(e) = j.check_identity(&identity) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "resuming from {} ({} completed cell(s) on record)",
            path.display(),
            j.records.iter().filter(|r| r.ok).count()
        );
        j
    });
    let writer: Option<std::sync::Arc<JournalWriter>> = match (&cfg.journal, &cfg.resume) {
        (Some(path), None) => Some(JournalWriter::create(path, &identity).expect("create journal")),
        (None, Some(path)) => Some(JournalWriter::append_to(path).expect("open journal")),
        _ => None,
    }
    .map(std::sync::Arc::new);

    // A second Ctrl-C during the cooperative drain stops the wait on
    // in-flight cells: flush the journal note (finished cells are already
    // fsync'd line-by-line) and exit 130 immediately.
    let watcher_journal = writer.clone();
    ecl_bench::spawn_force_quit_watcher(move || {
        if let Some(w) = watcher_journal {
            let _ = w.append_note("force-quit", w.cells_recorded());
        }
    });

    let isolate_spec: Option<IsolateSpec> = cfg.isolate.then(|| IsolateSpec {
        exe: std::env::current_exe().expect("current_exe"),
        base_args: cfg.worker_args(),
        timeout: Duration::from_secs(cfg.cell_timeout),
        scratch: cfg.out_dir.join("tmp"),
    });

    let ctl = SweepControl {
        journal: writer.as_deref(),
        resume: resumed.as_ref(),
        isolate: isolate_spec.as_ref(),
        interrupt: Some(ecl_bench::interrupt::interrupt_flag()),
    };

    eprintln!(
        "running the matrix: scale {}, {} run(s) per config, {} GPU(s), {} worker(s){}{}…",
        cfg.scale,
        cfg.runs,
        cfg.gpus.len(),
        cfg.jobs,
        if cfg.isolate { ", isolated cells" } else { "" },
        if writer.is_some() { ", journaled" } else { "" },
    );

    let run_one = |name: &str| -> (MeasuredTable, f64) {
        if !set_names.contains(&name) || interrupted() {
            return (MeasuredTable::default(), 0.0);
        }
        let t = Instant::now();
        let table = match name {
            "undirected" => matrix.run_undirected_with(&ctl),
            _ => matrix.run_directed_with(&ctl),
        };
        let secs = t.elapsed().as_secs_f64();
        eprintln!("{name} matrix done in {secs:.1}s");
        (table, secs)
    };
    let (undirected, undirected_seconds) = run_one("undirected");
    let (directed, directed_seconds) = run_one("directed");

    if interrupted() {
        let completed = undirected.cells.len() + directed.cells.len();
        if let Some(w) = &writer {
            let _ = w.append_note("interrupted", completed);
        }
        eprintln!("interrupted: {completed} cell(s) finished and journaled; resume with --resume");
        std::process::exit(130);
    }

    // Tables IV-VII (undirected) and VIII (directed), per GPU.
    for gpu in &cfg.gpus {
        if !undirected.cells.is_empty() {
            println!("{}", undirected.table(gpu));
        }
        if !directed.cells.is_empty() {
            println!("{}", directed.table(gpu));
        }
    }
    let gpu_names: Vec<&str> = cfg.gpus.iter().map(|g| g.name).collect();
    println!("{}", format_table9(&undirected, &directed, &gpu_names));
    println!();
    println!("{}", format_fig6(&undirected, &directed, &gpu_names));

    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    std::fs::write(
        cfg.out_dir.join("undirected_speedups.csv"),
        to_csv(&undirected),
    )
    .expect("write undirected csv");
    std::fs::write(cfg.out_dir.join("directed_speedups.csv"), to_csv(&directed))
        .expect("write directed csv");
    let mut fig = String::new();
    fig.push_str(&format_fig6(&undirected, &directed, &gpu_names));
    std::fs::write(cfg.out_dir.join("geometric_means.txt"), fig).expect("write fig6");

    let report = BenchReport {
        experiment: matrix.experiment(),
        undirected: &undirected,
        directed: &directed,
        timing: (!cfg.omit_timing).then_some(SweepTiming {
            undirected_seconds,
            directed_seconds,
        }),
    };
    std::fs::write(cfg.out_dir.join("BENCH_RESULTS.json"), report.render())
        .expect("write BENCH_RESULTS.json");
    eprintln!(
        "CSV, chart, and BENCH_RESULTS.json written to {}",
        cfg.out_dir.display()
    );

    let mut bundles =
        write_repro_bundles(cfg, "undirected", &undirected.failures, writer.as_deref());
    bundles.extend(write_repro_bundles(
        cfg,
        "directed",
        &directed.failures,
        writer.as_deref(),
    ));
    if let Some(e) = writer.as_deref().and_then(|w| w.degraded()) {
        eprintln!(
            "warning: the journal degraded to read-only during this sweep ({e}); \
             results above are complete but the journal cannot seed a --resume"
        );
    }

    let failed = undirected.failures.len() + directed.failures.len();
    if failed > 0 {
        eprintln!("\n{failed} cell(s) failed:");
        for f in undirected.failures.iter().chain(&directed.failures) {
            eprintln!("  {f}");
        }
        eprintln!("repro bundles (re-run one with --replay <bundle>):");
        for b in &bundles {
            eprintln!("  {}", b.display());
        }
        std::process::exit(1);
    }
}

fn print_gpus() {
    println!(
        "{:<12} {:<14} {:>6} {:>6} {:>8} {:>8}",
        "GPU", "Architecture", "SMs", "Cores", "L1 KiB", "L2 KiB"
    );
    for g in GpuConfig::paper_gpus() {
        println!(
            "{:<12} {:<14} {:>6} {:>6} {:>8} {:>8}",
            g.name,
            g.architecture,
            g.num_sms,
            g.num_sms * g.cores_per_sm,
            g.l1_kib,
            g.l2_kib
        );
    }
}

fn print_inputs() {
    for (title, catalog) in [
        (
            "Table II: undirected inputs (scaled stand-ins at --scale 1.0)",
            undirected_catalog(),
        ),
        ("Table III: directed inputs", directed_catalog()),
    ] {
        println!("{title}");
        println!(
            "{:<18} {:>10} {:>10} {:>8} {:>8}   paper: V/E",
            "Name", "Vertices", "Edges", "d-avg", "d-max"
        );
        for input in catalog {
            let g = input.build(1.0, 1);
            let p = properties(&g);
            let meta = input.paper_meta();
            println!(
                "{:<18} {:>10} {:>10} {:>8.1} {:>8}   {}/{}",
                input.name(),
                p.num_vertices,
                p.num_edges,
                p.avg_degree,
                p.max_degree,
                meta.vertices,
                meta.edges
            );
        }
        println!();
    }
}
