//! The analogue of the artifact's `download_inputs.sh`: materializes every
//! catalog graph into `inputs-undirected/` and `inputs-directed/` as binary
//! CSR files, so experiments can re-load identical graphs from disk.
//!
//! ```text
//! cargo run --release -p ecl-bench --bin make_inputs -- [--scale 1.0] [--seed 1] [--out .]
//! ```

use ecl_graph::inputs::{directed_catalog, undirected_catalog};
use ecl_graph::props::properties;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let scale: f64 = get("--scale").and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let seed: u64 = get("--seed").and_then(|s| s.parse().ok()).unwrap_or(1);
    let root = PathBuf::from(get("--out").unwrap_or_else(|| ".".into()));

    for (dir, catalog) in [
        ("inputs-undirected", undirected_catalog()),
        ("inputs-directed", directed_catalog()),
    ] {
        let dir = root.join(dir);
        std::fs::create_dir_all(&dir).expect("create input dir");
        for input in catalog {
            let g = input.build(scale, seed);
            let p = properties(&g);
            let path = dir.join(format!("{}.eclr", input.name()));
            ecl_graph::io::save(&g, &path).expect("write graph");
            println!(
                "{:<40} {:>9} vertices {:>10} edges (d-avg {:.1})",
                path.display(),
                p.num_vertices,
                p.num_edges,
                p.avg_degree
            );
        }
    }
}
