//! Reproduces the paper's §VI-A profiling observations:
//!
//! 1. "The baseline CC code has a much higher L1 hit rate for both loads
//!    and stores, which explains the performance difference."
//! 2. "Profiling the MIS code reveals increased cache hit rates" for the
//!    race-free version, supporting the faster-propagation theory.
//!
//! ```text
//! cargo run --release -p ecl-bench --bin profile_vi_a
//! ```

use ecl_core::suite::{run_algorithm, Algorithm, Variant};
use ecl_graph::inputs::GraphInput;
use ecl_simt::GpuConfig;

fn main() {
    let gpu = GpuConfig::titan_v();

    println!(
        "§VI-A profile on {} — per-variant cache behaviour\n",
        gpu.name
    );
    println!(
        "{:<5} {:<10} {:>10} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "algo", "variant", "cycles", "L1 hit", "L2 hit", "plain", "volatile", "atomic"
    );

    let cc_graph = GraphInput::by_name("citationCiteseer")
        .unwrap()
        .build(1.0, 1);
    let mis_graph = GraphInput::by_name("amazon0601").unwrap().build(1.0, 1);

    let mut cc_l1 = Vec::new();
    let mut mis_rounds = Vec::new();
    for (alg, graph) in [(Algorithm::Cc, &cc_graph), (Algorithm::Mis, &mis_graph)] {
        for variant in [Variant::Baseline, Variant::RaceFree] {
            let r = run_algorithm(alg, variant, graph, &gpu, 1);
            assert!(r.valid);
            let (mut plain, mut volat, mut atomic, mut l1h, mut l1m, mut l2h, mut l2m) =
                (0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
            let mut steps = 0u64;
            for launch in &r.stats.launches {
                plain += launch.plain_accesses;
                volat += launch.volatile_accesses;
                atomic += launch.atomic_accesses;
                l1h += launch.l1.hits;
                l1m += launch.l1.misses;
                l2h += launch.l2.hits;
                l2m += launch.l2.misses;
                steps += launch.steps;
            }
            let l1_rate = l1h as f64 / (l1h + l1m).max(1) as f64;
            let l2_rate = l2h as f64 / (l2h + l2m).max(1) as f64;
            // Fraction of ALL device accesses served by the L1 — atomics
            // never reach it, so this is what the conversion changes.
            let l1_share = l1h as f64 / (plain + volat + atomic).max(1) as f64;
            println!(
                "{:<5} {:<10} {:>10} {:>7.1}% {:>7.1}% {:>9} {:>9} {:>9}",
                alg.name(),
                variant.to_string(),
                r.cycles,
                100.0 * l1_rate,
                100.0 * l2_rate,
                plain,
                volat,
                atomic
            );
            let _ = l1_rate;
            if alg == Algorithm::Cc {
                cc_l1.push(l1_share);
            } else {
                mis_rounds.push(steps);
            }
        }
    }

    println!();
    println!(
        "CC: the L1 serves {:.0}% of the baseline's accesses but only {:.0}% of \
         the\nrace-free version's — the conversion moves the pointer-jumping \
         loads to the\nL2 coherence point, exactly the §VI-A explanation of the \
         CC slowdown.",
        100.0 * cc_l1[0],
        100.0 * cc_l1[1]
    );
    println!();
    println!(
        "MIS: baseline needed {} scheduler steps vs race-free {} — the deferred\n\
         status writes leave baseline threads polling stale bytes for extra\n\
         rounds, the §VI-A explanation of the race-free MIS speedup.",
        mis_rounds[0], mis_rounds[1]
    );
    assert!(
        cc_l1[0] > cc_l1[1] + 0.1,
        "baseline CC must lean on the L1 far more"
    );
    assert!(
        mis_rounds[0] > mis_rounds[1],
        "baseline MIS must need more rounds"
    );
}
