//! Component-cost probe: times individual simulator pieces (cache lookup,
//! memory-system load/store, raw arena access, per-item scheduler
//! overhead) in isolation. These are the numbers behind PERF.md's
//! attribution — e.g. the per-access floor of the memory-hierarchy model —
//! and the first thing to rerun when a `perf_bench` regression needs to be
//! localized. Wall-clock only; best run on an otherwise idle machine.

use ecl_simt::mem::{Cache, MemSystem, Memory};
use ecl_simt::{AccessKind, AccessMode, ForEach, Gpu, GpuConfig, LaunchConfig, NoHooks};
use std::hint::black_box;
use std::time::Instant;

fn time(name: &str, iters: u64, mut f: impl FnMut(u64) -> u64) {
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..iters {
        acc = acc.wrapping_add(f(i));
    }
    black_box(acc);
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<32} {ns:>8.2} ns/op");
}

fn main() {
    let n: u64 = 20_000_000;
    let cfg = GpuConfig::rtx2070_super();

    let mut c = Cache::new(cfg.l1_kib, cfg.l1_ways, cfg.line_bytes);
    time("cache.access seq (hit)", n, |i| {
        c.access((i as u32) % 4096) as u64
    });
    let mut c2 = Cache::new(cfg.l1_kib, cfg.l1_ways, cfg.line_bytes);
    time("cache.access strided (miss)", n, |i| {
        c2.access(((i as u32).wrapping_mul(2654435761)) & 0xff_ffff) as u64
    });

    let mut msys = MemSystem::new(&cfg);
    time("msys.access plain load hot", n, |i| {
        msys.access(0, (i as u32) % 4096, AccessMode::Plain, AccessKind::Load)
            .0 as u64
    });
    time("msys.access plain store hot", n, |i| {
        msys.access(0, (i as u32) % 4096, AccessMode::Plain, AccessKind::Store)
            .0 as u64
    });

    let mut mem = Memory::new();
    let buf = mem.alloc::<u32>(1 << 16);
    time("memory.read u32", n, |i| {
        let p = buf.at((i as usize) & 0xffff);
        mem.read(p) as u64
    });

    // modulo vs mask raw cost
    let sets = 768u64;
    time("u64 % 768", n, |i| {
        (i.wrapping_mul(0x9e3779b97f4a7c15)) % black_box(sets)
    });
    time("u64 & 1023", n, |i| {
        (i.wrapping_mul(0x9e3779b97f4a7c15)) & black_box(1023u64)
    });

    // Setup cost paid once per perf_bench rep: Gpu::new + alloc + upload.
    {
        let items = 1u32 << 16;
        let start = Instant::now();
        let reps = 200u32;
        for _ in 0..reps {
            let mut gpu = Gpu::new(cfg.clone());
            let data = gpu.alloc::<u32>(items as usize);
            gpu.upload(&data, &vec![0u32; items as usize]);
            black_box(&gpu);
        }
        let us = start.elapsed().as_micros() as f64 / reps as f64;
        println!("{:<32} {us:>8.2} us/rep", "gpu setup (new+alloc+upload)");
    }

    // Per-item scheduler overhead: kernels that do 0 / 1 accesses per item.
    let items = 1u32 << 16;
    let launches = 100u32;
    for (name, accesses) in [("empty", 0u32), ("1 load", 1), ("6 access mix", 6)] {
        let mut gpu = Gpu::new(cfg.clone());
        let data = gpu.alloc::<u32>(items as usize);
        let start = Instant::now();
        for _ in 0..launches {
            gpu.launch_with::<NoHooks, _>(
                LaunchConfig::for_items(items),
                ForEach::with_hooks::<NoHooks>("probe", items, move |ctx, i| {
                    if accesses == 6 {
                        let mut acc = 0u32;
                        for k in 0..4 {
                            let mut j = i + k * 7;
                            if j >= items {
                                j -= items;
                            }
                            acc = acc.wrapping_add(ctx.load(data.at(j as usize)));
                        }
                        acc = acc.wrapping_add(ctx.load(data.at(i as usize)));
                        ctx.store(data.at(i as usize), acc);
                    } else if accesses > 0 {
                        black_box(ctx.load(data.at(i as usize)));
                    }
                }),
            );
        }
        let ns = start.elapsed().as_nanos() as f64 / (items as u64 * launches as u64) as f64;
        println!("{:<32} {ns:>8.2} ns/item", format!("foreach item ({name})"));
    }
}
