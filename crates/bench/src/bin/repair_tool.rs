//! Automated race repair driver: synthesizes a race-free variant of each
//! baseline from detector output, verifies it with all three oracles, and
//! reports the perf delta against the hand-written race-free variant.
//!
//! ```text
//! cargo run --release -p ecl-bench --bin repair_tool -- \
//!     [--alg CC|GC|MIS|MST|SCC|APSP|all] [--scale F] [--gpu NAME] [--json]
//! ```
//!
//! Per algorithm: the repair pass in `ecl-analyze` flags racy
//! (kernel, buffer) groups with the static checker and the dynamic
//! detector, rewrites every flagged repairable access op in the baseline
//! kernel IR to a relaxed atomic, re-lowers contracts and the execution
//! mode table, and then must pass
//!
//! 1. the **static** oracle — the pair analysis discharges every
//!    write-involving pair of the re-lowered contracts;
//! 2. the **dynamic** oracle — traced runs under the mode table (with the
//!    re-lowered contracts armed as a sanitizer) witness zero races;
//! 3. the **differential** oracle — the synthesized variant's solution
//!    digest matches the hand-written race-free variant's on every catalog
//!    input.
//!
//! The catalog runs also measure the synthesized/hand-written cycle ratio:
//! the minimal machine repair leaves unflagged sites in their baseline
//! modes, so it is not the same code as the blanket hand conversion.
//!
//! `--json` emits a single document (schema `ecl-bench/REPAIR/v1`).
//! Exit codes: 0 = every variant synthesized and verified, 1 = a synthesis
//! or oracle failure, 2 = usage error.

use ecl_analyze::repair;
use ecl_bench::export::Json;
use ecl_core::suite::Algorithm;
use ecl_simt::GpuConfig;
use std::process::ExitCode;

fn comparison_json(c: &repair::InputComparison) -> Json {
    Json::obj(vec![
        ("input", Json::Str(c.input.clone())),
        ("digests_match", Json::Bool(c.matches())),
        (
            "synthesized_digest",
            Json::Str(format!("{:#018x}", c.synthesized_digest)),
        ),
        (
            "hand_written_digest",
            Json::Str(format!("{:#018x}", c.hand_written_digest)),
        ),
        ("both_valid", Json::Bool(c.both_valid)),
        ("synthesized_cycles", Json::Num(c.synthesized_cycles as f64)),
        (
            "hand_written_cycles",
            Json::Num(c.hand_written_cycles as f64),
        ),
        ("ratio", Json::Num(c.ratio())),
    ])
}

fn group_arr(groups: &std::collections::BTreeSet<(String, String)>) -> Json {
    Json::Arr(
        groups
            .iter()
            .map(|(k, b)| Json::Str(format!("{k}/{b}")))
            .collect(),
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    for a in args.iter().filter(|a| a.starts_with("--")) {
        if !matches!(a.as_str(), "--alg" | "--scale" | "--gpu" | "--json") {
            eprintln!("repair_tool: unknown flag '{a}'");
            return ExitCode::from(2);
        }
    }
    let algs: Vec<Algorithm> = match get("--alg").unwrap_or("all") {
        "all" => Algorithm::ALL.to_vec(),
        name => match Algorithm::parse(name) {
            Some(a) => vec![a],
            None => {
                eprintln!("repair_tool: unknown algorithm '{name}'");
                return ExitCode::from(2);
            }
        },
    };
    let scale: f64 = match get("--scale").map(str::parse).transpose() {
        Ok(s) => s.unwrap_or(0.05),
        Err(_) => {
            eprintln!("repair_tool: bad --scale");
            return ExitCode::from(2);
        }
    };
    if !(scale > 0.0 && scale.is_finite()) {
        eprintln!("repair_tool: --scale must be a positive finite number");
        return ExitCode::from(2);
    }
    let cfg = match get("--gpu") {
        None => GpuConfig::test_tiny(),
        Some(name) => match GpuConfig::by_name(name) {
            Some(c) => c,
            None => {
                eprintln!("repair_tool: unknown GPU '{name}'");
                return ExitCode::from(2);
            }
        },
    };
    let json_mode = has("--json");
    const GRAPH_SEED: u64 = 7;

    let mut failed = false;
    let mut results = Vec::new();
    for alg in algs {
        let repaired = match repair::synthesize(alg, &cfg) {
            Ok(r) => r,
            Err(e) => {
                failed = true;
                if !json_mode {
                    println!("{:<5} synthesis FAILED: {e}", alg.name());
                }
                results.push(Json::obj(vec![
                    ("algorithm", Json::Str(alg.name().into())),
                    ("synthesized", Json::Bool(false)),
                    ("error", Json::Str(e.to_string())),
                    ("pass", Json::Bool(false)),
                ]));
                continue;
            }
        };
        let v = repair::verify(&repaired, &cfg, scale, GRAPH_SEED);
        failed |= !v.passes();
        if !json_mode {
            println!(
                "{:<5} {:>2} group(s) flagged, {:>2} rewrite(s): static {}, dynamic {}, \
                 differential {} ({} inputs), synth/hand cycle ratio {:.4}",
                alg.name(),
                repaired.flagged.len(),
                repaired.rewrites.len(),
                if v.static_clean() { "clean" } else { "DIRTY" },
                if v.dynamic_clean() { "clean" } else { "DIRTY" },
                if v.differential_match() {
                    "match"
                } else {
                    "MISMATCH"
                },
                v.comparisons.len(),
                v.geomean_ratio(),
            );
            for r in &repaired.rewrites {
                println!("        rewrite {r}");
            }
            for c in &v.static_conflicts {
                println!("        static  {c}");
            }
            for (k, b) in &v.dynamic_races {
                println!("        dynamic race {k}/{b}");
            }
            for f in &v.run_failures {
                println!("        run failure {f}");
            }
        }
        results.push(Json::obj(vec![
            ("algorithm", Json::Str(alg.name().into())),
            ("synthesized", Json::Bool(true)),
            ("static_flagged", group_arr(&repaired.static_flagged)),
            ("dynamic_flagged", group_arr(&repaired.dynamic_flagged)),
            ("flagged", group_arr(&repaired.flagged)),
            (
                "rewrites",
                Json::Arr(
                    repaired
                        .rewrites
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("kernel", Json::Str(r.kernel.clone())),
                                ("buffer", Json::Str(r.buffer.into())),
                                ("kind", Json::Str(format!("{:?}", r.kind))),
                                ("width", Json::Str(format!("{:?}", r.width))),
                                ("from_mode", Json::Str(format!("{:?}", r.from))),
                                ("to_mode", Json::Str("Atomic".into())),
                                ("masked", Json::Bool(r.masked)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("static_clean", Json::Bool(v.static_clean())),
            ("dynamic_clean", Json::Bool(v.dynamic_clean())),
            ("differential_match", Json::Bool(v.differential_match())),
            (
                "comparisons",
                Json::Arr(v.comparisons.iter().map(comparison_json).collect()),
            ),
            ("geomean_cycle_ratio", Json::Num(v.geomean_ratio())),
            ("pass", Json::Bool(v.passes())),
        ]));
    }

    let doc = Json::obj(vec![
        ("schema", Json::Str("ecl-bench/REPAIR/v1".into())),
        ("gpu", Json::Str(cfg.name.to_string())),
        ("scale", Json::Num(scale)),
        ("results", Json::Arr(results)),
        ("pass", Json::Bool(!failed)),
    ]);
    if json_mode {
        println!("{}", doc.render());
    } else if failed {
        println!("\nrepair: FAILED");
    } else {
        println!("\nrepair: all synthesized variants verified");
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
