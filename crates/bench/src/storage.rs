//! The storage layer every durable writer goes through.
//!
//! The sweep journal, the farm job store, repro bundles, and reports all
//! promise the same thing: once an operation is acknowledged, a `kill -9`
//! — or a power cut — cannot un-happen it. That promise is only as good as
//! the write/fsync discipline behind it, and the only way to *test* the
//! discipline is to make the disk itself fail on purpose. So durable
//! writers take a [`Storage`] handle with two backends:
//!
//! * [`Storage::real`] — the actual filesystem, used in production;
//! * [`Storage::mem`] — a deterministic in-memory filesystem ([`MemFs`])
//!   driven by a SplitMix64-seeded [`FaultPlan`]: fail the Nth fsync, tear
//!   the Nth write at a seed-derived byte, run the device out of space,
//!   return EIO on the Nth read, or cut power at the Nth mutating
//!   operation and drop (a seed-derived torn prefix of) everything that
//!   was never fsynced.
//!
//! Every failure is a typed [`StorageError`] naming the operation, the
//! path, and the [`StorageErrorKind`] — callers degrade (journal goes
//! read-only, farm NACKs submissions, repro bundles are skipped with a
//! note) instead of panicking. The same plan and seed always produce the
//! same fault sequence and the same surviving bytes, which is what lets
//! `tests/crash_consistency.rs` walk power loss across *every* write
//! boundary of a sweep and assert recovery invariants at each one.
//!
//! ## The power-loss model
//!
//! [`MemFs`] keeps two copies of every file: `content` (what reads see —
//! the page cache) and `durable` (what the last successful fsync pinned).
//! [`MemFs::power_cycle`] replaces each file's content with its durable
//! prefix plus a seed-derived *torn prefix* of the un-fsynced suffix —
//! anywhere from none of it to all of it — modelling partial page-cache
//! writeback. A failed fsync does **not** advance the durable copy: the
//! data may still be lost, exactly the ambiguity real fsync failures have.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// SplitMix64 finalizer — the deterministic mixing primitive the fault
/// plan (and the farm's restart-backoff jitter) derive their streams from.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn mix_path(seed: u64, path: &Path) -> u64 {
    let mut h = seed;
    for b in path.as_os_str().as_encoded_bytes() {
        h = splitmix64(h ^ *b as u64);
    }
    h
}

/// How a storage operation failed, at the device level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageErrorKind {
    /// The device is out of space (`ENOSPC`).
    Enospc,
    /// A low-level I/O error (`EIO`).
    Eio,
    /// `fsync` reported failure; the data written since the last successful
    /// sync may or may not be durable.
    FsyncFailed,
    /// The write was applied only partially (`written` bytes) before
    /// failing — the on-disk tail is torn.
    TornWrite {
        /// Bytes that did land before the fault.
        written: usize,
    },
    /// Simulated power loss: the process is considered dead from this
    /// operation on; every subsequent call fails the same way.
    PowerLoss,
    /// The writer latched itself read-only after an earlier failure and is
    /// refusing new writes (degraded mode, not a device fault).
    ReadOnly,
    /// The file does not exist.
    NotFound,
    /// Anything else, with the underlying error's message.
    Other(String),
}

impl std::fmt::Display for StorageErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageErrorKind::Enospc => write!(f, "no space left on device (ENOSPC)"),
            StorageErrorKind::Eio => write!(f, "I/O error (EIO)"),
            StorageErrorKind::FsyncFailed => write!(f, "fsync failed"),
            StorageErrorKind::TornWrite { written } => {
                write!(f, "torn write ({written} byte(s) landed)")
            }
            StorageErrorKind::PowerLoss => write!(f, "power loss"),
            StorageErrorKind::ReadOnly => write!(f, "writer is read-only (degraded)"),
            StorageErrorKind::NotFound => write!(f, "not found"),
            StorageErrorKind::Other(msg) => write!(f, "{msg}"),
        }
    }
}

/// A typed storage failure: which operation, on which path, failed how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageError {
    /// The operation: `"create"`, `"write"`, `"fsync"`, `"read"`,
    /// `"truncate"`, `"rename"`, or `"mkdir"`.
    pub op: &'static str,
    /// The path the operation targeted.
    pub path: PathBuf,
    /// The typed failure.
    pub kind: StorageErrorKind,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}: {}", self.op, self.path.display(), self.kind)
    }
}

impl std::error::Error for StorageError {}

impl StorageError {
    fn new(op: &'static str, path: &Path, kind: StorageErrorKind) -> StorageError {
        StorageError {
            op,
            path: path.to_path_buf(),
            kind,
        }
    }

    fn from_io(op: &'static str, path: &Path, e: &std::io::Error) -> StorageError {
        let kind = match e.raw_os_error() {
            Some(28) => StorageErrorKind::Enospc, // ENOSPC
            Some(5) => StorageErrorKind::Eio,     // EIO
            _ if e.kind() == std::io::ErrorKind::NotFound => StorageErrorKind::NotFound,
            _ => StorageErrorKind::Other(e.to_string()),
        };
        StorageError::new(op, path, kind)
    }
}

/// An open file that supports the two operations durability is built from:
/// append and fsync.
pub trait DurableFile: Send {
    /// Appends bytes at the end of the file.
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError>;
    /// Flushes everything written so far to stable storage.
    fn sync(&mut self) -> Result<(), StorageError>;
}

/// The backend contract: the handful of filesystem operations the durable
/// writers need, each failable with a typed error.
pub trait StorageBackend: Send + Sync {
    /// Creates (truncating) a file for appending.
    fn create(&self, path: &Path) -> Result<Box<dyn DurableFile>, StorageError>;
    /// Opens a file for appending, creating it if missing.
    fn open_append(&self, path: &Path) -> Result<Box<dyn DurableFile>, StorageError>;
    /// Reads the whole file.
    fn read(&self, path: &Path) -> Result<Vec<u8>, StorageError>;
    /// Truncates the file to `len` bytes (dropping a torn tail).
    fn truncate(&self, path: &Path, len: u64) -> Result<(), StorageError>;
    /// Writes a whole file atomically: temp file, fsync, rename. Readers
    /// never observe a partial document at `path`.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StorageError>;
    /// Creates a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> Result<(), StorageError>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// A cloneable handle to one storage backend. All durable writers take one
/// of these; production code passes [`Storage::real`], the fault harness
/// passes [`Storage::mem`].
#[derive(Clone)]
pub struct Storage(Arc<dyn StorageBackend>);

impl std::fmt::Debug for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Storage(..)")
    }
}

impl Storage {
    /// The real filesystem.
    pub fn real() -> Storage {
        Storage(Arc::new(RealFs))
    }

    /// A deterministic in-memory filesystem with the given fault plan.
    /// Returns the handle plus the [`MemFs`] itself, for the harness to
    /// cut power, inspect counters, and read surviving bytes.
    pub fn mem(plan: FaultPlan) -> (Storage, Arc<MemFs>) {
        let fs = Arc::new(MemFs::new(plan));
        (Storage(Arc::new(MemBackend(fs.clone()))), fs)
    }

    /// See [`StorageBackend::create`].
    pub fn create(&self, path: &Path) -> Result<Box<dyn DurableFile>, StorageError> {
        self.0.create(path)
    }
    /// See [`StorageBackend::open_append`].
    pub fn open_append(&self, path: &Path) -> Result<Box<dyn DurableFile>, StorageError> {
        self.0.open_append(path)
    }
    /// See [`StorageBackend::read`].
    pub fn read(&self, path: &Path) -> Result<Vec<u8>, StorageError> {
        self.0.read(path)
    }
    /// See [`StorageBackend::truncate`].
    pub fn truncate(&self, path: &Path, len: u64) -> Result<(), StorageError> {
        self.0.truncate(path, len)
    }
    /// See [`StorageBackend::write_atomic`].
    pub fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
        self.0.write_atomic(path, bytes)
    }
    /// See [`StorageBackend::create_dir_all`].
    pub fn create_dir_all(&self, path: &Path) -> Result<(), StorageError> {
        self.0.create_dir_all(path)
    }
    /// See [`StorageBackend::exists`].
    pub fn exists(&self, path: &Path) -> bool {
        self.0.exists(path)
    }
}

// ---------------------------------------------------------------------------
// Real filesystem backend.
// ---------------------------------------------------------------------------

struct RealFs;

struct RealFile {
    file: std::fs::File,
    path: PathBuf,
}

impl DurableFile for RealFile {
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.file
            .write_all(bytes)
            .map_err(|e| StorageError::from_io("write", &self.path, &e))
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.file
            .sync_data()
            .map_err(|e| StorageError::from_io("fsync", &self.path, &e))
    }
}

impl StorageBackend for RealFs {
    fn create(&self, path: &Path) -> Result<Box<dyn DurableFile>, StorageError> {
        let file =
            std::fs::File::create(path).map_err(|e| StorageError::from_io("create", path, &e))?;
        Ok(Box::new(RealFile {
            file,
            path: path.to_path_buf(),
        }))
    }

    fn open_append(&self, path: &Path) -> Result<Box<dyn DurableFile>, StorageError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StorageError::from_io("create", path, &e))?;
        Ok(Box::new(RealFile {
            file,
            path: path.to_path_buf(),
        }))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, StorageError> {
        std::fs::read(path).map_err(|e| StorageError::from_io("read", path, &e))
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<(), StorageError> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StorageError::from_io("truncate", path, &e))?;
        file.set_len(len)
            .map_err(|e| StorageError::from_io("truncate", path, &e))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
        let tmp = path.with_extension("tmp");
        let mut file =
            std::fs::File::create(&tmp).map_err(|e| StorageError::from_io("create", &tmp, &e))?;
        file.write_all(bytes)
            .map_err(|e| StorageError::from_io("write", &tmp, &e))?;
        // fsync before rename: a rename can be durable while the content
        // it points at is not, which is exactly how torn reports happen.
        file.sync_data()
            .map_err(|e| StorageError::from_io("fsync", &tmp, &e))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| StorageError::from_io("rename", path, &e))
    }

    fn create_dir_all(&self, path: &Path) -> Result<(), StorageError> {
        std::fs::create_dir_all(path).map_err(|e| StorageError::from_io("mkdir", path, &e))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault-injecting in-memory backend.
// ---------------------------------------------------------------------------

/// The deterministic fault schedule a [`MemFs`] executes. All indices are
/// zero-based and counted per filesystem, not per file; `seed` drives every
/// derived choice (torn-write split points, power-loss tear lengths), so
/// the same plan always produces the same fault sequence and the same
/// surviving bytes.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for all derived randomness.
    pub seed: u64,
    /// Fail the Nth fsync with [`StorageErrorKind::FsyncFailed`]; the
    /// durable copy is *not* advanced.
    pub fail_fsync: Option<u64>,
    /// Tear the Nth write: apply a seed-derived strict prefix, then fail
    /// with [`StorageErrorKind::TornWrite`].
    pub tear_write: Option<u64>,
    /// Device capacity in bytes: a write that would exceed it applies what
    /// fits and fails with [`StorageErrorKind::Enospc`].
    pub disk_capacity: Option<u64>,
    /// Fail the Nth read with [`StorageErrorKind::Eio`].
    pub fail_read: Option<u64>,
    /// Cut power at the Nth mutating operation: that operation and every
    /// later one fail with [`StorageErrorKind::PowerLoss`] until
    /// [`MemFs::power_cycle`].
    pub power_loss: Option<u64>,
}

impl FaultPlan {
    /// A plan with no faults (still seeded, for tear-length derivation on
    /// an explicit [`MemFs::power_cycle`]).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// A plan that cuts power at mutating operation `n`.
    pub fn power_loss_at(seed: u64, n: u64) -> FaultPlan {
        FaultPlan {
            seed,
            power_loss: Some(n),
            ..FaultPlan::default()
        }
    }
}

#[derive(Debug, Clone, Default)]
struct MemFile {
    /// What reads observe (the page cache).
    content: Vec<u8>,
    /// What the last successful fsync made durable.
    durable: Vec<u8>,
}

#[derive(Debug, Default)]
struct MemInner {
    files: BTreeMap<PathBuf, MemFile>,
    plan: FaultPlan,
    /// Mutating operations performed (create/write/fsync/truncate/rename).
    ops: u64,
    writes: u64,
    fsyncs: u64,
    reads: u64,
    bytes_written: u64,
    /// Latched once power is lost; cleared by [`MemFs::power_cycle`].
    dead: bool,
}

/// The deterministic in-memory filesystem. See the module docs for the
/// power-loss model.
pub struct MemFs {
    inner: Mutex<MemInner>,
}

impl MemFs {
    fn new(plan: FaultPlan) -> MemFs {
        MemFs {
            inner: Mutex::new(MemInner {
                plan,
                ..MemInner::default()
            }),
        }
    }

    /// Total mutating operations performed so far — the number of distinct
    /// power-loss boundaries an identical workload exposes.
    pub fn ops(&self) -> u64 {
        self.inner.lock().unwrap().ops
    }

    /// Total fsyncs performed so far.
    pub fn fsyncs(&self) -> u64 {
        self.inner.lock().unwrap().fsyncs
    }

    /// Whether power has been lost (and not yet cycled).
    pub fn is_dead(&self) -> bool {
        self.inner.lock().unwrap().dead
    }

    /// Simulates the machine coming back up after power loss: every file
    /// keeps its durable content plus a seed-derived torn prefix of
    /// whatever was written-but-not-fsynced, faults are disarmed (recovery
    /// runs on a healthy disk), and counters keep running.
    pub fn power_cycle(&self) {
        let mut inner = self.inner.lock().unwrap();
        let seed = inner.plan.seed;
        for (path, file) in inner.files.iter_mut() {
            let survived = if file.content.len() >= file.durable.len()
                && file.content[..file.durable.len()] == file.durable[..]
            {
                // Pure appends since the last sync: keep a torn prefix.
                let suffix = &file.content[file.durable.len()..];
                let keep = if suffix.is_empty() {
                    0
                } else {
                    (splitmix64(mix_path(seed ^ 0x746f_726e, path)) % (suffix.len() as u64 + 1))
                        as usize
                };
                let mut s = file.durable.clone();
                s.extend_from_slice(&suffix[..keep]);
                s
            } else {
                // A truncate or rewrite that was never fsynced: the disk
                // may legitimately come back with the pre-crash image.
                file.durable.clone()
            };
            file.content = survived.clone();
            file.durable = survived;
        }
        inner.dead = false;
        let seed = inner.plan.seed;
        inner.plan = FaultPlan::none(seed);
    }

    /// The surviving content of `path`, bypassing fault injection (for
    /// harness assertions).
    pub fn peek(&self, path: &Path) -> Option<Vec<u8>> {
        self.inner
            .lock()
            .unwrap()
            .files
            .get(path)
            .map(|f| f.content.clone())
    }

    /// Every file currently present, in path order (for harness
    /// assertions).
    pub fn paths(&self) -> Vec<PathBuf> {
        self.inner.lock().unwrap().files.keys().cloned().collect()
    }

    /// One mutating-operation boundary: checks the power latch, counts the
    /// op, and possibly cuts power *at* this op (the op does not happen).
    fn gate(inner: &mut MemInner, op: &'static str, path: &Path) -> Result<(), StorageError> {
        if inner.dead {
            return Err(StorageError::new(op, path, StorageErrorKind::PowerLoss));
        }
        let n = inner.ops;
        inner.ops += 1;
        if inner.plan.power_loss == Some(n) {
            inner.dead = true;
            return Err(StorageError::new(op, path, StorageErrorKind::PowerLoss));
        }
        Ok(())
    }

    fn create_file(&self, path: &Path) -> Result<(), StorageError> {
        let mut inner = self.inner.lock().unwrap();
        Self::gate(&mut inner, "create", path)?;
        let entry = inner.files.entry(path.to_path_buf()).or_default();
        entry.content.clear();
        Ok(())
    }

    fn open_file(&self, path: &Path) -> Result<(), StorageError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.dead {
            return Err(StorageError::new(
                "create",
                path,
                StorageErrorKind::PowerLoss,
            ));
        }
        inner.files.entry(path.to_path_buf()).or_default();
        Ok(())
    }

    fn append_file(&self, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
        let mut inner = self.inner.lock().unwrap();
        Self::gate(&mut inner, "write", path)?;
        let w = inner.writes;
        inner.writes += 1;
        let seed = inner.plan.seed;
        if inner.plan.tear_write == Some(w) && !bytes.is_empty() {
            // Strict prefix: a torn write by definition did not complete.
            let keep = (splitmix64(seed ^ 0x7465_6172 ^ w) % bytes.len() as u64) as usize;
            inner.bytes_written += keep as u64;
            let entry = inner.files.entry(path.to_path_buf()).or_default();
            entry.content.extend_from_slice(&bytes[..keep]);
            return Err(StorageError::new(
                "write",
                path,
                StorageErrorKind::TornWrite { written: keep },
            ));
        }
        if let Some(cap) = inner.plan.disk_capacity {
            let room = cap.saturating_sub(inner.bytes_written) as usize;
            if room < bytes.len() {
                inner.bytes_written += room as u64;
                let entry = inner.files.entry(path.to_path_buf()).or_default();
                entry.content.extend_from_slice(&bytes[..room]);
                return Err(StorageError::new("write", path, StorageErrorKind::Enospc));
            }
        }
        inner.bytes_written += bytes.len() as u64;
        let entry = inner.files.entry(path.to_path_buf()).or_default();
        entry.content.extend_from_slice(bytes);
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> Result<(), StorageError> {
        let mut inner = self.inner.lock().unwrap();
        Self::gate(&mut inner, "fsync", path)?;
        let f = inner.fsyncs;
        inner.fsyncs += 1;
        if inner.plan.fail_fsync == Some(f) {
            // The durable copy is NOT advanced: the unsynced suffix is now
            // at the mercy of the next power loss.
            return Err(StorageError::new(
                "fsync",
                path,
                StorageErrorKind::FsyncFailed,
            ));
        }
        if let Some(file) = inner.files.get_mut(path) {
            file.durable = file.content.clone();
        }
        Ok(())
    }
}

struct MemBackend(Arc<MemFs>);

struct MemHandle {
    fs: Arc<MemFs>,
    path: PathBuf,
}

impl DurableFile for MemHandle {
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.fs.append_file(&self.path, bytes)
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.fs.sync_file(&self.path)
    }
}

impl StorageBackend for MemBackend {
    fn create(&self, path: &Path) -> Result<Box<dyn DurableFile>, StorageError> {
        self.0.create_file(path)?;
        Ok(Box::new(MemHandle {
            fs: self.0.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn open_append(&self, path: &Path) -> Result<Box<dyn DurableFile>, StorageError> {
        self.0.open_file(path)?;
        Ok(Box::new(MemHandle {
            fs: self.0.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, StorageError> {
        let mut inner = self.0.inner.lock().unwrap();
        if inner.dead {
            return Err(StorageError::new("read", path, StorageErrorKind::PowerLoss));
        }
        let r = inner.reads;
        inner.reads += 1;
        if inner.plan.fail_read == Some(r) {
            return Err(StorageError::new("read", path, StorageErrorKind::Eio));
        }
        inner
            .files
            .get(path)
            .map(|f| f.content.clone())
            .ok_or_else(|| StorageError::new("read", path, StorageErrorKind::NotFound))
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<(), StorageError> {
        let mut inner = self.0.inner.lock().unwrap();
        MemFs::gate(&mut inner, "truncate", path)?;
        match inner.files.get_mut(path) {
            Some(f) => {
                f.content.truncate(len as usize);
                Ok(())
            }
            None => Err(StorageError::new(
                "truncate",
                path,
                StorageErrorKind::NotFound,
            )),
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
        let tmp = path.with_extension("tmp");
        let mut file = self.create(&tmp)?;
        file.append(bytes)?;
        file.sync()?;
        drop(file);
        let mut inner = self.0.inner.lock().unwrap();
        MemFs::gate(&mut inner, "rename", path)?;
        let moved = inner
            .files
            .remove(&tmp)
            .ok_or_else(|| StorageError::new("rename", &tmp, StorageErrorKind::NotFound))?;
        inner.files.insert(path.to_path_buf(), moved);
        Ok(())
    }

    fn create_dir_all(&self, _path: &Path) -> Result<(), StorageError> {
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.0.inner.lock().unwrap().files.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn real_backend_round_trips_and_truncates() {
        let dir = std::env::temp_dir().join(format!("ecl-storage-{}", std::process::id()));
        let storage = Storage::real();
        storage.create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let mut f = storage.create(&path).unwrap();
        f.append(b"hello\nwor").unwrap();
        f.sync().unwrap();
        drop(f);
        assert!(storage.exists(&path));
        assert_eq!(storage.read(&path).unwrap(), b"hello\nwor");
        storage.truncate(&path, 6).unwrap();
        let mut f = storage.open_append(&path).unwrap();
        f.append(b"again\n").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(storage.read(&path).unwrap(), b"hello\nagain\n");
        storage.write_atomic(&path, b"whole\n").unwrap();
        assert_eq!(storage.read(&path).unwrap(), b"whole\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_typed_not_found() {
        let (storage, _fs) = Storage::mem(FaultPlan::none(1));
        let err = storage.read(&p("/nope")).unwrap_err();
        assert_eq!(err.kind, StorageErrorKind::NotFound);
        let err = Storage::real()
            .read(&p("/definitely/not/a/file"))
            .unwrap_err();
        assert_eq!(err.kind, StorageErrorKind::NotFound);
    }

    #[test]
    fn power_loss_drops_unsynced_suffix_deterministically() {
        // Two identical runs with the same seed must leave identical
        // surviving bytes; the synced prefix always survives whole.
        let mut images = Vec::new();
        for _ in 0..2 {
            let (storage, fs) = Storage::mem(FaultPlan::none(42));
            let path = p("/j.jsonl");
            let mut f = storage.create(&path).unwrap();
            f.append(b"line1\n").unwrap();
            f.sync().unwrap();
            f.append(b"line2-never-synced\n").unwrap();
            fs.power_cycle();
            let survived = fs.peek(&path).unwrap();
            assert!(survived.starts_with(b"line1\n"), "synced prefix survives");
            assert!(survived.len() <= b"line1\nline2-never-synced\n".len());
            images.push(survived);
        }
        assert_eq!(images[0], images[1], "same seed, same surviving bytes");
    }

    #[test]
    fn power_loss_at_op_kills_everything_after() {
        let (storage, fs) = Storage::mem(FaultPlan::power_loss_at(7, 2));
        let path = p("/f");
        let mut f = storage.create(&path).unwrap(); // op 0
        f.append(b"a\n").unwrap(); // op 1
        let err = f.sync().unwrap_err(); // op 2: lights out
        assert_eq!(err.kind, StorageErrorKind::PowerLoss);
        let err = f.append(b"b\n").unwrap_err();
        assert_eq!(err.kind, StorageErrorKind::PowerLoss);
        let err = storage.read(&path).unwrap_err();
        assert_eq!(err.kind, StorageErrorKind::PowerLoss, "reads die too");
        assert!(fs.is_dead());
        fs.power_cycle();
        assert!(!fs.is_dead());
        // Nothing was ever synced: the file may be empty or hold a torn
        // prefix of "a\n", never more.
        let survived = fs.peek(&path).unwrap();
        assert!(survived.len() <= 2);
    }

    #[test]
    fn nth_fsync_fails_without_advancing_durability() {
        let (storage, fs) = Storage::mem(FaultPlan {
            seed: 3,
            fail_fsync: Some(1),
            ..FaultPlan::default()
        });
        let path = p("/f");
        let mut f = storage.create(&path).unwrap();
        f.append(b"first\n").unwrap();
        f.sync().unwrap(); // fsync 0: fine
        f.append(b"second\n").unwrap();
        let err = f.sync().unwrap_err(); // fsync 1: fails
        assert_eq!(err.kind, StorageErrorKind::FsyncFailed);
        fs.power_cycle();
        let survived = fs.peek(&path).unwrap();
        assert!(survived.starts_with(b"first\n"));
        assert!(survived.len() < b"first\nsecond\n".len() || survived == b"first\nsecond\n");
    }

    #[test]
    fn torn_write_applies_a_strict_prefix() {
        let (storage, _fs) = Storage::mem(FaultPlan {
            seed: 9,
            tear_write: Some(0),
            ..FaultPlan::default()
        });
        let path = p("/f");
        let mut f = storage.create(&path).unwrap();
        let err = f.append(b"0123456789").unwrap_err();
        let StorageErrorKind::TornWrite { written } = err.kind else {
            panic!("expected TornWrite, got {:?}", err.kind);
        };
        assert!(written < 10, "a torn write never completes");
        let on_disk = storage.read(&path).unwrap();
        assert_eq!(on_disk, b"0123456789"[..written].to_vec());
    }

    #[test]
    fn full_device_returns_enospc() {
        let (storage, _fs) = Storage::mem(FaultPlan {
            seed: 1,
            disk_capacity: Some(8),
            ..FaultPlan::default()
        });
        let path = p("/f");
        let mut f = storage.create(&path).unwrap();
        f.append(b"12345").unwrap();
        let err = f.append(b"67890").unwrap_err();
        assert_eq!(err.kind, StorageErrorKind::Enospc);
        // And it stays full.
        let err = f.append(b"x").unwrap_err();
        assert_eq!(err.kind, StorageErrorKind::Enospc);
    }

    #[test]
    fn nth_read_returns_eio() {
        let (storage, _fs) = Storage::mem(FaultPlan {
            seed: 1,
            fail_read: Some(1),
            ..FaultPlan::default()
        });
        let path = p("/f");
        let mut f = storage.create(&path).unwrap();
        f.append(b"data").unwrap();
        drop(f);
        assert_eq!(storage.read(&path).unwrap(), b"data"); // read 0
        let err = storage.read(&path).unwrap_err(); // read 1
        assert_eq!(err.kind, StorageErrorKind::Eio);
        assert_eq!(storage.read(&path).unwrap(), b"data"); // read 2
    }

    #[test]
    fn write_atomic_is_all_or_nothing_across_power_loss() {
        // Crash at any of write_atomic's internal boundaries: the target
        // either has the complete old content or the complete new content.
        let full = b"new-document\n".to_vec();
        for boundary in 0..8 {
            let (storage, fs) = Storage::mem(FaultPlan::power_loss_at(5, boundary));
            let path = p("/doc");
            let setup = storage
                .create(&path)
                .and_then(|mut f| f.append(b"old\n").and_then(|_| f.sync()));
            let replaced = setup.and_then(|_| storage.write_atomic(&path, &full));
            fs.power_cycle();
            let survived = fs.peek(&path).unwrap_or_default();
            if replaced.is_ok() {
                assert_eq!(survived, full, "boundary {boundary}");
            } else {
                // Either the complete new doc (rename landed) or (a prefix
                // of) the old one — if the crash hit before the *setup's*
                // fsync, even "old\n" was never durable and may come back
                // torn. What must never appear is a torn NEW document.
                assert!(
                    survived == full || b"old\n".starts_with(&survived[..]),
                    "boundary {boundary}: torn document {survived:?}"
                );
            }
        }
    }

    #[test]
    fn splitmix_is_stable() {
        // Pin the stream: fault plans and jitter schedules derive from it,
        // so silently changing it would silently change every schedule.
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(1), 0x910a2dec89025cc1);
        assert_ne!(splitmix64(41), splitmix64(42));
    }
}
