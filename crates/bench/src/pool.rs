//! A minimal deterministic work pool for embarrassingly-parallel sweeps.
//!
//! The experiment matrix is a flat list of independent cells whose results
//! must come back *in cell order*, bit-identical to a serial run, no matter
//! how many workers execute them. The pool keeps that contract trivially:
//!
//! - work is claimed from a shared atomic index (no per-worker striding, so
//!   load imbalance between cheap and expensive cells self-levels);
//! - every job function receives its job index and must derive all of its
//!   randomness from it (the matrix's per-cell seeds are position-derived,
//!   never drawn from shared mutable state);
//! - each worker tags results with their job index, and the caller
//!   reassembles them in index order.
//!
//! No external dependencies: `std::thread::scope` borrows the job closure
//! and job list directly, so the pool works with non-`'static` data.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Runs `jobs` independent jobs on up to `workers` threads and returns the
/// results in job order.
///
/// `f(i)` must be a pure function of `i` (plus shared immutable state) for
/// the output to be independent of the schedule; the pool guarantees only
/// that each index runs exactly once and results are reassembled in order.
/// With `workers <= 1` the jobs run inline on the caller's thread in index
/// order — the serial reference the determinism tests compare against.
///
/// # Panics
///
/// Propagates the first panic observed in a worker (after all workers have
/// drained). Sweeps that must survive bad cells catch per-cell failures
/// inside `f` (see `ecl_core::suite::run_cell`).
pub fn run_indexed<T, F>(workers: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(jobs.max(1));
    if workers == 1 {
        return (0..jobs).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let next = &next;
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        mine.push((i, f(i)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });

    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert!(tagged.iter().enumerate().all(|(k, &(i, _))| k == i));
    tagged.into_iter().map(|(_, v)| v).collect()
}

/// [`run_indexed`] with a cooperative stop flag: once `stop` reads `true`,
/// no *new* job index is claimed — jobs already in flight run to completion
/// (a half-measured cell is worthless; a completed one is journalable).
///
/// Returns one slot per job index: `Some(result)` for jobs that ran,
/// `None` for jobs abandoned to the stop flag. With `stop` never raised
/// the output is exactly `run_indexed`'s, every slot `Some` — the abort
/// path costs one relaxed load per claim.
pub fn run_indexed_until<T, F>(
    workers: usize,
    jobs: usize,
    stop: Option<&AtomicBool>,
    f: F,
) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let stopped = || stop.is_some_and(|s| s.load(Ordering::Relaxed));
    let workers = workers.max(1).min(jobs.max(1));
    let mut out: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    if workers == 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            if stopped() {
                break;
            }
            *slot = Some(f(i));
        }
        return out;
    }

    let next = AtomicUsize::new(0);
    let tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let next = &next;
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        if stopped() {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        mine.push((i, f(i)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });

    for (i, v) in tagged {
        out[i] = Some(v);
    }
    out
}

/// The worker count a sweep should default to: the `ECL_JOBS` environment
/// variable if set to a positive integer, otherwise the machine's available
/// parallelism, otherwise 1.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("ECL_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("ignoring ECL_JOBS='{v}' (need a positive integer)");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [1, 2, 3, 8] {
            let out = run_indexed(workers, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        let _ = run_indexed(4, 64, |i| counters[i].fetch_add(1, Ordering::Relaxed));
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_jobs_and_oversubscription_are_fine() {
        assert!(run_indexed::<u32, _>(8, 0, |_| unreachable!()).is_empty());
        assert_eq!(run_indexed(64, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            run_indexed(2, 8, |i| {
                if i == 5 {
                    panic!("job 5 exploded");
                }
                i
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn until_without_a_stop_flag_matches_run_indexed() {
        for workers in [1, 3] {
            let out = run_indexed_until(workers, 20, None, |i| i * 3);
            assert_eq!(
                out,
                (0..20).map(|i| Some(i * 3)).collect::<Vec<_>>(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn raised_stop_flag_abandons_unclaimed_jobs() {
        let stop = AtomicBool::new(false);
        let out = run_indexed_until(2, 64, Some(&stop), |i| {
            if i == 4 {
                stop.store(true, Ordering::Relaxed);
            }
            i
        });
        // In-flight jobs complete; the tail is abandoned.
        assert_eq!(out[4], Some(4));
        assert!(out.iter().any(|s| s.is_none()), "nothing was abandoned");
        for (i, s) in out.iter().enumerate() {
            if let Some(v) = s {
                assert_eq!(*v, i);
            }
        }
    }

    #[test]
    fn pre_raised_stop_flag_runs_nothing() {
        let stop = AtomicBool::new(true);
        let out = run_indexed_until(4, 16, Some(&stop), |i| i);
        assert!(out.iter().all(Option::is_none));
    }

    #[test]
    fn borrows_non_static_data() {
        let data = [10usize, 20, 30, 40];
        let out = run_indexed(2, data.len(), |i| data[i] + 1);
        assert_eq!(out, vec![11, 21, 31, 41]);
    }
}
